//! # batchzk
//!
//! A from-scratch Rust reproduction of *BatchZK: A Fully Pipelined
//! GPU-Accelerated System for Batch Generation of Zero-Knowledge Proofs*
//! (ASPLOS 2025).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`field`] — BN254 fields, batch inversion, NTT;
//! * [`curve`] — BN254 G1 + Pippenger MSM (old-protocol baseline substrate);
//! * [`hash`] — SHA-256, Fiat–Shamir transcript, seeded PRG;
//! * [`merkle`] — CPU reference Merkle tree;
//! * [`sumcheck`] — Algorithm 1 and Fiat–Shamir sum-checks;
//! * [`encoder`] — Spielman/Brakedown linear-time expander code;
//! * [`gpu_sim`] — the cycle-level CUDA execution-model simulator;
//! * [`metrics`] — service-level metrics registry, lifecycle spans, and
//!   the trace-driven bottleneck analyzer;
//! * [`pipeline`] — the pipelined modules and the naive baselines;
//! * [`pcs`] — the Brakedown/Orion interleaved-codeword polynomial
//!   commitment (phase-split prover, verifier);
//! * [`zkp`] — Spartan-style SNARK, pipelined batch prover, and the
//!   pipelined Orion PCS-opening backend;
//! * [`vml`] — the verifiable machine-learning application.
//!
//! # Quickstart
//!
//! ```
//! use batchzk::zkp::{PcsParams, prove, verify};
//! use batchzk::zkp::r1cs::synthetic_r1cs;
//! use batchzk::field::Fr;
//!
//! let (r1cs, inputs, witness) = synthetic_r1cs::<Fr>(32, 1);
//! let params = PcsParams { num_col_tests: 16, ..PcsParams::default() };
//! let proof = prove(&params, &r1cs, &inputs, &witness);
//! assert!(verify(&params, &r1cs, &inputs, &proof));
//! ```

pub use batchzk_curve as curve;
pub use batchzk_encoder as encoder;
pub use batchzk_field as field;
pub use batchzk_gpu_sim as gpu_sim;
pub use batchzk_hash as hash;
pub use batchzk_merkle as merkle;
pub use batchzk_metrics as metrics;
pub use batchzk_pcs as pcs;
pub use batchzk_pipeline as pipeline;
pub use batchzk_sumcheck as sumcheck;
pub use batchzk_vml as vml;
pub use batchzk_zkp as zkp;
