//! Experiment scale configuration.
//!
//! The paper's workloads (2^18–2^22 elements, full VGG-16) take hours of
//! real CPU arithmetic under simulation, so the harness defaults to a
//! proportionally scaled-down sweep that preserves every comparative shape
//! (who wins, by what factor, where the crossovers fall). Pass `--paper`
//! to run the full-size sweep.

/// Workload sizes for one harness run.
#[derive(Debug, Clone)]
pub struct Scale {
    /// log2 sizes for the module tables (3, 4, 5), largest first.
    pub module_logs: Vec<u32>,
    /// Batch size for module pipeline runs.
    pub module_batch: usize,
    /// log2 circuit sizes for the system tables (7, 10), largest first.
    pub system_logs: Vec<u32>,
    /// Batch size for system pipeline runs.
    pub system_batch: usize,
    /// VGG width divisor for Table 11 (1 = full VGG-16).
    pub vgg_divisor: usize,
    /// Batch of images for Table 11.
    pub vgg_batch: usize,
    /// log2 circuit size for the multi-device scaling sweep. Smaller than
    /// the system sizes: the sweep repeats the whole batch at every device
    /// count, and the scaling shape is size-independent.
    pub scaling_log: u32,
    /// Batch size for the scaling sweep. Must be large against the
    /// pipeline depth (4 stages): a batch of `m` takes `m + depth - 1`
    /// pipeline slots on one device but `m/d + depth - 1` on each of `d`,
    /// so small batches understate the pool's steady-state speedup.
    pub scaling_batch: usize,
    /// log2 circuit size for the online-service replay (`tables serve` and
    /// the BENCH.json `service` section). Kept small like `scaling_log`:
    /// the replay proves every admitted arrival of the trace at two pool
    /// sizes, and the admission/SLO shape is size-independent because
    /// trace time is calibrated to the measured proof interval.
    pub service_log: u32,
    /// Probe batch for the service-time calibration: the replay first
    /// proves this many instances in batch mode to measure the
    /// steady-state per-proof interval that defines the trace time unit.
    pub service_probe_batch: usize,
    /// log2 circuit size for the backend comparison (`tables backends` and
    /// the BENCH.json `backends` section). Both backends run at this size;
    /// kept modest because the Groth16-style prover performs real Pippenger
    /// MSMs per proof on the host.
    pub backends_log: u32,
    /// Throughput-scenario batch size for the backend comparison.
    pub backends_batch: usize,
    /// log2 circuit size for the wall-clock thread-scaling measurement
    /// (the BENCH.json `wall_clock` section). Must be big enough that real
    /// per-proof arithmetic dominates thread-pool overhead — the CI gate
    /// asserts real speedup, not simulated-cycle ratios.
    pub wall_log: u32,
    /// Batch size for the wall-clock measurement; large against the thread
    /// counts probed so work division stays even.
    pub wall_batch: usize,
    /// Human-readable tag recorded in outputs.
    pub tag: &'static str,
}

impl Scale {
    /// Fast sweep (minutes): sizes 2^10–2^14, reduced VGG.
    pub fn quick() -> Self {
        Self {
            module_logs: vec![14, 13, 12, 11, 10],
            // Well past the pipeline depth (log N + 1 stages) so the
            // steady state dominates fill/drain.
            module_batch: 48,
            system_logs: vec![14, 13, 12],
            system_batch: 6,
            vgg_divisor: 32,
            vgg_batch: 4,
            scaling_log: 10,
            scaling_batch: 48,
            service_log: 10,
            service_probe_batch: 8,
            backends_log: 10,
            backends_batch: 6,
            wall_log: 12,
            wall_batch: 48,
            tag: "quick (sizes /16 of paper)",
        }
    }

    /// The paper's exact sizes (very slow on CPU-simulated hardware).
    pub fn paper() -> Self {
        Self {
            module_logs: vec![22, 21, 20, 19, 18],
            module_batch: 12,
            system_logs: vec![22, 21, 20, 19, 18],
            system_batch: 6,
            vgg_divisor: 1,
            vgg_batch: 4,
            scaling_log: 18,
            scaling_batch: 48,
            service_log: 18,
            service_probe_batch: 8,
            backends_log: 12,
            backends_batch: 12,
            wall_log: 18,
            wall_batch: 128,
            tag: "paper scale",
        }
    }

    /// Wall-clock-focused preset: the quick shapes for everything except
    /// the `wall_clock` measurement, which runs big enough (`2^14` tables,
    /// batch 128) that per-proof field/hash arithmetic dominates thread-pool
    /// overhead. This is the preset behind the CI >3x-at-4-threads gate.
    pub fn wall() -> Self {
        Self {
            wall_log: 14,
            wall_batch: 128,
            tag: "wall (quick shapes, full-size wall-clock)",
            ..Self::quick()
        }
    }

    /// Intermediate sweep for overnight runs.
    pub fn medium() -> Self {
        Self {
            module_logs: vec![18, 17, 16, 15, 14],
            module_batch: 48,
            system_logs: vec![16, 15, 14],
            system_batch: 6,
            vgg_divisor: 16,
            vgg_batch: 4,
            scaling_log: 12,
            scaling_batch: 48,
            service_log: 12,
            service_probe_batch: 8,
            backends_log: 11,
            backends_batch: 8,
            wall_log: 13,
            wall_batch: 64,
            tag: "medium (sizes /16..64 of paper)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_descending() {
        for s in [
            Scale::quick(),
            Scale::paper(),
            Scale::medium(),
            Scale::wall(),
        ] {
            assert!(s.module_logs.windows(2).all(|w| w[0] > w[1]));
            assert!(s.system_logs.windows(2).all(|w| w[0] > w[1]));
            assert!(s.module_batch >= 2 && s.system_batch >= 2);
            // The scaling sweep needs a batch large against the 4-stage
            // pipeline depth to expose steady-state speedup.
            assert!(s.scaling_batch >= 8 * 4);
            // The service calibration probe must clear the same depth so
            // its per-proof interval reflects the steady state.
            assert!(s.service_probe_batch >= 2 * 4);
            assert!(s.service_log >= 8);
            // The backend comparison needs a throughput batch past the
            // 4-stage depth and a size that exercises real MSM windows.
            assert!(s.backends_batch >= 4 && s.backends_log >= 8);
            // The wall-clock measurement must be large enough that real
            // arithmetic dominates threading overhead.
            assert!(s.wall_log >= 12 && s.wall_batch >= 32);
        }
        // The CI-gated preset runs the full-size wall-clock workload.
        let w = Scale::wall();
        assert!(w.wall_log >= 14 && w.wall_batch >= 128);
    }
}
