//! Regenerates the paper's tables and figures.
//!
//! Usage: `tables <experiment|all> [--quick|--medium|--paper]`
//! where experiment is one of `table3..table11`, `fig4`, `fig9`,
//! `ablation`, `trace`.
//!
//! `trace` is not part of `all`: it prints the per-stage timeline and
//! stage-imbalance table of the pipelined Merkle module, then the raw
//! Chrome-trace JSON as the final block of output — redirect or copy it
//! into a `.json` file and load it in `chrome://tracing` or
//! <https://ui.perfetto.dev>.

use batchzk_bench::experiments;
use batchzk_bench::scale::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--paper") {
        Scale::paper()
    } else if args.iter().any(|a| a == "--medium") {
        Scale::medium()
    } else {
        Scale::quick()
    };
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let which = if which.is_empty() { vec!["all"] } else { which };

    println!("# BatchZK reproduction — experiment harness");
    println!("scale: {}\n", scale.tag);

    let all = which.contains(&"all");
    let want = |name: &str| all || which.contains(&name);

    if want("table3") {
        println!("{}", experiments::table3(&scale));
    }
    if want("table4") {
        println!("{}", experiments::table4(&scale));
    }
    if want("table5") {
        println!("{}", experiments::table5(&scale));
    }
    if want("table6") {
        println!("{}", experiments::table6(&scale));
    }
    if want("table7") {
        println!("{}", experiments::table7(&scale));
    }
    if want("table8") {
        println!("{}", experiments::table8(&scale));
    }
    if want("table9") {
        println!("{}", experiments::table9(&scale));
    }
    if want("table10") {
        println!("{}", experiments::table10(&scale));
    }
    if want("table11") {
        println!("{}", experiments::table11(&scale));
    }
    if want("fig4") {
        println!("{}", experiments::fig4(&scale));
    }
    if want("fig9") {
        println!("{}", experiments::fig9(&scale));
    }
    if want("ablation") {
        println!("{}", experiments::ablation(&scale));
    }
    // `trace` is explicit-only: its JSON payload would drown `all` output.
    if which.contains(&"trace") {
        let (report, json) = experiments::trace(&scale);
        println!("{report}");
        println!("Chrome trace JSON (load in chrome://tracing or Perfetto):\n");
        println!("{json}");
    }
}
