//! Regenerates the paper's tables and figures.
//!
//! Usage: `tables <experiment|all|help> [--quick|--medium|--paper|--wall]
//! [--devices N] [--profile <name>] [--threads N] [--fault-plan <spec>]
//! [--trace <spec>] [--trace-file <path>] [--backend <name>]
//! [--no-wall-clock]`
//! where experiment is one of `table3..table11`, `fig4`, `fig9`,
//! `ablation`, `scaling`, `faults`, `serve`, `backends`, `trace`,
//! `timeline`, `profile`, `bench-json`.
//!
//! `--threads N` sets the host worker-pool size every experiment runs
//! under (device clocks and per-slot payload work fan out across it);
//! `BATCHZK_THREADS` is the environment equivalent and the default is the
//! host's available parallelism. Output is byte-identical at any thread
//! count — parallelism only changes wall-clock.
//!
//! `scaling` proves the scale's scaling batch across device pools and
//! prints throughput vs device count with the pool analyzer's per-device
//! occupancy and scaling-efficiency verdicts. `--devices N` sets the
//! largest pool (swept as 1, 2, 4, ... N; default 8) and
//! `--profile <name>` picks the simulated GPU (`v100`, `a100`,
//! `rtx3090ti`, `h100`, `gh200`; default `a100`).
//!
//! `faults` runs the recovery-overhead study: the scale's scaling batch on
//! a two-device pool, fault-free and under each scripted-fault scenario
//! (mid-batch fail-stop, degraded clock, dropped kernel), asserting the
//! recovered proofs stay byte-identical to the fault-free run.
//! `--fault-plan <spec>` appends a custom scenario; the spec grammar is
//! comma-separated `<device>@<cycle>:fail`, `<device>@<cycle>:slow:<pct>`,
//! or `<device>@<cycle>:drop:<nth>` (see `OPERATIONS.md`).
//!
//! `serve` replays an open-loop arrival trace through the online proving
//! service on A100 pools of 1 and 4 devices and prints the per-class SLO
//! report (submitted / accepted / rejected-with-reason, p50/p95/p99
//! latency vs SLO, goodput). The default trace is the committed reference
//! trace (`traces/reference.trace`); override it with `--trace <spec>`
//! (the arrival grammar of `DESIGN.md` §13: comma-separated
//! `<class>@<cycle>:one | <class>@<cycle>:poisson:<gap>:<count>:<seed> |
//! <class>@<cycle>:onoff:<gap>:<count>:<seed>:<on>:<off>`) or
//! `--trace-file <path>`. Empty traces and malformed specs are errors,
//! not panics.
//!
//! `backends` compares every [`batchzk_zkp::ProverBackend`] proved through
//! the fully pipelined schedule against the kernel-per-task naive schedule
//! (byte-identical proofs asserted), then replays the committed mixed
//! trace (`traces/mixed.trace`) through one service instance serving every
//! protocol. `--backend <name>` restricts the sweep to one backend — any
//! name in [`batchzk_zkp::BACKEND_NAMES`], which the usage text enumerates
//! — and unknown names exit non-zero with usage.
//! The `serve`/`timeline` arrival grammar also accepts a per-arrival
//! backend suffix (`class/backend@...`), validated against the same set.
//!
//! `trace` is not part of `all`: it prints the per-stage timeline and
//! stage-imbalance table of the pipelined Merkle module, then the raw
//! Chrome-trace JSON as the final block of output — redirect or copy it
//! into a `.json` file and load it in `chrome://tracing` or
//! <https://ui.perfetto.dev>.
//!
//! `timeline` is also explicit-only: it replays the arrival trace (same
//! `--trace` / `--trace-file` flags as `serve`) on the single-device pool
//! — the committed overload case — prints the flight recorder's
//! per-window sparkline table and the deterministic fire/resolve alert
//! log, and writes two artifacts to the current directory: `TIMELINE.json`
//! (the windowed series, rule set, and alert log; byte-identical to the
//! BENCH.json `timeline` section at the same scale) and
//! `TIMELINE.trace.json` (the device's Chrome trace with the recorder
//! merged in as counter tracks, for `chrome://tracing` or Perfetto).
//!
//! `profile` is also explicit-only: it self-times every hot-path kernel
//! (strict/lazy/4-way Montgomery multiply, LUT vs naive binary inner
//! products, scalar vs 4-lane SHA-256 compression, NTT butterflies) at the
//! scale's `wall_log` size, attributes one instrumented single-thread
//! prove to named pipeline phases, prints the markdown report, and writes
//! `PROFILE.json` to the current directory.
//!
//! `bench-json` is also explicit-only: it runs the standard module and
//! system pipelines on the A100 profile and writes the machine-readable
//! `BENCH.json` artifact (throughput, lifecycle latency quantiles,
//! per-stage occupancy, limiting-stage analysis) to the current directory
//! for cross-commit regression tracking. The file is byte-deterministic at
//! a given scale except for the `wall_clock` section, which records the
//! *measured* host wall time of the multi-device run at the scale's
//! `wall_log`/`wall_batch` sizes at 1, 2, and 4 host threads — the
//! `--wall` preset runs it full-size for the CI speedup gate. Pass
//! `--no-wall-clock` to omit the measured section entirely and write the
//! fully byte-deterministic artifact for regression comparison.
//!
//! Unrecognized experiments or flags print usage and exit non-zero.

use batchzk_bench::experiments;
use batchzk_bench::scale::Scale;
use std::process::ExitCode;

/// `(name, in-all, description)` for every experiment the binary can run.
const EXPERIMENTS: &[(&str, bool, &str)] = &[
    ("table3", true, "Merkle-tree module throughput (trees/ms)"),
    ("table4", true, "sum-check module throughput (proofs/ms)"),
    ("table5", true, "linear-time encoder throughput (codes/ms)"),
    ("table6", true, "module latency: the pipelining trade-off"),
    ("table7", true, "amortized per-proof time vs baselines"),
    ("table8", true, "ZKP systems across GPU profiles"),
    ("table9", true, "batch size vs throughput and latency"),
    ("table10", true, "device memory footprint"),
    ("table11", true, "verifiable-ML service throughput"),
    ("fig4", true, "pipelined vs naive utilization timeline"),
    ("fig9", true, "utilization collapse of naive modules"),
    ("ablation", true, "multi-stream / warp-sort ablations"),
    (
        "scaling",
        true,
        "multi-device throughput vs device count (--devices, --profile)",
    ),
    (
        "faults",
        true,
        "scripted-fault recovery overhead (--fault-plan)",
    ),
    (
        "serve",
        true,
        "online service replay: per-class SLO report (--trace, --trace-file)",
    ),
    (
        "backends",
        true,
        "pipelined vs naive per ProverBackend + mixed-trace service (--backend {backends})",
    ),
    (
        "trace",
        false,
        "per-stage timeline + Chrome-trace JSON (explicit-only)",
    ),
    (
        "timeline",
        false,
        "flight recorder: sparklines, alert log, TIMELINE.json (explicit-only)",
    ),
    (
        "profile",
        false,
        "hot-path kernel self-timing + prover phase attribution; writes PROFILE.json (explicit-only)",
    ),
    (
        "bench-json",
        false,
        "write machine-readable BENCH.json (explicit-only, --no-wall-clock)",
    ),
];

const FLAGS: &[&str] = &[
    "--quick",
    "--medium",
    "--paper",
    "--wall",
    "--no-wall-clock",
];

fn usage() -> String {
    let mut out = String::from(
        "usage: tables <experiment...|all|help> [--quick|--medium|--paper]\n\
         \x20             [--devices N] [--profile <name>] [--threads N]\n\nexperiments:\n",
    );
    out.push_str("  all          every experiment marked (all) below\n");
    out.push_str("  help         this listing\n");
    // The backend set is enumerated from `zkp::BACKEND_NAMES`, never
    // hardcoded: a new backend shows up in the help text automatically.
    let backend_names = batchzk_zkp::BACKEND_NAMES.join("|");
    for (name, in_all, desc) in EXPERIMENTS {
        let marker = if *in_all { " (all)" } else { "" };
        let desc = desc.replace("{backends}", &backend_names);
        out.push_str(&format!("  {name:<12} {desc}{marker}\n"));
    }
    out.push_str(
        "\nscale flags: --quick (default), --medium, --paper, --wall (quick\n\
         \x20            shapes with the full-size wall-clock workload — the\n\
         \x20            CI speedup-gate preset)\n",
    );
    out.push_str(
        "scaling flags: --devices N (largest pool, swept 1,2,4..N; default 8)\n\
         \x20              --profile <v100|a100|rtx3090ti|h100|gh200> (default a100)\n",
    );
    out.push_str(
        "host flags:    --threads N (host worker pool; default BATCHZK_THREADS\n\
         \x20              or available parallelism; results identical at any N)\n\
         bench flags:   --no-wall-clock (omit the measured wall_clock section\n\
         \x20              from BENCH.json; the artifact becomes fully\n\
         \x20              byte-deterministic for regression comparison)\n",
    );
    out.push_str(
        "fault flags:   --fault-plan <spec> (extra `faults` scenario; spec is\n\
         \x20              comma-separated dev@cycle:fail | dev@cycle:slow:<pct>\n\
         \x20              | dev@cycle:drop:<nth>)\n",
    );
    out.push_str(
        "serve flags:   --trace <spec> | --trace-file <path> (arrival trace to\n\
         \x20              replay, shared with `timeline`; default is the\n\
         \x20              committed reference trace.\n\
         \x20              Spec grammar (DESIGN.md 13): comma-separated\n\
         \x20              class@cycle:one | class@cycle:poisson:<gap>:<count>:<seed>\n\
         \x20              | class@cycle:onoff:<gap>:<count>:<seed>:<on>:<off>;\n\
         \x20              class may carry a backend suffix, class/backend@...)\n",
    );
    out.push_str(&format!(
        "backend flags: --backend <{backend_names}> (restrict `backends` to one\n\
         \x20              prover backend; trace backend suffixes are validated\n\
         \x20              against the same set)\n",
    ));
    out
}

/// The device counts swept by `scaling`: powers of two up to `n`, plus
/// `n` itself when it is not one.
fn device_ladder(n: usize) -> Vec<usize> {
    let mut counts = Vec::new();
    let mut d = 1;
    while d < n {
        counts.push(d);
        d *= 2;
    }
    counts.push(n);
    counts
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();

    // Peel off the value-taking flags first, then validate the rest.
    let mut max_devices = 8usize;
    let mut profile = experiments::profile_by_name("a100").expect("a100 profile exists");
    let mut fault_plan: Option<batchzk_gpu_sim::FaultPlan> = None;
    let mut arrival_plan = experiments::reference_plan();
    let mut backend_filter: Option<String> = None;
    let mut args: Vec<String> = Vec::new();
    let mut it = raw.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => match it.next().map(|v| batchzk_gpu_sim::ArrivalPlan::parse(&v)) {
                Some(Ok(plan)) => arrival_plan = plan,
                Some(Err(e)) => {
                    eprintln!("tables: bad --trace spec: {e}\n");
                    eprint!("{}", usage());
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("tables: --trace needs a spec argument\n");
                    eprint!("{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--trace-file" => match it.next() {
                Some(path) => match std::fs::read_to_string(&path)
                    .map_err(|e| e.to_string())
                    .and_then(|s| batchzk_gpu_sim::ArrivalPlan::parse(&s))
                {
                    Ok(plan) => arrival_plan = plan,
                    Err(e) => {
                        eprintln!("tables: bad --trace-file `{path}`: {e}\n");
                        eprint!("{}", usage());
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    eprintln!("tables: --trace-file needs a path argument\n");
                    eprint!("{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--fault-plan" => match it.next().map(|v| batchzk_gpu_sim::FaultPlan::parse(&v)) {
                Some(Ok(plan)) => fault_plan = Some(plan),
                Some(Err(e)) => {
                    eprintln!("tables: bad --fault-plan spec: {e}\n");
                    eprint!("{}", usage());
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("tables: --fault-plan needs a spec argument\n");
                    eprint!("{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--devices" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => max_devices = n,
                _ => {
                    eprintln!("tables: --devices needs a positive integer\n");
                    eprint!("{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--profile" => match it.next().as_deref().and_then(experiments::profile_by_name) {
                Some(p) => profile = p,
                None => {
                    eprintln!(
                        "tables: --profile needs one of v100, a100, rtx3090ti, h100, gh200\n"
                    );
                    eprint!("{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => batchzk_par::set_threads(n),
                _ => {
                    eprintln!("tables: --threads needs a positive integer\n");
                    eprint!("{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--backend" => match it.next() {
                Some(name) if batchzk_zkp::BACKEND_NAMES.contains(&name.as_str()) => {
                    backend_filter = Some(name);
                }
                Some(name) => {
                    eprintln!(
                        "tables: unknown backend `{name}`: expected one of {}\n",
                        batchzk_zkp::BACKEND_NAMES.join(", ")
                    );
                    eprint!("{}", usage());
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("tables: --backend needs a name argument\n");
                    eprint!("{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            _ => args.push(arg),
        }
    }

    // Per-arrival backend suffixes in the replay trace must name known
    // prover backends — reject before spending any proving time.
    if let Err(e) = experiments::validate_trace_backends(&arrival_plan) {
        eprintln!("tables: bad trace: {e}\n");
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    }

    // Reject unknown flags and experiments up front (exit non-zero).
    for arg in &args {
        let known = if arg.starts_with("--") {
            FLAGS.contains(&arg.as_str())
        } else {
            arg == "all" || arg == "help" || EXPERIMENTS.iter().any(|(n, _, _)| n == arg)
        };
        if !known {
            eprintln!("tables: unrecognized argument `{arg}`\n");
            eprint!("{}", usage());
            return ExitCode::FAILURE;
        }
    }

    if args.iter().any(|a| a == "help") {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }

    let scale = if args.iter().any(|a| a == "--paper") {
        Scale::paper()
    } else if args.iter().any(|a| a == "--medium") {
        Scale::medium()
    } else if args.iter().any(|a| a == "--wall") {
        Scale::wall()
    } else {
        Scale::quick()
    };
    let no_wall_clock = args.iter().any(|a| a == "--no-wall-clock");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let which = if which.is_empty() { vec!["all"] } else { which };

    println!("# BatchZK reproduction — experiment harness");
    println!("scale: {}\n", scale.tag);

    let all = which.contains(&"all");
    let want = |name: &str| all || which.contains(&name);

    if want("table3") {
        println!("{}", experiments::table3(&scale));
    }
    if want("table4") {
        println!("{}", experiments::table4(&scale));
    }
    if want("table5") {
        println!("{}", experiments::table5(&scale));
    }
    if want("table6") {
        println!("{}", experiments::table6(&scale));
    }
    if want("table7") {
        println!("{}", experiments::table7(&scale));
    }
    if want("table8") {
        println!("{}", experiments::table8(&scale));
    }
    if want("table9") {
        println!("{}", experiments::table9(&scale));
    }
    if want("table10") {
        println!("{}", experiments::table10(&scale));
    }
    if want("table11") {
        println!("{}", experiments::table11(&scale));
    }
    if want("fig4") {
        println!("{}", experiments::fig4(&scale));
    }
    if want("fig9") {
        println!("{}", experiments::fig9(&scale));
    }
    if want("ablation") {
        println!("{}", experiments::ablation(&scale));
    }
    if want("scaling") {
        println!(
            "{}",
            experiments::scaling(&scale, &device_ladder(max_devices), &profile)
        );
    }
    if want("faults") {
        println!("{}", experiments::faults(&scale, fault_plan.as_ref()));
    }
    if want("serve") {
        match experiments::serve(&scale, &arrival_plan) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("tables: serve failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if want("backends") {
        println!(
            "{}",
            experiments::backends(&scale, backend_filter.as_deref())
        );
    }
    // `trace` is explicit-only: its JSON payload would drown `all` output.
    if which.contains(&"trace") {
        let (report, json) = experiments::trace(&scale);
        println!("{report}");
        println!("Chrome trace JSON (load in chrome://tracing or Perfetto):\n");
        println!("{json}");
    }
    // `timeline` is explicit-only: it writes artifacts, like `bench-json`.
    if which.contains(&"timeline") {
        match experiments::timeline(&scale, &arrival_plan) {
            Ok(artifacts) => {
                println!("{}", artifacts.report);
                for (path, content) in [
                    ("TIMELINE.json", &artifacts.json),
                    ("TIMELINE.trace.json", &artifacts.chrome_trace),
                ] {
                    if let Err(e) = std::fs::write(path, content) {
                        eprintln!("tables: failed to write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("wrote {path} ({} bytes)", content.len());
                }
            }
            Err(e) => {
                eprintln!("tables: timeline failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // `profile` is explicit-only: it writes an artifact, like `bench-json`.
    if which.contains(&"profile") {
        println!("{}", experiments::profile(&scale));
        let json = experiments::profile_json(&scale);
        match std::fs::write("PROFILE.json", &json) {
            Ok(()) => println!("wrote PROFILE.json ({} bytes)", json.len()),
            Err(e) => {
                eprintln!("tables: failed to write PROFILE.json: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // `bench-json` is explicit-only: it writes an artifact, not a table.
    if which.contains(&"bench-json") {
        let json = if no_wall_clock {
            experiments::bench_json(&scale)
        } else {
            experiments::bench_json_with_wall_clock(&scale, &[1, 2, 4])
        };
        match std::fs::write("BENCH.json", &json) {
            Ok(()) => println!("wrote BENCH.json ({} bytes)", json.len()),
            Err(e) => {
                eprintln!("tables: failed to write BENCH.json: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
