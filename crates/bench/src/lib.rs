//! # batchzk-bench
//!
//! The benchmark harness: runners that regenerate every table and figure of
//! the paper's evaluation (the `tables` binary), the Groth16-style baseline
//! models (Libsnark/Bellperson columns), and the Criterion micro-benchmarks
//! under `benches/`.
//!
//! ```text
//! cargo run -p batchzk-bench --release --bin tables -- all
//! cargo run -p batchzk-bench --release --bin tables -- table3 --medium
//! cargo run -p batchzk-bench --release --bin tables -- table7 --paper
//! ```

pub mod baseline;
pub mod experiments;
pub mod scale;

pub use scale::Scale;
