//! Runners that regenerate every table and figure of the paper's
//! evaluation (§6). Each function returns a rendered markdown table; the
//! `tables` binary dispatches on experiment id.

use std::sync::Arc;
use std::time::Instant;

use batchzk_encoder::{Encoder, EncoderParams};
use batchzk_field::lut::{naive_select_sum, SubsetSumLUT};
use batchzk_field::soa::SoaVec;
use batchzk_field::{Field, Fr, NttDomain, RngCore};
use batchzk_gpu_sim::{ArrivalPlan, DevicePool, DeviceProfile, FaultPlan, Gpu};
use batchzk_hash::Prg;
use batchzk_metrics::{
    analyze_pool, analyze_recovery, analyze_service, DeviceObservation, PoolAnalysis,
    ServiceClassObservation,
};
use batchzk_pipeline::{
    allocate_threads, encoder as penc, merkle as pmerkle, naive, sumcheck as psum, ClassPolicy,
    PriorityClass, ServiceConfig, ServiceOutcome, ShardPolicy,
};
use batchzk_zkp::batch::module_weights;
use batchzk_zkp::r1cs::{synthetic_r1cs, R1cs};
use batchzk_zkp::{
    pcs, prove_batch, prove_batch_naive_with, prove_batch_pool, prove_batch_with, prove_service,
    prove_service_with, spartan, BackendProofRequest, GrothBackend, MixedBackend, MixedInstance,
    MixedTask, OrionBackend, PcsParams, ProofRequest, ProverBackend, ServiceProofRun,
    SpartanBackend, BACKEND_NAMES,
};

use crate::baseline::{groth16_cpu, groth16_gpu, BELLPERSON_BYTES_PER_CONSTRAINT};
use crate::scale::Scale;

/// Thread budget for module pipelines (the paper's §4 example budget).
const MODULE_THREADS: u32 = 10_240;
/// Concurrent kernels in the naive baselines.
const NAIVE_CONCURRENCY: usize = 4;

fn tree_batch(log_n: u32, count: usize) -> Vec<Vec<[u8; 64]>> {
    (0..count)
        .map(|t| {
            (0..1usize << log_n)
                .map(|i| {
                    let mut b = [0u8; 64];
                    b[..8].copy_from_slice(&((t << 40 | i) as u64).to_le_bytes());
                    b
                })
                .collect()
        })
        .collect()
}

fn sumcheck_batch(log_n: u32, count: usize, seed: u64) -> Vec<psum::SumcheckTask<Fr>> {
    let mut rng = Prg::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let table: Vec<Fr> = (0..1usize << log_n).map(|_| Fr::random(&mut rng)).collect();
            let rs: Vec<Fr> = (0..log_n).map(|_| Fr::random(&mut rng)).collect();
            psum::SumcheckTask::new(table, rs)
        })
        .collect()
}

fn message_batch(log_n: u32, count: usize, seed: u64) -> Vec<Vec<Fr>> {
    let mut rng = Prg::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..1usize << log_n).map(|_| Fr::random(&mut rng)).collect())
        .collect()
}

fn pcs_params() -> PcsParams {
    PcsParams {
        num_col_tests: 32,
        ..PcsParams::default()
    }
}

/// Table 3: Merkle-tree module throughput (trees/ms).
pub fn table3(scale: &Scale) -> String {
    let mut out = String::from(
        "## Table 3 — Merkle tree module throughput (trees/ms)\n\n\
         | Size | Orion-like (CPU) | Simon-like (GPU naive) | Ours (GPU pipelined) | vs CPU | vs GPU |\n\
         |---|---|---|---|---|---|\n",
    );
    for &log in &scale.module_logs {
        // CPU reference (single tree, real time).
        let blocks = tree_batch(log, 1);
        let t = Instant::now();
        let _ = batchzk_merkle::MerkleTree::from_blocks(&blocks[0]);
        let cpu_ms = t.elapsed().as_secs_f64() * 1e3;
        let cpu_tput = 1.0 / cpu_ms;

        let batch = tree_batch(log, scale.module_batch);
        let mut gpu = Gpu::new(DeviceProfile::gh200());
        let naive_stats =
            naive::merkle_naive(&mut gpu, batch.clone(), MODULE_THREADS, NAIVE_CONCURRENCY).stats;
        let mut gpu = Gpu::new(DeviceProfile::gh200());
        let piped_stats = pmerkle::run_pipelined(&mut gpu, batch, MODULE_THREADS, true)
            .expect("fits")
            .stats;

        out.push_str(&format!(
            "| 2^{log} | {:.4e} | {:.3} | {:.3} | {:.1}x | {:.2}x |\n",
            cpu_tput,
            naive_stats.throughput_per_ms,
            piped_stats.throughput_per_ms,
            piped_stats.throughput_per_ms / cpu_tput,
            piped_stats.throughput_per_ms / naive_stats.throughput_per_ms,
        ));
    }
    out
}

/// Table 4: sum-check module throughput (proofs/ms).
pub fn table4(scale: &Scale) -> String {
    let mut out = String::from(
        "## Table 4 — Sum-check module throughput (proofs/ms)\n\n\
         | Size | Arkworks-like (CPU) | Icicle-like (GPU naive) | Ours (GPU pipelined) | vs CPU | vs GPU |\n\
         |---|---|---|---|---|---|\n",
    );
    for &log in &scale.module_logs {
        let task = &sumcheck_batch(log, 1, log as u64)[0];
        let mut table = task.table_snapshot();
        let rs = task.randomness().to_vec();
        let t = Instant::now();
        let _ = batchzk_sumcheck::algorithm1::prove(&mut table, &rs);
        let cpu_ms = t.elapsed().as_secs_f64() * 1e3;
        let cpu_tput = 1.0 / cpu_ms;

        let mut gpu = Gpu::new(DeviceProfile::gh200());
        let naive_stats = naive::sumcheck_naive(
            &mut gpu,
            sumcheck_batch(log, scale.module_batch, 100 + log as u64),
            MODULE_THREADS,
            NAIVE_CONCURRENCY,
        )
        .stats;
        let mut gpu = Gpu::new(DeviceProfile::gh200());
        let piped_stats = psum::run_pipelined(
            &mut gpu,
            sumcheck_batch(log, scale.module_batch, 200 + log as u64),
            MODULE_THREADS,
            true,
        )
        .expect("fits")
        .stats;

        out.push_str(&format!(
            "| 2^{log} | {:.4e} | {:.3} | {:.3} | {:.1}x | {:.2}x |\n",
            cpu_tput,
            naive_stats.throughput_per_ms,
            piped_stats.throughput_per_ms,
            piped_stats.throughput_per_ms / cpu_tput,
            piped_stats.throughput_per_ms / naive_stats.throughput_per_ms,
        ));
    }
    out
}

/// Table 5: linear-time encoder module throughput (codes/ms).
pub fn table5(scale: &Scale) -> String {
    let mut out = String::from(
        "## Table 5 — Linear-time encoder module throughput (codes/ms)\n\n\
         | Size | Orion-like (CPU) | Ours-np (GPU naive) | Ours (GPU pipelined) | vs CPU | vs np |\n\
         |---|---|---|---|---|---|\n",
    );
    for &log in &scale.module_logs {
        let encoder = Arc::new(Encoder::<Fr>::new(
            1usize << log,
            EncoderParams::default(),
            7,
        ));
        let msg = &message_batch(log, 1, log as u64)[0];
        let t = Instant::now();
        let _ = encoder.encode(msg);
        let cpu_ms = t.elapsed().as_secs_f64() * 1e3;
        let cpu_tput = 1.0 / cpu_ms;

        let mut gpu = Gpu::new(DeviceProfile::gh200());
        let naive_stats = naive::encode_naive(
            &mut gpu,
            Arc::clone(&encoder),
            message_batch(log, scale.module_batch, 300 + log as u64),
            MODULE_THREADS,
            NAIVE_CONCURRENCY,
        )
        .stats;
        let mut gpu = Gpu::new(DeviceProfile::gh200());
        let piped_stats = penc::run_pipelined(
            &mut gpu,
            encoder,
            message_batch(log, scale.module_batch, 400 + log as u64),
            MODULE_THREADS,
            true,
            true,
        )
        .expect("fits")
        .stats;

        out.push_str(&format!(
            "| 2^{log} | {:.4e} | {:.3} | {:.3} | {:.1}x | {:.2}x |\n",
            cpu_tput,
            naive_stats.throughput_per_ms,
            piped_stats.throughput_per_ms,
            piped_stats.throughput_per_ms / cpu_tput,
            piped_stats.throughput_per_ms / naive_stats.throughput_per_ms,
        ));
    }
    out
}

/// Table 6: the latency/throughput trade-off of pipelining.
pub fn table6(scale: &Scale) -> String {
    let mut out = String::from(
        "## Table 6 — Module latency (ms): pipelining trades latency for throughput\n\n\
         | Size | Module | Non-pipelined (ms) | Ours pipelined (ms) | Speedup |\n\
         |---|---|---|---|---|\n",
    );
    let logs = [
        scale.module_logs[scale.module_logs.len() - 1],
        scale.module_logs[0],
    ];
    for &log in &logs {
        // Merkle.
        let batch = tree_batch(log, scale.module_batch);
        let mut gpu = Gpu::new(DeviceProfile::gh200());
        let nl = naive::merkle_naive(&mut gpu, batch.clone(), MODULE_THREADS, 1)
            .stats
            .mean_latency_ms;
        let mut gpu = Gpu::new(DeviceProfile::gh200());
        let pl = pmerkle::run_pipelined(&mut gpu, batch, MODULE_THREADS, true)
            .expect("fits")
            .stats
            .mean_latency_ms;
        out.push_str(&format!(
            "| 2^{log} | Merkle | {nl:.3} | {pl:.3} | {:.3}x |\n",
            nl / pl
        ));
        // Sum-check.
        let mut gpu = Gpu::new(DeviceProfile::gh200());
        let nl = naive::sumcheck_naive(
            &mut gpu,
            sumcheck_batch(log, scale.module_batch, 1),
            MODULE_THREADS,
            1,
        )
        .stats
        .mean_latency_ms;
        let mut gpu = Gpu::new(DeviceProfile::gh200());
        let pl = psum::run_pipelined(
            &mut gpu,
            sumcheck_batch(log, scale.module_batch, 1),
            MODULE_THREADS,
            true,
        )
        .expect("fits")
        .stats
        .mean_latency_ms;
        out.push_str(&format!(
            "| 2^{log} | Sumcheck | {nl:.3} | {pl:.3} | {:.3}x |\n",
            nl / pl
        ));
        // Encoder.
        let encoder = Arc::new(Encoder::<Fr>::new(
            1usize << log,
            EncoderParams::default(),
            7,
        ));
        let mut gpu = Gpu::new(DeviceProfile::gh200());
        let nl = naive::encode_naive(
            &mut gpu,
            Arc::clone(&encoder),
            message_batch(log, scale.module_batch, 2),
            MODULE_THREADS,
            1,
        )
        .stats
        .mean_latency_ms;
        let mut gpu = Gpu::new(DeviceProfile::gh200());
        let pl = penc::run_pipelined(
            &mut gpu,
            encoder,
            message_batch(log, scale.module_batch, 2),
            MODULE_THREADS,
            true,
            true,
        )
        .expect("fits")
        .stats
        .mean_latency_ms;
        out.push_str(&format!(
            "| 2^{log} | Encoder | {nl:.3} | {pl:.3} | {:.3}x |\n",
            nl / pl
        ));
    }
    out
}

/// Per-module amortized breakdown of the pipelined system.
struct OursBreakdown {
    merkle_ms: f64,
    sumcheck_ms: f64,
    encoder_ms: f64,
    total_ms: f64,
    latency_ms: f64,
    throughput_per_ms: f64,
    peak_mem: u64,
    h2d_bytes: u64,
    d2h_bytes: u64,
    cycles: usize,
}

fn run_ours(
    profile: &DeviceProfile,
    log_s: u32,
    batch: usize,
    multi_stream: bool,
) -> OursBreakdown {
    let (r1cs, inputs, witness) = synthetic_r1cs::<Fr>(1usize << log_s, 42);
    let r1cs = Arc::new(r1cs);
    let instances: Vec<_> = (0..batch)
        .map(|_| (inputs.clone(), witness.clone()))
        .collect();
    let mut gpu = Gpu::new(profile.clone());
    let weights = module_weights(&gpu, &r1cs, &pcs_params());
    let threads = allocate_threads(MODULE_THREADS, &weights);
    let run = prove_batch(
        &mut gpu,
        r1cs,
        pcs_params(),
        instances,
        MODULE_THREADS,
        multi_stream,
    )
    .expect("fits");
    let tasks = run.stats.tasks as f64;
    let module_ms = |name: &str, t: u32| -> f64 {
        gpu.kernel_stats()
            .get(name)
            .map(|s| {
                gpu.profile()
                    .cycles_to_seconds(s.busy_cycles / t.max(1) as u64)
                    * 1e3
                    / tasks
            })
            .unwrap_or(0.0)
    };
    OursBreakdown {
        encoder_ms: module_ms("system-encoder", threads[0]),
        merkle_ms: module_ms("system-merkle", threads[1]),
        sumcheck_ms: module_ms("system-sumcheck", threads[2]),
        total_ms: run.stats.total_ms / tasks,
        latency_ms: run.stats.mean_latency_ms,
        throughput_per_ms: run.stats.throughput_per_ms,
        peak_mem: run.stats.peak_mem_bytes,
        h2d_bytes: run.stats.h2d_bytes,
        d2h_bytes: run.stats.d2h_bytes,
        cycles: batch + 3,
    }
}

/// CPU (Orion&Arkworks-like) prover breakdown, real wall-clock.
struct CpuBreakdown {
    merkle_ms: f64,
    sumcheck_ms: f64,
    encoder_ms: f64,
    total_ms: f64,
}

fn run_cpu_prover(log_s: u32) -> CpuBreakdown {
    let (r1cs, inputs, witness) = synthetic_r1cs::<Fr>(1usize << log_s, 42);
    let params = pcs_params();
    let z = r1cs.assemble_z(&inputs, &witness);

    let t = Instant::now();
    let encoded = pcs::commit_encode(&params, &z[r1cs.half_len()..]);
    let encoder_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let (commitment, data) = pcs::commit_merkle(encoded);
    let merkle_ms = t.elapsed().as_secs_f64() * 1e3;

    let mut transcript = spartan::statement_transcript(&r1cs, &inputs);
    transcript.absorb_digest(b"w-commitment", &commitment.root);
    let t = Instant::now();
    let part = spartan::run_sumchecks(&r1cs, &z, &mut transcript);
    let sumcheck_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let y_prime = &part.point_y[..part.point_y.len() - 1];
    let _ = pcs::open(&params, &data, y_prime, &mut transcript);
    let open_ms = t.elapsed().as_secs_f64() * 1e3;

    CpuBreakdown {
        merkle_ms,
        sumcheck_ms,
        encoder_ms,
        total_ms: encoder_ms + merkle_ms + sumcheck_ms + open_ms,
    }
}

/// Table 7: amortized per-proof time of the four systems.
pub fn table7(scale: &Scale) -> String {
    let mut out = String::from(
        "## Table 7 — Amortized per-proof time (ms)\n\n\
         | S | Libsnark-like MSM | NTT | Proof | Bellperson-like MSM | NTT | Proof | O&A Merkle | Sumcheck | Encoder | Proof | Ours Merkle | Sumcheck | Encoder | Proof |\n\
         |---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|\n",
    );
    for &log in &scale.system_logs {
        let cpu_groth = groth16_cpu(log);
        let gpu_groth = groth16_gpu(&DeviceProfile::gh200(), log);
        let cpu = run_cpu_prover(log);
        let ours = run_ours(&DeviceProfile::gh200(), log, scale.system_batch, true);
        out.push_str(&format!(
            "| 2^{log} | {:.1} | {:.1} | {:.1} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {:.3} | {:.3} | {:.3} | {:.3} |\n",
            cpu_groth.msm_ms,
            cpu_groth.ntt_ms,
            cpu_groth.total_ms,
            gpu_groth.msm_ms,
            gpu_groth.ntt_ms,
            gpu_groth.total_ms,
            cpu.merkle_ms,
            cpu.sumcheck_ms,
            cpu.encoder_ms,
            cpu.total_ms,
            ours.merkle_ms,
            ours.sumcheck_ms,
            ours.encoder_ms,
            ours.total_ms,
        ));
    }
    out.push_str("\nSpeedup summary (Proof columns):\n\n| S | Ours vs Bellperson-like | Ours vs Orion&Arkworks-like |\n|---|---|---|\n");
    for &log in &scale.system_logs {
        let gpu_groth = groth16_gpu(&DeviceProfile::gh200(), log);
        let cpu = run_cpu_prover(log);
        let ours = run_ours(&DeviceProfile::gh200(), log, scale.system_batch, true);
        out.push_str(&format!(
            "| 2^{log} | {:.1}x | {:.1}x |\n",
            gpu_groth.total_ms / ours.total_ms,
            cpu.total_ms / ours.total_ms,
        ));
    }
    out
}

/// Table 8: throughput and latency across GPUs.
pub fn table8(scale: &Scale) -> String {
    let log = scale.system_logs[0];
    let mut out = format!(
        "## Table 8 — ZKP systems across GPUs (S = 2^{log})\n\n\
         | GPU | Bellperson-like latency (s) | Ours latency (s) | Speedup | Bellperson-like (proofs/s) | Ours (proofs/s) | Speedup |\n\
         |---|---|---|---|---|---|---|\n"
    );
    for profile in [
        DeviceProfile::v100(),
        DeviceProfile::a100(),
        DeviceProfile::rtx3090ti(),
        DeviceProfile::h100(),
    ] {
        let groth = groth16_gpu(&profile, log);
        let ours = run_ours(&profile, log, scale.system_batch, true);
        let groth_latency_s = groth.total_ms / 1e3;
        let groth_tput = 1e3 / groth.total_ms;
        let ours_latency_s = ours.latency_ms / 1e3;
        let ours_tput = ours.throughput_per_ms * 1e3;
        out.push_str(&format!(
            "| {} | {:.4} | {:.4} | {:.2}x | {:.2} | {:.2} | {:.1}x |\n",
            profile.name,
            groth_latency_s,
            ours_latency_s,
            groth_latency_s / ours_latency_s,
            groth_tput,
            ours_tput,
            ours_tput / groth_tput,
        ));
    }
    out
}

/// Table 9: communication/computation overlap per pipeline cycle.
pub fn table9(scale: &Scale) -> String {
    let log = scale.system_logs[0];
    let mut out = format!(
        "## Table 9 — Amortized per-cycle CPU-GPU communication vs computation (S = 2^{log})\n\n\
         | GPU | Connection | Comm. size/cycle | Comm. time (ms) | Comp. time (ms) | Overall w/ overlap (ms) | w/o overlap (ms) |\n\
         |---|---|---|---|---|---|---|\n"
    );
    for profile in [
        DeviceProfile::v100(),
        DeviceProfile::a100(),
        DeviceProfile::rtx3090ti(),
        DeviceProfile::h100(),
    ] {
        // run_ours reports total_ms as *amortized per task*; recover the
        // whole-run wall time, then divide by pipeline cycles.
        let overlapped = run_ours(&profile, log, scale.system_batch, true);
        let serial = run_ours(&profile, log, scale.system_batch, false);
        let tasks = scale.system_batch as f64;
        let cycles = overlapped.cycles as f64;
        let bytes_per_cycle = (overlapped.h2d_bytes + overlapped.d2h_bytes) as f64 / cycles;
        let comm_cycles = profile.transfer_cycles(bytes_per_cycle as u64);
        let comm_ms = profile.cycles_to_seconds(comm_cycles) * 1e3;
        let overall_per_cycle = overlapped.total_ms * tasks / cycles;
        let serial_per_cycle = serial.total_ms * tasks / cycles;
        let comp_per_cycle = (serial_per_cycle - comm_ms).max(0.0);
        out.push_str(&format!(
            "| {} | {} | {:.1} MB | {:.3} | {:.3} | {:.3} | {:.3} |\n",
            profile.name,
            profile.interconnect.name(),
            bytes_per_cycle / (1 << 20) as f64,
            comm_ms,
            comp_per_cycle,
            overall_per_cycle,
            serial_per_cycle,
        ));
    }
    out
}

/// Table 10: amortized device memory per in-flight proof.
pub fn table10(scale: &Scale) -> String {
    let mut out = String::from(
        "## Table 10 — Amortized device memory per in-flight proof (GB)\n\n\
         | S | Bellperson-like | Ours | Ratio |\n\
         |---|---|---|---|\n",
    );
    const IN_FLIGHT: u64 = 4; // pipeline depth of the Figure 7 system
    for &log in &scale.system_logs {
        let bell = (1u64 << log) * BELLPERSON_BYTES_PER_CONSTRAINT;
        let ours = run_ours(&DeviceProfile::gh200(), log, scale.system_batch, true);
        let ours_per = ours.peak_mem / IN_FLIGHT;
        out.push_str(&format!(
            "| 2^{log} | {:.4} | {:.4} | {:.1}x |\n",
            bell as f64 / (1u64 << 30) as f64,
            ours_per as f64 / (1u64 << 30) as f64,
            bell as f64 / ours_per as f64,
        ));
    }
    out
}

/// Table 11: the verifiable machine-learning application.
pub fn table11(scale: &Scale) -> String {
    use batchzk_vml::{network, MlService};
    let net = network::vgg16(scale.vgg_divisor);
    let macs = net.total_macs();
    let mut svc = MlService::new(net, pcs_params());
    let images: Vec<_> = (0..scale.vgg_batch)
        .map(|i| network::synthetic_image(i as u64, &svc.network().input_shape))
        .collect();
    let mut gpu = Gpu::new(DeviceProfile::gh200());
    let run = svc
        .serve_batch(&mut gpu, &images, MODULE_THREADS)
        .expect("fits");
    for p in &run.predictions {
        assert!(svc.verify_prediction(p), "generated proof failed to verify");
    }
    let tput = run.stats.throughput_per_ms * 1e3;
    let latency_s = run.stats.mean_latency_ms / 1e3;
    format!(
        "## Table 11 — Verifiable ML (VGG-16 shape / width divisor {} = {} MACs, {} constraints)\n\n\
         | Scheme | Throughput (proofs/s) | Latency (s) | Accuracy |\n\
         |---|---|---|---|\n\
         | zkCNN (paper-reported, not rerun) | 0.0113 | 88.3 | 90.30% |\n\
         | ZKML (paper-reported, not rerun) | 0.0017 | 637 | 90.37% |\n\
         | ZENO (paper-reported, not rerun) | 0.0208 | 48.0 | 84.19% |\n\
         | Ours (simulated GH200) | {:.4} | {:.4} | N/A (synthetic weights) |\n\n\
         Paper's own row: 9.5220 proofs/s, 15.2 s latency, 93.93% accuracy.\n",
        scale.vgg_divisor,
        macs,
        svc.r1cs().num_constraints(),
        tput,
        latency_s,
    )
}

fn render_trace(trace: &[batchzk_gpu_sim::UtilSample], buckets: usize) -> String {
    if trace.is_empty() {
        return "(empty)".into();
    }
    let total: u64 = trace.iter().map(|s| s.len).sum();
    let mut out = String::new();
    let bucket_len = (total / buckets as u64).max(1);
    let mut acc_busy = 0.0f64;
    let mut acc_len = 0u64;
    let glyphs = [' ', '1', '2', '3', '4', '5', '6', '7', '8', '9'];
    for s in trace {
        acc_busy += s.compute_utilization * s.len as f64;
        acc_len += s.len;
        while acc_len >= bucket_len && out.len() < buckets {
            let u = acc_busy / acc_len as f64;
            let g = glyphs[((u * 9.0).round() as usize).min(9)];
            out.push(g);
            acc_busy = 0.0;
            acc_len = 0;
        }
    }
    out
}

/// Figure 4: thread workload over time, intuitive vs pipelined Merkle.
pub fn fig4(scale: &Scale) -> String {
    // Use the largest size: small workloads are kernel-launch bound and
    // leave the whole device idle in both schemes.
    let log = scale.module_logs[0];
    let batch = tree_batch(log, scale.module_batch * 2);
    let mut gpu = Gpu::new(DeviceProfile::gh200());
    let _ = naive::merkle_naive(&mut gpu, batch.clone(), MODULE_THREADS, NAIVE_CONCURRENCY);
    let naive_trace = render_trace(gpu.utilization_trace(), 60);
    let naive_mean = gpu.mean_compute_utilization();
    let mut gpu = Gpu::new(DeviceProfile::gh200());
    pmerkle::run_pipelined(&mut gpu, batch, MODULE_THREADS, true).expect("fits");
    let piped_trace = render_trace(gpu.utilization_trace(), 60);
    let piped_mean = gpu.mean_compute_utilization();
    format!(
        "## Figure 4 — GPU thread workload over time, batch Merkle generation (2^{log} blocks/tree)\n\n\
         Each character = one time bucket; digit = utilization decile (9 = fully busy).\n\n\
         ```\n(a) intuitive : [{naive_trace}]  mean {naive_mean:.2}\n(b) pipelined : [{piped_trace}]  mean {piped_mean:.2}\n```\n"
    )
}

/// Figure 9: GPU core utilization of the three modules on the RTX 3090 Ti.
pub fn fig9(scale: &Scale) -> String {
    let log = scale.module_logs[0];
    let profile = DeviceProfile::rtx3090ti();
    let mut out = format!(
        "## Figure 9 — GPU core utilization on {} (size 2^{log})\n\n\
         Each character = one time bucket; digit = utilization decile.\n\n```\n",
        profile.name
    );

    // Merkle.
    let batch = tree_batch(log, scale.module_batch * 2);
    let mut gpu = Gpu::new(profile.clone());
    let _ = naive::merkle_naive(&mut gpu, batch.clone(), MODULE_THREADS, NAIVE_CONCURRENCY);
    out.push_str(&format!(
        "merkle    naive     : [{}]  mean {:.2}\n",
        render_trace(gpu.utilization_trace(), 56),
        gpu.mean_compute_utilization()
    ));
    let mut gpu = Gpu::new(profile.clone());
    pmerkle::run_pipelined(&mut gpu, batch, MODULE_THREADS, true).expect("fits");
    out.push_str(&format!(
        "merkle    pipelined : [{}]  mean {:.2}\n",
        render_trace(gpu.utilization_trace(), 56),
        gpu.mean_compute_utilization()
    ));

    // Sum-check.
    let mut gpu = Gpu::new(profile.clone());
    let _ = naive::sumcheck_naive(
        &mut gpu,
        sumcheck_batch(log, scale.module_batch * 2, 5),
        MODULE_THREADS,
        NAIVE_CONCURRENCY,
    );
    out.push_str(&format!(
        "sumcheck  naive     : [{}]  mean {:.2}\n",
        render_trace(gpu.utilization_trace(), 56),
        gpu.mean_compute_utilization()
    ));
    let mut gpu = Gpu::new(profile.clone());
    psum::run_pipelined(
        &mut gpu,
        sumcheck_batch(log, scale.module_batch * 2, 5),
        MODULE_THREADS,
        true,
    )
    .expect("fits");
    out.push_str(&format!(
        "sumcheck  pipelined : [{}]  mean {:.2}\n",
        render_trace(gpu.utilization_trace(), 56),
        gpu.mean_compute_utilization()
    ));

    // Encoder.
    let encoder = Arc::new(Encoder::<Fr>::new(
        1usize << log,
        EncoderParams::default(),
        7,
    ));
    let mut gpu = Gpu::new(profile.clone());
    let _ = naive::encode_naive(
        &mut gpu,
        Arc::clone(&encoder),
        message_batch(log, scale.module_batch * 2, 6),
        MODULE_THREADS,
        NAIVE_CONCURRENCY,
    );
    out.push_str(&format!(
        "encoder   naive     : [{}]  mean {:.2}\n",
        render_trace(gpu.utilization_trace(), 56),
        gpu.mean_compute_utilization()
    ));
    let mut gpu = Gpu::new(profile);
    penc::run_pipelined(
        &mut gpu,
        encoder,
        message_batch(log, scale.module_batch * 2, 6),
        MODULE_THREADS,
        true,
        true,
    )
    .expect("fits");
    out.push_str(&format!(
        "encoder   pipelined : [{}]  mean {:.2}\n```\n",
        render_trace(gpu.utilization_trace(), 56),
        gpu.mean_compute_utilization()
    ));
    out
}

/// Ablation: warp bucket-sorting (on/off) and multi-stream overlap
/// (on/off) — the two §3.3/§4 design choices DESIGN.md calls out.
pub fn ablation(scale: &Scale) -> String {
    // Warp sorting only pays off when per-stage rows exceed the stage's
    // thread slice (multi-wave regime) — run the encoder with a tight
    // thread budget, as a loaded production system would.
    let log = scale.module_logs[1];
    let encoder_threads = 512;
    let encoder = Arc::new(Encoder::<Fr>::new(
        1usize << log,
        EncoderParams::default(),
        7,
    ));
    let msgs = message_batch(log, scale.module_batch, 8);
    let mut gpu = Gpu::new(DeviceProfile::gh200());
    let sorted = penc::run_pipelined(
        &mut gpu,
        Arc::clone(&encoder),
        msgs.clone(),
        encoder_threads,
        true,
        true,
    )
    .expect("fits")
    .stats;
    let mut gpu = Gpu::new(DeviceProfile::gh200());
    let unsorted = penc::run_pipelined(&mut gpu, encoder, msgs, encoder_threads, true, false)
        .expect("fits")
        .stats;

    let log_s = scale.system_logs[scale.system_logs.len() - 1];
    let overlap = run_ours(&DeviceProfile::v100(), log_s, scale.system_batch, true);
    let serial = run_ours(&DeviceProfile::v100(), log_s, scale.system_batch, false);

    format!(
        "## Ablations\n\n\
         | Design choice | Off | On | Gain |\n\
         |---|---|---|---|\n\
         | Warp bucket-sorting (encoder 2^{log}, codes/ms) | {:.3} | {:.3} | {:.2}x |\n\
         | Multi-stream overlap (system 2^{log_s} on V100, ms/proof) | {:.3} | {:.3} | {:.2}x |\n",
        unsorted.throughput_per_ms,
        sorted.throughput_per_ms,
        sorted.throughput_per_ms / unsorted.throughput_per_ms,
        serial.total_ms,
        overlap.total_ms,
        serial.total_ms / overlap.total_ms,
    )
}

/// Looks up a simulated device profile by its CLI name.
pub fn profile_by_name(name: &str) -> Option<DeviceProfile> {
    match name {
        "v100" => Some(DeviceProfile::v100()),
        "a100" => Some(DeviceProfile::a100()),
        "rtx3090ti" => Some(DeviceProfile::rtx3090ti()),
        "h100" => Some(DeviceProfile::h100()),
        "gh200" => Some(DeviceProfile::gh200()),
        _ => None,
    }
}

/// One point of the multi-device scaling sweep.
struct ScalingPoint {
    makespan_ms: f64,
    throughput_per_ms: f64,
    analysis: PoolAnalysis,
}

/// Proves the scaling batch across `devices` identical GPUs under
/// round-robin sharding and runs the pool analyzer against
/// `baseline_ms` (the single-device makespan; `None` makes this run its
/// own baseline, i.e. speedup 1.0).
fn scaling_point(
    profile: &DeviceProfile,
    devices: usize,
    r1cs: &Arc<R1cs<Fr>>,
    inputs: &[Fr],
    witness: &[Fr],
    batch: usize,
    baseline_ms: Option<f64>,
) -> ScalingPoint {
    let instances: Vec<_> = (0..batch)
        .map(|_| (inputs.to_vec(), witness.to_vec()))
        .collect();
    let mut pool = DevicePool::homogeneous(profile.clone(), devices);
    let run = prove_batch_pool(
        &mut pool,
        Arc::clone(r1cs),
        pcs_params(),
        instances,
        MODULE_THREADS,
        true,
        ShardPolicy::RoundRobin,
    )
    .expect("fits");
    let obs: Vec<DeviceObservation> = run
        .device_stats
        .iter()
        .enumerate()
        .map(|(i, s)| DeviceObservation {
            name: format!("{} #{i}", profile.name),
            tasks: s.tasks as u64,
            elapsed_ms: run.device_ms[i],
            mean_utilization: s.mean_utilization,
        })
        .collect();
    let analysis = analyze_pool(&obs, Some(baseline_ms.unwrap_or(run.makespan_ms)));
    ScalingPoint {
        makespan_ms: run.makespan_ms,
        throughput_per_ms: run.throughput_per_ms(),
        analysis,
    }
}

/// Multi-device scaling: throughput vs device count over a pool of
/// identical GPUs. The first entry of `device_counts` is the speedup
/// baseline — pass counts starting at 1 for "vs single device" numbers.
pub fn scaling(scale: &Scale, device_counts: &[usize], profile: &DeviceProfile) -> String {
    let log = scale.scaling_log;
    let batch = scale.scaling_batch;
    let (r1cs, inputs, witness) = synthetic_r1cs::<Fr>(1usize << log, 42);
    let r1cs = Arc::new(r1cs);
    let mut out = format!(
        "## Scaling — {batch} proofs of S = 2^{log} across a pool of {} devices (round-robin)\n\n\
         | Devices | Makespan (ms) | Throughput (proofs/ms) | Speedup | Scaling efficiency | Imbalance |\n\
         |---|---|---|---|---|---|\n",
        profile.name
    );
    let mut reports = String::new();
    let mut baseline_ms = None;
    for &d in device_counts {
        let p = scaling_point(profile, d, &r1cs, &inputs, &witness, batch, baseline_ms);
        if baseline_ms.is_none() {
            baseline_ms = Some(p.makespan_ms);
        }
        out.push_str(&format!(
            "| {d} | {:.3} | {:.3} | {:.2}x | {:.1}% | {:.3} |\n",
            p.makespan_ms,
            p.throughput_per_ms,
            p.analysis.speedup,
            p.analysis.scaling_efficiency * 100.0,
            p.analysis.imbalance,
        ));
        reports.push_str(&p.analysis.render_text());
    }
    out.push_str("\nPer-device analyzer verdicts:\n\n```\n");
    out.push_str(&reports);
    out.push_str("```\n");
    out
}

/// One scripted-fault scenario outcome of the recovery study.
struct RecoveryOutcome {
    name: &'static str,
    spec: String,
    analysis: batchzk_metrics::RecoveryAnalysis,
    proofs_identical: bool,
}

/// Fault-free baseline plus per-scenario recovery outcomes, shared by the
/// `faults` table and the `recovery` section of [`bench_json`].
struct RecoveryStudy {
    log_n: u32,
    batch: usize,
    devices: usize,
    fault_free_ms: f64,
    outcomes: Vec<RecoveryOutcome>,
}

/// Runs the scale's scaling batch on a two-A100 pool, fault-free and under
/// each scripted-fault scenario, checking that recovered proofs stay
/// byte-identical to the fault-free run. `extra` (the `--fault-plan` spec)
/// appends a custom scenario.
fn recovery_study(scale: &Scale, extra: Option<&FaultPlan>) -> RecoveryStudy {
    const DEVICES: usize = 2;
    let profile = DeviceProfile::a100();
    let (r1cs, inputs, witness) = synthetic_r1cs::<Fr>(1usize << scale.scaling_log, 42);
    let r1cs = Arc::new(r1cs);
    let run_pool = |plan: Option<&FaultPlan>| {
        let instances: Vec<_> = (0..scale.scaling_batch)
            .map(|_| (inputs.clone(), witness.clone()))
            .collect();
        let mut pool = DevicePool::homogeneous(profile.clone(), DEVICES);
        if let Some(p) = plan {
            pool.apply_fault_plan(p);
        }
        prove_batch_pool(
            &mut pool,
            Arc::clone(&r1cs),
            pcs_params(),
            instances,
            MODULE_THREADS,
            true,
            ShardPolicy::LeastOutstanding,
        )
        .expect("fits")
    };
    let clean = run_pool(None);
    // Strike device 1 halfway through its fault-free share: the canonical
    // mid-batch fail-stop.
    let mid = clean.device_stats[1].total_cycles / 2;
    let mut scenarios: Vec<(&'static str, FaultPlan)> = vec![
        ("fail-stop", FaultPlan::new().fail_stop(1, mid)),
        ("degraded-clock", FaultPlan::new().degraded_clock(1, 0, 300)),
        ("drop-kernel", FaultPlan::new().drop_kernel(0, 0, 3)),
    ];
    if let Some(plan) = extra {
        scenarios.push(("custom", plan.clone()));
    }
    let outcomes = scenarios
        .into_iter()
        .map(|(name, plan)| {
            let run = run_pool(Some(&plan));
            let (failed, replayed, rounds) = run
                .recovery
                .as_ref()
                .map(|r| (r.failed_devices.len(), r.replayed_tasks, r.replay_rounds))
                .unwrap_or((0, 0, 0));
            RecoveryOutcome {
                name,
                spec: plan.spec(),
                analysis: analyze_recovery(
                    clean.makespan_ms,
                    run.makespan_ms,
                    failed,
                    replayed,
                    rounds,
                ),
                proofs_identical: run.proofs == clean.proofs,
            }
        })
        .collect();
    RecoveryStudy {
        log_n: scale.scaling_log,
        batch: scale.scaling_batch,
        devices: DEVICES,
        fault_free_ms: clean.makespan_ms,
        outcomes,
    }
}

/// The recovery-overhead study behind `tables faults`: a fault-free
/// baseline on a two-device pool, then each scripted-fault scenario
/// (mid-batch fail-stop, degraded clock, dropped kernel, plus any
/// `--fault-plan` spec), reporting makespan overhead and whether the
/// recovered proofs stayed byte-identical to the fault-free run.
pub fn faults(scale: &Scale, extra: Option<&FaultPlan>) -> String {
    let study = recovery_study(scale, extra);
    let mut out = format!(
        "## Faults — recovery overhead, {} proofs of S = 2^{} on {} A100s (least-outstanding)\n\n\
         Fault-free makespan: {:.3} ms\n\n\
         | Scenario | Plan | Makespan (ms) | Overhead | Failed | Replayed | Rounds | Proofs identical |\n\
         |---|---|---|---|---|---|---|---|\n",
        study.batch, study.log_n, study.devices, study.fault_free_ms
    );
    let mut reports = String::new();
    for o in &study.outcomes {
        out.push_str(&format!(
            "| {} | `{}` | {:.3} | {:.2}x | {} | {} | {} | {} |\n",
            o.name,
            o.spec,
            o.analysis.faulty_ms,
            o.analysis.overhead_ratio,
            o.analysis.failed_devices,
            o.analysis.replayed_tasks,
            o.analysis.replay_rounds,
            if o.proofs_identical { "yes" } else { "NO" },
        ));
        reports.push_str(&o.analysis.render_text());
    }
    out.push_str("\nPer-scenario recovery verdicts:\n\n```\n");
    out.push_str(&reports);
    out.push_str("```\n");
    out
}

/// The committed reference arrival trace (`traces/reference.trace`),
/// embedded so `tables serve` and the BENCH.json `service` section replay
/// identical load everywhere. Trace time is in *units* of 1/100 of the
/// measured steady-state proof interval (see [`serve`]), so the same spec
/// exercises every scale comparably.
pub const REFERENCE_TRACE: &str = include_str!("../../../traces/reference.trace");

/// Parses the committed reference trace. Panics only if the committed file
/// is corrupted (CI replays it on every push).
pub fn reference_plan() -> ArrivalPlan {
    ArrivalPlan::parse(REFERENCE_TRACE).expect("committed reference trace parses")
}

/// Trace time units per measured proof interval: an arrival at trace cycle
/// `t` lands at device cycle `t * interval / UNITS_PER_INTERVAL`.
const UNITS_PER_INTERVAL: u64 = 100;
/// Per-class latency SLOs in proof intervals, indexed like
/// [`PriorityClass::ALL`] (interactive, standard, bulk). Unloaded latency
/// is ~1 interval and a saturated single device queues ~7–12 intervals
/// deep, so the tight interactive SLO *misses* under single-device
/// overload and recovers on the 4-device pool — the shape the SLO runbook
/// in OPERATIONS.md walks through.
const SLO_INTERVALS: [u64; 3] = [4, 8, 24];
/// Per-class admission queue caps, same order.
const QUEUE_CAPS: [usize; 3] = [2, 4, 8];
/// Pool sizes the service replay runs at (the BENCH.json device matrix).
const SERVICE_DEVICES: [usize; 2] = [1, 4];

/// The admission/SLO policy of the replay: tight SLO and a shallow queue
/// for `interactive`, loose SLO and a deep queue for `bulk`, and a global
/// outstanding bound that grows with the pool.
fn service_config(devices: usize, interval: u64) -> ServiceConfig {
    ServiceConfig {
        classes: std::array::from_fn(|i| ClassPolicy {
            queue_cap: QUEUE_CAPS[i],
            slo_cycles: SLO_INTERVALS[i] * interval,
        }),
        max_outstanding: 12 * devices,
        device_queue_cap: 2,
        max_in_flight: 0,
        timeline_window_cycles: 0,
    }
}

/// One pool size of the online-service replay.
struct ServicePoint {
    devices: usize,
    outcome: ServiceProofRun<Fr>,
}

/// The online-service replay behind `tables serve` and the BENCH.json
/// `service` section: a probe batch calibrates the trace time unit, then
/// the arrival plan is replayed at each [`SERVICE_DEVICES`] pool size.
struct ServiceStudy {
    log_n: u32,
    arrivals: usize,
    proof_interval_cycles: u64,
    unit_cycles: u64,
    points: Vec<ServicePoint>,
}

/// Shared front half of every service replay: the parsed and validated
/// arrivals plus the probe-calibrated trace time unit. Splitting this from
/// the replay itself lets [`service_study`] (pool sizes 1 and 4) and the
/// flight-recorder study ([`timeline`], 1 device under `TraceLevel::Full`)
/// calibrate once and replay under different trace levels.
struct ServiceSetup {
    r1cs: Arc<R1cs<Fr>>,
    inputs: Vec<Fr>,
    witness: Vec<Fr>,
    classes: Vec<PriorityClass>,
    arrival_units: Vec<u64>,
    proof_interval_cycles: u64,
    unit_cycles: u64,
}

fn service_setup(scale: &Scale, plan: &ArrivalPlan) -> Result<ServiceSetup, String> {
    let arrivals = plan.expand();
    if arrivals.is_empty() {
        return Err("arrival trace is empty: nothing to serve".into());
    }
    // Reject unknown class labels before spending any proving time.
    let classes: Vec<PriorityClass> = arrivals
        .iter()
        .map(|a| PriorityClass::parse(&a.class))
        .collect::<Result<_, _>>()?;
    let (r1cs, inputs, witness) = synthetic_r1cs::<Fr>(1usize << scale.service_log, 42);
    let r1cs = Arc::new(r1cs);
    // Calibration probe: the steady-state per-proof interval on one device
    // defines the trace time unit, so the committed trace offers the same
    // *relative* load at any circuit size. Integer simulated cycles only —
    // the calibration is as deterministic as the replay itself.
    let probe: Vec<_> = (0..scale.service_probe_batch)
        .map(|_| (inputs.clone(), witness.clone()))
        .collect();
    let mut gpu = Gpu::new(DeviceProfile::a100());
    let probe_stats = prove_batch(
        &mut gpu,
        Arc::clone(&r1cs),
        pcs_params(),
        probe,
        MODULE_THREADS,
        true,
    )
    .expect("fits")
    .stats;
    let interval = (probe_stats.total_cycles / probe_stats.tasks.max(1) as u64).max(1);
    let unit = (interval / UNITS_PER_INTERVAL).max(1);
    Ok(ServiceSetup {
        r1cs,
        inputs,
        witness,
        classes,
        arrival_units: arrivals.iter().map(|a| a.at_cycle).collect(),
        proof_interval_cycles: interval,
        unit_cycles: unit,
    })
}

/// Replays the calibrated arrivals through the service front on an A100
/// pool of `devices`, recording at `level`. Returns the pool alongside the
/// outcome so callers can export its trace. The trace level changes only
/// what the devices *record* — scheduling and the flight recorder are
/// byte-identical across levels.
fn service_replay(
    setup: &ServiceSetup,
    devices: usize,
    level: batchzk_gpu_sim::TraceLevel,
) -> Result<(ServiceProofRun<Fr>, DevicePool), String> {
    let requests: Vec<ProofRequest<Fr>> = setup
        .classes
        .iter()
        .zip(&setup.arrival_units)
        .map(|(&class, &at)| {
            (
                class,
                at.saturating_mul(setup.unit_cycles),
                (setup.inputs.clone(), setup.witness.clone()),
            )
        })
        .collect();
    let mut pool = DevicePool::homogeneous_with_trace_level(DeviceProfile::a100(), devices, level);
    let outcome = prove_service(
        &mut pool,
        Arc::clone(&setup.r1cs),
        pcs_params(),
        &service_config(devices, setup.proof_interval_cycles),
        requests,
        MODULE_THREADS,
        true,
    )
    .map_err(|e| e.to_string())?;
    Ok((outcome, pool))
}

fn service_study(scale: &Scale, plan: &ArrivalPlan) -> Result<ServiceStudy, String> {
    let setup = service_setup(scale, plan)?;
    let mut points = Vec::new();
    for devices in SERVICE_DEVICES {
        let (outcome, _) = service_replay(&setup, devices, batchzk_gpu_sim::TraceLevel::default())?;
        points.push(ServicePoint { devices, outcome });
    }
    Ok(ServiceStudy {
        log_n: scale.service_log,
        arrivals: setup.classes.len(),
        proof_interval_cycles: setup.proof_interval_cycles,
        unit_cycles: setup.unit_cycles,
        points,
    })
}

/// Folds one replay outcome's per-class reports into the analyzer's
/// observation shape.
fn service_observations<T>(o: &ServiceOutcome<T>) -> Vec<ServiceClassObservation> {
    o.reports
        .iter()
        .map(|r| ServiceClassObservation {
            class: r.class.name().into(),
            slo_cycles: r.slo_cycles,
            submitted: r.submitted,
            accepted: r.accepted,
            rejected: r.rejected_queue_full + r.rejected_saturated,
            completed: r.completed,
            within_slo: r.within_slo,
            latency_p99_cycles: r.latency_p99_cycles,
        })
        .collect()
}

/// The `tables serve` report: replays `plan` (default: the committed
/// reference trace) through the online service front on A100 pools of 1
/// and 4 devices and renders the per-class SLO accounting — submitted /
/// accepted / rejected-with-reason / completed, nearest-rank latency
/// quantiles against each class's SLO, goodput, and the service analyzer's
/// per-class verdicts.
///
/// A trace whose arrivals carry backend labels (`class/backend@...`)
/// routes through the mixed-backend service instead: one
/// [`MixedBackend`] service instance interleaves all protocols, and the
/// report adds the per-backend completion split.
///
/// # Errors
///
/// Returns a message (no panic) for an empty trace, an unknown class or
/// backend label, or a service-side failure.
pub fn serve(scale: &Scale, plan: &ArrivalPlan) -> Result<String, String> {
    if !plan.backends().is_empty() {
        return mixed_serve(scale, plan);
    }
    let study = service_study(scale, plan)?;
    let mut out = format!(
        "## Serve — open-loop replay, S = 2^{} on A100 pools of 1 and 4 ({} arrivals)\n\n\
         Trace: `{}`\n\n\
         Calibration: proof interval {} cycles, so 1 trace unit = {} device cycles\n\
         (SLOs: interactive {}, standard {}, bulk {} proof intervals).\n",
        study.log_n,
        study.arrivals,
        plan.spec(),
        study.proof_interval_cycles,
        study.unit_cycles,
        SLO_INTERVALS[0],
        SLO_INTERVALS[1],
        SLO_INTERVALS[2],
    );
    for p in &study.points {
        let o = &p.outcome;
        out.push_str(&format!(
            "\n### {} device{}\n\n\
             | Class | SLO (cycles) | Submitted | Accepted | Rejected (queue / saturated) | Completed | Within SLO | p50 | p95 | p99 | Attainment |\n\
             |---|---|---|---|---|---|---|---|---|---|---|\n",
            p.devices,
            if p.devices == 1 { "" } else { "s" },
        ));
        for r in &o.reports {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} / {} | {} | {} | {} | {} | {} | {:.1}% |\n",
                r.class,
                r.slo_cycles,
                r.submitted,
                r.accepted,
                r.rejected_queue_full,
                r.rejected_saturated,
                r.completed,
                r.within_slo,
                r.latency_p50_cycles,
                r.latency_p95_cycles,
                r.latency_p99_cycles,
                r.slo_attainment() * 100.0,
            ));
        }
        let analysis = analyze_service(&service_observations(o));
        out.push_str(&format!(
            "\nGoodput {:.3} within-SLO proofs/Mcycle; overall rejection rate {:.1}%.\n\n```\n{}```\n",
            o.goodput_per_mcycle(),
            analysis.rejection_rate * 100.0,
            analysis.render_text(),
        ));
    }
    Ok(out)
}

/// Renders one study as the BENCH.json `service` section (canonical JSON,
/// byte-deterministic).
fn service_json_from_study(study: &ServiceStudy, plan: &ArrivalPlan) -> String {
    use batchzk_metrics::registry::{escape_json, format_f64};
    use std::fmt::Write as _;
    let mut out = format!(
        "{{\"log_n\":{},\"trace\":\"{}\",\"arrivals\":{},\
         \"proof_interval_cycles\":{},\"unit_cycles\":{},\"runs\":[",
        study.log_n,
        escape_json(&plan.spec()),
        study.arrivals,
        study.proof_interval_cycles,
        study.unit_cycles,
    );
    for (i, p) in study.points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let o = &p.outcome;
        let _ = write!(out, "{{\"devices\":{},\"classes\":[", p.devices);
        for (j, r) in o.reports.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"class\":\"{}\",\"slo_cycles\":{},\"submitted\":{},\"accepted\":{},\
                 \"rejected_queue_full\":{},\"rejected_saturated\":{},\"completed\":{},\
                 \"within_slo\":{},\"latency_cycles\":{{\"p50\":{},\"p95\":{},\"p99\":{},\
                 \"max\":{}}},\"slo_attainment\":{},\"rejection_rate\":{}}}",
                r.class.name(),
                r.slo_cycles,
                r.submitted,
                r.accepted,
                r.rejected_queue_full,
                r.rejected_saturated,
                r.completed,
                r.within_slo,
                r.latency_p50_cycles,
                r.latency_p95_cycles,
                r.latency_p99_cycles,
                r.latency_max_cycles,
                format_f64(r.slo_attainment()),
                format_f64(r.rejection_rate()),
            );
        }
        let analysis = analyze_service(&service_observations(o));
        let _ = write!(
            out,
            "],\"goodput_per_mcycle\":{},\"rejection_rate\":{},\"analysis\":{}}}",
            format_f64(o.goodput_per_mcycle()),
            format_f64(analysis.rejection_rate),
            analysis.to_json(),
        );
    }
    out.push_str("]}");
    out
}

/// The BENCH.json `service` section on its own: the replay of `plan` at
/// pool sizes 1 and 4, rendered as canonical JSON. Byte-deterministic for
/// a given scale and plan at any host thread count — this is what the CI
/// determinism gate compares.
///
/// # Errors
///
/// Same conditions as [`serve`].
pub fn service_json(scale: &Scale, plan: &ArrivalPlan) -> Result<String, String> {
    Ok(service_json_from_study(&service_study(scale, plan)?, plan))
}

// ---------------------------------------------------------------------------
// Backend comparison (`tables backends`, BENCH.json `backends` section).
// ---------------------------------------------------------------------------

/// The committed mixed-backend arrival trace: all three protocols interleaved
/// through one service instance (`traces/mixed.trace`).
pub const MIXED_TRACE: &str = include_str!("../../../traces/mixed.trace");

/// Parses the committed mixed-backend trace.
pub fn mixed_plan() -> ArrivalPlan {
    ArrivalPlan::parse(MIXED_TRACE).expect("committed mixed trace parses")
}

/// Validates every backend label of `plan` against [`BACKEND_NAMES`].
/// Arrivals without a label default to the sumcheck backend.
///
/// # Errors
///
/// Returns a message naming the unknown label and the accepted set.
pub fn validate_trace_backends(plan: &ArrivalPlan) -> Result<(), String> {
    for b in plan.backends() {
        if !BACKEND_NAMES.contains(&b.as_str()) {
            return Err(format!(
                "unknown backend `{b}`: expected one of {}",
                BACKEND_NAMES.join(", ")
            ));
        }
    }
    Ok(())
}

/// One pipelined-vs-naive measurement of one backend at one batch size.
struct BackendScenarioPoint {
    scenario: &'static str,
    tasks: usize,
    pipelined: batchzk_pipeline::RunStats,
    naive: batchzk_pipeline::RunStats,
    /// Both schedules must produce byte-identical proofs: the schedule
    /// changes *when* work runs, never what it computes.
    proofs_identical: bool,
    /// Every pipelined proof passed the backend's verifier.
    verified: bool,
}

/// One backend's scenario sweep.
struct BackendStudyPoint {
    backend: &'static str,
    scenarios: Vec<BackendScenarioPoint>,
}

/// The backend comparison behind `tables backends` and the BENCH.json
/// `backends` section.
struct BackendsStudy {
    log_n: u32,
    throughput_batch: usize,
    points: Vec<BackendStudyPoint>,
    /// The committed mixed trace through one service instance; skipped
    /// when the study is filtered to a single backend.
    mixed: Option<MixedServiceStudy>,
}

/// Runs one backend through the latency (batch 1) and throughput
/// (batch `batch`) scenarios, pipelined and kernel-per-task naive, on
/// fresh A100 devices. Pipelined runs land in `registry` under a
/// `backend` label.
fn backend_scenarios<B>(
    registry: &mut batchzk_metrics::Registry,
    backend: &B,
    instances_for: impl Fn(usize) -> Vec<B::Instance>,
    batch: usize,
) -> BackendStudyPoint
where
    B: ProverBackend,
    B::Statement: PartialEq,
    B::Proof: PartialEq,
{
    let mut scenarios = Vec::new();
    for (scenario, tasks) in [("latency", 1usize), ("throughput", batch)] {
        let mut gpu = Gpu::new(DeviceProfile::a100());
        let piped = prove_batch_with(
            &mut gpu,
            backend,
            instances_for(tasks),
            MODULE_THREADS,
            true,
        )
        .expect("fits");
        let mut gpu = Gpu::new(DeviceProfile::a100());
        let naive = prove_batch_naive_with(
            &mut gpu,
            backend,
            instances_for(tasks),
            MODULE_THREADS,
            NAIVE_CONCURRENCY,
        );
        let proofs_identical = piped.proofs == naive.proofs;
        let verified = piped.proofs.iter().all(|(s, p)| backend.verify(s, p));
        batchzk_pipeline::observe::record_run_with_backend(
            registry,
            &format!("backends-{scenario}"),
            backend.name(),
            &piped.stats,
        );
        scenarios.push(BackendScenarioPoint {
            scenario,
            tasks,
            pipelined: piped.stats,
            naive: naive.stats,
            proofs_identical,
            verified,
        });
    }
    BackendStudyPoint {
        backend: backend.name(),
        scenarios,
    }
}

fn backends_study(
    scale: &Scale,
    registry: &mut batchzk_metrics::Registry,
    only: Option<&str>,
) -> BackendsStudy {
    let log = scale.backends_log;
    let mut points = Vec::new();
    if only.is_none_or(|o| o == BACKEND_NAMES[0]) {
        let (r1cs, inputs, witness) = synthetic_r1cs::<Fr>(1usize << log, 42);
        let spartan = SpartanBackend::new(Arc::new(r1cs), pcs_params());
        points.push(backend_scenarios(
            registry,
            &spartan,
            |n| (0..n).map(|_| (inputs.clone(), witness.clone())).collect(),
            scale.backends_batch,
        ));
    }
    if only.is_none_or(|o| o == BACKEND_NAMES[1]) {
        let groth = GrothBackend::new(log);
        points.push(backend_scenarios(
            registry,
            &groth,
            |n| {
                (0..n)
                    .map(|i| groth.circuit().witness(1000 + i as u64))
                    .collect()
            },
            scale.backends_batch,
        ));
    }
    if only.is_none_or(|o| o == BACKEND_NAMES[2]) {
        let orion = OrionBackend::<Fr>::new(log as usize, pcs_params());
        points.push(backend_scenarios(
            registry,
            &orion,
            |n| (0..n).map(|i| orion.instance(3000 + i as u64)).collect(),
            scale.backends_batch,
        ));
    }
    let mixed = if only.is_none() {
        Some(
            mixed_service_study(scale, &mixed_plan(), registry)
                .expect("committed mixed trace serves"),
        )
    } else {
        None
    };
    BackendsStudy {
        log_n: log,
        throughput_batch: scale.backends_batch,
        points,
        mixed,
    }
}

/// One pool size of the mixed-backend service replay.
struct MixedServicePoint {
    devices: usize,
    outcome: ServiceOutcome<MixedTask>,
    /// Completions per backend, indexed like [`BACKEND_NAMES`].
    completed_by_backend: [u64; BACKEND_NAMES.len()],
}

/// The committed mixed trace replayed through one
/// [`prove_service_with`]`(`[`MixedBackend`]`)` instance per pool size:
/// sumcheck, Groth16-style, and Orion tasks interleave through the same
/// pipelines under the existing SLO classes.
struct MixedServiceStudy {
    spec: String,
    log_sumcheck: u32,
    log_groth: u32,
    log_orion: u32,
    arrivals: usize,
    proof_interval_cycles: u64,
    unit_cycles: u64,
    points: Vec<MixedServicePoint>,
}

fn mixed_service_study(
    scale: &Scale,
    plan: &ArrivalPlan,
    registry: &mut batchzk_metrics::Registry,
) -> Result<MixedServiceStudy, String> {
    validate_trace_backends(plan)?;
    let arrivals = plan.expand();
    if arrivals.is_empty() {
        return Err("arrival trace is empty: nothing to serve".into());
    }
    let classes: Vec<PriorityClass> = arrivals
        .iter()
        .map(|a| PriorityClass::parse(&a.class))
        .collect::<Result<_, _>>()?;
    let (r1cs, inputs, witness) = synthetic_r1cs::<Fr>(1usize << scale.service_log, 42);
    let r1cs = Arc::new(r1cs);
    // Same calibration as the single-backend replay: the sumcheck probe
    // interval defines the trace time unit, so a mixed trace offers the
    // same relative load as its sumcheck-only twin.
    let probe: Vec<_> = (0..scale.service_probe_batch)
        .map(|_| (inputs.clone(), witness.clone()))
        .collect();
    let mut gpu = Gpu::new(DeviceProfile::a100());
    let probe_stats = prove_batch(
        &mut gpu,
        Arc::clone(&r1cs),
        pcs_params(),
        probe,
        MODULE_THREADS,
        true,
    )
    .expect("fits")
    .stats;
    let interval = (probe_stats.total_cycles / probe_stats.tasks.max(1) as u64).max(1);
    let unit = (interval / UNITS_PER_INTERVAL).max(1);
    let backend = MixedBackend::new(
        SpartanBackend::new(Arc::clone(&r1cs), pcs_params()),
        GrothBackend::new(scale.backends_log),
        OrionBackend::new(scale.backends_log as usize, pcs_params()),
    );
    let mut points = Vec::new();
    for devices in SERVICE_DEVICES {
        let requests: Vec<BackendProofRequest<MixedBackend>> = classes
            .iter()
            .zip(&arrivals)
            .enumerate()
            .map(|(i, (&class, a))| {
                let instance = match a.backend.as_deref() {
                    Some("groth16") => {
                        MixedInstance::Groth(backend.groth().circuit().witness(2000 + i as u64))
                    }
                    Some("orion") => {
                        MixedInstance::Orion(backend.orion().instance(4000 + i as u64))
                    }
                    // `validate_trace_backends` rejected everything else.
                    _ => MixedInstance::Sumcheck((inputs.clone(), witness.clone())),
                };
                (class, a.at_cycle.saturating_mul(unit), instance)
            })
            .collect();
        let mut pool = DevicePool::homogeneous(DeviceProfile::a100(), devices);
        let outcome = prove_service_with(
            &mut pool,
            &backend,
            &service_config(devices, interval),
            requests,
            MODULE_THREADS,
            true,
        )
        .map_err(|e| e.to_string())?;
        let mut completed_by_backend = [0u64; BACKEND_NAMES.len()];
        for c in &outcome.completions {
            let idx = BACKEND_NAMES
                .iter()
                .position(|n| *n == c.task.backend_name())
                .expect("built-in backend");
            completed_by_backend[idx] += 1;
        }
        let module = format!("mixed-d{devices}");
        batchzk_pipeline::observe::record_service(registry, &module, &outcome);
        batchzk_pipeline::observe::record_service_backends(registry, &module, &outcome, |t| {
            t.backend_name()
        });
        points.push(MixedServicePoint {
            devices,
            outcome,
            completed_by_backend,
        });
    }
    Ok(MixedServiceStudy {
        spec: plan.spec(),
        log_sumcheck: scale.service_log,
        log_groth: scale.backends_log,
        log_orion: scale.backends_log,
        arrivals: arrivals.len(),
        proof_interval_cycles: interval,
        unit_cycles: unit,
        points,
    })
}

/// The `tables backends` report: each built-in [`ProverBackend`] proved
/// through the fully pipelined schedule and the kernel-per-task naive
/// schedule at the same size on fresh A100 devices (latency scenario at
/// batch 1, throughput scenario at the scale's backend batch), asserting
/// the two schedules produce byte-identical proofs — then the committed
/// mixed trace through one service instance serving every protocol.
/// `only` (the `--backend` flag) restricts the sweep to one backend and
/// skips the mixed replay.
pub fn backends(scale: &Scale, only: Option<&str>) -> String {
    let mut registry = batchzk_metrics::Registry::new();
    let study = backends_study(scale, &mut registry, only);
    let mut out = format!(
        "## Backends — pipelined vs kernel-per-task naive, S = 2^{} on A100\n\n\
         | Backend | Scenario | Tasks | Naive (proofs/ms) | Pipelined (proofs/ms) | Speedup | Proofs identical | Verified |\n\
         |---|---|---|---|---|---|---|---|\n",
        study.log_n,
    );
    for p in &study.points {
        for s in &p.scenarios {
            out.push_str(&format!(
                "| {} | {} | {} | {:.3} | {:.3} | {:.2}x | {} | {} |\n",
                p.backend,
                s.scenario,
                s.tasks,
                s.naive.throughput_per_ms,
                s.pipelined.throughput_per_ms,
                s.pipelined.throughput_per_ms / s.naive.throughput_per_ms,
                if s.proofs_identical { "YES" } else { "NO" },
                if s.verified { "YES" } else { "NO" },
            ));
        }
    }
    if let Some(m) = &study.mixed {
        out.push_str(&format!(
            "\n### Mixed service — one pool, all protocols\n\n\
             Trace: `{}`\n\n\
             Sumcheck at 2^{}, Groth16-style at 2^{}, Orion at 2^{}; {} arrivals,\n\
             1 trace unit = {} device cycles.\n\n",
            m.spec, m.log_sumcheck, m.log_groth, m.log_orion, m.arrivals, m.unit_cycles,
        ));
        out.push_str("| Devices | Accepted | Rejected |");
        for name in BACKEND_NAMES {
            out.push_str(&format!(" Completed ({name}) |"));
        }
        out.push_str(" Goodput (within-SLO/Mcycle) |\n|---|---|---|");
        for _ in BACKEND_NAMES {
            out.push_str("---|");
        }
        out.push_str("---|\n");
        for p in &m.points {
            let accepted: u64 = p.outcome.reports.iter().map(|r| r.accepted).sum();
            let rejected: u64 = p
                .outcome
                .reports
                .iter()
                .map(|r| r.rejected_queue_full + r.rejected_saturated)
                .sum();
            out.push_str(&format!("| {} | {} | {} |", p.devices, accepted, rejected));
            for &c in &p.completed_by_backend {
                out.push_str(&format!(" {c} |"));
            }
            out.push_str(&format!(" {:.3} |\n", p.outcome.goodput_per_mcycle()));
        }
    }
    out
}

/// Renders one study as the BENCH.json `backends` section (canonical
/// JSON, byte-deterministic).
fn backends_json_from_study(study: &BackendsStudy) -> String {
    use batchzk_metrics::registry::{escape_json, format_f64};
    use std::fmt::Write as _;
    let mut out = format!(
        "{{\"log_n\":{},\"throughput_batch\":{},\"runs\":[",
        study.log_n, study.throughput_batch,
    );
    for (i, p) in study.points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"backend\":\"{}\",\"scenarios\":[", p.backend);
        for (j, s) in p.scenarios.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"scenario\":\"{}\",\"tasks\":{},\
                 \"pipelined\":{{\"total_cycles\":{},\"throughput_per_ms\":{}}},\
                 \"naive\":{{\"total_cycles\":{},\"throughput_per_ms\":{}}},\
                 \"speedup\":{},\"proofs_identical\":{},\"verified\":{}}}",
                s.scenario,
                s.tasks,
                s.pipelined.total_cycles,
                format_f64(s.pipelined.throughput_per_ms),
                s.naive.total_cycles,
                format_f64(s.naive.throughput_per_ms),
                format_f64(s.pipelined.throughput_per_ms / s.naive.throughput_per_ms),
                s.proofs_identical,
                s.verified,
            );
        }
        out.push_str("]}");
    }
    out.push(']');
    let m = study
        .mixed
        .as_ref()
        .expect("unfiltered study carries mixed");
    let _ = write!(
        out,
        ",\"mixed_service\":{{\"trace\":\"{}\",\"log_sumcheck\":{},\"log_groth16\":{},\
         \"log_orion\":{},\"arrivals\":{},\"proof_interval_cycles\":{},\"unit_cycles\":{},\"runs\":[",
        escape_json(&m.spec),
        m.log_sumcheck,
        m.log_groth,
        m.log_orion,
        m.arrivals,
        m.proof_interval_cycles,
        m.unit_cycles,
    );
    for (i, p) in m.points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"devices\":{},\"completed_by_backend\":{{",
            p.devices
        );
        for (k, (name, count)) in BACKEND_NAMES
            .iter()
            .zip(&p.completed_by_backend)
            .enumerate()
        {
            if k > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{count}");
        }
        out.push_str("},\"classes\":[");
        for (j, r) in p.outcome.reports.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"class\":\"{}\",\"slo_cycles\":{},\"submitted\":{},\"accepted\":{},\
                 \"rejected_queue_full\":{},\"rejected_saturated\":{},\"completed\":{},\
                 \"within_slo\":{},\"latency_cycles\":{{\"p50\":{},\"p95\":{},\"p99\":{}}},\
                 \"slo_attainment\":{}}}",
                r.class.name(),
                r.slo_cycles,
                r.submitted,
                r.accepted,
                r.rejected_queue_full,
                r.rejected_saturated,
                r.completed,
                r.within_slo,
                r.latency_p50_cycles,
                r.latency_p95_cycles,
                r.latency_p99_cycles,
                format_f64(r.slo_attainment()),
            );
        }
        let _ = write!(
            out,
            "],\"goodput_per_mcycle\":{}}}",
            format_f64(p.outcome.goodput_per_mcycle()),
        );
    }
    out.push_str("]}}");
    out
}

/// The BENCH.json `backends` section on its own (canonical JSON,
/// byte-deterministic at any host thread count). Records nothing into a
/// shared registry — [`bench_json`] threads its own.
pub fn backends_json(scale: &Scale) -> String {
    let mut registry = batchzk_metrics::Registry::new();
    backends_json_from_study(&backends_study(scale, &mut registry, None))
}

/// The `tables serve` report for a mixed-backend trace: the same per-class
/// SLO accounting as [`serve`], plus the per-backend completion split, from
/// one [`MixedBackend`] service instance per pool size.
fn mixed_serve(scale: &Scale, plan: &ArrivalPlan) -> Result<String, String> {
    let mut registry = batchzk_metrics::Registry::new();
    let study = mixed_service_study(scale, plan, &mut registry)?;
    let mut out = format!(
        "## Serve (mixed backends) — sumcheck 2^{} + groth16 2^{} + orion 2^{} on A100 pools of 1 and 4 ({} arrivals)\n\n\
         Trace: `{}`\n\n\
         Calibration: proof interval {} cycles, so 1 trace unit = {} device cycles.\n",
        study.log_sumcheck,
        study.log_groth,
        study.log_orion,
        study.arrivals,
        plan.spec(),
        study.proof_interval_cycles,
        study.unit_cycles,
    );
    for p in &study.points {
        let o = &p.outcome;
        out.push_str(&format!(
            "\n### {} device{}\n\n\
             | Class | SLO (cycles) | Submitted | Accepted | Rejected (queue / saturated) | Completed | Within SLO | p50 | p95 | p99 | Attainment |\n\
             |---|---|---|---|---|---|---|---|---|---|---|\n",
            p.devices,
            if p.devices == 1 { "" } else { "s" },
        ));
        for r in &o.reports {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} / {} | {} | {} | {} | {} | {} | {:.1}% |\n",
                r.class,
                r.slo_cycles,
                r.submitted,
                r.accepted,
                r.rejected_queue_full,
                r.rejected_saturated,
                r.completed,
                r.within_slo,
                r.latency_p50_cycles,
                r.latency_p95_cycles,
                r.latency_p99_cycles,
                r.slo_attainment() * 100.0,
            ));
        }
        let split: Vec<String> = BACKEND_NAMES
            .iter()
            .zip(&p.completed_by_backend)
            .map(|(name, count)| format!("{count} [{name}]"))
            .collect();
        out.push_str(&format!(
            "\nCompleted by backend: {}; goodput {:.3} within-SLO proofs/Mcycle.\n",
            split.join(", "),
            o.goodput_per_mcycle(),
        ));
    }
    Ok(out)
}

/// Renders one ASCII sparkline row per flight-recorder series: each
/// character is one window, the digit the decile of the row's own maximum
/// (the same glyph scheme as the kernel-occupancy timelines).
fn render_timeline_sparklines(t: &batchzk_metrics::Timeline) -> String {
    let glyphs = [' ', '1', '2', '3', '4', '5', '6', '7', '8', '9'];
    let mut rows: Vec<(String, Vec<u64>)> = Vec::new();
    for (ci, name) in t.class_names().iter().enumerate() {
        rows.push((format!("{name} queue depth"), t.queue_depth_series(ci)));
        rows.push((format!("{name} rejects"), t.rejected_series(ci)));
    }
    for d in 0..t.devices() {
        rows.push((
            format!("device{d} utilization"),
            t.utilization_ppm_series(d),
        ));
    }
    rows.push(("p99 latency".into(), t.p99_series()));
    let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (name, row) in &rows {
        let max = row.iter().copied().max().unwrap_or(0).max(1);
        out.push_str(&format!("{name:width$} : ["));
        for &v in row {
            out.push(glyphs[(((v as f64 / max as f64) * 9.0).round() as usize).min(9)]);
        }
        out.push_str("]\n");
    }
    out
}

/// Canonical JSON of one flight-recorder evaluation: the replay's
/// calibration envelope, the rule set, the recorder itself, and the
/// ordered alert log. Integers and strings only — byte-deterministic.
fn timeline_json_inner(
    plan: &ArrivalPlan,
    log_n: u32,
    interval: u64,
    unit: u64,
    t: &batchzk_metrics::Timeline,
    rules: &[batchzk_metrics::AlertRule],
    log: &batchzk_metrics::AlertLog,
) -> String {
    use batchzk_metrics::registry::escape_json;
    use std::fmt::Write as _;
    let mut out = format!(
        "{{\"log_n\":{log_n},\"trace\":\"{}\",\"devices\":1,\
         \"proof_interval_cycles\":{interval},\"unit_cycles\":{unit},\"rules\":[",
        escape_json(&plan.spec()),
    );
    for (i, r) in rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"threshold_ppm\":{},\"for_windows\":{},\"runbook\":\"{}\"}}",
            escape_json(&r.name),
            r.threshold_ppm,
            r.for_windows,
            escape_json(&r.runbook),
        );
    }
    let _ = write!(
        out,
        "],\"recorder\":{},\"alerts\":{}}}",
        t.to_json(),
        log.to_json()
    );
    out
}

/// The BENCH.json `timeline` section, derived from an already-run service
/// study's single-device point (the committed overload case) — no extra
/// proving. The default alerting policy
/// ([`batchzk_pipeline::default_service_rules`]) is evaluated against the
/// replay's flight recorder.
fn timeline_json_from_study(study: &ServiceStudy, plan: &ArrivalPlan) -> String {
    let p = study
        .points
        .iter()
        .find(|p| p.devices == 1)
        .expect("the service study always replays the 1-device pool");
    let rules =
        batchzk_pipeline::default_service_rules(&service_config(1, study.proof_interval_cycles), 1);
    let log = batchzk_metrics::evaluate(&p.outcome.timeline, &rules);
    timeline_json_inner(
        plan,
        study.log_n,
        study.proof_interval_cycles,
        study.unit_cycles,
        &p.outcome.timeline,
        &rules,
        &log,
    )
}

/// Everything `tables timeline` emits for one replay.
pub struct TimelineArtifacts {
    /// Markdown report: calibration envelope, per-window sparkline table,
    /// and the rendered alert log.
    pub report: String,
    /// Canonical `TIMELINE.json` content — the same bytes as the
    /// BENCH.json `timeline` section for the same scale and plan.
    pub json: String,
    /// The device's Chrome trace with the flight recorder merged in as
    /// phase-`"C"` counter tracks.
    pub chrome_trace: String,
}

/// The flight-recorder report: replays `plan` on the **single-device**
/// A100 pool (the committed reference trace's overload case) under
/// `TraceLevel::Full`, evaluates the default alerting policy against the
/// recorded timeline, and renders the per-window sparkline table, the
/// fire/resolve alert log (each line naming its OPERATIONS.md runbook
/// section), the canonical JSON artifact, and the merged Chrome trace.
///
/// # Errors
///
/// Same conditions as [`serve`].
pub fn timeline(scale: &Scale, plan: &ArrivalPlan) -> Result<TimelineArtifacts, String> {
    use batchzk_gpu_sim::TraceLevel;
    let setup = service_setup(scale, plan)?;
    let (outcome, pool) = service_replay(&setup, 1, TraceLevel::Full)?;
    let t = &outcome.timeline;
    let rules =
        batchzk_pipeline::default_service_rules(&service_config(1, setup.proof_interval_cycles), 1);
    let log = batchzk_metrics::evaluate(t, &rules);
    let tracks = batchzk_pipeline::timeline_counter_tracks(t);
    let chrome_trace = pool.device(0).chrome_trace_json_with_counters(&tracks);
    let report = format!(
        "## Timeline — flight recorder, S = 2^{} on 1 A100 ({} arrivals)\n\n\
         Trace: `{}`\n\n\
         Calibration: proof interval {} cycles; window {} cycles, {} windows\n\
         ({} downsampling pass{}).\n\n\
         Per-window series (each char = one window, digit = decile of the row's max):\n\n\
         ```\n{}```\n\n\
         Alert evaluation ({} rules; {} fired, {} resolved, {} still firing):\n\n\
         ```\n{}```\n",
        scale.service_log,
        setup.classes.len(),
        plan.spec(),
        setup.proof_interval_cycles,
        t.window_cycles(),
        t.windows().len(),
        t.downsamples(),
        if t.downsamples() == 1 { "" } else { "es" },
        render_timeline_sparklines(t),
        rules.len(),
        log.fired(),
        log.resolved(),
        log.still_firing.len(),
        log.render_text(),
    );
    let json = timeline_json_inner(
        plan,
        scale.service_log,
        setup.proof_interval_cycles,
        setup.unit_cycles,
        t,
        &rules,
        &log,
    );
    Ok(TimelineArtifacts {
        report,
        json,
        chrome_trace,
    })
}

/// Renders one ASCII occupancy row per kernel track: each character is a
/// time bucket, each digit the decile of cycles that track was busy.
fn render_kernel_timelines(
    events: &[batchzk_gpu_sim::KernelEvent],
    total_cycles: u64,
    buckets: usize,
) -> String {
    let mut tracks: Vec<(String, Vec<u64>)> = Vec::new();
    let bucket_len = (total_cycles / buckets as u64).max(1);
    for e in events {
        let row = match tracks.iter_mut().find(|(n, _)| *n == e.name) {
            Some((_, row)) => row,
            None => {
                tracks.push((e.name.clone(), vec![0u64; buckets]));
                &mut tracks.last_mut().unwrap().1
            }
        };
        // Spread the event's busy cycles over the buckets it overlaps.
        let (start, end) = (e.start_cycle, e.start_cycle + e.duration_cycles);
        let (b0, b1) = (
            (start / bucket_len) as usize,
            ((end.saturating_sub(1)) / bucket_len) as usize,
        );
        for (b, cell) in row.iter_mut().enumerate().take(b1 + 1).skip(b0) {
            let lo = start.max(b as u64 * bucket_len);
            let hi = end.min((b as u64 + 1) * bucket_len);
            *cell += hi.saturating_sub(lo);
        }
    }
    let glyphs = [' ', '1', '2', '3', '4', '5', '6', '7', '8', '9'];
    let width = tracks.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (name, row) in &tracks {
        out.push_str(&format!("{name:width$} : ["));
        for &busy in row {
            let u = busy as f64 / bucket_len as f64;
            out.push(glyphs[((u * 9.0).round() as usize).min(9)]);
        }
        out.push_str("]\n");
    }
    out
}

/// Renders the stage-imbalance table from per-stage accounting: where each
/// stage's cycles went (busy vs the two stall classes vs fill/drain).
fn render_stage_table(stats: &[batchzk_pipeline::StageStats], total_cycles: u64) -> String {
    let mut out = String::from(
        "| Stage | Threads | Tasks | Occupancy | Busy % | Imbalance % | Mem stall % | Fill % | Drain % | H2D KB | D2H KB |\n\
         |---|---|---|---|---|---|---|---|---|---|---|\n",
    );
    let pct = |c: u64| 100.0 * c as f64 / total_cycles.max(1) as f64;
    for s in stats {
        out.push_str(&format!(
            "| {} | {} | {} | {:.2} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} |\n",
            s.name,
            s.threads,
            s.tasks,
            s.occupancy,
            pct(s.busy_cycles),
            pct(s.imbalance_stall_cycles),
            pct(s.memory_stall_cycles),
            pct(s.fill_cycles),
            pct(s.drain_cycles),
            s.h2d_bytes as f64 / 1024.0,
            s.d2h_bytes as f64 / 1024.0,
        ));
    }
    out
}

/// The observability report: runs the pipelined Merkle module under
/// `TraceLevel::Full` and returns the Figure-4-style per-stage timeline plus
/// the stage-imbalance table (first element) and the raw Chrome-trace JSON
/// (second element), ready for `chrome://tracing` or Perfetto.
pub fn trace(scale: &Scale) -> (String, String) {
    use batchzk_gpu_sim::TraceLevel;
    let log = scale.module_logs[0];
    let batch = tree_batch(log, scale.module_batch);
    let mut gpu = Gpu::with_trace_level(DeviceProfile::gh200(), TraceLevel::Full);
    let run = pmerkle::run_pipelined(&mut gpu, batch, MODULE_THREADS, true).expect("fits");
    let total = gpu.elapsed_cycles();
    let report = format!(
        "## Trace — pipelined Merkle module, 2^{log} blocks/tree, {} trees (GH200)\n\n\
         Per-stage occupancy over time (each char = one bucket, digit = busy decile):\n\n\
         ```\n{}```\n\n\
         Stage imbalance (% of the {total}-cycle run):\n\n{}",
        run.stats.tasks,
        render_kernel_timelines(gpu.kernel_events(), total, 56),
        render_stage_table(&run.stats.stage_stats, total),
    );
    (report, gpu.chrome_trace_json())
}

/// Exact nearest-rank quantile over sorted integer samples (0 if empty).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Renders one module's benchmark section for [`bench_json`], folding the
/// run into `registry` as a side effect.
fn bench_section(
    registry: &mut batchzk_metrics::Registry,
    module: &str,
    log: u32,
    gpu: &Gpu,
    stats: &batchzk_pipeline::RunStats,
    total_threads: u32,
) -> String {
    use batchzk_metrics::registry::{escape_json, format_f64};
    use batchzk_pipeline::observe;
    use std::fmt::Write as _;

    observe::record_run(registry, module, stats);
    let analysis = batchzk_metrics::analyze(
        gpu.step_events(),
        gpu.kernel_events(),
        &observe::stage_observations(&stats.stage_stats),
        total_threads,
    );
    // Exact nearest-rank quantiles over the integer per-proof latencies —
    // not the histogram's bucketed estimate — since the raw spans are in
    // hand here.
    let mut latencies: Vec<u64> = stats.lifecycles.iter().map(|s| s.total_cycles()).collect();
    latencies.sort_unstable();
    let secs = gpu.profile().cycles_to_seconds(stats.total_cycles);
    let tasks_per_sec = if secs > 0.0 {
        stats.tasks as f64 / secs
    } else {
        0.0
    };

    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"log_n\":{log},\"tasks\":{},\"total_cycles\":{},\
         \"tasks_per_sec\":{},\"throughput_per_ms\":{},\
         \"limiting_stage\":\"{}\",\"latency_cycles\":{{\
         \"p50\":{},\"p95\":{},\"p99\":{},\"min\":{},\"max\":{}}},\"stages\":[",
        stats.tasks,
        stats.total_cycles,
        format_f64(tasks_per_sec),
        format_f64(stats.throughput_per_ms),
        escape_json(&analysis.limiting_stage),
        exact_quantile(&latencies, 0.50),
        exact_quantile(&latencies, 0.95),
        exact_quantile(&latencies, 0.99),
        latencies.first().copied().unwrap_or(0),
        latencies.last().copied().unwrap_or(0),
    );
    for (i, s) in stats.stage_stats.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"threads\":{},\"occupancy\":{},\
             \"busy_cycles\":{},\"occupied_cycles\":{}}}",
            escape_json(&s.name),
            s.threads,
            format_f64(s.occupancy),
            s.busy_cycles,
            s.occupied_cycles,
        );
    }
    out.push_str("],\"analysis\":");
    out.push_str(&analysis.to_json());
    out.push('}');
    out
}

/// The machine-readable benchmark artifact behind `tables bench-json`.
///
/// Runs the three module pipelines (Merkle, sum-check, encoder at the
/// scale's largest module size) and the full proving system (smallest
/// system size) on the **A100** profile at `TraceLevel::Full`, and renders
/// one canonical JSON document: tasks/sec, exact p50/p95/p99 lifecycle
/// latency in cycles, per-stage occupancy, the trace analyzer's verdict
/// (limiting stage + thread-reallocation advice), a `recovery` section
/// (the scripted-fault study, each scenario asserting
/// `"proofs_identical":true`), a `service` section (the committed
/// reference arrival trace replayed through the online service front at
/// pool sizes 1 and 4 — per-class p50/p95/p99 latency vs SLO, goodput,
/// rejection rate), a `backends` section (each [`ProverBackend`] proved
/// pipelined and kernel-per-task naive with byte-identical proofs, plus
/// the committed mixed trace through one [`MixedBackend`] service
/// instance), and the accumulated metrics registry in
/// its canonical exposition. Everything derives from simulated integer
/// cycles — no wall clock — so two runs at the same scale produce
/// byte-identical output, making `BENCH.json` diffable across commits
/// for regression tracking.
pub fn bench_json(scale: &Scale) -> String {
    use batchzk_gpu_sim::TraceLevel;
    use batchzk_metrics::registry::escape_json;
    use batchzk_metrics::Registry;

    let profile = DeviceProfile::a100();
    let mut registry = Registry::new();
    let mut out = format!(
        "{{\"schema\":\"batchzk-bench-v1\",\"device\":\"a100\",\"scale\":\"{}\",\
         \"thread_budget\":{MODULE_THREADS},\"modules\":{{",
        escape_json(scale.tag)
    );

    // Merkle module.
    let log = scale.module_logs[0];
    let mut gpu = Gpu::with_trace_level(profile.clone(), TraceLevel::Full);
    let run = pmerkle::run_pipelined(
        &mut gpu,
        tree_batch(log, scale.module_batch),
        MODULE_THREADS,
        true,
    )
    .expect("fits");
    out.push_str("\"merkle\":");
    out.push_str(&bench_section(
        &mut registry,
        "merkle",
        log,
        &gpu,
        &run.stats,
        MODULE_THREADS,
    ));

    // Sum-check module.
    let mut gpu = Gpu::with_trace_level(profile.clone(), TraceLevel::Full);
    let run = psum::run_pipelined(
        &mut gpu,
        sumcheck_batch(log, scale.module_batch, 500 + log as u64),
        MODULE_THREADS,
        true,
    )
    .expect("fits");
    out.push_str(",\"sumcheck\":");
    out.push_str(&bench_section(
        &mut registry,
        "sumcheck",
        log,
        &gpu,
        &run.stats,
        MODULE_THREADS,
    ));

    // Encoder module.
    let encoder = Arc::new(Encoder::<Fr>::new(
        1usize << log,
        EncoderParams::default(),
        7,
    ));
    let mut gpu = Gpu::with_trace_level(profile.clone(), TraceLevel::Full);
    let run = penc::run_pipelined(
        &mut gpu,
        encoder,
        message_batch(log, scale.module_batch, 600 + log as u64),
        MODULE_THREADS,
        true,
        true,
    )
    .expect("fits");
    out.push_str(",\"encoder\":");
    out.push_str(&bench_section(
        &mut registry,
        "encoder",
        log,
        &gpu,
        &run.stats,
        MODULE_THREADS,
    ));

    // Full proving system (smallest system size keeps the artifact cheap
    // enough for CI smoke runs).
    let sys_log = *scale.system_logs.last().expect("system sizes configured");
    let (r1cs, inputs, witness) = synthetic_r1cs::<Fr>(1usize << sys_log, 42);
    let instances: Vec<_> = (0..scale.system_batch)
        .map(|_| (inputs.clone(), witness.clone()))
        .collect();
    let mut gpu = Gpu::with_trace_level(profile.clone(), TraceLevel::Full);
    let run = prove_batch(
        &mut gpu,
        Arc::new(r1cs),
        pcs_params(),
        instances,
        MODULE_THREADS,
        true,
    )
    .expect("fits");
    out.push_str(",\"system\":");
    out.push_str(&bench_section(
        &mut registry,
        "system",
        sys_log,
        &gpu,
        &run.stats,
        MODULE_THREADS,
    ));

    out.push('}'); // close "modules"

    // Multi-device scaling sweep: the same batch round-robined over pools
    // of 1/2/4/8 identical devices; cycle-derived, so byte-stable too.
    {
        use batchzk_metrics::registry::format_f64;
        use std::fmt::Write as _;
        let (r1cs, inputs, witness) = synthetic_r1cs::<Fr>(1usize << scale.scaling_log, 42);
        let r1cs = Arc::new(r1cs);
        let _ = write!(
            out,
            ",\"scaling\":{{\"log_n\":{},\"batch\":{},\"policy\":\"round-robin\",\"runs\":[",
            scale.scaling_log, scale.scaling_batch
        );
        let mut baseline_ms = None;
        for (i, d) in [1usize, 2, 4, 8].into_iter().enumerate() {
            let p = scaling_point(
                &profile,
                d,
                &r1cs,
                &inputs,
                &witness,
                scale.scaling_batch,
                baseline_ms,
            );
            if baseline_ms.is_none() {
                baseline_ms = Some(p.makespan_ms);
            }
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"devices\":{d},\"makespan_ms\":{},\"throughput_per_ms\":{},\"analysis\":{}}}",
                format_f64(p.makespan_ms),
                format_f64(p.throughput_per_ms),
                p.analysis.to_json(),
            );
        }
        out.push_str("]}");
    }

    // Recovery-overhead study: the same batch on a two-device pool under
    // each scripted-fault scenario; recovered proofs must stay
    // byte-identical to the fault-free run (the `proofs_identical` flags
    // below are what CI greps for).
    {
        use batchzk_metrics::registry::{escape_json, format_f64};
        use std::fmt::Write as _;
        let study = recovery_study(scale, None);
        let _ = write!(
            out,
            ",\"recovery\":{{\"log_n\":{},\"batch\":{},\"devices\":{},\
             \"policy\":\"least-outstanding\",\"fault_free_ms\":{},\"scenarios\":[",
            study.log_n,
            study.batch,
            study.devices,
            format_f64(study.fault_free_ms)
        );
        for (i, o) in study.outcomes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"plan\":\"{}\",\"proofs_identical\":{},\"analysis\":{}}}",
                escape_json(o.name),
                escape_json(&o.spec),
                o.proofs_identical,
                o.analysis.to_json(),
            );
        }
        out.push_str("]}");
    }

    // Online-service replay of the committed reference trace at pool sizes
    // 1 and 4: per-class latency quantiles vs SLO, goodput, rejection
    // rate. Virtual-time throughout, so byte-stable like everything above;
    // the service metric families land in the registry under per-pool
    // module labels (`service-d1`, `service-d4`).
    {
        let plan = reference_plan();
        let study = service_study(scale, &plan).expect("committed reference trace serves");
        for p in &study.points {
            batchzk_pipeline::observe::record_service(
                &mut registry,
                &format!("service-d{}", p.devices),
                &p.outcome,
            );
        }
        out.push_str(",\"service\":");
        out.push_str(&service_json_from_study(&study, &plan));
        // The flight recorder of the same study's 1-device replay (the
        // overload case), with the default alert policy evaluated against
        // it — windowed series, rule set, and fire/resolve log, all
        // integer-valued and byte-stable.
        out.push_str(",\"timeline\":");
        out.push_str(&timeline_json_from_study(&study, &plan));
    }

    // Backend comparison: each ProverBackend proved through the pipelined
    // and the kernel-per-task naive schedule at the same size (proofs must
    // be byte-identical between the two), then the committed mixed trace
    // through one MixedBackend service instance at pool sizes 1 and 4.
    // The pipelined runs and mixed replays land in the registry under
    // `backend`-labelled metric families.
    {
        let study = backends_study(scale, &mut registry, None);
        out.push_str(",\"backends\":");
        out.push_str(&backends_json_from_study(&study));
    }

    out.push_str(",\"metrics\":");
    out.push_str(&registry.to_json());
    out.push_str("}\n");
    out
}

/// [`bench_json`] plus a `wall_clock` section: the multi-device system run
/// at the scale's `wall_log`/`wall_batch` sizes re-executed at each of
/// `thread_counts` host threads, timed with real wall-clock. Everything
/// else in the artifact is simulated and byte-deterministic; this section
/// is the one *measured* quantity, so it is emitted as a single flat
/// object (no nested braces) and regression tooling compares artifacts
/// with `tables bench-json --no-wall-clock` instead of stripping it
/// textually. Speedups are relative to the first entry of `thread_counts`
/// and are bounded by `min(threads, host_cores, devices)` — `host_cores`
/// and the `saturated` flag are recorded so readers can tell a saturated
/// host from a scaling failure.
pub fn bench_json_with_wall_clock(scale: &Scale, thread_counts: &[usize]) -> String {
    use batchzk_metrics::registry::format_f64;
    use std::fmt::Write as _;

    assert!(!thread_counts.is_empty(), "need at least one thread count");
    const DEVICES: usize = 4;
    let profile = DeviceProfile::a100();
    let (r1cs, inputs, witness) = synthetic_r1cs::<Fr>(1usize << scale.wall_log, 42);
    let r1cs = Arc::new(r1cs);
    let mut wall_ms = Vec::with_capacity(thread_counts.len());
    for &t in thread_counts {
        let start = Instant::now();
        batchzk_par::with_threads(t, || {
            let _ = scaling_point(
                &profile,
                DEVICES,
                &r1cs,
                &inputs,
                &witness,
                scale.wall_batch,
                None,
            );
        });
        wall_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }

    let host_cores = batchzk_par::host_cores();
    let saturated = thread_counts.iter().copied().max().unwrap_or(1) > host_cores;
    let mut section = format!(
        "{{\"devices\":{DEVICES},\"log_n\":{},\"batch\":{},\"host_cores\":{host_cores},\
         \"saturated\":{saturated},\"threads\":[",
        scale.wall_log, scale.wall_batch
    );
    for (i, t) in thread_counts.iter().enumerate() {
        if i > 0 {
            section.push(',');
        }
        let _ = write!(section, "{t}");
    }
    section.push_str("],\"wall_ms\":[");
    for (i, ms) in wall_ms.iter().enumerate() {
        if i > 0 {
            section.push(',');
        }
        let _ = write!(section, "{}", format_f64(*ms));
    }
    section.push_str("],\"speedup\":[");
    for (i, ms) in wall_ms.iter().enumerate() {
        if i > 0 {
            section.push(',');
        }
        let _ = write!(section, "{}", format_f64(wall_ms[0] / ms.max(1e-9)));
    }
    section.push_str("]}");

    // Splice before the artifact's closing `}\n`.
    let mut out = bench_json(scale);
    let tail = out.split_off(out.len() - 2);
    debug_assert_eq!(tail, "}\n");
    let _ = write!(out, ",\"wall_clock\":{section}");
    out.push_str(&tail);
    out
}

/// One self-timed hot-path kernel measurement of the `profile` experiment.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    /// Stable kernel id (the JSON `name` field).
    pub name: &'static str,
    /// Operations performed (field muls, hashed blocks, butterflies, ...).
    pub ops: u64,
    /// Measured wall time in nanoseconds.
    pub wall_ns: f64,
}

impl KernelProfile {
    /// Nanoseconds per operation.
    pub fn ns_per_op(&self) -> f64 {
        self.wall_ns / self.ops.max(1) as f64
    }

    /// Million operations per second.
    pub fn mops(&self) -> f64 {
        if self.wall_ns <= 0.0 {
            0.0
        } else {
            self.ops as f64 * 1e3 / self.wall_ns
        }
    }
}

/// One named phase of the instrumented single-thread prover run.
#[derive(Debug, Clone)]
pub struct PhaseProfile {
    /// Phase name (`transcript`, `encode`, `merkle`, `sumcheck`, `pcs-open`).
    pub name: &'static str,
    /// Measured wall time in milliseconds.
    pub ms: f64,
}

/// Everything the `profile` experiment measures: per-kernel microbenchmarks
/// plus a phase-attributed single-thread prover run at the same size.
#[derive(Debug)]
pub struct ProfileStudy {
    /// log2 of the workload size (the scale's `wall_log`).
    pub log_n: u32,
    /// Microbenchmark rows, in emission order.
    pub kernels: Vec<KernelProfile>,
    /// Named phases of the instrumented prove, in pipeline order.
    pub phases: Vec<PhaseProfile>,
    /// Wall time of the whole single-thread prove (phases plus glue).
    pub total_ms: f64,
    /// Share of `total_ms` attributed to the named phases (0..=1).
    pub coverage: f64,
    /// Per-op win of the subset-sum LUT over the naive per-weight
    /// Montgomery multiply on the same binary selectors.
    pub lut_speedup: f64,
}

/// Times `f` once, returning elapsed nanoseconds.
fn timed_ns(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_nanos() as f64
}

/// Runs the `profile` measurements: self-timed microbenchmarks of every
/// hot-path kernel (strict/lazy/4-way Montgomery multiply, LUT vs naive
/// binary inner product, scalar vs 4-lane SHA-256 compression, NTT
/// butterflies) and one instrumented single-thread prove whose wall time
/// is attributed to named pipeline phases. Everything except the timings
/// is deterministic at a given scale.
pub fn profile_study(scale: &Scale) -> ProfileStudy {
    use std::hint::black_box;

    let log = scale.wall_log;
    let n = 1usize << log;
    // Repeat each microbenchmark until it covers ~2^18 operations so the
    // per-op figures are stable against timer noise at any scale.
    let reps = ((1usize << 18) >> log).max(1);
    let mut rng = Prg::seed_from_u64(7);
    let a: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
    let b: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();

    let mut kernels = Vec::new();

    // The same n-element inner product three ways: strict per-op reduction,
    // the lazy-reduction accumulate, and the 4-way interleaved SoA kernel.
    let ns = timed_ns(|| {
        let mut acc = Fr::ZERO;
        for _ in 0..reps {
            acc += a.iter().zip(&b).map(|(x, y)| *x * *y).sum::<Fr>();
        }
        black_box(acc);
    });
    kernels.push(KernelProfile {
        name: "mont-mul",
        ops: (n * reps) as u64,
        wall_ns: ns,
    });

    let ns = timed_ns(|| {
        let mut acc = Fr::ZERO;
        for _ in 0..reps {
            acc += Fr::dot(&a, &b);
        }
        black_box(acc);
    });
    kernels.push(KernelProfile {
        name: "mont-mul-lazy",
        ops: (n * reps) as u64,
        wall_ns: ns,
    });

    let sa = SoaVec::from_slice(&a);
    let sb = SoaVec::from_slice(&b);
    let ns = timed_ns(|| {
        let mut acc = Fr::ZERO;
        for _ in 0..reps {
            acc += sa.dot(&sb);
        }
        black_box(acc);
    });
    kernels.push(KernelProfile {
        name: "mont-mul-x4",
        ops: (n * reps) as u64,
        wall_ns: ns,
    });

    // Binary-selector inner products: the naive path spends one Montgomery
    // multiply per weight; the subset-sum LUT (built once, amortized across
    // messages) replaces each 8-weight chunk with a single table add.
    let width = n.min(256);
    let weights = &a[..width];
    let bits: Vec<bool> = (0..width).map(|_| rng.next_u64() & 1 == 1).collect();
    let rounds = (n * reps / width).max(1);
    let ns = timed_ns(|| {
        let mut acc = Fr::ZERO;
        for _ in 0..rounds {
            acc += naive_select_sum(weights, &bits);
        }
        black_box(acc);
    });
    kernels.push(KernelProfile {
        name: "binary-dot-naive",
        ops: (rounds * width) as u64,
        wall_ns: ns,
    });

    let lut = SubsetSumLUT::new(weights, 8.min(width));
    let masks = lut.masks_from_bits(&bits);
    let ns = timed_ns(|| {
        let mut acc = Fr::ZERO;
        for _ in 0..rounds {
            acc += lut.select_sum_masks(&masks);
        }
        black_box(acc);
    });
    kernels.push(KernelProfile {
        name: "binary-dot-lut",
        ops: (rounds * width) as u64,
        wall_ns: ns,
    });

    // SHA-256 compression, one 64-byte block per op: scalar vs the 4-lane
    // interleaved kernel the Merkle module uses.
    let blocks: Vec<[u8; 64]> = (0..(n * reps / 16).max(64))
        .map(|i| {
            let mut blk = [0u8; 64];
            blk[..8].copy_from_slice(&(i as u64).to_le_bytes());
            blk
        })
        .collect();
    let ns = timed_ns(|| {
        for blk in &blocks {
            black_box(batchzk_hash::hash_block(blk));
        }
    });
    kernels.push(KernelProfile {
        name: "sha256-block",
        ops: blocks.len() as u64,
        wall_ns: ns,
    });
    let ns = timed_ns(|| {
        black_box(batchzk_hash::hash_blocks(&blocks));
    });
    kernels.push(KernelProfile {
        name: "sha256-block-x4",
        ops: blocks.len() as u64,
        wall_ns: ns,
    });

    // Radix-2 NTT butterflies at the wall size.
    let domain = NttDomain::<Fr>::new(log);
    let mut values = a.clone();
    let ns = timed_ns(|| {
        for _ in 0..reps {
            domain.forward(&mut values);
        }
        black_box(&values);
    });
    kernels.push(KernelProfile {
        name: "ntt-butterfly",
        ops: domain.butterfly_count() * reps as u64,
        wall_ns: ns,
    });

    // Phase attribution: one real single-thread prove at the same size,
    // with the pipeline phases timed inside a single total-time envelope —
    // coverage is attributed/total within one run, not a cross-run ratio.
    let (r1cs, inputs, witness) = synthetic_r1cs::<Fr>(n, 42);
    let params = pcs_params();
    let (phases, total_ms) = batchzk_par::with_threads(1, || {
        let total = Instant::now();
        let z = r1cs.assemble_z(&inputs, &witness);

        let t = Instant::now();
        let mut transcript = spartan::statement_transcript(&r1cs, &inputs);
        let transcript_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let encoded = pcs::commit_encode(&params, &z[r1cs.half_len()..]);
        let encode_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let (commitment, data) = pcs::commit_merkle(encoded);
        let merkle_ms = t.elapsed().as_secs_f64() * 1e3;

        transcript.absorb_digest(b"w-commitment", &commitment.root);
        let t = Instant::now();
        let part = spartan::run_sumchecks(&r1cs, &z, &mut transcript);
        let sumcheck_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let y_prime = &part.point_y[..part.point_y.len() - 1];
        let _ = pcs::open(&params, &data, y_prime, &mut transcript);
        let open_ms = t.elapsed().as_secs_f64() * 1e3;

        (
            vec![
                PhaseProfile {
                    name: "transcript",
                    ms: transcript_ms,
                },
                PhaseProfile {
                    name: "encode",
                    ms: encode_ms,
                },
                PhaseProfile {
                    name: "merkle",
                    ms: merkle_ms,
                },
                PhaseProfile {
                    name: "sumcheck",
                    ms: sumcheck_ms,
                },
                PhaseProfile {
                    name: "pcs-open",
                    ms: open_ms,
                },
            ],
            total.elapsed().as_secs_f64() * 1e3,
        )
    });
    let attributed: f64 = phases.iter().map(|p| p.ms).sum();
    let coverage = if total_ms > 0.0 {
        attributed / total_ms
    } else {
        0.0
    };
    let per_op = |name: &str| {
        kernels
            .iter()
            .find(|k| k.name == name)
            .map(KernelProfile::ns_per_op)
            .unwrap_or(0.0)
    };
    let lut_speedup = per_op("binary-dot-naive") / per_op("binary-dot-lut").max(1e-9);
    ProfileStudy {
        log_n: log,
        kernels,
        phases,
        total_ms,
        coverage,
        lut_speedup,
    }
}

/// The `profile` experiment as a markdown report: kernel rows with per-op
/// cost and throughput, then the phase attribution of the single-thread
/// prove.
pub fn profile(scale: &Scale) -> String {
    let study = profile_study(scale);
    let mut out = format!(
        "## Profile — hot-path kernel self-timing (single thread, size 2^{})\n\n\
         | Kernel | Ops | ns/op | Mops/s |\n|---|---|---|---|\n",
        study.log_n
    );
    for k in &study.kernels {
        out.push_str(&format!(
            "| {} | {} | {:.1} | {:.2} |\n",
            k.name,
            k.ops,
            k.ns_per_op(),
            k.mops()
        ));
    }
    out.push_str(&format!(
        "\nLUT vs naive binary inner product: {:.2}x per op\n",
        study.lut_speedup
    ));
    out.push_str("\n| Phase | ms | share |\n|---|---|---|\n");
    for p in &study.phases {
        out.push_str(&format!(
            "| {} | {:.3} | {:.1}% |\n",
            p.name,
            p.ms,
            100.0 * p.ms / study.total_ms.max(1e-9)
        ));
    }
    out.push_str(&format!(
        "\nNamed kernels cover {:.1}% of the {:.3} ms single-thread prove.\n",
        100.0 * study.coverage,
        study.total_ms
    ));
    out
}

/// The `profile` experiment as a machine-readable JSON artifact
/// (`PROFILE.json`). Structure, names, op counts, and sizes are
/// byte-deterministic at a given scale; only the timing values vary.
pub fn profile_json(scale: &Scale) -> String {
    use batchzk_metrics::registry::format_f64;
    use std::fmt::Write as _;

    let study = profile_study(scale);
    let mut out = format!("{{\"profile\":{{\"log_n\":{},\"kernels\":[", study.log_n);
    for (i, k) in study.kernels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ops\":{},\"wall_ns\":{},\"ns_per_op\":{},\"mops\":{}}}",
            k.name,
            k.ops,
            format_f64(k.wall_ns),
            format_f64(k.ns_per_op()),
            format_f64(k.mops())
        );
    }
    out.push_str("],\"phases\":[");
    for (i, p) in study.phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ms\":{},\"share\":{}}}",
            p.name,
            format_f64(p.ms),
            format_f64(p.ms / study.total_ms.max(1e-9))
        );
    }
    let _ = writeln!(
        out,
        "],\"total_ms\":{},\"coverage\":{},\"lut_speedup\":{}}}}}",
        format_f64(study.total_ms),
        format_f64(study.coverage),
        format_f64(study.lut_speedup)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale {
            module_logs: vec![8, 7],
            // >> pipeline depth (9 stages at 2^8) so steady state holds.
            module_batch: 40,
            system_logs: vec![9, 8],
            system_batch: 3,
            vgg_divisor: 64,
            vgg_batch: 2,
            scaling_log: 8,
            scaling_batch: 48,
            service_log: 8,
            service_probe_batch: 8,
            backends_log: 8,
            backends_batch: 3,
            wall_log: 8,
            wall_batch: 48,
            tag: "test",
        }
    }

    #[test]
    fn module_tables_render() {
        let s = tiny_scale();
        for table in [table3(&s), table4(&s), table5(&s), table6(&s)] {
            assert!(table.contains("|"), "missing rows: {table}");
            assert!(table.matches('\n').count() > 4);
        }
    }

    #[test]
    fn system_tables_render() {
        let s = tiny_scale();
        for table in [table7(&s), table8(&s), table9(&s), table10(&s)] {
            assert!(table.contains("2^") || table.contains("V100"), "{table}");
        }
    }

    #[test]
    fn figures_render() {
        let s = tiny_scale();
        assert!(fig4(&s).contains("pipelined"));
        assert!(fig9(&s).contains("encoder"));
    }

    #[test]
    fn ablation_renders() {
        assert!(ablation(&tiny_scale()).contains("Warp"));
    }

    #[test]
    fn trace_report_and_json_render() {
        let (report, json) = trace(&tiny_scale());
        // One timeline row and one table row per pipeline stage.
        assert!(report.contains("merkle-layer-1"), "{report}");
        assert!(report.contains("| merkle-layer-1 |"), "{report}");
        // The JSON is the gpu-sim exporter's output: spot-check the envelope
        // (full validity is covered by the gpu-sim unit tests).
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Determinism: the same scale renders the same trace.
        assert_eq!(trace(&tiny_scale()).1, json);
    }

    #[test]
    fn bench_json_is_complete_and_deterministic() {
        let s = tiny_scale();
        let json = bench_json(&s);
        // All four sections present, each with the acceptance-criteria
        // fields: throughput, lifecycle quantiles, occupancy, limiting
        // stage.
        for module in [
            "\"merkle\":",
            "\"sumcheck\":",
            "\"encoder\":",
            "\"system\":",
        ] {
            assert!(json.contains(module), "missing section {module}");
        }
        for field in [
            "\"tasks_per_sec\":",
            "\"p50\":",
            "\"p95\":",
            "\"p99\":",
            "\"occupancy\":",
            "\"limiting_stage\":",
            "\"suggested_threads\":",
            "\"scaling\":",
            "\"devices\":1",
            "\"devices\":8",
            "\"scaling_efficiency\":",
            "\"recovery\":",
            "\"proofs_identical\":true",
            "\"overhead_ratio\":",
            "\"service\":",
            "\"timeline\":",
            "\"recorder\":",
            "\"alerts\":",
            "\"slo_attainment\":",
            "\"goodput_per_mcycle\":",
            "\"rejection_rate\":",
            "\"backends\":",
            "\"mixed_service\":",
            "\"completed_by_backend\":",
            "\"metrics\":",
        ] {
            assert!(json.contains(field), "missing field {field}");
        }
        // Every recovery scenario recovered byte-identical proofs.
        for field in ["\"name\":\"fail-stop\"", "\"name\":\"drop-kernel\""] {
            assert!(json.contains(field), "missing field {field}");
        }
        assert!(
            !json.contains("\"proofs_identical\":false"),
            "a recovery scenario diverged from the fault-free proofs"
        );
        // Well-formedness (balanced braces/brackets) and determinism.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(bench_json(&s), json, "bench-json must be byte-stable");
    }

    #[test]
    fn faults_table_recovers_identical_proofs() {
        let s = tiny_scale();
        let t = faults(&s, None);
        for scenario in ["fail-stop", "degraded-clock", "drop-kernel"] {
            assert!(t.contains(scenario), "missing scenario {scenario}: {t}");
        }
        assert_eq!(t.matches("| yes |").count(), 3, "{t}");
        assert!(!t.contains("| NO |"), "recovered proofs diverged:\n{t}");
        // A custom `--fault-plan` spec rides along as its own scenario.
        let plan = FaultPlan::parse("0@0:slow:200").expect("valid spec");
        let custom = faults(&s, Some(&plan));
        assert!(custom.contains("| custom | `0@0:slow:200` |"), "{custom}");
        assert_eq!(custom.matches("| yes |").count(), 4, "{custom}");
    }

    #[test]
    fn bench_json_byte_identical_across_host_thread_counts() {
        // Host parallelism must be invisible in the artifact: the same
        // scale renders the same bytes whether the engines fan out across
        // 1, 2, or 4 host workers.
        let s = tiny_scale();
        let base = batchzk_par::with_threads(1, || bench_json(&s));
        for t in [2usize, 4] {
            let json = batchzk_par::with_threads(t, || bench_json(&s));
            assert_eq!(json, base, "bench-json differs at threads={t}");
        }
    }

    #[test]
    fn wall_clock_section_is_flat_and_strippable() {
        let s = tiny_scale();
        let json = bench_json_with_wall_clock(&s, &[1, 2]);
        for field in [
            "\"wall_clock\":{",
            "\"host_cores\":",
            "\"saturated\":",
            "\"log_n\":8",
            "\"batch\":48",
            "\"threads\":[1,2]",
            "\"wall_ms\":[",
            "\"speedup\":[1.0,",
        ] {
            assert!(json.contains(field), "missing field {field}");
        }
        // The saturated flag reflects the real host: probing 2 threads
        // saturates exactly when the host has fewer than 2 cores.
        let expect = format!("\"saturated\":{}", batchzk_par::host_cores() < 2);
        assert!(json.contains(&expect), "missing {expect}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // The one measured section stays a single flat object (no nested
        // braces), and removing it recovers the deterministic artifact
        // byte-for-byte — which is exactly what the `--no-wall-clock`
        // flag of `tables bench-json` emits for regression comparisons.
        let start = json.find(",\"wall_clock\":{").expect("section present");
        let open = start + ",\"wall_clock\":".len();
        let end = open + json[open..].find('}').expect("closes") + 1;
        assert!(
            !json[open + 1..end - 1].contains('{'),
            "wall_clock must stay a flat object"
        );
        let stripped = format!("{}{}", &json[..start], &json[end..]);
        assert_eq!(stripped, bench_json(&s));
    }

    #[test]
    fn profile_attributes_wall_time_and_lut_wins() {
        let s = tiny_scale();
        let study = profile_study(&s);
        let names: Vec<&str> = study.kernels.iter().map(|k| k.name).collect();
        for k in [
            "mont-mul",
            "mont-mul-lazy",
            "mont-mul-x4",
            "binary-dot-naive",
            "binary-dot-lut",
            "sha256-block",
            "sha256-block-x4",
            "ntt-butterfly",
        ] {
            assert!(names.contains(&k), "missing kernel {k}");
        }
        assert!(study.kernels.iter().all(|k| k.ops > 0 && k.wall_ns > 0.0));
        // The acceptance bar: >=80% of the single-thread prove is
        // attributed to named phases, and the phases never exceed the
        // envelope they were timed inside.
        assert!(study.coverage >= 0.8, "coverage {:.3}", study.coverage);
        assert!(
            study.coverage <= 1.0 + 1e-9,
            "coverage {:.3}",
            study.coverage
        );
        // The subset-sum LUT beats one-Montgomery-mul-per-weight.
        assert!(
            study.lut_speedup > 1.0,
            "lut speedup {:.2}x",
            study.lut_speedup
        );
    }

    #[test]
    fn profile_report_and_json_render() {
        let s = tiny_scale();
        let md = profile(&s);
        assert!(md.contains("| mont-mul |"), "{md}");
        assert!(md.contains("| encode |"), "{md}");
        assert!(md.contains("LUT vs naive"), "{md}");
        let json = profile_json(&s);
        for field in [
            "\"profile\":{",
            "\"log_n\":8",
            "\"kernels\":[",
            "\"phases\":[",
            "\"total_ms\":",
            "\"coverage\":",
            "\"lut_speedup\":",
        ] {
            assert!(json.contains(field), "missing field {field}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn scaling_table_renders_with_analyzer_verdicts() {
        let s = tiny_scale();
        let t = scaling(&s, &[1, 2], &DeviceProfile::a100());
        assert!(t.contains("| 1 |") && t.contains("| 2 |"), "{t}");
        assert!(t.contains("scaling efficiency"), "{t}");
        assert!(t.contains("time share"), "{t}");
    }

    #[test]
    fn scaling_meets_acceptance_thresholds() {
        // The PR's acceptance bar: >= 1.8x throughput at 2 devices and
        // >= 3x at 4 devices vs a single device of the same profile.
        let s = tiny_scale();
        let profile = DeviceProfile::a100();
        let (r1cs, inputs, witness) = synthetic_r1cs::<Fr>(1usize << s.scaling_log, 42);
        let r1cs = Arc::new(r1cs);
        let one = scaling_point(&profile, 1, &r1cs, &inputs, &witness, s.scaling_batch, None);
        assert!((one.analysis.speedup - 1.0).abs() < 1e-9);
        for (d, floor) in [(2usize, 1.8f64), (4, 3.0)] {
            let p = scaling_point(
                &profile,
                d,
                &r1cs,
                &inputs,
                &witness,
                s.scaling_batch,
                Some(one.makespan_ms),
            );
            assert!(
                p.analysis.speedup >= floor,
                "{d} devices: speedup {:.3} < {floor}",
                p.analysis.speedup
            );
            assert!(p.throughput_per_ms > one.throughput_per_ms);
        }
    }

    #[test]
    fn serve_report_renders_with_slo_accounting() {
        let s = tiny_scale();
        let report = serve(&s, &reference_plan()).expect("reference trace serves");
        for needle in [
            "interactive",
            "standard",
            "bulk",
            "Attainment",
            "Goodput",
            "### 1 device",
            "### 4 devices",
        ] {
            assert!(report.contains(needle), "missing `{needle}`:\n{report}");
        }
    }

    #[test]
    fn serve_rejects_empty_and_unknown_traces() {
        let s = tiny_scale();
        let err = serve(&s, &ArrivalPlan::new()).unwrap_err();
        assert!(err.contains("empty"), "{err}");
        let premium = ArrivalPlan::new().one("premium", 0);
        let err = serve(&s, &premium).unwrap_err();
        assert!(err.contains("premium"), "{err}");
        assert!(service_json(&s, &ArrivalPlan::new()).is_err());
    }

    #[test]
    fn service_section_byte_identical_across_host_thread_counts() {
        // The determinism matrix of the acceptance criteria: the same
        // trace renders the same `service` section bytes at host threads
        // 1/2/4, and the section itself carries the 1- and 4-device runs.
        let s = tiny_scale();
        let plan = reference_plan();
        let base = batchzk_par::with_threads(1, || service_json(&s, &plan).unwrap());
        for t in [2usize, 4] {
            let json = batchzk_par::with_threads(t, || service_json(&s, &plan).unwrap());
            assert_eq!(json, base, "service section differs at threads={t}");
        }
        assert!(base.contains("\"devices\":1"), "{base}");
        assert!(base.contains("\"devices\":4"), "{base}");
        for field in [
            "\"p50\":",
            "\"p95\":",
            "\"p99\":",
            "\"slo_attainment\":",
            "\"goodput_per_mcycle\":",
            "\"rejection_rate\":",
            "\"trace\":",
        ] {
            assert!(base.contains(field), "missing {field}");
        }
        assert_eq!(base.matches('{').count(), base.matches('}').count());
        assert_eq!(base.matches('[').count(), base.matches(']').count());
    }

    #[test]
    fn service_accounting_conserves_per_class() {
        // accepted + rejected == submitted for every class at every pool
        // size, and the reference trace actually sheds load on the
        // single-device pool, so the admission story is not vacuous.
        let s = tiny_scale();
        let study = service_study(&s, &reference_plan()).unwrap();
        let mut rejected_total = 0u64;
        for p in &study.points {
            for r in &p.outcome.reports {
                assert_eq!(
                    r.accepted + r.rejected_queue_full + r.rejected_saturated,
                    r.submitted,
                    "conservation broken for {} at {} devices",
                    r.class,
                    p.devices
                );
                assert_eq!(r.completed, r.accepted, "fault-free: all accepted finish");
                rejected_total += r.rejected_queue_full + r.rejected_saturated;
            }
            let submitted: u64 = p.outcome.reports.iter().map(|r| r.submitted).sum();
            assert_eq!(submitted, study.arrivals as u64);
        }
        assert!(
            rejected_total > 0,
            "reference trace should shed some load on the 1-device pool"
        );
    }

    #[test]
    fn backends_report_and_json_render_with_identical_proofs() {
        let s = tiny_scale();
        let report = backends(&s, None);
        for needle in [
            "| sumcheck |",
            "| groth16 |",
            "| orion |",
            "latency",
            "throughput",
            "Mixed service",
        ] {
            assert!(report.contains(needle), "missing `{needle}`:\n{report}");
        }
        assert!(
            !report.contains("| NO |"),
            "a schedule diverged or a proof failed verification:\n{report}"
        );
        let json = backends_json(&s);
        assert!(!json.contains("\"proofs_identical\":false"), "{json}");
        assert!(!json.contains("\"verified\":false"), "{json}");
        for field in [
            "\"backend\":\"sumcheck\"",
            "\"backend\":\"groth16\"",
            "\"backend\":\"orion\"",
            "\"scenario\":\"latency\"",
            "\"scenario\":\"throughput\"",
            "\"speedup\":",
            "\"mixed_service\":",
            "\"completed_by_backend\":",
        ] {
            assert!(json.contains(field), "missing {field}: {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn backends_report_filters_to_one_backend() {
        let s = tiny_scale();
        let report = backends(&s, Some("groth16"));
        assert!(report.contains("| groth16 |"), "{report}");
        assert!(!report.contains("| sumcheck |"), "{report}");
        assert!(!report.contains("| orion |"), "{report}");
        assert!(
            !report.contains("Mixed service"),
            "filtered sweep skips the mixed replay:\n{report}"
        );
        let orion_only = backends(&s, Some("orion"));
        assert!(orion_only.contains("| orion |"), "{orion_only}");
        assert!(!orion_only.contains("| groth16 |"), "{orion_only}");
    }

    #[test]
    fn mixed_service_conserves_per_class_and_serves_both_backends() {
        let s = tiny_scale();
        let mut registry = batchzk_metrics::Registry::new();
        let study = mixed_service_study(&s, &mixed_plan(), &mut registry).unwrap();
        for p in &study.points {
            let mut completed_total = 0u64;
            for r in &p.outcome.reports {
                assert_eq!(
                    r.accepted + r.rejected_queue_full + r.rejected_saturated,
                    r.submitted,
                    "conservation broken for {} at {} devices",
                    r.class,
                    p.devices
                );
                assert_eq!(r.completed, r.accepted, "fault-free: all accepted finish");
                completed_total += r.completed;
            }
            let submitted: u64 = p.outcome.reports.iter().map(|r| r.submitted).sum();
            assert_eq!(submitted, study.arrivals as u64);
            // The per-backend split partitions the completions exactly.
            assert_eq!(
                p.completed_by_backend.iter().sum::<u64>(),
                completed_total,
                "backend split must partition completions at {} devices",
                p.devices
            );
        }
        // The committed mixed trace genuinely interleaves: the 4-device
        // pool completes proofs of every protocol.
        let wide = study.points.last().unwrap();
        assert!(
            wide.completed_by_backend.iter().all(|&c| c > 0),
            "every backend must complete work: {:?}",
            wide.completed_by_backend
        );
        // The backend-labelled service families rode into the registry.
        let metrics = registry.to_json();
        for needle in [
            "backend=\\\"sumcheck\\\"",
            "backend=\\\"groth16\\\"",
            "backend=\\\"orion\\\"",
        ] {
            let plain = needle.replace("\\\"", "\"");
            assert!(
                metrics.contains(&plain) || metrics.contains(needle),
                "missing backend label {plain} in {metrics}"
            );
        }
    }

    #[test]
    fn mixed_serve_report_renders_backend_split() {
        let s = tiny_scale();
        let report = serve(&s, &mixed_plan()).expect("committed mixed trace serves");
        for needle in [
            "mixed backends",
            "Completed by backend",
            "[sumcheck]",
            "[groth16]",
            "[orion]",
            "### 1 device",
            "### 4 devices",
        ] {
            assert!(report.contains(needle), "missing `{needle}`:\n{report}");
        }
    }

    #[test]
    fn serve_rejects_unknown_backend_labels() {
        let s = tiny_scale();
        let plan = ArrivalPlan::parse("interactive/premium@0:one").expect("lexically valid");
        let err = serve(&s, &plan).unwrap_err();
        assert!(err.contains("premium"), "{err}");
        assert!(
            err.contains("sumcheck"),
            "error names the accepted set: {err}"
        );
    }

    #[test]
    fn backends_section_byte_identical_across_host_thread_counts() {
        let s = tiny_scale();
        let base = batchzk_par::with_threads(1, || backends_json(&s));
        for t in [2usize, 4] {
            let json = batchzk_par::with_threads(t, || backends_json(&s));
            assert_eq!(json, base, "backends section differs at threads={t}");
        }
    }

    #[test]
    fn timeline_fires_and_resolves_alerts_on_the_reference_overload() {
        // The acceptance scenario: the committed reference trace on the
        // single-device pool (26.5% rejection) must fire at least the
        // rejection-rate rule and a burn-rate rule, and every alert must
        // resolve before the drain — no rule still firing at the end.
        let s = tiny_scale();
        let a = timeline(&s, &reference_plan()).expect("reference trace replays");
        assert!(
            a.json
                .contains("\"rule\":\"rejection-rate\",\"state\":\"fire\""),
            "rejection-rate must fire: {}",
            a.json
        );
        assert!(
            a.json.contains("\"rule\":\"slo-burn-"),
            "a burn-rate rule must fire: {}",
            a.json
        );
        // The artifact ends with the alert log's `still_firing` list, then
        // the closing brace of the envelope.
        assert!(
            a.json.ends_with("\"still_firing\":[]}}"),
            "all alerts resolve before drain: {}",
            a.json
        );
        // The report carries the sparkline table and the alert log with
        // runbook references.
        for needle in [
            "queue depth",
            "device0 utilization",
            "p99 latency",
            "FIRE",
            "resolve",
            "OPERATIONS.md#when-the-rejection-rate-spikes",
        ] {
            assert!(
                a.report.contains(needle),
                "missing `{needle}`:\n{}",
                a.report
            );
        }
        // The merged Chrome trace carries both kernel spans (the replay
        // runs under TraceLevel::Full) and the counter tracks.
        assert!(a.chrome_trace.contains("\"ph\":\"X\""));
        assert!(a.chrome_trace.contains("\"ph\":\"C\""));
        assert!(a.chrome_trace.contains("\"name\":\"service queue depth\""));
        assert_eq!(
            a.chrome_trace.matches('{').count(),
            a.chrome_trace.matches('}').count()
        );
    }

    #[test]
    fn timeline_json_byte_identical_across_host_thread_counts() {
        // The CI determinism gate in-test: TIMELINE.json (and so the
        // BENCH.json `timeline` section, which shares its builder) renders
        // the same bytes at host threads 1/2/4, alert window indexes
        // included.
        let s = tiny_scale();
        let plan = reference_plan();
        let base = batchzk_par::with_threads(1, || timeline(&s, &plan).unwrap().json);
        for t in [2usize, 4] {
            let json = batchzk_par::with_threads(t, || timeline(&s, &plan).unwrap().json);
            assert_eq!(json, base, "timeline artifact differs at threads={t}");
        }
        for field in [
            "\"rules\":[",
            "\"recorder\":",
            "\"alerts\":",
            "\"window_cycles\":",
            "\"events\":[",
        ] {
            assert!(base.contains(field), "missing {field}");
        }
        assert_eq!(base.matches('{').count(), base.matches('}').count());
        assert_eq!(base.matches('[').count(), base.matches(']').count());
        // Integer-only values: a digit is never followed by a decimal
        // point (the only `.`s are inside runbook/trace strings).
        let float_like = base
            .as_bytes()
            .windows(2)
            .any(|w| w[0].is_ascii_digit() && w[1] == b'.');
        assert!(!float_like, "integer-only artifact: {base}");
    }

    #[test]
    fn profile_lookup_covers_cli_names() {
        for name in ["v100", "a100", "rtx3090ti", "h100", "gh200"] {
            assert!(profile_by_name(name).is_some(), "{name}");
        }
        assert!(profile_by_name("tpu").is_none());
    }

    #[test]
    fn exact_quantile_nearest_rank() {
        let sorted = [10u64, 20, 30, 40];
        assert_eq!(exact_quantile(&sorted, 0.5), 20);
        assert_eq!(exact_quantile(&sorted, 0.95), 40);
        assert_eq!(exact_quantile(&sorted, 0.0), 10);
        assert_eq!(exact_quantile(&sorted, 1.0), 40);
        assert_eq!(exact_quantile(&[], 0.5), 0);
        assert_eq!(exact_quantile(&[7], 0.99), 7);
    }

    #[test]
    fn pipelined_always_beats_naive_in_module_tables() {
        // The core comparative claim at any scale: the "vs GPU" column > 1.
        let s = tiny_scale();
        let t3 = table3(&s);
        for line in t3.lines().filter(|l| l.starts_with("| 2^")) {
            let last = line.split('|').rev().nth(1).unwrap().trim();
            let speedup: f64 = last.trim_end_matches('x').parse().unwrap();
            assert!(speedup > 1.0, "pipelined must win: {line}");
        }
    }
}
