//! The Groth16-style "old protocol" baselines of Tables 7, 8 and 10:
//! Libsnark (CPU, real NTT+MSM arithmetic timed on this machine) and
//! Bellperson (GPU, the same operation counts charged to the simulator).
//!
//! A Groth16 prover at circuit size `S` is dominated by (cf. the paper's
//! Table 1 and the Libsnark/Bellperson implementations):
//!
//! * ~4 multi-scalar multiplications of ~`S` terms (three in G1, one in G2
//!   ≈ two G1-equivalents — we charge 5 G1-equivalent MSMs);
//! * ~7 NTTs over a domain of ~`2S` (three forward, three inverse, one
//!   coset evaluation).

use std::time::Instant;

use batchzk_curve::{msm, msm_group_op_count, G1Affine};
use batchzk_field::{Field, Fr, NttDomain};
use batchzk_gpu_sim::{DeviceProfile, Gpu, KernelStep, Work};
use batchzk_hash::Prg;

pub use batchzk_pipeline::groth::{MSM_COUNT, NTT_COUNT};

/// Modeled device bytes per constraint for a resident Groth16 proving run
/// (witness + bases + FFT buffers + proving key), calibrated against the
/// paper's Table 10 (1.38 GB at S = 2^20 ⇒ ~1.4 KB per constraint). The
/// canonical constant lives with the pipelined backend.
pub const BELLPERSON_BYTES_PER_CONSTRAINT: u64 = batchzk_pipeline::groth::BYTES_PER_CONSTRAINT;

/// Timed breakdown of a CPU (Libsnark-like) Groth16-style prover.
#[derive(Debug, Clone, Copy)]
pub struct CpuGrothTimes {
    /// MSM time in ms.
    pub msm_ms: f64,
    /// NTT time in ms.
    pub ntt_ms: f64,
    /// Total (MSM + NTT + glue) in ms.
    pub total_ms: f64,
}

/// Runs the real MSM and NTT workloads of one proof at `2^log_s`
/// constraints on this CPU and reports wall-clock times.
///
/// To keep the harness affordable, one MSM and one NTT are timed and the
/// per-proof counts are applied as multipliers.
pub fn groth16_cpu(log_s: u32) -> CpuGrothTimes {
    let s = 1usize << log_s;
    let mut rng = Prg::seed_from_u64(7);

    // MSM of S terms over real BN254 points.
    let points: Vec<G1Affine> = (0..s)
        .map(|i| G1Affine::from_counter(1 + i as u64))
        .collect();
    let scalars: Vec<Fr> = (0..s).map(|_| Fr::random(&mut rng)).collect();
    let t = Instant::now();
    let _ = msm(&points, &scalars);
    let msm_ms = t.elapsed().as_secs_f64() * 1e3 * MSM_COUNT as f64;

    // NTT over a domain of 2S.
    let domain = NttDomain::<Fr>::new(log_s + 1);
    let mut values: Vec<Fr> = (0..domain.size()).map(|_| Fr::random(&mut rng)).collect();
    let t = Instant::now();
    domain.forward(&mut values);
    let ntt_ms = t.elapsed().as_secs_f64() * 1e3 * NTT_COUNT as f64;

    CpuGrothTimes {
        msm_ms,
        ntt_ms,
        total_ms: msm_ms + ntt_ms + 0.02 * (msm_ms + ntt_ms),
    }
}

/// Simulated breakdown of a GPU (Bellperson-like) Groth16-style prover.
#[derive(Debug, Clone, Copy)]
pub struct GpuGrothTimes {
    /// MSM time in ms.
    pub msm_ms: f64,
    /// NTT time in ms.
    pub ntt_ms: f64,
    /// Per-proof latency in ms (no batching: Bellperson proves one proof
    /// at a time, which is also its amortized cost).
    pub total_ms: f64,
    /// Device bytes resident during the proof.
    pub mem_bytes: u64,
}

/// Charges one proof's NTT+MSM operation counts to the simulated device.
/// Bellperson-style provers parallelize within one proof, so the whole
/// device works on a single proof at a time.
pub fn groth16_gpu(profile: &DeviceProfile, log_s: u32) -> GpuGrothTimes {
    let s = 1usize << log_s;
    let mut gpu = Gpu::new(profile.clone());
    let threads = profile.cuda_cores;

    let msm_units = msm_group_op_count(s) * MSM_COUNT;
    let group_cost = gpu.cost().group_add;
    // Phase 1: bucket accumulation — embarrassingly parallel.
    gpu.execute_step(
        &[KernelStep::new(
            "bellperson-msm",
            threads,
            Work::Uniform {
                units: msm_units,
                cycles_per_unit: group_cost,
            },
        )],
        &[],
        true,
    );
    // Phase 2: bucket reduction — the running-sum over 2^c buckets is a
    // serial dependency chain per window. Pre-cuZK GPU MSMs (Bellperson's
    // generation) execute it with one thread per window; parallelizing this
    // phase is precisely the contribution of later work (cuZK, GZKP), so
    // charging the serial chain is the historically faithful model.
    let c = batchzk_curve::window_size(s);
    let windows = 254_usize.div_ceil(c);
    let reduce_chain = (2u64 << c) * group_cost;
    gpu.execute_step(
        &[KernelStep::new(
            "bellperson-msm-reduce",
            windows as u32,
            Work::Items(vec![reduce_chain; windows * MSM_COUNT as usize]),
        )],
        &[],
        true,
    );
    let msm_ms = gpu.elapsed_ms();

    let butterflies = {
        let half = (s as u64) * 2 / 2;
        half * (log_s as u64 + 1) * NTT_COUNT
    };
    let ntt_cost = gpu.cost().ntt_butterfly();
    gpu.execute_step(
        &[KernelStep::new(
            "bellperson-ntt",
            threads,
            Work::Uniform {
                units: butterflies,
                cycles_per_unit: ntt_cost,
            },
        )],
        &[],
        true,
    );
    let total_ms = gpu.elapsed_ms();

    GpuGrothTimes {
        msm_ms,
        ntt_ms: total_ms - msm_ms,
        total_ms,
        mem_bytes: s as u64 * BELLPERSON_BYTES_PER_CONSTRAINT,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_groth_times_scale_with_size() {
        let small = groth16_cpu(8);
        let large = groth16_cpu(11);
        assert!(large.total_ms > small.total_ms);
        assert!(small.msm_ms > 0.0 && small.ntt_ms > 0.0);
    }

    #[test]
    fn gpu_groth_faster_than_v100_on_h100() {
        let v = groth16_gpu(&DeviceProfile::v100(), 14);
        let h = groth16_gpu(&DeviceProfile::h100(), 14);
        assert!(h.total_ms < v.total_ms);
        assert_eq!(v.mem_bytes, (1u64 << 14) * BELLPERSON_BYTES_PER_CONSTRAINT);
    }

    #[test]
    fn msm_dominates_ntt_on_gpu() {
        // The paper's Table 7: MSM is the larger share in Groth16 provers.
        let g = groth16_gpu(&DeviceProfile::v100(), 16);
        assert!(g.msm_ms > g.ntt_ms);
    }
}
