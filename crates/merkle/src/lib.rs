//! # batchzk-merkle
//!
//! CPU reference Merkle tree over SHA-256 (§2.2 of the paper) — the
//! "Orion (CPU)" column of Table 3 and the correctness oracle for the
//! pipelined GPU module in `batchzk-pipeline`.
//!
//! Input data is split into 512-bit (64-byte) blocks; each block is hashed
//! into a 256-bit leaf; parent nodes hash the concatenation of their two
//! children. Trees are padded to a power of two by repeating the last leaf
//! digest, so any non-empty input works.
//!
//! # Examples
//!
//! ```
//! use batchzk_merkle::MerkleTree;
//!
//! let blocks: Vec<[u8; 64]> = (0..8u8).map(|i| [i; 64]).collect();
//! let tree = MerkleTree::from_blocks(&blocks);
//! let path = tree.open(3);
//! assert!(path.verify(&tree.root()));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use batchzk_field::Field;
use batchzk_hash::{hash_blocks, hash_pair, hash_pairs, Digest};

/// A fully materialized Merkle tree (all layers kept, leaf layer first).
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// `layers[0]` = leaf digests, last layer = `[root]`.
    layers: Vec<Vec<Digest>>,
    /// Number of real (unpadded) leaves.
    leaf_count: usize,
}

impl MerkleTree {
    /// Builds a tree from 64-byte data blocks (one leaf per block).
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty.
    pub fn from_blocks(blocks: &[[u8; 64]]) -> Self {
        assert!(!blocks.is_empty(), "cannot build a Merkle tree of nothing");
        // Batched leaf hashing: four independent compressions in lockstep.
        let leaves = hash_blocks(blocks);
        Self::from_leaves(leaves)
    }

    /// Builds a tree whose leaves are the hashes of 64-byte chunks of `data`
    /// (zero-padded at the tail), mirroring the paper's "divide input data
    /// into multiple blocks" step.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn from_bytes(data: &[u8]) -> Self {
        assert!(!data.is_empty(), "cannot build a Merkle tree of nothing");
        let blocks: Vec<[u8; 64]> = data
            .chunks(64)
            .map(|c| {
                let mut b = [0u8; 64];
                b[..c.len()].copy_from_slice(c);
                b
            })
            .collect();
        Self::from_blocks(&blocks)
    }

    /// Builds a tree over field elements, two 32-byte encodings per 64-byte
    /// block (the layout used by the polynomial-commitment columns).
    ///
    /// # Panics
    ///
    /// Panics if `elems` is empty.
    pub fn from_field_elems<F: Field>(elems: &[F]) -> Self {
        assert!(!elems.is_empty(), "cannot build a Merkle tree of nothing");
        let blocks: Vec<[u8; 64]> = elems
            .chunks(2)
            .map(|pair| {
                let mut b = [0u8; 64];
                b[..32].copy_from_slice(&pair[0].to_bytes());
                if let Some(second) = pair.get(1) {
                    b[32..].copy_from_slice(&second.to_bytes());
                }
                b
            })
            .collect();
        Self::from_blocks(&blocks)
    }

    /// Builds a tree from precomputed leaf digests.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is empty.
    pub fn from_leaves(mut leaves: Vec<Digest>) -> Self {
        assert!(!leaves.is_empty(), "cannot build a Merkle tree of nothing");
        let leaf_count = leaves.len();
        // Pad to a power of two by repeating the final digest.
        let padded = leaf_count.next_power_of_two();
        leaves.resize(padded, *leaves.last().expect("non-empty"));

        let mut layers = vec![leaves];
        while layers.last().expect("non-empty").len() > 1 {
            let prev = layers.last().expect("non-empty");
            // Batched node hashing through the interleaved 4-lane kernel.
            let pairs: Vec<(Digest, Digest)> =
                prev.chunks(2).map(|pair| (pair[0], pair[1])).collect();
            layers.push(hash_pairs(&pairs));
        }
        Self { layers, leaf_count }
    }

    /// The Merkle root.
    pub fn root(&self) -> Digest {
        self.layers.last().expect("non-empty")[0]
    }

    /// Number of real (unpadded) leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// Number of layers including the leaf layer and the root.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Leaf digest at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= leaf_count()`.
    pub fn leaf(&self, index: usize) -> Digest {
        assert!(index < self.leaf_count, "leaf index out of range");
        self.layers[0][index]
    }

    /// Opens an authentication path for the leaf at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= leaf_count()`.
    pub fn open(&self, index: usize) -> MerklePath {
        assert!(index < self.leaf_count, "leaf index out of range");
        let mut siblings = Vec::with_capacity(self.layers.len() - 1);
        let mut i = index;
        for layer in &self.layers[..self.layers.len() - 1] {
            siblings.push(layer[i ^ 1]);
            i >>= 1;
        }
        MerklePath {
            leaf: self.layers[0][index],
            index,
            siblings,
        }
    }

    /// Number of internal-node hashes spent building the padded tree
    /// (`N - 1` pair hashes for `N` padded leaves). Leaf hashes are charged
    /// separately by the construction path. Used by the GPU cost models.
    pub fn node_hash_count(&self) -> u64 {
        self.layers[1..].iter().map(|l| l.len() as u64).sum()
    }
}

/// An authentication path proving membership of one leaf digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerklePath {
    leaf: Digest,
    index: usize,
    siblings: Vec<Digest>,
}

impl MerklePath {
    /// The leaf digest this path authenticates.
    pub fn leaf(&self) -> Digest {
        self.leaf
    }

    /// The leaf position.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The sibling digests, leaf layer first.
    pub fn siblings(&self) -> &[Digest] {
        &self.siblings
    }

    /// Recomputes the root from the leaf and siblings and compares.
    pub fn verify(&self, root: &Digest) -> bool {
        let mut acc = self.leaf;
        let mut i = self.index;
        for sib in &self.siblings {
            acc = if i & 1 == 0 {
                hash_pair(&acc, sib)
            } else {
                hash_pair(sib, &acc)
            };
            i >>= 1;
        }
        acc == *root
    }

    /// Serializes to bytes (leaf || index || sibling count || siblings).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + 16 + self.siblings.len() * 32);
        out.extend_from_slice(&self.leaf);
        out.extend_from_slice(&(self.index as u64).to_le_bytes());
        out.extend_from_slice(&(self.siblings.len() as u64).to_le_bytes());
        for s in &self.siblings {
            out.extend_from_slice(s);
        }
        out
    }

    /// Parses the encoding produced by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 48 {
            return None;
        }
        let leaf: Digest = bytes[..32].try_into().ok()?;
        let index = u64::from_le_bytes(bytes[32..40].try_into().ok()?) as usize;
        let count = u64::from_le_bytes(bytes[40..48].try_into().ok()?) as usize;
        if bytes.len() != 48 + count * 32 || count > 64 {
            return None;
        }
        let siblings = bytes[48..]
            .chunks(32)
            .map(|c| c.try_into().expect("32-byte chunk"))
            .collect();
        Some(Self {
            leaf,
            index,
            siblings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchzk_field::Fr;

    fn blocks(n: usize) -> Vec<[u8; 64]> {
        (0..n)
            .map(|i| {
                let mut b = [0u8; 64];
                b[..8].copy_from_slice(&(i as u64).to_le_bytes());
                b
            })
            .collect()
    }

    #[test]
    fn all_paths_verify() {
        for n in [1usize, 2, 3, 5, 8, 16, 31] {
            let tree = MerkleTree::from_blocks(&blocks(n));
            for i in 0..n {
                assert!(tree.open(i).verify(&tree.root()), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn tampered_leaf_fails() {
        let tree = MerkleTree::from_blocks(&blocks(8));
        let mut path = tree.open(2);
        path.leaf[0] ^= 1;
        assert!(!path.verify(&tree.root()));
    }

    #[test]
    fn tampered_sibling_fails() {
        let tree = MerkleTree::from_blocks(&blocks(8));
        let mut path = tree.open(2);
        path.siblings[1][5] ^= 0x80;
        assert!(!path.verify(&tree.root()));
    }

    #[test]
    fn wrong_index_fails() {
        let tree = MerkleTree::from_blocks(&blocks(8));
        let mut path = tree.open(2);
        path.index = 3;
        assert!(!path.verify(&tree.root()));
    }

    #[test]
    fn wrong_root_fails() {
        let tree = MerkleTree::from_blocks(&blocks(8));
        let other = MerkleTree::from_blocks(&blocks(9));
        assert!(!tree.open(0).verify(&other.root()));
    }

    #[test]
    fn any_block_change_changes_root() {
        let base = MerkleTree::from_blocks(&blocks(16));
        for i in 0..16 {
            let mut b = blocks(16);
            b[i][63] ^= 1;
            assert_ne!(MerkleTree::from_blocks(&b).root(), base.root(), "i={i}");
        }
    }

    #[test]
    fn depth_and_counts() {
        let tree = MerkleTree::from_blocks(&blocks(16));
        assert_eq!(tree.depth(), 5); // 16 -> 8 -> 4 -> 2 -> 1
        assert_eq!(tree.leaf_count(), 16);
        assert_eq!(tree.node_hash_count(), 8 + 4 + 2 + 1);
    }

    #[test]
    fn padding_is_deterministic() {
        let a = MerkleTree::from_blocks(&blocks(5));
        let b = MerkleTree::from_blocks(&blocks(5));
        assert_eq!(a.root(), b.root());
        // And distinct from the 8-block tree even though both pad to 8.
        assert_ne!(a.root(), MerkleTree::from_blocks(&blocks(8)).root());
    }

    #[test]
    fn field_elem_trees() {
        let elems: Vec<Fr> = (0..10u64).map(Fr::from).collect();
        let tree = MerkleTree::from_field_elems(&elems);
        assert_eq!(tree.leaf_count(), 5); // two elems per block
        for i in 0..5 {
            assert!(tree.open(i).verify(&tree.root()));
        }
        // Odd count exercises the half-filled final block.
        let odd: Vec<Fr> = (0..7u64).map(Fr::from).collect();
        let t2 = MerkleTree::from_field_elems(&odd);
        assert_eq!(t2.leaf_count(), 4);
    }

    #[test]
    fn from_bytes_pads_tail() {
        let t1 = MerkleTree::from_bytes(&[1u8; 65]);
        assert_eq!(t1.leaf_count(), 2);
        let mut padded = [0u8; 128];
        padded[..65].copy_from_slice(&[1u8; 65]);
        let t2 = MerkleTree::from_bytes(&padded);
        assert_eq!(t1.root(), t2.root());
    }

    #[test]
    fn path_byte_roundtrip() {
        let tree = MerkleTree::from_blocks(&blocks(16));
        let path = tree.open(7);
        let decoded = MerklePath::from_bytes(&path.to_bytes()).expect("decodes");
        assert_eq!(decoded, path);
        assert!(decoded.verify(&tree.root()));
        // Truncated bytes are rejected.
        assert!(MerklePath::from_bytes(&path.to_bytes()[..40]).is_none());
        // Trailing garbage is rejected.
        let mut long = path.to_bytes();
        long.push(0);
        assert!(MerklePath::from_bytes(&long).is_none());
    }

    #[test]
    fn single_leaf_tree() {
        let tree = MerkleTree::from_blocks(&blocks(1));
        assert_eq!(tree.depth(), 1);
        let path = tree.open(0);
        assert!(path.siblings().is_empty());
        assert!(path.verify(&tree.root()));
        assert_eq!(tree.root(), tree.leaf(0));
    }

    #[test]
    #[should_panic(expected = "nothing")]
    fn empty_input_panics() {
        let _ = MerkleTree::from_blocks(&[]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn open_out_of_range_panics() {
        let tree = MerkleTree::from_blocks(&blocks(4));
        let _ = tree.open(4);
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use batchzk_field::{RngCore, SplitMix64};

    #[test]
    fn every_path_verifies() {
        let mut rng = SplitMix64::seed_from_u64(0xC0);
        for _ in 0..16 {
            let n = rng.gen_range(1..64);
            let seed = rng.next_u64();
            let blocks: Vec<[u8; 64]> = (0..n)
                .map(|i| {
                    let mut b = [0u8; 64];
                    b[..8].copy_from_slice(&(seed ^ i as u64).to_le_bytes());
                    b
                })
                .collect();
            let tree = MerkleTree::from_blocks(&blocks);
            for i in 0..n {
                assert!(tree.open(i).verify(&tree.root()));
            }
        }
    }

    #[test]
    fn single_bit_flip_changes_root() {
        let mut rng = SplitMix64::seed_from_u64(0xC1);
        for _ in 0..16 {
            let n = rng.gen_range(2..32);
            let idx = rng.gen_range(0..n);
            let byte = rng.gen_range(0..64);
            let bit = rng.gen_range(0..8) as u8;
            let mut blocks: Vec<[u8; 64]> = (0..n).map(|i| [i as u8; 64]).collect();
            let before = MerkleTree::from_blocks(&blocks).root();
            blocks[idx][byte] ^= 1 << bit;
            let after = MerkleTree::from_blocks(&blocks).root();
            assert_ne!(before, after);
        }
    }

    #[test]
    fn path_roundtrip() {
        let mut rng = SplitMix64::seed_from_u64(0xC2);
        for _ in 0..16 {
            let n = rng.gen_range(1..40);
            let idx = rng.gen_range(0..n);
            let blocks: Vec<[u8; 64]> = (0..n).map(|i| [i as u8; 64]).collect();
            let tree = MerkleTree::from_blocks(&blocks);
            let path = tree.open(idx);
            let decoded = MerklePath::from_bytes(&path.to_bytes()).expect("decodes");
            assert_eq!(&decoded, &path);
            assert!(decoded.verify(&tree.root()));
        }
    }
}
