//! Property tests for the hot-path kernels: lazy-reduction bounds, oracle
//! agreement on edge-case limbs, byte-identity of the `dot_pairs` override
//! against the trait default, and LUT-vs-naive equivalence.
//!
//! These are the guarantees that let the rest of the workspace adopt the
//! fast paths without re-auditing: every kernel is bit-identical to the
//! schoolbook definition, and every intermediate stays inside its documented
//! redundant domain.

use batchzk_field::limb::{
    add_lazy, double_wide, geq, mont_mul, mont_mul_unreduced, mont_mul_x4, naive_mul_mod,
    reduce_once, Limbs,
};
use batchzk_field::lut::{naive_select_sum, SubsetSumLUT};
use batchzk_field::{Field, Fr, MontLimbs, RngCore, SplitMix64};

const P: Limbs = Fr::MODULUS;

fn two_p() -> Limbs {
    double_wide(&P)
}

/// Strictly-less-than over little-endian limbs.
fn lt(a: &Limbs, b: &Limbs) -> bool {
    !geq(a, b)
}

/// Uniform sample below `bound` by rejection.
fn rand_below(rng: &mut SplitMix64, bound: &Limbs) -> Limbs {
    loop {
        let cand: Limbs = core::array::from_fn(|_| rng.next_u64());
        if lt(&cand, bound) {
            return cand;
        }
    }
}

/// The edge-case inputs the lazy kernels must handle: identities, boundary
/// values of both the canonical and redundant domains, and the Montgomery
/// constants themselves.
fn edge_cases() -> Vec<Limbs> {
    let p_minus_1 = {
        let mut l = P;
        l[0] -= 1; // p[0] is odd, no borrow
        l
    };
    let two_p_minus_1 = {
        let mut l = two_p();
        l[0] -= 1;
        l
    };
    vec![
        [0, 0, 0, 0],
        [1, 0, 0, 0],
        p_minus_1,
        P,
        two_p_minus_1,
        Fr::R,
        Fr::R2,
    ]
}

#[test]
fn unreduced_mul_bounded_and_oracle_exact_on_edges_and_random() {
    let mut rng = SplitMix64::seed_from_u64(0xB00);
    let tp = two_p();
    let mut inputs = edge_cases();
    for _ in 0..200 {
        inputs.push(rand_below(&mut rng, &tp));
    }
    for a in &inputs {
        for b in &inputs {
            let unreduced = mont_mul_unreduced(a, b, &P, Fr::INV);
            // Closure of the redundant domain: inputs < 2p ⇒ output < 2p.
            assert!(
                lt(&unreduced, &tp),
                "unreduced out of domain: {a:?} * {b:?}"
            );
            // Canonicalizing matches the strict CIOS kernel modulo p. The
            // strict kernel wants canonical inputs, so reduce first.
            let ar = reduce_once(a, &P);
            let br = reduce_once(b, &P);
            let strict = mont_mul(&ar, &br, &P, Fr::INV);
            // a ≡ ar and b ≡ br (mod p), so the unreduced product reduces to
            // the same residue.
            assert_eq!(reduce_once(&unreduced, &P), strict, "{a:?} * {b:?}");
        }
    }
}

#[test]
fn unreduced_mul_matches_division_oracle() {
    // mont_mul computes a·b·2^{-256} mod p; multiplying back by R recovers
    // a·b mod p, which the schoolbook + long-division oracle checks.
    let mut rng = SplitMix64::seed_from_u64(0xB01);
    for _ in 0..100 {
        let a = rand_below(&mut rng, &P);
        let b = rand_below(&mut rng, &P);
        let mont = reduce_once(&mont_mul_unreduced(&a, &b, &P, Fr::INV), &P);
        let undone = naive_mul_mod(&mont, &Fr::R, &P);
        assert_eq!(undone, naive_mul_mod(&a, &b, &P));
    }
}

#[test]
fn add_lazy_closed_and_congruent() {
    let mut rng = SplitMix64::seed_from_u64(0xB02);
    let tp = two_p();
    let mut inputs = edge_cases();
    inputs.retain(|l| lt(l, &tp));
    for _ in 0..200 {
        inputs.push(rand_below(&mut rng, &tp));
    }
    for a in &inputs {
        for b in &inputs {
            let sum = add_lazy(a, b, &tp);
            assert!(lt(&sum, &tp), "add_lazy left the redundant domain");
            // Congruence: reduce everything canonically and compare against
            // field addition.
            let fa = Fr::from_mont_limbs_unchecked(reduce_once(a, &P));
            let fb = Fr::from_mont_limbs_unchecked(reduce_once(b, &P));
            let fs = Fr::from_mont_limbs_unchecked(reduce_once(&sum, &P));
            assert_eq!(fa + fb, fs);
        }
    }
}

#[test]
fn mont_mul_x4_matches_scalar_on_random_lanes() {
    let mut rng = SplitMix64::seed_from_u64(0xB03);
    for _ in 0..100 {
        let a: [Limbs; 4] = core::array::from_fn(|_| rand_below(&mut rng, &P));
        let b: [Limbs; 4] = core::array::from_fn(|_| rand_below(&mut rng, &P));
        let out = mont_mul_x4(&a, &b, &P, Fr::INV);
        for k in 0..4 {
            assert_eq!(out[k], mont_mul(&a[k], &b[k], &P, Fr::INV), "lane {k}");
        }
    }
}

#[test]
fn dot_pairs_override_is_byte_identical_to_default() {
    // The macro override (lazy accumulate) against the trait's documented
    // default (multiply-then-add fold), compared through the canonical byte
    // encoding so any canonicity break would surface.
    let mut rng = SplitMix64::seed_from_u64(0xB04);
    for n in [0usize, 1, 2, 3, 7, 64, 257] {
        let a: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let b: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let fast = Fr::dot(&a, &b);
        let naive = a.iter().zip(&b).fold(Fr::ZERO, |acc, (x, y)| acc + *x * *y);
        assert_eq!(fast.to_bytes(), naive.to_bytes(), "n={n}");
    }
    // Edge values: ±1 and values that exercise the top of the domain.
    let specials = [
        Fr::ZERO,
        Fr::ONE,
        -Fr::ONE,
        Fr::from_mont_limbs_unchecked(reduce_once(&Fr::R2, &P)),
    ];
    for &x in &specials {
        for &y in &specials {
            let fast = Fr::dot_pairs([(x, y); 5].into_iter());
            let naive = (x * y) * Fr::from(5u64);
            assert_eq!(fast.to_bytes(), naive.to_bytes());
        }
    }
}

#[test]
fn lut_matches_naive_inner_product_for_every_width() {
    let mut rng = SplitMix64::seed_from_u64(0xB05);
    for n in [1usize, 9, 31, 64] {
        let w: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let bits: Vec<bool> = (0..n).map(|_| rng.next_u64() & 1 == 1).collect();
        let expect = naive_select_sum(&w, &bits);
        for k in 1..=16 {
            let lut = SubsetSumLUT::new(&w, k);
            assert_eq!(lut.select_sum_bits(&bits), expect, "n={n} k={k}");
        }
    }
}
