//! In-repo random-number abstraction.
//!
//! The workspace builds hermetically — no external registry access — so the
//! seeded sampling that tests, synthetic-circuit generation, and the expander
//! code construction rely on cannot come from the `rand` crate. This module
//! defines the minimal [`RngCore`] trait those call sites need, plus
//! [`SplitMix64`], a tiny high-quality deterministic generator used where the
//! SHA-256 counter-mode PRG in `batchzk-hash` would be a dependency cycle
//! (`batchzk-hash` depends on this crate and implements [`RngCore`] for its
//! `Prg`).
//!
//! # Examples
//!
//! ```
//! use batchzk_field::{RngCore, SplitMix64};
//!
//! let mut rng = SplitMix64::seed_from_u64(7);
//! let a = rng.next_u64();
//! let idx = rng.gen_range(0..10);
//! assert!(idx < 10);
//! let mut again = SplitMix64::seed_from_u64(7);
//! assert_eq!(again.next_u64(), a);
//! ```

use core::ops::{Bound, RangeBounds};

/// A deterministic source of pseudorandom bits.
///
/// Mirrors the subset of the `rand` crate's trait of the same name that the
/// workspace actually uses, so generators written against `rand` port with a
/// one-line import change.
pub trait RngCore {
    /// Returns the next 32 pseudorandom bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 pseudorandom bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with pseudorandom bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Samples a uniform `usize` from `range`.
    ///
    /// Uses a 128-bit widening multiply, so the bias is at most `2^-64` —
    /// negligible for simulation and test workloads.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: RangeBounds<usize>>(&mut self, range: R) -> usize
    where
        Self: Sized,
    {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => v + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) => v.checked_add(1).expect("range end overflows usize"),
            Bound::Excluded(&v) => v,
            Bound::Unbounded => usize::MAX,
        };
        assert!(lo < hi, "gen_range called with empty range");
        let span = (hi - lo) as u64;
        let scaled = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        lo + scaled as usize
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Sebastiano Vigna's SplitMix64: a 64-bit state, add-xor-shift-multiply
/// generator that passes BigCrush. Used for seeded test data and anywhere a
/// cryptographic stream is unnecessary.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::seed_from_u64(12345);
        let mut b = SplitMix64::seed_from_u64(12345);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567, cross-checked against the
        // published SplitMix64 reference implementation.
        let mut rng = SplitMix64::seed_from_u64(1234567);
        assert_eq!(rng.next_u64(), 0x599ed017fb08fc85);
        assert_eq!(rng.next_u64(), 0x2c73f08458540fa5);
    }

    #[test]
    fn fill_bytes_matches_u64_stream() {
        let mut a = SplitMix64::seed_from_u64(9);
        let mut buf = [0u8; 24];
        a.fill_bytes(&mut buf);
        let mut b = SplitMix64::seed_from_u64(9);
        for i in 0..3 {
            assert_eq!(
                &buf[i * 8..(i + 1) * 8],
                b.next_u64().to_le_bytes().as_slice()
            );
        }
    }

    #[test]
    fn fill_bytes_handles_partial_chunks() {
        let mut a = SplitMix64::seed_from_u64(9);
        let mut short = [0u8; 5];
        a.fill_bytes(&mut short);
        let mut b = SplitMix64::seed_from_u64(9);
        assert_eq!(short, b.next_u64().to_le_bytes()[..5]);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SplitMix64::seed_from_u64(77);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3..=7);
            assert!((3..=7).contains(&w));
        }
        assert_eq!(rng.gen_range(5..6), 5);
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = SplitMix64::seed_from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let _ = rng.gen_range(3..3);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut rng = SplitMix64::seed_from_u64(5);
        let mut cloned = rng.clone();
        fn take<R: RngCore>(mut r: R) -> u64 {
            r.next_u64()
        }
        assert_eq!(take(&mut rng), cloned.next_u64());
    }
}
