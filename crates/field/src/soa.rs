//! Flat structure-of-limbs (SoA) batches of field elements.
//!
//! The array-of-structs layout (`&[Fr]`) interleaves the four limbs of each
//! element, so a loop over elements strides 32 bytes between same-position
//! limbs. [`SoaVec`] stores limb 0 of every element contiguously, then limb
//! 1, and so on — the layout a SIMD unit (or a GPU's coalesced loads) wants.
//! Combined with the 4-way interleaved CIOS kernel
//! ([`crate::limb::mont_mul_x4`]), the per-element carry chains stop
//! serializing the whole loop: four independent products advance in
//! lockstep, and `par_map` bodies that operate on `SoaVec` chunks
//! autovectorize without per-element shuffles.
//!
//! Every operation is bit-identical to its scalar counterpart — the layout
//! changes, the arithmetic does not — which the property tests in
//! `tests/hot_path_kernels.rs` check against the schoolbook oracle.

use core::marker::PhantomData;

use crate::limb::{self, Limbs, NLIMBS};
use crate::MontLimbs;

/// A batch of field elements stored limb-plane by limb-plane.
///
/// # Examples
///
/// ```
/// use batchzk_field::{soa::SoaVec, Field, Fr};
///
/// let a: Vec<Fr> = (1..9u64).map(Fr::from).collect();
/// let b: Vec<Fr> = (11..19u64).map(Fr::from).collect();
/// let mut s = SoaVec::from_slice(&a);
/// s.mul_pairwise(&SoaVec::from_slice(&b));
/// let expect: Vec<Fr> = a.iter().zip(&b).map(|(x, y)| *x * *y).collect();
/// assert_eq!(s.to_vec(), expect);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoaVec<F> {
    /// `planes[l][i]` is limb `l` of element `i`.
    planes: [Vec<u64>; NLIMBS],
    len: usize,
    _marker: PhantomData<F>,
}

impl<F: MontLimbs> SoaVec<F> {
    /// Transposes a slice of elements into limb planes.
    pub fn from_slice(elems: &[F]) -> Self {
        let mut planes: [Vec<u64>; NLIMBS] =
            core::array::from_fn(|_| Vec::with_capacity(elems.len()));
        for &e in elems {
            let l = e.mont_limbs();
            for (plane, limb) in planes.iter_mut().zip(l) {
                plane.push(limb);
            }
        }
        Self {
            planes,
            len: elems.len(),
            _marker: PhantomData,
        }
    }

    /// Number of elements in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Gathers element `i` back out of the planes.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> F {
        assert!(i < self.len, "SoaVec index out of range");
        let limbs: Limbs = core::array::from_fn(|l| self.planes[l][i]);
        F::from_mont_limbs_unchecked(limbs)
    }

    /// Transposes back to the array-of-structs layout.
    pub fn to_vec(&self) -> Vec<F> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    #[inline]
    fn gather(&self, i: usize) -> Limbs {
        core::array::from_fn(|l| self.planes[l][i])
    }

    #[inline]
    fn scatter(&mut self, i: usize, limbs: Limbs) {
        for (plane, limb) in self.planes.iter_mut().zip(limbs) {
            plane[i] = limb;
        }
    }

    /// Pairwise product `self[i] *= rhs[i]`, four lanes at a time through
    /// the interleaved CIOS kernel.
    ///
    /// # Panics
    ///
    /// Panics if the batches have different lengths.
    pub fn mul_pairwise(&mut self, rhs: &Self) {
        assert_eq!(self.len, rhs.len, "SoaVec length mismatch");
        let quads = self.len / 4;
        for q in 0..quads {
            let i = q * 4;
            let a: [Limbs; 4] = core::array::from_fn(|k| self.gather(i + k));
            let b: [Limbs; 4] = core::array::from_fn(|k| rhs.gather(i + k));
            let out = limb::mont_mul_x4(&a, &b, &F::P, F::NEG_INV);
            for (k, limbs) in out.into_iter().enumerate() {
                self.scatter(i + k, limbs);
            }
        }
        for i in quads * 4..self.len {
            let prod = limb::mont_mul(&self.gather(i), &rhs.gather(i), &F::P, F::NEG_INV);
            self.scatter(i, prod);
        }
    }

    /// Pairwise sum `self[i] += rhs[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the batches have different lengths.
    pub fn add_pairwise(&mut self, rhs: &Self) {
        assert_eq!(self.len, rhs.len, "SoaVec length mismatch");
        for i in 0..self.len {
            let sum = limb::add_mod(&self.gather(i), &rhs.gather(i), &F::P);
            self.scatter(i, sum);
        }
    }

    /// Scales every element by `s` (four lanes at a time).
    pub fn scale(&mut self, s: F) {
        let sl = s.mont_limbs();
        let quads = self.len / 4;
        for q in 0..quads {
            let i = q * 4;
            let a: [Limbs; 4] = core::array::from_fn(|k| self.gather(i + k));
            let b = [sl; 4];
            let out = limb::mont_mul_x4(&a, &b, &F::P, F::NEG_INV);
            for (k, limbs) in out.into_iter().enumerate() {
                self.scatter(i + k, limbs);
            }
        }
        for i in quads * 4..self.len {
            let prod = limb::mont_mul(&self.gather(i), &sl, &F::P, F::NEG_INV);
            self.scatter(i, prod);
        }
    }

    /// Inner product `Σ self[i]·rhs[i]` through the lazy-reduction
    /// accumulate path (unreduced products, one final canonicalization).
    ///
    /// # Panics
    ///
    /// Panics if the batches have different lengths.
    pub fn dot(&self, rhs: &Self) -> F {
        assert_eq!(self.len, rhs.len, "SoaVec length mismatch");
        let mut acc = [0u64; NLIMBS];
        for i in 0..self.len {
            let prod = limb::mont_mul_unreduced(&self.gather(i), &rhs.gather(i), &F::P, F::NEG_INV);
            acc = limb::add_lazy(&acc, &prod, &F::P2);
        }
        F::from_mont_limbs_unchecked(limb::reduce_once(&acc, &F::P))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Field, Fr, SplitMix64};

    fn samples(seed: u64, n: usize) -> Vec<Fr> {
        let mut rng = SplitMix64::seed_from_u64(seed);
        (0..n).map(|_| Fr::random(&mut rng)).collect()
    }

    #[test]
    fn roundtrip_preserves_elements() {
        for n in [0usize, 1, 3, 4, 5, 8, 17] {
            let v = samples(n as u64, n);
            let s = SoaVec::from_slice(&v);
            assert_eq!(s.len(), n);
            assert_eq!(s.to_vec(), v);
        }
    }

    #[test]
    fn mul_pairwise_matches_scalar() {
        for n in [1usize, 4, 7, 16, 33] {
            let a = samples(100 + n as u64, n);
            let b = samples(200 + n as u64, n);
            let mut s = SoaVec::from_slice(&a);
            s.mul_pairwise(&SoaVec::from_slice(&b));
            let expect: Vec<Fr> = a.iter().zip(&b).map(|(x, y)| *x * *y).collect();
            assert_eq!(s.to_vec(), expect, "n={n}");
        }
    }

    #[test]
    fn add_and_scale_match_scalar() {
        let a = samples(1, 13);
        let b = samples(2, 13);
        let c = samples(3, 1)[0];
        let mut s = SoaVec::from_slice(&a);
        s.add_pairwise(&SoaVec::from_slice(&b));
        s.scale(c);
        let expect: Vec<Fr> = a.iter().zip(&b).map(|(x, y)| (*x + *y) * c).collect();
        assert_eq!(s.to_vec(), expect);
    }

    #[test]
    fn dot_matches_naive() {
        for n in [0usize, 1, 5, 32] {
            let a = samples(300 + n as u64, n);
            let b = samples(400 + n as u64, n);
            let naive: Fr = a.iter().zip(&b).map(|(x, y)| *x * *y).sum();
            let got = SoaVec::from_slice(&a).dot(&SoaVec::from_slice(&b));
            assert_eq!(got, naive, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut a = SoaVec::from_slice(&samples(1, 4));
        a.mul_pairwise(&SoaVec::from_slice(&samples(2, 5)));
    }
}
