//! # batchzk-field
//!
//! 256-bit prime-field arithmetic for the BatchZK reproduction: the BN254
//! scalar field [`Fr`] (used by every ZKP module) and base field [`Fq`] (used
//! by the MSM baseline's curve), plus batch inversion and a radix-2 NTT for
//! the old-protocol (Groth16-style) baseline.
//!
//! Field elements are stored in Montgomery form over four 64-bit limbs. All
//! per-field constants are derived from the modulus at compile time — see
//! [`mod@limb`] — and cross-checked against schoolbook arithmetic in tests.
//!
//! # Examples
//!
//! ```
//! use batchzk_field::{Field, Fr, batch_invert};
//!
//! # fn main() {
//! let a = Fr::from(3u64);
//! let b = Fr::from(4u64);
//! assert_eq!((a + b) * (a - b), a.square() - b.square());
//!
//! let mut xs = vec![a, b];
//! batch_invert(&mut xs);
//! assert_eq!(xs[0] * a, Fr::ONE);
//! # }
//! ```

pub mod limb;
mod mont;
mod traits;

mod batch;
mod fq;
mod fr;
pub mod ntt;

pub use batch::batch_invert;
pub use fq::Fq;
pub use fr::Fr;
pub use ntt::NttDomain;
pub use traits::{Field, field_from_i64};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_fr() -> impl Strategy<Value = Fr> {
        any::<[u8; 64]>().prop_map(|b| Fr::from_uniform_bytes(&b))
    }

    proptest! {
        #[test]
        fn add_commutes(a in arb_fr(), b in arb_fr()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn add_associates(a in arb_fr(), b in arb_fr(), c in arb_fr()) {
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn mul_commutes(a in arb_fr(), b in arb_fr()) {
            prop_assert_eq!(a * b, b * a);
        }

        #[test]
        fn mul_associates(a in arb_fr(), b in arb_fr(), c in arb_fr()) {
            prop_assert_eq!((a * b) * c, a * (b * c));
        }

        #[test]
        fn mul_distributes(a in arb_fr(), b in arb_fr(), c in arb_fr()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn sub_is_add_neg(a in arb_fr(), b in arb_fr()) {
            prop_assert_eq!(a - b, a + (-b));
        }

        #[test]
        fn inverse_cancels(a in arb_fr()) {
            prop_assume!(!a.is_zero());
            prop_assert_eq!(a * a.inverse().unwrap(), Fr::ONE);
        }

        #[test]
        fn square_is_self_mul(a in arb_fr()) {
            prop_assert_eq!(a.square(), a * a);
        }

        #[test]
        fn double_is_add_self(a in arb_fr()) {
            prop_assert_eq!(a.double(), a + a);
        }

        #[test]
        fn bytes_roundtrip(a in arb_fr()) {
            prop_assert_eq!(Fr::from_bytes(&a.to_bytes()), Some(a));
        }

        #[test]
        fn batch_invert_matches_pointwise(v in proptest::collection::vec(arb_fr(), 0..32)) {
            let mut batched = v.clone();
            batch_invert(&mut batched);
            for (orig, inv) in v.iter().zip(&batched) {
                if orig.is_zero() {
                    prop_assert_eq!(*inv, Fr::ZERO);
                } else {
                    prop_assert_eq!(*inv, orig.inverse().unwrap());
                }
            }
        }

        #[test]
        fn pow_adds_exponents(a in arb_fr(), x in 0u64..1000, y in 0u64..1000) {
            prop_assert_eq!(a.pow(&[x]) * a.pow(&[y]), a.pow(&[x + y]));
        }
    }
}
