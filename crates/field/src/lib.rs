//! # batchzk-field
//!
//! 256-bit prime-field arithmetic for the BatchZK reproduction: the BN254
//! scalar field [`Fr`] (used by every ZKP module) and base field [`Fq`] (used
//! by the MSM baseline's curve), plus batch inversion and a radix-2 NTT for
//! the old-protocol (Groth16-style) baseline.
//!
//! Field elements are stored in Montgomery form over four 64-bit limbs. All
//! per-field constants are derived from the modulus at compile time — see
//! [`mod@limb`] — and cross-checked against schoolbook arithmetic in tests.
//!
//! # Examples
//!
//! ```
//! use batchzk_field::{Field, Fr, batch_invert};
//!
//! # fn main() {
//! let a = Fr::from(3u64);
//! let b = Fr::from(4u64);
//! assert_eq!((a + b) * (a - b), a.square() - b.square());
//!
//! let mut xs = vec![a, b];
//! batch_invert(&mut xs);
//! assert_eq!(xs[0] * a, Fr::ONE);
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod limb;
mod mont;
pub mod rng;
mod traits;

mod batch;
mod fq;
mod fr;
pub mod lut;
pub mod ntt;
pub mod soa;

pub use batch::batch_invert;
pub use fq::Fq;
pub use fr::Fr;
pub use ntt::NttDomain;
pub use rng::{RngCore, SplitMix64};
pub use traits::{field_from_i64, Field, MontLimbs};

#[cfg(test)]
mod randomized_tests {
    //! Deterministic randomized checks of the field axioms: each test draws
    //! a few hundred seeded samples, which covers the same algebraic
    //! identities the original property-based suite did without an external
    //! test-framework dependency.

    use super::*;

    const CASES: usize = 256;

    fn samples(seed: u64, n: usize) -> Vec<Fr> {
        let mut rng = SplitMix64::seed_from_u64(seed);
        (0..n).map(|_| Fr::random(&mut rng)).collect()
    }

    #[test]
    fn add_commutes_and_associates() {
        let v = samples(0xA0, 3 * CASES);
        for t in v.chunks_exact(3) {
            let (a, b, c) = (t[0], t[1], t[2]);
            assert_eq!(a + b, b + a);
            assert_eq!((a + b) + c, a + (b + c));
        }
    }

    #[test]
    fn mul_commutes_associates_distributes() {
        let v = samples(0xA1, 3 * CASES);
        for t in v.chunks_exact(3) {
            let (a, b, c) = (t[0], t[1], t[2]);
            assert_eq!(a * b, b * a);
            assert_eq!((a * b) * c, a * (b * c));
            assert_eq!(a * (b + c), a * b + a * c);
        }
    }

    #[test]
    fn sub_is_add_neg() {
        let v = samples(0xA2, 2 * CASES);
        for t in v.chunks_exact(2) {
            assert_eq!(t[0] - t[1], t[0] + (-t[1]));
        }
    }

    #[test]
    fn inverse_cancels() {
        for a in samples(0xA3, CASES) {
            if !a.is_zero() {
                assert_eq!(a * a.inverse().unwrap(), Fr::ONE);
            }
        }
    }

    #[test]
    fn square_and_double_identities() {
        for a in samples(0xA4, CASES) {
            assert_eq!(a.square(), a * a);
            assert_eq!(a.double(), a + a);
        }
    }

    #[test]
    fn bytes_roundtrip() {
        for a in samples(0xA5, CASES) {
            assert_eq!(Fr::from_bytes(&a.to_bytes()), Some(a));
        }
    }

    #[test]
    fn batch_invert_matches_pointwise() {
        let mut rng = SplitMix64::seed_from_u64(0xA6);
        for len in 0..32usize {
            let mut v: Vec<Fr> = (0..len).map(|_| Fr::random(&mut rng)).collect();
            // Sprinkle in zeros, which batch inversion must pass through.
            if len > 2 {
                v[len / 2] = Fr::ZERO;
            }
            let mut batched = v.clone();
            batch_invert(&mut batched);
            for (orig, inv) in v.iter().zip(&batched) {
                if orig.is_zero() {
                    assert_eq!(*inv, Fr::ZERO);
                } else {
                    assert_eq!(*inv, orig.inverse().unwrap());
                }
            }
        }
    }

    #[test]
    fn pow_adds_exponents() {
        let mut rng = SplitMix64::seed_from_u64(0xA7);
        for _ in 0..64 {
            let a = Fr::random(&mut rng);
            let x = rng.gen_range(0..1000) as u64;
            let y = rng.gen_range(0..1000) as u64;
            assert_eq!(a.pow(&[x]) * a.pow(&[y]), a.pow(&[x + y]));
        }
    }
}
