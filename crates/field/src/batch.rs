//! Batch inversion (Montgomery's trick): `n` inversions for the price of one
//! plus `3n` multiplications.

use crate::Field;

/// Inverts every non-zero element of `values` in place; zeros are left
/// untouched (matching the convention that `0^{-1}` is unused downstream).
///
/// # Examples
///
/// ```
/// use batchzk_field::{batch_invert, Field, Fr};
///
/// let mut v = vec![Fr::from(2u64), Fr::ZERO, Fr::from(4u64)];
/// batch_invert(&mut v);
/// assert_eq!(v[0] * Fr::from(2u64), Fr::ONE);
/// assert_eq!(v[1], Fr::ZERO);
/// assert_eq!(v[2] * Fr::from(4u64), Fr::ONE);
/// ```
pub fn batch_invert<F: Field>(values: &mut [F]) {
    // Forward pass: prefix products of the non-zero entries.
    let mut prefix = Vec::with_capacity(values.len());
    let mut acc = F::ONE;
    for v in values.iter() {
        prefix.push(acc);
        if !v.is_zero() {
            acc *= *v;
        }
    }
    // One real inversion.
    let mut inv = match acc.inverse() {
        Some(inv) => inv,
        None => return, // acc == 0 only possible when every entry is zero
    };
    // Backward pass.
    for (v, p) in values.iter_mut().zip(prefix).rev() {
        if v.is_zero() {
            continue;
        }
        let orig = *v;
        *v = inv * p;
        inv *= orig;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fr;
    use crate::SplitMix64;

    #[test]
    fn matches_pointwise_inversion() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let originals: Vec<Fr> = (0..64).map(|_| Fr::random(&mut rng)).collect();
        let mut batch = originals.clone();
        batch_invert(&mut batch);
        for (o, b) in originals.iter().zip(&batch) {
            assert_eq!(o.inverse().unwrap(), *b);
        }
    }

    #[test]
    fn zeros_are_skipped() {
        let mut v = vec![Fr::ZERO, Fr::from(3u64), Fr::ZERO, Fr::from(5u64), Fr::ZERO];
        batch_invert(&mut v);
        assert_eq!(v[0], Fr::ZERO);
        assert_eq!(v[2], Fr::ZERO);
        assert_eq!(v[4], Fr::ZERO);
        assert_eq!(v[1] * Fr::from(3u64), Fr::ONE);
        assert_eq!(v[3] * Fr::from(5u64), Fr::ONE);
    }

    #[test]
    fn empty_and_all_zero_are_noops() {
        let mut empty: Vec<Fr> = vec![];
        batch_invert(&mut empty);
        let mut zeros = vec![Fr::ZERO; 8];
        batch_invert(&mut zeros);
        assert!(zeros.iter().all(|z| z.is_zero()));
    }
}
