//! Low-level multi-precision limb arithmetic on little-endian `[u64; 4]`
//! values.
//!
//! These helpers are the building blocks for the Montgomery field
//! implementation in the `mont` module. Everything here is `const fn` so the
//! per-field constants (`R`, `R2`, `INV`, …) can be derived from the modulus
//! at compile time instead of being hand-copied magic numbers.

/// Number of 64-bit limbs in a field element.
pub const NLIMBS: usize = 4;

/// A 256-bit little-endian integer.
pub type Limbs = [u64; NLIMBS];

/// Computes `a + b + carry`, returning the low 64 bits and the new carry.
#[inline(always)]
pub const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = (a as u128) + (b as u128) + (carry as u128);
    (t as u64, (t >> 64) as u64)
}

/// Computes `a - b - borrow`, returning the low 64 bits and the new borrow
/// (0 or 1).
#[inline(always)]
pub const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128)
        .wrapping_sub(b as u128)
        .wrapping_sub(borrow as u128);
    (t as u64, ((t >> 64) as u64) & 1)
}

/// Computes `a + b * c + carry`, returning the low 64 bits and the new carry.
#[inline(always)]
pub const fn mac(a: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let t = (a as u128) + (b as u128) * (c as u128) + (carry as u128);
    (t as u64, (t >> 64) as u64)
}

/// Returns `true` if `a >= b` as 256-bit integers.
#[inline]
pub const fn geq(a: &Limbs, b: &Limbs) -> bool {
    let mut i = NLIMBS;
    while i > 0 {
        i -= 1;
        if a[i] > b[i] {
            return true;
        }
        if a[i] < b[i] {
            return false;
        }
    }
    true
}

/// Returns `true` if all limbs are zero.
#[inline]
pub const fn is_zero(a: &Limbs) -> bool {
    a[0] == 0 && a[1] == 0 && a[2] == 0 && a[3] == 0
}

/// Adds two 256-bit integers, returning the sum and the carry-out bit.
#[inline]
pub const fn add_wide(a: &Limbs, b: &Limbs) -> (Limbs, u64) {
    let (r0, c) = adc(a[0], b[0], 0);
    let (r1, c) = adc(a[1], b[1], c);
    let (r2, c) = adc(a[2], b[2], c);
    let (r3, c) = adc(a[3], b[3], c);
    ([r0, r1, r2, r3], c)
}

/// Subtracts `b` from `a`, returning the difference and the borrow-out bit.
#[inline]
pub const fn sub_wide(a: &Limbs, b: &Limbs) -> (Limbs, u64) {
    let (r0, bw) = sbb(a[0], b[0], 0);
    let (r1, bw) = sbb(a[1], b[1], bw);
    let (r2, bw) = sbb(a[2], b[2], bw);
    let (r3, bw) = sbb(a[3], b[3], bw);
    ([r0, r1, r2, r3], bw)
}

/// Modular addition of values already reduced below `p` (`a, b < p`).
#[inline]
pub const fn add_mod(a: &Limbs, b: &Limbs, p: &Limbs) -> Limbs {
    let (sum, carry) = add_wide(a, b);
    if carry != 0 || geq(&sum, p) {
        sub_wide(&sum, p).0
    } else {
        sum
    }
}

/// Modular subtraction of values already reduced below `p` (`a, b < p`).
#[inline]
pub const fn sub_mod(a: &Limbs, b: &Limbs, p: &Limbs) -> Limbs {
    let (diff, borrow) = sub_wide(a, b);
    if borrow != 0 {
        add_wide(&diff, p).0
    } else {
        diff
    }
}

/// Computes `-p^{-1} mod 2^64` for an odd modulus `p` via Newton iteration.
pub const fn mont_inv64(p0: u64) -> u64 {
    // Newton's method doubles the number of correct low bits per step;
    // 6 steps suffice for 64 bits, we run a few extra for clarity.
    let mut inv = 1u64;
    let mut i = 0;
    while i < 63 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(p0.wrapping_mul(inv)));
        i += 1;
    }
    inv.wrapping_neg()
}

/// Computes `2^k mod p` by repeated modular doubling (compile-time use).
pub const fn pow2_mod(k: usize, p: &Limbs) -> Limbs {
    let mut x: Limbs = [1, 0, 0, 0];
    let mut i = 0;
    while i < k {
        x = add_mod(&x, &x, p);
        i += 1;
    }
    x
}

/// Montgomery multiplication (CIOS): returns `a * b * 2^{-256} mod p`.
///
/// Both inputs must be below `p`; the result is below `p`. `inv` is
/// `-p^{-1} mod 2^64` as produced by [`mont_inv64`].
#[inline]
pub const fn mont_mul(a: &Limbs, b: &Limbs, p: &Limbs, inv: u64) -> Limbs {
    let mut t = [0u64; NLIMBS + 2];
    let mut i = 0;
    while i < NLIMBS {
        // t += a[i] * b
        let mut carry = 0u64;
        let mut j = 0;
        while j < NLIMBS {
            let (lo, c) = mac(t[j], a[i], b[j], carry);
            t[j] = lo;
            carry = c;
            j += 1;
        }
        let (s, c) = adc(t[NLIMBS], carry, 0);
        t[NLIMBS] = s;
        t[NLIMBS + 1] = c;

        // Reduce: m chosen so the lowest limb of t + m*p is zero, then
        // shift down one limb.
        let m = t[0].wrapping_mul(inv);
        let (_, mut carry) = mac(t[0], m, p[0], 0);
        let mut j = 1;
        while j < NLIMBS {
            let (lo, c) = mac(t[j], m, p[j], carry);
            t[j - 1] = lo;
            carry = c;
            j += 1;
        }
        let (s, c) = adc(t[NLIMBS], carry, 0);
        t[NLIMBS - 1] = s;
        t[NLIMBS] = t[NLIMBS + 1] + c;
        t[NLIMBS + 1] = 0;
        i += 1;
    }
    let r: Limbs = [t[0], t[1], t[2], t[3]];
    if t[NLIMBS] != 0 || geq(&r, p) {
        sub_wide(&r, p).0
    } else {
        r
    }
}

/// Montgomery multiplication without the final conditional subtraction —
/// the *lazy reduction* kernel.
///
/// # Contract
///
/// Requires `p < 2^254` (true of both BN254 fields) and `a, b < 2p`. The
/// result is then `a * b * 2^{-256} mod p`, represented by some value
/// `< 2p` — i.e. it stays inside the redundant `[0, 2p)` domain, so chains
/// of multiply-accumulate steps can defer the canonicalizing subtraction to
/// a single [`reduce_once`] at the very end. The bound follows from CIOS:
/// the output is `(a·b + m·p)/2^256 < (4p² + 2^256·p)/2^256 < 2p` whenever
/// `4p < 2^256`.
#[inline]
pub const fn mont_mul_unreduced(a: &Limbs, b: &Limbs, p: &Limbs, inv: u64) -> Limbs {
    let mut t = [0u64; NLIMBS + 2];
    let mut i = 0;
    while i < NLIMBS {
        let mut carry = 0u64;
        let mut j = 0;
        while j < NLIMBS {
            let (lo, c) = mac(t[j], a[i], b[j], carry);
            t[j] = lo;
            carry = c;
            j += 1;
        }
        let (s, c) = adc(t[NLIMBS], carry, 0);
        t[NLIMBS] = s;
        t[NLIMBS + 1] = c;

        let m = t[0].wrapping_mul(inv);
        let (_, mut carry) = mac(t[0], m, p[0], 0);
        let mut j = 1;
        while j < NLIMBS {
            let (lo, c) = mac(t[j], m, p[j], carry);
            t[j - 1] = lo;
            carry = c;
            j += 1;
        }
        let (s, c) = adc(t[NLIMBS], carry, 0);
        t[NLIMBS - 1] = s;
        t[NLIMBS] = t[NLIMBS + 1] + c;
        t[NLIMBS + 1] = 0;
        i += 1;
    }
    // For p < 2^254 and inputs < 2p the result is < 2p < 2^255, so the
    // carry limb is always zero here — no subtraction needed.
    [t[0], t[1], t[2], t[3]]
}

/// Addition in the redundant `[0, 2p)` domain: both inputs `< 2p`, result
/// `< 2p`. `two_p` must be `2p` (no overflow for `p < 2^254`).
#[inline]
pub const fn add_lazy(a: &Limbs, b: &Limbs, two_p: &Limbs) -> Limbs {
    // a + b < 4p < 2^256 for p < 2^254, so the carry-out is always zero.
    let (sum, _carry) = add_wide(a, b);
    if geq(&sum, two_p) {
        sub_wide(&sum, two_p).0
    } else {
        sum
    }
}

/// Canonicalizes a redundant-domain value: maps `[0, 2p)` onto `[0, p)` with
/// one conditional subtraction. The exit gate of every lazy-reduction chain.
#[inline]
pub const fn reduce_once(a: &Limbs, p: &Limbs) -> Limbs {
    if geq(a, p) {
        sub_wide(a, p).0
    } else {
        *a
    }
}

/// Doubles `2p` out of the modulus: `two_p = 2p`, valid for `p < 2^255`.
#[inline]
pub const fn double_wide(p: &Limbs) -> Limbs {
    add_wide(p, p).0
}

/// Four independent Montgomery multiplications with interleaved inner loops
/// (4-way CIOS unrolling).
///
/// Processing four products in lockstep breaks the carry-chain serialization
/// of a single CIOS pass: each of the four accumulators advances one `mac`
/// per lane per step, giving the compiler independent instruction streams to
/// schedule (and, with the SoA layout in `batchzk_field::soa`, contiguous
/// per-limb loads). Inputs below `p`; results below `p` — byte-identical to
/// four [`mont_mul`] calls.
#[inline]
pub fn mont_mul_x4(a: &[Limbs; 4], b: &[Limbs; 4], p: &Limbs, inv: u64) -> [Limbs; 4] {
    let mut t = [[0u64; NLIMBS + 2]; 4];
    // Transpose `a` so each outer step consumes one limb column across lanes.
    let a_cols: [[u64; 4]; NLIMBS] =
        core::array::from_fn(|i| core::array::from_fn(|lane| a[lane][i]));
    for ai in a_cols {
        // t += a[i] * b, four lanes in lockstep.
        let mut carry = [0u64; 4];
        for j in 0..NLIMBS {
            for lane in 0..4 {
                let (lo, c) = mac(t[lane][j], ai[lane], b[lane][j], carry[lane]);
                t[lane][j] = lo;
                carry[lane] = c;
            }
        }
        for lane in 0..4 {
            let (s, c) = adc(t[lane][NLIMBS], carry[lane], 0);
            t[lane][NLIMBS] = s;
            t[lane][NLIMBS + 1] = c;
        }
        // Reduction step, four lanes in lockstep.
        let mut m = [0u64; 4];
        let mut carry = [0u64; 4];
        for lane in 0..4 {
            m[lane] = t[lane][0].wrapping_mul(inv);
            let (_, c) = mac(t[lane][0], m[lane], p[0], 0);
            carry[lane] = c;
        }
        for j in 1..NLIMBS {
            for lane in 0..4 {
                let (lo, c) = mac(t[lane][j], m[lane], p[j], carry[lane]);
                t[lane][j - 1] = lo;
                carry[lane] = c;
            }
        }
        for lane in 0..4 {
            let (s, c) = adc(t[lane][NLIMBS], carry[lane], 0);
            t[lane][NLIMBS - 1] = s;
            t[lane][NLIMBS] = t[lane][NLIMBS + 1] + c;
            t[lane][NLIMBS + 1] = 0;
        }
    }
    let mut out = [[0u64; NLIMBS]; 4];
    for lane in 0..4 {
        let r: Limbs = [t[lane][0], t[lane][1], t[lane][2], t[lane][3]];
        out[lane] = if t[lane][NLIMBS] != 0 || geq(&r, p) {
            sub_wide(&r, p).0
        } else {
            r
        };
    }
    out
}

/// Schoolbook 256×256 → 512-bit multiply followed by binary long division:
/// an independent, obviously-correct oracle for Montgomery multiplication.
///
/// Orders of magnitude slower than [`mont_mul`]; exists so property tests can
/// check every fast kernel against arithmetic that shares no code with them.
pub fn naive_mul_mod(a: &Limbs, b: &Limbs, p: &Limbs) -> Limbs {
    let mut wide = [0u64; 8];
    for i in 0..4 {
        let mut carry = 0u64;
        for j in 0..4 {
            let (lo, c) = mac(wide[i + j], a[i], b[j], carry);
            wide[i + j] = lo;
            carry = c;
        }
        wide[i + 4] = carry;
    }
    // Binary reduction: process bits from the top.
    let mut rem = [0u64; 4];
    for bit in (0..512).rev() {
        // rem <<= 1 (top bit of rem is always 0 because rem < p < 2^255)
        let mut carry = (wide[bit / 64] >> (bit % 64)) & 1;
        for limb_ in rem.iter_mut() {
            let new_carry = *limb_ >> 63;
            *limb_ = (*limb_ << 1) | carry;
            carry = new_carry;
        }
        if geq(&rem, p) {
            rem = sub_wide(&rem, p).0;
        }
    }
    rem
}

/// Shifts a 256-bit integer right by `k` bits (`k < 256`).
#[inline]
pub const fn shr(a: &Limbs, k: usize) -> Limbs {
    let limb_shift = k / 64;
    let bit_shift = k % 64;
    let mut out = [0u64; NLIMBS];
    let mut i = 0;
    while i + limb_shift < NLIMBS {
        let lo = a[i + limb_shift] >> bit_shift;
        let hi = if bit_shift > 0 && i + limb_shift + 1 < NLIMBS {
            a[i + limb_shift + 1] << (64 - bit_shift)
        } else {
            0
        };
        out[i] = lo | hi;
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_carries() {
        assert_eq!(adc(u64::MAX, 1, 0), (0, 1));
        assert_eq!(adc(u64::MAX, u64::MAX, 1), (u64::MAX, 1));
        assert_eq!(adc(1, 2, 3), (6, 0));
    }

    #[test]
    fn sbb_borrows() {
        assert_eq!(sbb(0, 1, 0), (u64::MAX, 1));
        assert_eq!(sbb(5, 3, 1), (1, 0));
        assert_eq!(sbb(0, 0, 1), (u64::MAX, 1));
    }

    #[test]
    fn mac_wide() {
        // u64::MAX^2 + u64::MAX + u64::MAX = 2^128 - 1
        assert_eq!(
            mac(u64::MAX, u64::MAX, u64::MAX, u64::MAX),
            (u64::MAX, u64::MAX)
        );
        assert_eq!(mac(1, 2, 3, 4), (11, 0));
    }

    #[test]
    fn geq_ordering() {
        assert!(geq(&[0, 0, 0, 1], &[u64::MAX, u64::MAX, u64::MAX, 0]));
        assert!(geq(&[5, 0, 0, 0], &[5, 0, 0, 0]));
        assert!(!geq(&[4, 0, 0, 0], &[5, 0, 0, 0]));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = [u64::MAX, 7, 0, 1];
        let b = [3, u64::MAX, 2, 0];
        let (s, c) = add_wide(&a, &b);
        assert_eq!(c, 0);
        let (d, bw) = sub_wide(&s, &b);
        assert_eq!(bw, 0);
        assert_eq!(d, a);
    }

    #[test]
    fn mont_inv64_is_neg_inverse() {
        for p0 in [1u64, 3, 0x43e1f593f0000001, 0x3c208c16d87cfd47, u64::MAX] {
            let inv = mont_inv64(p0);
            assert_eq!(p0.wrapping_mul(inv.wrapping_neg()), 1, "p0={p0}");
        }
    }

    #[test]
    fn pow2_mod_small() {
        // Modulo 7: 2^k cycles 1,2,4,1,2,4,...
        let p = [7, 0, 0, 0];
        assert_eq!(pow2_mod(0, &p), [1, 0, 0, 0]);
        assert_eq!(pow2_mod(1, &p), [2, 0, 0, 0]);
        assert_eq!(pow2_mod(3, &p), [1, 0, 0, 0]);
        assert_eq!(pow2_mod(256, &p), [2, 0, 0, 0]); // 256 mod 3 == 1 -> 2
    }

    // BN254 Fr modulus, used to exercise the Montgomery kernels on a real
    // 254-bit prime.
    const P: Limbs = [
        0x43e1f593f0000001,
        0x2833e84879b97091,
        0xb85045b68181585d,
        0x30644e72e131a029,
    ];

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn rand_below(limit: &Limbs, state: &mut u64) -> Limbs {
        loop {
            let c = [
                splitmix(state),
                splitmix(state),
                splitmix(state),
                splitmix(state) >> 1,
            ];
            if !geq(&c, limit) {
                return c;
            }
        }
    }

    #[test]
    fn unreduced_mul_stays_below_two_p_and_matches_oracle() {
        let inv = mont_inv64(P[0]);
        let two_p = double_wide(&P);
        let mut st = 7u64;
        for _ in 0..200 {
            // Inputs anywhere in the redundant [0, 2p) domain.
            let a = rand_below(&two_p, &mut st);
            let b = rand_below(&two_p, &mut st);
            let u = mont_mul_unreduced(&a, &b, &P, inv);
            assert!(!geq(&u, &two_p), "unreduced result escaped [0, 2p)");
            // Canonicalized, it must equal the fully reduced CIOS on the
            // canonicalized inputs.
            let ar = reduce_once(&a, &P);
            let br = reduce_once(&b, &P);
            assert_eq!(reduce_once(&u, &P), mont_mul(&ar, &br, &P, inv));
        }
    }

    #[test]
    fn add_lazy_closed_over_redundant_domain() {
        let two_p = double_wide(&P);
        let mut st = 11u64;
        for _ in 0..200 {
            let a = rand_below(&two_p, &mut st);
            let b = rand_below(&two_p, &mut st);
            let s = add_lazy(&a, &b, &two_p);
            assert!(!geq(&s, &two_p));
            // Same value mod p as the canonical modular addition.
            let expect = add_mod(&reduce_once(&a, &P), &reduce_once(&b, &P), &P);
            assert_eq!(reduce_once(&s, &P), expect);
        }
    }

    #[test]
    fn mont_mul_x4_matches_scalar_lanes() {
        let inv = mont_inv64(P[0]);
        let mut st = 13u64;
        for _ in 0..50 {
            let a = [
                rand_below(&P, &mut st),
                rand_below(&P, &mut st),
                rand_below(&P, &mut st),
                rand_below(&P, &mut st),
            ];
            let b = [
                rand_below(&P, &mut st),
                rand_below(&P, &mut st),
                rand_below(&P, &mut st),
                rand_below(&P, &mut st),
            ];
            let quad = mont_mul_x4(&a, &b, &P, inv);
            for lane in 0..4 {
                assert_eq!(quad[lane], mont_mul(&a[lane], &b[lane], &P, inv));
            }
        }
    }

    #[test]
    fn naive_oracle_agrees_with_mont_mul() {
        // mont_mul(a, b) = a·b·2^{-256}; multiplying by R = 2^256 mod p on
        // the oracle side closes the loop without any Montgomery code.
        let inv = mont_inv64(P[0]);
        let r = pow2_mod(256, &P);
        let mut st = 17u64;
        for _ in 0..50 {
            let a = rand_below(&P, &mut st);
            let b = rand_below(&P, &mut st);
            let mont = mont_mul(&a, &b, &P, inv);
            assert_eq!(naive_mul_mod(&mont, &r, &P), naive_mul_mod(&a, &b, &P));
        }
    }

    #[test]
    fn shr_shifts() {
        let a = [0, 0, 0, 1u64 << 63];
        assert_eq!(shr(&a, 255), [1, 0, 0, 0]);
        let b = [0x10, 0, 0, 0];
        assert_eq!(shr(&b, 4), [1, 0, 0, 0]);
        let c = [0, 1, 0, 0];
        assert_eq!(shr(&c, 64), [1, 0, 0, 0]);
    }
}
