//! Low-level multi-precision limb arithmetic on little-endian `[u64; 4]`
//! values.
//!
//! These helpers are the building blocks for the Montgomery field
//! implementation in the `mont` module. Everything here is `const fn` so the
//! per-field constants (`R`, `R2`, `INV`, …) can be derived from the modulus
//! at compile time instead of being hand-copied magic numbers.

/// Number of 64-bit limbs in a field element.
pub const NLIMBS: usize = 4;

/// A 256-bit little-endian integer.
pub type Limbs = [u64; NLIMBS];

/// Computes `a + b + carry`, returning the low 64 bits and the new carry.
#[inline(always)]
pub const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = (a as u128) + (b as u128) + (carry as u128);
    (t as u64, (t >> 64) as u64)
}

/// Computes `a - b - borrow`, returning the low 64 bits and the new borrow
/// (0 or 1).
#[inline(always)]
pub const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128)
        .wrapping_sub(b as u128)
        .wrapping_sub(borrow as u128);
    (t as u64, ((t >> 64) as u64) & 1)
}

/// Computes `a + b * c + carry`, returning the low 64 bits and the new carry.
#[inline(always)]
pub const fn mac(a: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let t = (a as u128) + (b as u128) * (c as u128) + (carry as u128);
    (t as u64, (t >> 64) as u64)
}

/// Returns `true` if `a >= b` as 256-bit integers.
#[inline]
pub const fn geq(a: &Limbs, b: &Limbs) -> bool {
    let mut i = NLIMBS;
    while i > 0 {
        i -= 1;
        if a[i] > b[i] {
            return true;
        }
        if a[i] < b[i] {
            return false;
        }
    }
    true
}

/// Returns `true` if all limbs are zero.
#[inline]
pub const fn is_zero(a: &Limbs) -> bool {
    a[0] == 0 && a[1] == 0 && a[2] == 0 && a[3] == 0
}

/// Adds two 256-bit integers, returning the sum and the carry-out bit.
#[inline]
pub const fn add_wide(a: &Limbs, b: &Limbs) -> (Limbs, u64) {
    let (r0, c) = adc(a[0], b[0], 0);
    let (r1, c) = adc(a[1], b[1], c);
    let (r2, c) = adc(a[2], b[2], c);
    let (r3, c) = adc(a[3], b[3], c);
    ([r0, r1, r2, r3], c)
}

/// Subtracts `b` from `a`, returning the difference and the borrow-out bit.
#[inline]
pub const fn sub_wide(a: &Limbs, b: &Limbs) -> (Limbs, u64) {
    let (r0, bw) = sbb(a[0], b[0], 0);
    let (r1, bw) = sbb(a[1], b[1], bw);
    let (r2, bw) = sbb(a[2], b[2], bw);
    let (r3, bw) = sbb(a[3], b[3], bw);
    ([r0, r1, r2, r3], bw)
}

/// Modular addition of values already reduced below `p` (`a, b < p`).
#[inline]
pub const fn add_mod(a: &Limbs, b: &Limbs, p: &Limbs) -> Limbs {
    let (sum, carry) = add_wide(a, b);
    if carry != 0 || geq(&sum, p) {
        sub_wide(&sum, p).0
    } else {
        sum
    }
}

/// Modular subtraction of values already reduced below `p` (`a, b < p`).
#[inline]
pub const fn sub_mod(a: &Limbs, b: &Limbs, p: &Limbs) -> Limbs {
    let (diff, borrow) = sub_wide(a, b);
    if borrow != 0 {
        add_wide(&diff, p).0
    } else {
        diff
    }
}

/// Computes `-p^{-1} mod 2^64` for an odd modulus `p` via Newton iteration.
pub const fn mont_inv64(p0: u64) -> u64 {
    // Newton's method doubles the number of correct low bits per step;
    // 6 steps suffice for 64 bits, we run a few extra for clarity.
    let mut inv = 1u64;
    let mut i = 0;
    while i < 63 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(p0.wrapping_mul(inv)));
        i += 1;
    }
    inv.wrapping_neg()
}

/// Computes `2^k mod p` by repeated modular doubling (compile-time use).
pub const fn pow2_mod(k: usize, p: &Limbs) -> Limbs {
    let mut x: Limbs = [1, 0, 0, 0];
    let mut i = 0;
    while i < k {
        x = add_mod(&x, &x, p);
        i += 1;
    }
    x
}

/// Montgomery multiplication (CIOS): returns `a * b * 2^{-256} mod p`.
///
/// Both inputs must be below `p`; the result is below `p`. `inv` is
/// `-p^{-1} mod 2^64` as produced by [`mont_inv64`].
#[inline]
pub const fn mont_mul(a: &Limbs, b: &Limbs, p: &Limbs, inv: u64) -> Limbs {
    let mut t = [0u64; NLIMBS + 2];
    let mut i = 0;
    while i < NLIMBS {
        // t += a[i] * b
        let mut carry = 0u64;
        let mut j = 0;
        while j < NLIMBS {
            let (lo, c) = mac(t[j], a[i], b[j], carry);
            t[j] = lo;
            carry = c;
            j += 1;
        }
        let (s, c) = adc(t[NLIMBS], carry, 0);
        t[NLIMBS] = s;
        t[NLIMBS + 1] = c;

        // Reduce: m chosen so the lowest limb of t + m*p is zero, then
        // shift down one limb.
        let m = t[0].wrapping_mul(inv);
        let (_, mut carry) = mac(t[0], m, p[0], 0);
        let mut j = 1;
        while j < NLIMBS {
            let (lo, c) = mac(t[j], m, p[j], carry);
            t[j - 1] = lo;
            carry = c;
            j += 1;
        }
        let (s, c) = adc(t[NLIMBS], carry, 0);
        t[NLIMBS - 1] = s;
        t[NLIMBS] = t[NLIMBS + 1] + c;
        t[NLIMBS + 1] = 0;
        i += 1;
    }
    let r: Limbs = [t[0], t[1], t[2], t[3]];
    if t[NLIMBS] != 0 || geq(&r, p) {
        sub_wide(&r, p).0
    } else {
        r
    }
}

/// Shifts a 256-bit integer right by `k` bits (`k < 256`).
#[inline]
pub const fn shr(a: &Limbs, k: usize) -> Limbs {
    let limb_shift = k / 64;
    let bit_shift = k % 64;
    let mut out = [0u64; NLIMBS];
    let mut i = 0;
    while i + limb_shift < NLIMBS {
        let lo = a[i + limb_shift] >> bit_shift;
        let hi = if bit_shift > 0 && i + limb_shift + 1 < NLIMBS {
            a[i + limb_shift + 1] << (64 - bit_shift)
        } else {
            0
        };
        out[i] = lo | hi;
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_carries() {
        assert_eq!(adc(u64::MAX, 1, 0), (0, 1));
        assert_eq!(adc(u64::MAX, u64::MAX, 1), (u64::MAX, 1));
        assert_eq!(adc(1, 2, 3), (6, 0));
    }

    #[test]
    fn sbb_borrows() {
        assert_eq!(sbb(0, 1, 0), (u64::MAX, 1));
        assert_eq!(sbb(5, 3, 1), (1, 0));
        assert_eq!(sbb(0, 0, 1), (u64::MAX, 1));
    }

    #[test]
    fn mac_wide() {
        // u64::MAX^2 + u64::MAX + u64::MAX = 2^128 - 1
        assert_eq!(
            mac(u64::MAX, u64::MAX, u64::MAX, u64::MAX),
            (u64::MAX, u64::MAX)
        );
        assert_eq!(mac(1, 2, 3, 4), (11, 0));
    }

    #[test]
    fn geq_ordering() {
        assert!(geq(&[0, 0, 0, 1], &[u64::MAX, u64::MAX, u64::MAX, 0]));
        assert!(geq(&[5, 0, 0, 0], &[5, 0, 0, 0]));
        assert!(!geq(&[4, 0, 0, 0], &[5, 0, 0, 0]));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = [u64::MAX, 7, 0, 1];
        let b = [3, u64::MAX, 2, 0];
        let (s, c) = add_wide(&a, &b);
        assert_eq!(c, 0);
        let (d, bw) = sub_wide(&s, &b);
        assert_eq!(bw, 0);
        assert_eq!(d, a);
    }

    #[test]
    fn mont_inv64_is_neg_inverse() {
        for p0 in [1u64, 3, 0x43e1f593f0000001, 0x3c208c16d87cfd47, u64::MAX] {
            let inv = mont_inv64(p0);
            assert_eq!(p0.wrapping_mul(inv.wrapping_neg()), 1, "p0={p0}");
        }
    }

    #[test]
    fn pow2_mod_small() {
        // Modulo 7: 2^k cycles 1,2,4,1,2,4,...
        let p = [7, 0, 0, 0];
        assert_eq!(pow2_mod(0, &p), [1, 0, 0, 0]);
        assert_eq!(pow2_mod(1, &p), [2, 0, 0, 0]);
        assert_eq!(pow2_mod(3, &p), [1, 0, 0, 0]);
        assert_eq!(pow2_mod(256, &p), [2, 0, 0, 0]); // 256 mod 3 == 1 -> 2
    }

    #[test]
    fn shr_shifts() {
        let a = [0, 0, 0, 1u64 << 63];
        assert_eq!(shr(&a, 255), [1, 0, 0, 0]);
        let b = [0x10, 0, 0, 0];
        assert_eq!(shr(&b, 4), [1, 0, 0, 0]);
        let c = [0, 1, 0, 0];
        assert_eq!(shr(&c, 64), [1, 0, 0, 0]);
    }
}
