//! The BN254 scalar field `Fr` — the workhorse field of the whole system.
//!
//! `r = 21888242871839275222246405745257275088548364400416034343698204186575808495617`
//!
//! `r - 1` is divisible by `2^28`, which makes `Fr` NTT-friendly: the
//! Groth16-style baseline (Table 7) runs its number-theoretic transforms in
//! this same field, so the old-protocol vs. new-protocol comparison charges
//! identical arithmetic to both sides.

use crate::declare_field;

#[rustfmt::skip]
declare_field!(
    /// BN254 scalar field element (256-bit, Montgomery form).
    ///
    /// # Examples
    ///
    /// ```
    /// use batchzk_field::{Field, Fr};
    ///
    /// let x = Fr::from(2u64);
    /// assert_eq!(x + x, Fr::from(4u64));
    /// ```
    pub struct Fr;
    modulus = [
        0x43e1f593f0000001,
        0x2833e84879b97091,
        0xb85045b68181585d,
        0x30644e72e131a029,
    ],
    generator = 5,
    two_adicity = 28,
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limb::naive_mul_mod;
    use crate::Field;
    use crate::SplitMix64;

    #[test]
    fn derived_constants_consistent() {
        // INV * p[0] == -1 mod 2^64
        assert_eq!(Fr::INV.wrapping_mul(Fr::MODULUS[0]), u64::MAX);
        // R2 == R * R mod p via the independent oracle.
        assert_eq!(naive_mul_mod(&Fr::R, &Fr::R, &Fr::MODULUS), Fr::R2);
        // mont_mul(R, 1) == 1, i.e. ONE round-trips.
        assert_eq!(Fr::ONE.to_canonical_limbs(), [1, 0, 0, 0]);
    }

    #[test]
    fn mont_mul_matches_schoolbook_oracle() {
        let mut rng = SplitMix64::seed_from_u64(42);
        for _ in 0..200 {
            let a = Fr::random(&mut rng);
            let b = Fr::random(&mut rng);
            let expect = naive_mul_mod(
                &a.to_canonical_limbs(),
                &b.to_canonical_limbs(),
                &Fr::MODULUS,
            );
            assert_eq!((a * b).to_canonical_limbs(), expect);
        }
    }

    #[test]
    fn add_sub_neg_identities() {
        let mut rng = SplitMix64::seed_from_u64(1);
        for _ in 0..100 {
            let a = Fr::random(&mut rng);
            let b = Fr::random(&mut rng);
            assert_eq!(a + b - b, a);
            assert_eq!(a - a, Fr::ZERO);
            assert_eq!(a + (-a), Fr::ZERO);
            assert_eq!(-(-a), a);
        }
        assert_eq!(-Fr::ZERO, Fr::ZERO);
    }

    #[test]
    fn inverse_is_inverse() {
        let mut rng = SplitMix64::seed_from_u64(2);
        for _ in 0..50 {
            let a = Fr::random(&mut rng);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a * a.inverse().unwrap(), Fr::ONE);
        }
        assert_eq!(Fr::ZERO.inverse(), None);
        assert_eq!(Fr::ONE.inverse(), Some(Fr::ONE));
    }

    #[test]
    fn two_adic_root_has_exact_order() {
        let w = Fr::two_adic_root(Fr::TWO_ADICITY);
        // w^(2^28) == 1 but w^(2^27) != 1.
        let mut x = w;
        for _ in 0..(Fr::TWO_ADICITY - 1) {
            x = x.square();
        }
        assert_ne!(x, Fr::ONE);
        assert_eq!(x.square(), Fr::ONE);
        assert_eq!(x, -Fr::ONE); // the primitive square root of 1 that isn't 1

        // Consistency across k: root(k)^2 == root(k-1).
        for k in 1..=8 {
            assert_eq!(Fr::two_adic_root(k).square(), Fr::two_adic_root(k - 1));
        }
        assert_eq!(Fr::two_adic_root(0), Fr::ONE);
    }

    #[test]
    #[should_panic(expected = "two-adicity")]
    fn two_adic_root_beyond_adicity_panics() {
        let _ = Fr::two_adic_root(Fr::TWO_ADICITY + 1);
    }

    #[test]
    fn byte_roundtrip() {
        let mut rng = SplitMix64::seed_from_u64(3);
        for _ in 0..50 {
            let a = Fr::random(&mut rng);
            assert_eq!(Fr::from_bytes(&a.to_bytes()), Some(a));
        }
        // The modulus itself is rejected.
        let mut modulus_bytes = [0u8; 32];
        for (i, limb) in Fr::MODULUS.iter().enumerate() {
            modulus_bytes[i * 8..(i + 1) * 8].copy_from_slice(&limb.to_le_bytes());
        }
        assert_eq!(Fr::from_bytes(&modulus_bytes), None);
    }

    #[test]
    fn from_uniform_bytes_is_consistent() {
        // All-zero bytes map to zero; a single low byte maps to that value.
        assert_eq!(Fr::from_uniform_bytes(&[0u8; 64]), Fr::ZERO);
        let mut b = [0u8; 64];
        b[0] = 9;
        assert_eq!(Fr::from_uniform_bytes(&b), Fr::from(9u64));
        // The high half contributes value * 2^256 mod p == value * R.
        let mut b = [0u8; 64];
        b[32] = 1;
        let r_elem = Fr::from_canonical_limbs(Fr::R);
        assert_eq!(Fr::from_uniform_bytes(&b), r_elem);
    }

    #[test]
    #[should_panic(expected = "reduced")]
    fn from_canonical_rejects_unreduced() {
        let _ = Fr::from_canonical_limbs(Fr::MODULUS);
    }

    #[test]
    fn display_and_debug_render_canonical_hex() {
        let x = Fr::from(255u64);
        assert!(format!("{x}").ends_with("ff"));
        assert!(format!("{x:?}").starts_with("Fr(0x"));
    }

    #[test]
    fn byte_codec_is_canonical() {
        // The wire codec used by proof serialization round-trips exactly;
        // the zkp crate integration tests cover full proof round-trips.
        let x = Fr::from(123456789u64);
        let bytes = x.to_bytes();
        assert_eq!(Fr::from_bytes(&bytes), Some(x));
    }

    #[test]
    fn distributivity_smoke() {
        let mut rng = SplitMix64::seed_from_u64(4);
        for _ in 0..50 {
            let a = Fr::random(&mut rng);
            let b = Fr::random(&mut rng);
            let c = Fr::random(&mut rng);
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!((a + b) * c, a * c + b * c);
        }
    }
}
