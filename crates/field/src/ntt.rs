//! Radix-2 number-theoretic transform.
//!
//! This is **baseline substrate**: BatchZK's own protocol never runs an NTT.
//! Table 7 compares against Groth16-style systems (Libsnark, Bellperson)
//! whose provers are dominated by NTTs and MSMs, so we implement a real NTT
//! here and charge it to those baseline columns.

use crate::{batch_invert, Field};

/// A multiplicative evaluation domain of power-of-two size with precomputed
/// twiddle factors.
#[derive(Debug, Clone)]
pub struct NttDomain<F: Field> {
    log_size: u32,
    /// Powers of the primitive root: `w^0, w^1, ..., w^{n/2-1}`.
    twiddles: Vec<F>,
    /// Powers of the inverse root.
    inv_twiddles: Vec<F>,
    size_inv: F,
}

impl<F: Field> NttDomain<F> {
    /// Creates a domain of size `2^log_size`.
    ///
    /// # Panics
    ///
    /// Panics if `log_size` exceeds the field's two-adicity.
    pub fn new(log_size: u32) -> Self {
        assert!(
            log_size <= F::TWO_ADICITY,
            "domain of size 2^{log_size} exceeds field two-adicity {}",
            F::TWO_ADICITY
        );
        let n = 1usize << log_size;
        let root = F::two_adic_root(log_size);
        let mut twiddles = Vec::with_capacity(n / 2);
        let mut acc = F::ONE;
        for _ in 0..n.max(2) / 2 {
            twiddles.push(acc);
            acc *= root;
        }
        let mut inv_twiddles = twiddles.clone();
        batch_invert(&mut inv_twiddles);
        let size_inv = F::from(n as u64).inverse().expect("n != 0 mod p");
        Self {
            log_size,
            twiddles,
            inv_twiddles,
            size_inv,
        }
    }

    /// Domain size.
    pub fn size(&self) -> usize {
        1 << self.log_size
    }

    /// log2 of the domain size.
    pub fn log_size(&self) -> u32 {
        self.log_size
    }

    /// In-place forward NTT (coefficients -> evaluations at powers of `w`).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.size()`.
    pub fn forward(&self, values: &mut [F]) {
        self.transform(values, &self.twiddles);
    }

    /// In-place inverse NTT.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.size()`.
    pub fn inverse(&self, values: &mut [F]) {
        self.transform(values, &self.inv_twiddles);
        for v in values.iter_mut() {
            *v *= self.size_inv;
        }
    }

    /// Number of butterfly operations one transform performs (`n/2 · log n`),
    /// used by the GPU cost model for the Bellperson baseline.
    pub fn butterfly_count(&self) -> u64 {
        (self.size() as u64 / 2) * self.log_size as u64
    }

    /// In-place forward NTT through the `batchzk-par` butterfly path:
    /// within each of the `log n` levels every butterfly is independent,
    /// so the level's butterfly pairs are dealt to worker threads with
    /// [`batchzk_par::par_map_mut`]. Field arithmetic is exact and no
    /// cross-butterfly reduction exists, so the output is byte-identical
    /// to [`forward`](Self::forward) at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.size()`.
    pub fn forward_par(&self, values: &mut [F])
    where
        F: Send + Sync,
    {
        self.transform_par(values, &self.twiddles);
    }

    /// In-place inverse NTT through the parallel butterfly path —
    /// byte-identical to [`inverse`](Self::inverse) at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.size()`.
    pub fn inverse_par(&self, values: &mut [F])
    where
        F: Send + Sync,
    {
        self.transform_par(values, &self.inv_twiddles);
        for v in values.iter_mut() {
            *v *= self.size_inv;
        }
    }

    fn transform_par(&self, values: &mut [F], twiddles: &[F])
    where
        F: Send + Sync,
    {
        let n = values.len();
        assert_eq!(n, self.size(), "input length must equal the domain size");
        if n <= 1 {
            return;
        }
        bit_reverse_permute(values);
        let threads = batchzk_par::current_threads().max(1);
        let mut half = 1usize;
        while half < n {
            let step = n / (2 * half);
            // Each block's lo/hi halves are chunked so the late levels
            // (few, wide blocks) still spread across workers. Chunking
            // only partitions disjoint writes — it never changes the
            // arithmetic, so any (threads, sub) choice gives identical
            // bytes.
            let sub = half.div_ceil(threads).max(1);
            let mut items: Vec<(usize, &mut [F], &mut [F])> = Vec::new();
            for block in values.chunks_mut(2 * half) {
                let (lo, hi) = block.split_at_mut(half);
                for (ci, (lc, hc)) in lo.chunks_mut(sub).zip(hi.chunks_mut(sub)).enumerate() {
                    items.push((ci * sub, lc, hc));
                }
            }
            batchzk_par::par_map_mut(&mut items, |_, (k0, lo, hi)| {
                for j in 0..lo.len() {
                    let w = twiddles[(*k0 + j) * step];
                    let l = lo[j];
                    let h = hi[j] * w;
                    lo[j] = l + h;
                    hi[j] = l - h;
                }
            });
            half *= 2;
        }
    }

    fn transform(&self, values: &mut [F], twiddles: &[F]) {
        let n = values.len();
        assert_eq!(n, self.size(), "input length must equal the domain size");
        if n <= 1 {
            return;
        }
        bit_reverse_permute(values);
        let mut half = 1usize;
        while half < n {
            let step = n / (2 * half);
            for start in (0..n).step_by(2 * half) {
                for k in 0..half {
                    let w = twiddles[k * step];
                    let lo = values[start + k];
                    let hi = values[start + k + half] * w;
                    values[start + k] = lo + hi;
                    values[start + k + half] = lo - hi;
                }
            }
            half *= 2;
        }
    }
}

/// Reorders a slice into bit-reversed index order.
pub fn bit_reverse_permute<T>(values: &mut [T]) {
    let n = values.len();
    debug_assert!(n.is_power_of_two());
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits) as u64;
        let j = j as usize;
        if i < j {
            values.swap(i, j);
        }
    }
}

/// Quadratic-time reference DFT used to cross-check the fast transform.
pub fn naive_dft<F: Field>(coeffs: &[F]) -> Vec<F> {
    let n = coeffs.len();
    assert!(n.is_power_of_two());
    let root = F::two_adic_root(n.trailing_zeros());
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let x = root.pow(&[i as u64]);
        let mut acc = F::ZERO;
        let mut xp = F::ONE;
        for &c in coeffs {
            acc += c * xp;
            xp *= x;
        }
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fr;
    use crate::SplitMix64;

    #[test]
    fn matches_naive_dft() {
        let mut rng = SplitMix64::seed_from_u64(21);
        for log in 0..=6u32 {
            let domain = NttDomain::<Fr>::new(log);
            let coeffs: Vec<Fr> = (0..domain.size()).map(|_| Fr::random(&mut rng)).collect();
            let mut fast = coeffs.clone();
            domain.forward(&mut fast);
            assert_eq!(fast, naive_dft(&coeffs), "log={log}");
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let mut rng = SplitMix64::seed_from_u64(22);
        for log in [0u32, 1, 4, 10] {
            let domain = NttDomain::<Fr>::new(log);
            let coeffs: Vec<Fr> = (0..domain.size()).map(|_| Fr::random(&mut rng)).collect();
            let mut v = coeffs.clone();
            domain.forward(&mut v);
            domain.inverse(&mut v);
            assert_eq!(v, coeffs, "log={log}");
        }
    }

    #[test]
    fn par_forward_inverse_roundtrip() {
        let mut rng = SplitMix64::seed_from_u64(23);
        for log in [0u32, 1, 4, 8] {
            let domain = NttDomain::<Fr>::new(log);
            let coeffs: Vec<Fr> = (0..domain.size()).map(|_| Fr::random(&mut rng)).collect();
            let mut v = coeffs.clone();
            domain.forward_par(&mut v);
            domain.inverse_par(&mut v);
            assert_eq!(v, coeffs, "log={log}");
        }
    }

    #[test]
    fn par_butterfly_path_is_byte_identical_at_1_2_4_threads() {
        let mut rng = SplitMix64::seed_from_u64(24);
        for log in [0u32, 3, 6, 9] {
            let domain = NttDomain::<Fr>::new(log);
            let coeffs: Vec<Fr> = (0..domain.size()).map(|_| Fr::random(&mut rng)).collect();
            let mut serial_fwd = coeffs.clone();
            domain.forward(&mut serial_fwd);
            let mut serial_inv = coeffs.clone();
            domain.inverse(&mut serial_inv);
            for threads in [1usize, 2, 4] {
                batchzk_par::with_threads(threads, || {
                    let mut fwd = coeffs.clone();
                    domain.forward_par(&mut fwd);
                    assert_eq!(fwd, serial_fwd, "forward log={log} threads={threads}");
                    let mut inv = coeffs.clone();
                    domain.inverse_par(&mut inv);
                    assert_eq!(inv, serial_inv, "inverse log={log} threads={threads}");
                });
            }
        }
    }

    #[test]
    fn convolution_theorem() {
        // (1 + x) * (1 + 2x) = 1 + 3x + 2x^2 via pointwise multiplication.
        let domain = NttDomain::<Fr>::new(2);
        let mut a = vec![Fr::ONE, Fr::ONE, Fr::ZERO, Fr::ZERO];
        let mut b = vec![Fr::ONE, Fr::from(2u64), Fr::ZERO, Fr::ZERO];
        domain.forward(&mut a);
        domain.forward(&mut b);
        let mut c: Vec<Fr> = a.iter().zip(&b).map(|(x, y)| *x * *y).collect();
        domain.inverse(&mut c);
        assert_eq!(c, vec![Fr::ONE, Fr::from(3u64), Fr::from(2u64), Fr::ZERO]);
    }

    #[test]
    fn butterfly_count_formula() {
        let d = NttDomain::<Fr>::new(10);
        assert_eq!(d.butterfly_count(), 512 * 10);
    }

    #[test]
    #[should_panic(expected = "two-adicity")]
    fn oversized_domain_panics() {
        let _ = NttDomain::<Fr>::new(Fr::TWO_ADICITY + 1);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn wrong_length_panics() {
        let d = NttDomain::<Fr>::new(3);
        let mut v = vec![Fr::ONE; 4];
        d.forward(&mut v);
    }

    #[test]
    fn bit_reverse_involution() {
        let mut v: Vec<u32> = (0..16).collect();
        let orig = v.clone();
        bit_reverse_permute(&mut v);
        assert_ne!(v, orig);
        bit_reverse_permute(&mut v);
        assert_eq!(v, orig);
    }
}
