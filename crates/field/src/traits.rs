//! The [`Field`] trait shared by every module in the workspace.

use core::fmt::{Debug, Display};
use core::hash::Hash;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::limb::Limbs;
use crate::rng::RngCore;

/// A prime field with enough structure for sum-check, Merkle commitments,
/// linear-time encoding, and the NTT/MSM baselines.
///
/// Implementations are expected to be cheap to copy (a few machine words) and
/// to perform all arithmetic without heap allocation.
///
/// # Examples
///
/// ```
/// use batchzk_field::{Field, Fr};
///
/// let a = Fr::from(7u64);
/// let b = Fr::from(6u64);
/// assert_eq!(a * b, Fr::from(42u64));
/// assert_eq!(a * a.inverse().unwrap(), Fr::ONE);
/// ```
pub trait Field:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + Eq
    + Hash
    + Send
    + Sync
    + From<u64>
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
    + Product
    + 'static
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// Number of bits in the modulus.
    const MODULUS_BITS: u32;
    /// Largest `k` such that `2^k` divides `p - 1` (NTT friendliness).
    const TWO_ADICITY: u32;

    /// Returns `true` if this element is the additive identity.
    fn is_zero(&self) -> bool {
        *self == Self::ZERO
    }

    /// Returns `self + self`.
    fn double(&self) -> Self {
        *self + *self
    }

    /// Returns `self * self`.
    fn square(&self) -> Self {
        *self * *self
    }

    /// Returns the multiplicative inverse, or `None` for zero.
    fn inverse(&self) -> Option<Self>;

    /// Raises `self` to the power given as little-endian 64-bit limbs.
    fn pow(&self, exp: &[u64]) -> Self {
        let mut res = Self::ONE;
        for &limb in exp.iter().rev() {
            for bit in (0..64).rev() {
                res = res.square();
                if (limb >> bit) & 1 == 1 {
                    res *= *self;
                }
            }
        }
        res
    }

    /// Samples a uniformly random element.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;

    /// Canonical little-endian byte encoding (32 bytes for 256-bit fields).
    fn to_bytes(&self) -> [u8; 32];

    /// Parses a canonical encoding; `None` if the value is not reduced.
    fn from_bytes(bytes: &[u8; 32]) -> Option<Self>;

    /// Maps 64 uniform bytes onto the field with negligible bias
    /// (hash-to-field).
    fn from_uniform_bytes(bytes: &[u8; 64]) -> Self;

    /// Returns a fixed multiplicative generator of the field.
    fn generator() -> Self;

    /// Returns a primitive `2^k`-th root of unity.
    ///
    /// # Panics
    ///
    /// Panics if `k > Self::TWO_ADICITY`.
    fn two_adic_root(k: u32) -> Self;

    /// Inner product `Σ aᵢ·bᵢ` over an iterator of pairs — the hot loop of
    /// sparse-matrix rows, row combinations, and sum-check folds.
    ///
    /// The default implementation is the textbook multiply-then-add loop.
    /// Montgomery-backed fields override it with a lazy-reduction fused
    /// multiply-accumulate (unreduced CIOS products accumulated in the
    /// redundant `[0, 2p)` domain, one canonicalizing subtraction at the
    /// end). Overrides must return bit-identical results to this default.
    fn dot_pairs(pairs: impl Iterator<Item = (Self, Self)>) -> Self {
        pairs.fold(Self::ZERO, |acc, (a, b)| acc + a * b)
    }

    /// Slice inner product `Σ aᵢ·bᵢ` over the common prefix of `a` and `b`.
    fn dot(a: &[Self], b: &[Self]) -> Self {
        Self::dot_pairs(a.iter().copied().zip(b.iter().copied()))
    }
}

/// Low-level access to the four-limb Montgomery representation behind a
/// [`Field`] implementation — the hook the flat SoA batch layout
/// ([`crate::soa`]) and other limb-level kernels build on. Implemented
/// automatically by `declare_field!`.
pub trait MontLimbs: Field {
    /// The field modulus `p`.
    const P: Limbs;
    /// `2p` — the ceiling of the redundant lazy-reduction domain.
    const P2: Limbs;
    /// `-p^{-1} mod 2^64`, the Montgomery reduction constant.
    const NEG_INV: u64;

    /// The raw Montgomery-form limbs of this element.
    fn mont_limbs(self) -> Limbs;

    /// Rebuilds an element from Montgomery-form limbs.
    ///
    /// The caller must guarantee `limbs < p`. Passing an unreduced value is
    /// memory-safe but yields an element that breaks `Eq`/serialization
    /// canonicity, so every kernel must canonicalize (e.g. via
    /// [`crate::limb::reduce_once`]) before calling this.
    fn from_mont_limbs_unchecked(limbs: Limbs) -> Self;
}

/// Convenience: converts a possibly-negative i64 into a field element.
pub fn field_from_i64<F: Field>(v: i64) -> F {
    if v >= 0 {
        F::from(v as u64)
    } else {
        -F::from(v.unsigned_abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fr;

    #[test]
    fn from_i64_negatives() {
        assert_eq!(field_from_i64::<Fr>(-1) + Fr::ONE, Fr::ZERO);
        assert_eq!(field_from_i64::<Fr>(5), Fr::from(5u64));
        assert_eq!(field_from_i64::<Fr>(-5) + Fr::from(5u64), Fr::ZERO);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let g = Fr::from(3u64);
        let mut acc = Fr::ONE;
        for e in 0..20u64 {
            assert_eq!(g.pow(&[e]), acc);
            acc *= g;
        }
    }

    #[test]
    fn pow_multi_limb_exponent() {
        // g^(2^64) == (g^(2^63))^2
        let g = Fr::from(7u64);
        let e63 = g.pow(&[1u64 << 63]);
        assert_eq!(g.pow(&[0, 1]), e63 * e63);
    }
}
