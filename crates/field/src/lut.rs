//! Subset-sum lookup tables for fixed-operand inner products — the Orion
//! `SubsetSumLUTs` idiom (PolyhedraZK/Expander).
//!
//! A vector of *fixed* field weights `w_0, ..., w_{n-1}` is split into
//! chunks of `k` weights, and for each chunk all `2^k` subset sums are
//! precomputed. Any inner product of the weights with a *binary* selector
//! vector then collapses into `⌈n/k⌉` table lookups and additions — no
//! Montgomery multiplications at all — instead of the `n` multiplications of
//! the naive `Σ wᵢ·F::from(bᵢ)` loop.
//!
//! # Cost model
//!
//! Building a chunk's table by the doubling construction costs `2^k − 1`
//! field additions, so the whole LUT costs `⌈n/k⌉·(2^k − 1)` additions. One
//! selection afterwards costs `⌈n/k⌉` additions. With `M` the cost of a
//! Montgomery multiplication in additions (≈ 5–8 on this host, see the
//! `profile` bench table), the LUT wins once the weights are reused for
//! more than `(2^k − 1) / (k·M)` selections — about one selection at
//! `k = 4`, i.e. the table pays for itself almost immediately. See
//! `DESIGN.md` §16 for the break-even analysis against measured numbers.
//!
//! Consumers in this workspace: binary-table sum-check
//! (`batchzk_sumcheck::algorithm1::prove_binary`, where the round tables are
//! exactly subset sums of an `eq` weight tensor) and binary-message encoding
//! (`batchzk_encoder`, where each expander row's fixed coefficients are the
//! weights and the message bits are the selector).

use crate::Field;

/// Precomputed subset sums of a fixed weight vector, chunked `k` bits at a
/// time.
///
/// # Examples
///
/// ```
/// use batchzk_field::{lut::SubsetSumLUT, Field, Fr};
///
/// let weights: Vec<Fr> = (1..=10u64).map(Fr::from).collect();
/// let lut = SubsetSumLUT::new(&weights, 4);
/// let bits = [true, false, true, true, false, false, true, false, true, true];
/// // 1 + 3 + 4 + 7 + 9 + 10 = 34, computed with 3 lookups and no muls.
/// assert_eq!(lut.select_sum_bits(&bits), Fr::from(34u64));
/// ```
#[derive(Debug, Clone)]
pub struct SubsetSumLUT<F> {
    /// One table per chunk; chunk `t` covers weights `t·k .. min((t+1)·k, n)`
    /// and holds one entry per subset of them.
    tables: Vec<Vec<F>>,
    chunk_bits: usize,
    num_weights: usize,
}

impl<F: Field> SubsetSumLUT<F> {
    /// Precomputes all subset sums of `weights`, `chunk_bits` weights per
    /// table (each table has `2^chunk_bits` entries, built with the
    /// doubling construction in `2^chunk_bits − 1` additions).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bits` is outside `1..=16`.
    pub fn new(weights: &[F], chunk_bits: usize) -> Self {
        assert!(
            (1..=16).contains(&chunk_bits),
            "chunk_bits must be in 1..=16"
        );
        let tables = weights
            .chunks(chunk_bits)
            .map(|chunk| {
                let mut table = vec![F::ZERO; 1 << chunk.len()];
                for (j, &w) in chunk.iter().enumerate() {
                    // Double the table: entries with bit j set are the
                    // bit-j-clear entries plus w.
                    let stride = 1usize << j;
                    for m in 0..stride {
                        table[stride + m] = table[m] + w;
                    }
                }
                table
            })
            .collect();
        Self {
            tables,
            chunk_bits,
            num_weights: weights.len(),
        }
    }

    /// Number of weights the LUT was built over.
    pub fn num_weights(&self) -> usize {
        self.num_weights
    }

    /// Whether the LUT covers zero weights.
    pub fn is_empty(&self) -> bool {
        self.num_weights == 0
    }

    /// Selector bits per chunk.
    pub fn chunk_bits(&self) -> usize {
        self.chunk_bits
    }

    /// Number of chunk tables.
    pub fn num_chunks(&self) -> usize {
        self.tables.len()
    }

    /// The subset sum of chunk `chunk` under `mask` (bit `j` of `mask`
    /// selects weight `chunk·chunk_bits + j`).
    ///
    /// # Panics
    ///
    /// Panics if `chunk` or `mask` is out of range.
    #[inline]
    pub fn lookup(&self, chunk: usize, mask: usize) -> F {
        self.tables[chunk][mask]
    }

    /// Inner product `Σ wᵢ·bitsᵢ` via one lookup per chunk.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.num_weights()`.
    pub fn select_sum_bits(&self, bits: &[bool]) -> F {
        assert_eq!(
            bits.len(),
            self.num_weights,
            "selector length must match weight count"
        );
        let mut acc = F::ZERO;
        for (table, chunk) in self.tables.iter().zip(bits.chunks(self.chunk_bits)) {
            let mut mask = 0usize;
            for (j, &b) in chunk.iter().enumerate() {
                mask |= (b as usize) << j;
            }
            acc += table[mask];
        }
        acc
    }

    /// Inner product from per-chunk masks (as produced by
    /// [`Self::masks_from_bits`]): `⌈n/k⌉` lookups and additions.
    ///
    /// # Panics
    ///
    /// Panics if the mask count or any mask value is out of range.
    pub fn select_sum_masks(&self, masks: &[u64]) -> F {
        assert_eq!(
            masks.len(),
            self.tables.len(),
            "one mask per chunk required"
        );
        let mut acc = F::ZERO;
        for (table, &mask) in self.tables.iter().zip(masks) {
            acc += table[mask as usize];
        }
        acc
    }

    /// Packs a selector bit vector into per-chunk masks, the reusable form
    /// for repeated [`Self::select_sum_masks`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.num_weights()`.
    pub fn masks_from_bits(&self, bits: &[bool]) -> Vec<u64> {
        assert_eq!(
            bits.len(),
            self.num_weights,
            "selector length must match weight count"
        );
        bits.chunks(self.chunk_bits)
            .map(|chunk| {
                let mut mask = 0u64;
                for (j, &b) in chunk.iter().enumerate() {
                    mask |= (b as u64) << j;
                }
                mask
            })
            .collect()
    }
}

/// The multiplication-based baseline the LUT replaces: `Σ wᵢ·F::from(bitsᵢ)`
/// with a real Montgomery multiplication per element. Exists so tests and
/// the `profile` bench table can measure the LUT's per-op win against it.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn naive_select_sum<F: Field>(weights: &[F], bits: &[bool]) -> F {
    assert_eq!(
        weights.len(),
        bits.len(),
        "selector length must match weight count"
    );
    F::dot_pairs(
        weights
            .iter()
            .zip(bits)
            .map(|(&w, &b)| (w, F::from(b as u64))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fr, RngCore, SplitMix64};

    fn samples(seed: u64, n: usize) -> Vec<Fr> {
        let mut rng = SplitMix64::seed_from_u64(seed);
        (0..n).map(|_| Fr::random(&mut rng)).collect()
    }

    fn rand_bits(seed: u64, n: usize) -> Vec<bool> {
        let mut rng = SplitMix64::seed_from_u64(seed);
        (0..n).map(|_| rng.next_u64() & 1 == 1).collect()
    }

    #[test]
    fn matches_naive_across_all_chunk_widths() {
        // Every supported chunk width, including widths that don't divide n.
        for n in [0usize, 1, 7, 16, 33] {
            let w = samples(n as u64, n);
            let bits = rand_bits(1000 + n as u64, n);
            let expect = naive_select_sum(&w, &bits);
            for k in 1..=16 {
                let lut = SubsetSumLUT::new(&w, k);
                assert_eq!(lut.select_sum_bits(&bits), expect, "n={n} k={k}");
                let masks = lut.masks_from_bits(&bits);
                assert_eq!(lut.select_sum_masks(&masks), expect, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn all_ones_and_all_zeros() {
        let w = samples(7, 20);
        let lut = SubsetSumLUT::new(&w, 5);
        assert_eq!(lut.select_sum_bits(&[false; 20]), Fr::ZERO);
        let total: Fr = w.iter().copied().sum();
        assert_eq!(lut.select_sum_bits(&[true; 20]), total);
    }

    #[test]
    fn lookup_is_subset_sum() {
        let w = samples(9, 6);
        let lut = SubsetSumLUT::new(&w, 3);
        assert_eq!(lut.num_chunks(), 2);
        for mask in 0..8usize {
            let mut expect = Fr::ZERO;
            for j in 0..3 {
                if mask >> j & 1 == 1 {
                    expect += w[3 + j];
                }
            }
            assert_eq!(lut.lookup(1, mask), expect, "mask={mask}");
        }
    }

    #[test]
    #[should_panic(expected = "chunk_bits")]
    fn zero_chunk_bits_panics() {
        let _ = SubsetSumLUT::new(&[Fr::ONE], 0);
    }

    #[test]
    #[should_panic(expected = "selector length")]
    fn wrong_selector_length_panics() {
        let lut = SubsetSumLUT::new(&[Fr::ONE; 4], 2);
        let _ = lut.select_sum_bits(&[true; 3]);
    }
}
