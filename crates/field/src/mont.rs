//! The [`declare_field!`] macro: generates a 4-limb Montgomery-form prime
//! field from nothing but its modulus, a multiplicative generator, and its
//! two-adicity.
//!
//! All derived constants (`R = 2^256 mod p`, `R^2 mod p`, `-p^{-1} mod 2^64`)
//! are computed at compile time by `const fn`s in [`crate::limb`], so the
//! only trusted inputs are the modulus limbs themselves — which the generated
//! test modules cross-check against schoolbook arithmetic.

/// Declares a 256-bit prime field type in Montgomery representation.
///
/// # Usage
///
/// ```ignore
/// declare_field!(
///     /// BN254 scalar field.
///     pub struct Fr;
///     modulus = [l0, l1, l2, l3],
///     generator = 5,
///     two_adicity = 28,
/// );
/// ```
#[macro_export]
macro_rules! declare_field {
    (
        $(#[$attr:meta])*
        pub struct $name:ident;
        modulus = $modulus:expr,
        generator = $generator:expr,
        two_adicity = $two_adicity:expr,
    ) => {
        $(#[$attr])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
        pub struct $name($crate::limb::Limbs);

        impl $name {
            /// The field modulus `p`, little-endian limbs.
            pub const MODULUS: $crate::limb::Limbs = $modulus;
            /// `2^256 mod p` (the Montgomery radix).
            pub const R: $crate::limb::Limbs =
                $crate::limb::pow2_mod(256, &Self::MODULUS);
            /// `2^512 mod p` (used to enter Montgomery form).
            pub const R2: $crate::limb::Limbs =
                $crate::limb::pow2_mod(512, &Self::MODULUS);
            /// `-p^{-1} mod 2^64`.
            pub const INV: u64 = $crate::limb::mont_inv64(Self::MODULUS[0]);
            /// `2p` — the ceiling of the redundant lazy-reduction domain
            /// used by the fused multiply-accumulate kernels.
            pub const TWO_P: $crate::limb::Limbs =
                $crate::limb::double_wide(&Self::MODULUS);

            /// Builds an element from its Montgomery representation.
            /// Internal: callers must guarantee `limbs < p`.
            #[allow(dead_code)]
            #[inline]
            pub(crate) const fn from_mont_limbs(limbs: $crate::limb::Limbs) -> Self {
                Self(limbs)
            }

            /// Exposes the raw Montgomery representation.
            #[inline]
            pub const fn to_mont_limbs(self) -> $crate::limb::Limbs {
                self.0
            }

            /// Builds an element from canonical (non-Montgomery) limbs.
            ///
            /// # Panics
            ///
            /// Panics if the value is not reduced below the modulus.
            pub fn from_canonical_limbs(limbs: $crate::limb::Limbs) -> Self {
                assert!(
                    $crate::limb::geq(&Self::MODULUS, &limbs) && limbs != Self::MODULUS,
                    "value not reduced below the modulus"
                );
                Self($crate::limb::mont_mul(
                    &limbs,
                    &Self::R2,
                    &Self::MODULUS,
                    Self::INV,
                ))
            }

            /// Returns the canonical (non-Montgomery) limbs of this element.
            pub fn to_canonical_limbs(self) -> $crate::limb::Limbs {
                $crate::limb::mont_mul(&self.0, &[1, 0, 0, 0], &Self::MODULUS, Self::INV)
            }
        }

        impl core::fmt::Debug for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                let c = self.to_canonical_limbs();
                write!(
                    f,
                    concat!(stringify!($name), "(0x{:016x}{:016x}{:016x}{:016x})"),
                    c[3], c[2], c[1], c[0]
                )
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                let c = self.to_canonical_limbs();
                write!(f, "0x{:016x}{:016x}{:016x}{:016x}", c[3], c[2], c[1], c[0])
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                Self::from_canonical_limbs([v, 0, 0, 0])
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self::from(v as u64)
            }
        }

        impl From<bool> for $name {
            fn from(v: bool) -> Self {
                Self::from(v as u64)
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self($crate::limb::add_mod(&self.0, &rhs.0, &Self::MODULUS))
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self($crate::limb::sub_mod(&self.0, &rhs.0, &Self::MODULUS))
            }
        }

        impl core::ops::Mul for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: Self) -> Self {
                Self($crate::limb::mont_mul(
                    &self.0,
                    &rhs.0,
                    &Self::MODULUS,
                    Self::INV,
                ))
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                if $crate::limb::is_zero(&self.0) {
                    self
                } else {
                    Self($crate::limb::sub_wide(&Self::MODULUS, &self.0).0)
                }
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }

        impl core::ops::MulAssign for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: Self) {
                *self = *self * rhs;
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(<Self as $crate::Field>::ZERO, |a, b| a + b)
            }
        }

        impl<'a> core::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                iter.fold(<Self as $crate::Field>::ZERO, |a, b| a + *b)
            }
        }

        impl core::iter::Product for $name {
            fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(<Self as $crate::Field>::ONE, |a, b| a * b)
            }
        }

        impl $crate::Field for $name {
            const ZERO: Self = Self([0, 0, 0, 0]);
            const ONE: Self = Self(Self::R);
            const MODULUS_BITS: u32 = 254;
            const TWO_ADICITY: u32 = $two_adicity;

            fn inverse(&self) -> Option<Self> {
                if $crate::limb::is_zero(&self.0) {
                    return None;
                }
                // Fermat: a^{p-2}.
                let p_minus_2 =
                    $crate::limb::sub_wide(&Self::MODULUS, &[2, 0, 0, 0]).0;
                Some(self.pow(&p_minus_2))
            }

            fn random<R: $crate::RngCore + ?Sized>(rng: &mut R) -> Self {
                let mut bytes = [0u8; 64];
                rng.fill_bytes(&mut bytes);
                Self::from_uniform_bytes(&bytes)
            }

            fn to_bytes(&self) -> [u8; 32] {
                let c = self.to_canonical_limbs();
                let mut out = [0u8; 32];
                for (i, limb) in c.iter().enumerate() {
                    out[i * 8..(i + 1) * 8].copy_from_slice(&limb.to_le_bytes());
                }
                out
            }

            fn from_bytes(bytes: &[u8; 32]) -> Option<Self> {
                let mut limbs = [0u64; 4];
                for (i, limb) in limbs.iter_mut().enumerate() {
                    *limb = u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
                }
                if $crate::limb::geq(&limbs, &Self::MODULUS) {
                    None
                } else {
                    Some(Self::from_canonical_limbs(limbs))
                }
            }

            fn from_uniform_bytes(bytes: &[u8; 64]) -> Self {
                let mut lo = [0u64; 4];
                let mut hi = [0u64; 4];
                for i in 0..4 {
                    lo[i] = u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
                    hi[i] =
                        u64::from_le_bytes(bytes[32 + i * 8..40 + i * 8].try_into().unwrap());
                }
                // value = lo + hi * 2^256; 2^256 === R (mod p), so the
                // Montgomery form is mont(lo, R2) + mont(mont(hi, R2), R2).
                let lo_m = $crate::limb::mont_mul(&lo, &Self::R2, &Self::MODULUS, Self::INV);
                let hi_m = $crate::limb::mont_mul(&hi, &Self::R2, &Self::MODULUS, Self::INV);
                let hi_m =
                    $crate::limb::mont_mul(&hi_m, &Self::R2, &Self::MODULUS, Self::INV);
                Self($crate::limb::add_mod(&lo_m, &hi_m, &Self::MODULUS))
            }

            fn generator() -> Self {
                Self::from($generator as u64)
            }

            fn two_adic_root(k: u32) -> Self {
                assert!(
                    k <= Self::TWO_ADICITY,
                    "requested 2^{k}-th root exceeds two-adicity {}",
                    Self::TWO_ADICITY
                );
                // g^((p-1) / 2^k)
                let p_minus_1 = $crate::limb::sub_wide(&Self::MODULUS, &[1, 0, 0, 0]).0;
                let exp = $crate::limb::shr(&p_minus_1, k as usize);
                Self::generator().pow(&exp)
            }

            fn dot_pairs(pairs: impl Iterator<Item = (Self, Self)>) -> Self {
                // Lazy-reduction fused multiply-accumulate: unreduced CIOS
                // products accumulated in the redundant [0, 2p) domain, one
                // canonicalizing subtraction at the very end. Bit-identical
                // to the trait's multiply-then-add default.
                let mut acc = [0u64; $crate::limb::NLIMBS];
                for (a, b) in pairs {
                    let prod = $crate::limb::mont_mul_unreduced(
                        &a.0,
                        &b.0,
                        &Self::MODULUS,
                        Self::INV,
                    );
                    acc = $crate::limb::add_lazy(&acc, &prod, &Self::TWO_P);
                }
                Self($crate::limb::reduce_once(&acc, &Self::MODULUS))
            }
        }

        impl $crate::MontLimbs for $name {
            const P: $crate::limb::Limbs = Self::MODULUS;
            const P2: $crate::limb::Limbs = Self::TWO_P;
            const NEG_INV: u64 = Self::INV;

            #[inline]
            fn mont_limbs(self) -> $crate::limb::Limbs {
                self.0
            }

            #[inline]
            fn from_mont_limbs_unchecked(limbs: $crate::limb::Limbs) -> Self {
                Self(limbs)
            }
        }

    };
}
