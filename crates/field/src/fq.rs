//! The BN254 base field `Fq`, coordinate field of the G1 curve used by the
//! Pippenger MSM baseline (Table 7/8's Libsnark/Bellperson column).
//!
//! `q = 21888242871839275222246405745257275088696311157297823662689037894645226208583`

use crate::declare_field;

#[rustfmt::skip]
declare_field!(
    /// BN254 base field element (256-bit, Montgomery form).
    ///
    /// # Examples
    ///
    /// ```
    /// use batchzk_field::{Field, Fq};
    ///
    /// let x = Fq::from(3u64);
    /// assert_eq!(x.square(), Fq::from(9u64));
    /// ```
    pub struct Fq;
    modulus = [
        0x3c208c16d87cfd47,
        0x97816a916871ca8d,
        0xb85045b68181585d,
        0x30644e72e131a029,
    ],
    generator = 3,
    two_adicity = 1,
);

impl Fq {
    /// Computes a square root via the `p ≡ 3 (mod 4)` shortcut
    /// (`sqrt(a) = a^{(p+1)/4}`), returning `None` for non-residues.
    ///
    /// Needed by the curve crate to hash/validate points.
    pub fn sqrt(&self) -> Option<Self> {
        use crate::{limb, Field};
        // (q + 1) / 4
        let (p1, carry) = limb::add_wide(&Self::MODULUS, &[1, 0, 0, 0]);
        debug_assert_eq!(carry, 0);
        let exp = limb::shr(&p1, 2);
        let cand = self.pow(&exp);
        if cand.square() == *self {
            Some(cand)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Field;
    use crate::SplitMix64;

    #[test]
    fn constants_consistent() {
        assert_eq!(Fq::INV.wrapping_mul(Fq::MODULUS[0]), u64::MAX);
        assert_eq!(Fq::ONE.to_canonical_limbs(), [1, 0, 0, 0]);
    }

    #[test]
    fn fq_field_axioms_smoke() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..50 {
            let a = Fq::random(&mut rng);
            let b = Fq::random(&mut rng);
            assert_eq!(a * b, b * a);
            assert_eq!(a + b, b + a);
            if !a.is_zero() {
                assert_eq!(a * a.inverse().unwrap(), Fq::ONE);
            }
        }
    }

    #[test]
    fn sqrt_of_squares() {
        let mut rng = SplitMix64::seed_from_u64(8);
        for _ in 0..30 {
            let a = Fq::random(&mut rng);
            let sq = a.square();
            let r = sq.sqrt().expect("square must have a root");
            assert!(r == a || r == -a);
        }
    }

    #[test]
    fn sqrt_rejects_non_residues() {
        // The generator 3 is a non-residue iff q ≡ 3 (mod 4) and 3 is not a
        // QR; verify empirically by squaring-test: count roots found over a
        // deterministic sample — a non-residue must return None.
        let mut rng = SplitMix64::seed_from_u64(9);
        let mut seen_none = false;
        for _ in 0..20 {
            let a = Fq::random(&mut rng);
            if a.sqrt().is_none() {
                seen_none = true;
                // Euler criterion cross-check: a^((q-1)/2) == -1.
                let exp =
                    crate::limb::shr(&crate::limb::sub_wide(&Fq::MODULUS, &[1, 0, 0, 0]).0, 1);
                assert_eq!(a.pow(&exp), -Fq::ONE);
            }
        }
        assert!(seen_none, "expected at least one non-residue in sample");
    }

    #[test]
    fn fq_and_fr_are_distinct_moduli() {
        assert_ne!(Fq::MODULUS, crate::Fr::MODULUS);
    }
}
