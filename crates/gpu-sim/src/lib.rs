//! # batchzk-gpu-sim
//!
//! A deterministic, cycle-level simulator of the CUDA execution model — the
//! hardware substitution documented in `DESIGN.md` §1. With no physical GPU
//! in this environment, every "GPU" measurement in the reproduction runs the
//! *real module computation* on the CPU while this simulator charges device
//! cycles to the same scheduling structure the paper describes: per-stage
//! kernels with dedicated thread allocations, 32-lane SIMD warps, capacity-
//! checked device memory, and per-direction copy engines that overlap
//! compute when multi-stream is enabled.
//!
//! Only *when* work retires is simulated; *what* is computed is always the
//! real arithmetic (pipelined outputs are bit-identical to the CPU reference
//! implementations and all proofs verify).
//!
//! # Examples
//!
//! ```
//! use batchzk_gpu_sim::{DeviceProfile, Gpu, KernelStep, Work};
//!
//! let mut gpu = Gpu::new(DeviceProfile::gh200());
//! gpu.execute_step(
//!     &[KernelStep::new("hash-layer-0", 1024, Work::Uniform {
//!         units: 4096,
//!         cycles_per_unit: gpu.cost().sha256_compress,
//!     })],
//!     &[],
//!     true,
//! );
//! assert!(gpu.elapsed_cycles() > 0);
//! ```

#![deny(missing_docs)]

mod arrivals;
mod cost;
mod fault;
mod gpu;
mod memory;
mod pool;
mod profile;
mod trace;

pub use arrivals::{Arrival, ArrivalKind, ArrivalPlan, ArrivalSegment};
pub use cost::CostModel;
pub use fault::{DeviceHealth, DroppedKernel, FaultEntry, FaultEvent, FaultKind, FaultPlan};
pub use gpu::{
    Dir, Gpu, KernelStats, KernelStep, StepOutcome, Transfer, UtilSample, Work, WARP_SIZE,
};
pub use memory::{DeviceMemory, MemHandle, OutOfDeviceMemory};
pub use pool::{DevicePool, DeviceSnapshot, PoolSnapshot};
pub use profile::{DeviceProfile, Interconnect};
pub use trace::{CounterTrack, KernelEvent, StepEvent, TraceLevel, TransferEvent};

#[cfg(test)]
mod randomized_tests {
    //! Deterministic randomized checks of the simulator's monotonicity and
    //! conservation invariants. A tiny xorshift-free generator keeps this
    //! crate dependency-free (it sits below `batchzk-field` in the graph of
    //! everything that uses it, but depends on nothing itself).

    use super::*;

    /// SplitMix64; duplicated privately because this crate has no deps.
    struct TestRng(u64);

    impl TestRng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[lo, hi)` via widening multiply.
        fn range(&mut self, lo: u64, hi: u64) -> u64 {
            lo + ((self.next() as u128 * (hi - lo) as u128) >> 64) as u64
        }
    }

    #[test]
    fn more_threads_never_slower() {
        let mut rng = TestRng(0xF0);
        for _ in 0..32 {
            let units = rng.range(1, 10_000);
            let cost = rng.range(1, 500);
            let t1 = rng.range(1, 2048) as u32;
            let t2 = rng.range(1, 2048) as u32;
            let (lo, hi) = (t1.min(t2), t1.max(t2));
            let slow = KernelStep::new(
                "k",
                lo,
                Work::Uniform {
                    units,
                    cycles_per_unit: cost,
                },
            );
            let fast = KernelStep::new(
                "k",
                hi,
                Work::Uniform {
                    units,
                    cycles_per_unit: cost,
                },
            );
            assert!(fast.duration_cycles() <= slow.duration_cycles());
        }
    }

    #[test]
    fn items_duration_bounded_by_serial_and_above_critical_path() {
        let mut rng = TestRng(0xF1);
        for _ in 0..32 {
            let n = rng.range(1, 128) as usize;
            let items: Vec<u64> = (0..n).map(|_| rng.range(1, 200)).collect();
            let threads = rng.range(1, 256) as u32;
            let k = KernelStep::new("k", threads, Work::Items(items.clone()));
            let serial: u64 = items.iter().sum();
            let max_item = *items.iter().max().unwrap();
            let d = k.duration_cycles();
            assert!(d <= serial, "duration {d} > serial {serial}");
            assert!(d >= max_item, "duration {d} < critical path {max_item}");
        }
    }

    #[test]
    fn sorted_items_never_slower_within_a_warp() {
        // With one warp the duration is the sum of per-chunk maxima, and
        // grouping similar-cost items (the paper's §3.3 bucket-sort
        // argument) — here, descending order — minimizes it: the k-th
        // largest chunk maximum is then exactly the ((k-1)·lanes)-th order
        // statistic, a lower bound for any ordering. Across warps the
        // round-robin chunk assignment can occasionally balance an unsorted
        // order better, so the guarantee is per-warp only.
        let mut rng = TestRng(0xF2);
        for _ in 0..32 {
            let n = rng.range(1, 128) as usize;
            let items: Vec<u64> = (0..n).map(|_| rng.range(1, 200)).collect();
            let threads = rng.range(1, 33) as u32;
            let mut sorted = items.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            let unsorted = KernelStep::new("k", threads, Work::Items(items)).duration_cycles();
            let sorted = KernelStep::new("k", threads, Work::Items(sorted)).duration_cycles();
            assert!(sorted <= unsorted);
        }
    }

    #[test]
    fn memory_alloc_free_conserves() {
        let mut rng = TestRng(0xF3);
        for _ in 0..32 {
            let n = rng.range(1, 32) as usize;
            let sizes: Vec<u64> = (0..n).map(|_| rng.range(1, 1000)).collect();
            let total: u64 = sizes.iter().sum();
            let mut mem = DeviceMemory::new(total);
            let handles: Vec<_> = sizes
                .iter()
                .map(|&b| mem.alloc(b, "x").expect("fits"))
                .collect();
            assert_eq!(mem.in_use(), total);
            assert_eq!(mem.peak(), total);
            for h in handles {
                mem.free(h);
            }
            assert_eq!(mem.in_use(), 0);
        }
    }

    #[test]
    fn overlap_never_slower_than_serial() {
        let mut rng = TestRng(0xF4);
        for _ in 0..32 {
            let units = rng.range(1, 100_000);
            let bytes = rng.range(1, 64 << 20);
            let kernels = [KernelStep::new(
                "k",
                1024,
                Work::Uniform {
                    units,
                    cycles_per_unit: 100,
                },
            )];
            let transfers = [Transfer {
                bytes,
                dir: Dir::HostToDevice,
            }];
            let mut g1 = Gpu::new(DeviceProfile::v100());
            let with = g1.execute_step(&kernels, &transfers, true);
            let mut g2 = Gpu::new(DeviceProfile::v100());
            let without = g2.execute_step(&kernels, &transfers, false);
            assert!(with.step_cycles <= without.step_cycles);
            assert_eq!(with.compute_cycles, without.compute_cycles);
        }
    }
}
