//! # batchzk-gpu-sim
//!
//! A deterministic, cycle-level simulator of the CUDA execution model — the
//! hardware substitution documented in `DESIGN.md` §1. With no physical GPU
//! in this environment, every "GPU" measurement in the reproduction runs the
//! *real module computation* on the CPU while this simulator charges device
//! cycles to the same scheduling structure the paper describes: per-stage
//! kernels with dedicated thread allocations, 32-lane SIMD warps, capacity-
//! checked device memory, and per-direction copy engines that overlap
//! compute when multi-stream is enabled.
//!
//! Only *when* work retires is simulated; *what* is computed is always the
//! real arithmetic (pipelined outputs are bit-identical to the CPU reference
//! implementations and all proofs verify).
//!
//! # Examples
//!
//! ```
//! use batchzk_gpu_sim::{DeviceProfile, Gpu, KernelStep, Work};
//!
//! let mut gpu = Gpu::new(DeviceProfile::gh200());
//! gpu.execute_step(
//!     &[KernelStep::new("hash-layer-0", 1024, Work::Uniform {
//!         units: 4096,
//!         cycles_per_unit: gpu.cost().sha256_compress,
//!     })],
//!     &[],
//!     true,
//! );
//! assert!(gpu.elapsed_cycles() > 0);
//! ```

mod cost;
mod gpu;
mod memory;
mod profile;

pub use cost::CostModel;
pub use gpu::{Dir, Gpu, KernelStats, KernelStep, StepOutcome, Transfer, UtilSample, WARP_SIZE, Work};
pub use memory::{DeviceMemory, MemHandle, OutOfDeviceMemory};
pub use profile::{DeviceProfile, Interconnect};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn more_threads_never_slower(units in 1u64..10_000, cost in 1u64..500,
                                     t1 in 1u32..2048, t2 in 1u32..2048) {
            let (lo, hi) = (t1.min(t2), t1.max(t2));
            let slow = KernelStep::new("k", lo, Work::Uniform { units, cycles_per_unit: cost });
            let fast = KernelStep::new("k", hi, Work::Uniform { units, cycles_per_unit: cost });
            prop_assert!(fast.duration_cycles() <= slow.duration_cycles());
        }

        #[test]
        fn items_duration_bounded_by_serial_and_above_critical_path(
            items in proptest::collection::vec(1u64..200, 1..128),
            threads in 1u32..256,
        ) {
            let k = KernelStep::new("k", threads, Work::Items(items.clone()));
            let serial: u64 = items.iter().sum();
            let max_item = *items.iter().max().unwrap();
            let d = k.duration_cycles();
            prop_assert!(d <= serial, "duration {d} > serial {serial}");
            prop_assert!(d >= max_item, "duration {d} < critical path {max_item}");
        }

        #[test]
        fn sorted_items_never_slower(items in proptest::collection::vec(1u64..200, 1..128),
                                     threads in 1u32..256) {
            let mut sorted = items.clone();
            sorted.sort_unstable();
            let unsorted = KernelStep::new("k", threads, Work::Items(items)).duration_cycles();
            let sorted = KernelStep::new("k", threads, Work::Items(sorted)).duration_cycles();
            prop_assert!(sorted <= unsorted);
        }

        #[test]
        fn memory_alloc_free_conserves(sizes in proptest::collection::vec(1u64..1000, 1..32)) {
            let total: u64 = sizes.iter().sum();
            let mut mem = DeviceMemory::new(total);
            let handles: Vec<_> = sizes
                .iter()
                .map(|&b| mem.alloc(b, "x").expect("fits"))
                .collect();
            prop_assert_eq!(mem.in_use(), total);
            prop_assert_eq!(mem.peak(), total);
            for h in handles {
                mem.free(h);
            }
            prop_assert_eq!(mem.in_use(), 0);
        }

        #[test]
        fn overlap_never_slower_than_serial(units in 1u64..100_000, bytes in 1u64..(64 << 20)) {
            let kernels = [KernelStep::new("k", 1024, Work::Uniform {
                units,
                cycles_per_unit: 100,
            })];
            let transfers = [Transfer { bytes, dir: Dir::HostToDevice }];
            let mut g1 = Gpu::new(DeviceProfile::v100());
            let with = g1.execute_step(&kernels, &transfers, true);
            let mut g2 = Gpu::new(DeviceProfile::v100());
            let without = g2.execute_step(&kernels, &transfers, false);
            prop_assert!(with.step_cycles <= without.step_cycles);
            prop_assert_eq!(with.compute_cycles, without.compute_cycles);
        }
    }
}
