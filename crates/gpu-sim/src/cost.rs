//! Per-operation cycle costs charged by the simulator.
//!
//! Absolute values are coarse estimates derived from public instruction
//! throughput (a 256-bit Montgomery multiplication is ~70 IMAD.WIDE-class
//! instructions; a SHA-256 compression is 64 rounds of ~20 ALU ops; a
//! coalesced 32-byte global load costs a few cycles of issue amortized over
//! latency hiding). Every benchmark in this reproduction is *comparative* —
//! the same cost model is charged to both the pipelined system and every
//! baseline — so only the ratios influence the reported speedups.

/// Cycle costs for the operation classes that appear in the ZKP modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// One SHA-256 compression of a 64-byte block (per thread).
    pub sha256_compress: u64,
    /// One 256-bit field multiplication (Montgomery).
    pub field_mul: u64,
    /// One 256-bit field addition/subtraction.
    pub field_add: u64,
    /// One 32-byte coalesced global-memory access (amortized issue cost).
    pub global_access: u64,
    /// One 32-byte shared-memory access.
    pub shared_access: u64,
    /// One short-Weierstrass mixed point addition (~11 field muls).
    pub group_add: u64,
    /// One point doubling (~8 field muls).
    pub group_double: u64,
    /// Fixed per-kernel-launch overhead in cycles.
    pub kernel_launch: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        let field_mul = 130;
        let field_add = 16;
        Self {
            sha256_compress: 1300,
            field_mul,
            field_add,
            global_access: 48,
            shared_access: 4,
            group_add: 11 * field_mul + 5 * field_add,
            group_double: 8 * field_mul + 9 * field_add,
            kernel_launch: 2000,
        }
    }
}

impl CostModel {
    /// Cost of one sum-check round update per table pair: two global reads,
    /// one write, one multiplication and two additions
    /// (`A[b] = (1-r)·A[b] + r·A[b+half]` with `1-r` precomputed — the
    /// memory-bound profile of §3.2).
    pub fn sumcheck_pair(&self) -> u64 {
        3 * self.global_access + self.field_mul + 2 * self.field_add
    }

    /// Cost of accumulating one term of a sparse matrix–vector row:
    /// one gathered (uncoalesced) read plus a multiply-add.
    pub fn spmv_term(&self) -> u64 {
        2 * self.global_access + self.field_mul + self.field_add
    }

    /// Cost of one Merkle node: a compression plus the coalesced child
    /// reads / parent write.
    pub fn merkle_node(&self) -> u64 {
        self.sha256_compress + 3 * self.global_access
    }

    /// Cost of one NTT butterfly (one mul, two adds, tabled twiddle read).
    pub fn ntt_butterfly(&self) -> u64 {
        self.field_mul + 2 * self.field_add + 3 * self.global_access
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = CostModel::default();
        // Hashing a block is far costlier than a field op; group ops cost
        // an order of magnitude more than field muls.
        assert!(c.sha256_compress > 5 * c.field_mul);
        assert!(c.group_add > 10 * c.field_mul);
        assert!(c.shared_access < c.global_access);
    }

    #[test]
    fn composite_costs_positive_and_ordered() {
        let c = CostModel::default();
        assert!(c.merkle_node() > c.sha256_compress);
        assert!(c.sumcheck_pair() < c.merkle_node());
        assert!(c.spmv_term() > c.field_mul);
        assert!(c.ntt_butterfly() > c.field_mul);
    }
}
