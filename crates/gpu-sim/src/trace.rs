//! Per-step event recording and Chrome-trace export.
//!
//! The simulator's aggregate counters ([`crate::KernelStats`],
//! [`crate::UtilSample`]) answer "how fast was the run"; the event recorder
//! in this module answers "*where did the cycles go*" — per kernel, per copy
//! engine, per step — the way the paper's Figure 4 timeline does. Recording
//! granularity is controlled by [`TraceLevel`]:
//!
//! * [`TraceLevel::Off`] — only O(1) scalar totals (clock, busy cycles,
//!   transfer bytes) are maintained; no per-step allocation at all, so
//!   benchmark loops pay nothing.
//! * [`TraceLevel::Stats`] — the default: utilization samples and per-kernel
//!   cumulative statistics, the pre-existing behaviour.
//! * [`TraceLevel::Full`] — additionally records one [`KernelEvent`] per
//!   resident kernel per step, one [`TransferEvent`] per submitted transfer,
//!   and one [`StepEvent`] per step, enabling [`chrome_trace_json`] export.
//!
//! The Chrome trace format is the JSON event array consumed by
//! `chrome://tracing` and <https://ui.perfetto.dev>: duration (`"ph": "X"`)
//! events with microsecond timestamps. We emit **one device cycle as one
//! microsecond** — the viewer's time axis then reads directly in simulated
//! cycles. Track layout: process 0 carries one thread per kernel name (in
//! order of first appearance) plus two extra threads for the `copy-h2d` and
//! `copy-d2h` engines. The export is byte-deterministic for a given run:
//! events are emitted in recording order and every number is an integer.

use crate::fault::FaultEvent;
use crate::gpu::Dir;

/// How much the device records while executing steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// No per-step recording; scalar totals only. Zero overhead.
    Off,
    /// Utilization samples + cumulative per-kernel statistics (default).
    #[default]
    Stats,
    /// Everything in `Stats` plus per-step kernel/transfer/step events.
    Full,
}

/// One kernel's execution during one step (recorded at [`TraceLevel::Full`]).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelEvent {
    /// Index of the step this execution belongs to (0-based).
    pub step: u64,
    /// Clock value when the step (and hence this kernel) started.
    pub start_cycle: u64,
    /// Cycles this kernel ran: its own duration plus launch overhead,
    /// dilated by oversubscription, never exceeding the step's compute span.
    pub duration_cycles: u64,
    /// Kernel name (stage identity).
    pub name: String,
    /// Threads dedicated to the kernel this step.
    pub threads: u32,
    /// Useful cycles summed over the kernel's threads.
    pub busy_cycles: u64,
    /// Fraction of the kernel's allocated lane-cycles doing useful work
    /// during its own duration (SIMD divergence + partial waves), 0..=1.
    pub warp_occupancy: f64,
}

/// One host↔device transfer during one step (recorded at
/// [`TraceLevel::Full`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferEvent {
    /// Index of the step this transfer belongs to (0-based).
    pub step: u64,
    /// Clock value when the copy engine started on this transfer.
    pub start_cycle: u64,
    /// Cycles the copy engine spent on this transfer.
    pub duration_cycles: u64,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Transfer direction (selects the copy engine).
    pub dir: Dir,
    /// Whether the transfer was hidden behind compute: multi-stream was on
    /// and the whole engine's traffic fit inside the step's compute span.
    pub overlapped: bool,
}

/// Aggregate timing of one step (recorded at [`TraceLevel::Full`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepEvent {
    /// Step index (0-based).
    pub step: u64,
    /// Clock value when the step started.
    pub start_cycle: u64,
    /// Wall cycles of the whole step after the overlap policy.
    pub step_cycles: u64,
    /// Cycles the compute kernels occupied.
    pub compute_cycles: u64,
    /// Cycles the host→device copy engine occupied.
    pub h2d_cycles: u64,
    /// Cycles the device→host copy engine occupied.
    pub d2h_cycles: u64,
}

/// One Chrome-trace counter track: a named family of per-timestamp values
/// rendered as a stacked area chart beside the kernel timeline (phase
/// `"C"` events). Built by higher layers — e.g. the service flight
/// recorder's queue-depth and utilization series — and merged into the
/// device trace by [`crate::Gpu::chrome_trace_json_with_counters`].
///
/// Values are integers (counts, cycles, parts-per-million) so the export
/// stays byte-deterministic; `series` names the stacked components and
/// every point carries one value per series, in the same order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CounterTrack {
    /// Track name shown by the viewer (e.g. `service queue depth`).
    pub name: String,
    /// Names of the stacked series inside the track.
    pub series: Vec<String>,
    /// `(timestamp_cycle, values)` points; `values` aligns with `series`.
    pub points: Vec<(u64, Vec<u64>)>,
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes recorded events to Chrome-trace JSON (see module docs for the
/// track layout). Deterministic: same events → byte-identical output. Fault
/// events, when present, appear as instant (`"ph": "i"`) markers on a
/// dedicated `faults` track after the copy engines; counter tracks, when
/// present, append their phase-`"C"` events after everything else. Empty
/// fault and counter inputs are exact no-ops: the output is byte-identical
/// to an export without them.
pub(crate) fn chrome_trace_json(
    kernel_events: &[KernelEvent],
    transfer_events: &[TransferEvent],
    fault_events: &[FaultEvent],
    counter_tracks: &[CounterTrack],
) -> String {
    // Track ids: kernels by first appearance, then the two copy engines.
    let mut names: Vec<&str> = Vec::new();
    for e in kernel_events {
        if !names.iter().any(|n| *n == e.name) {
            names.push(&e.name);
        }
    }
    let h2d_tid = names.len() as u64 + 1;
    let d2h_tid = names.len() as u64 + 2;

    let mut events: Vec<String> = Vec::new();
    // Metadata: name each track.
    events.push(
        "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"batchzk device\"}}"
            .to_string(),
    );
    for (i, name) in names.iter().enumerate() {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            i as u64 + 1,
            json_escape(name)
        ));
    }
    events.push(format!(
        "{{\"ph\":\"M\",\"pid\":0,\"tid\":{h2d_tid},\"name\":\"thread_name\",\
         \"args\":{{\"name\":\"copy-h2d\"}}}}"
    ));
    events.push(format!(
        "{{\"ph\":\"M\",\"pid\":0,\"tid\":{d2h_tid},\"name\":\"thread_name\",\
         \"args\":{{\"name\":\"copy-d2h\"}}}}"
    ));
    let fault_tid = d2h_tid + 1;
    if !fault_events.is_empty() {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{fault_tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"faults\"}}}}"
        ));
    }

    for e in kernel_events {
        let tid = names.iter().position(|n| *n == e.name).expect("known") as u64 + 1;
        // warp occupancy in parts-per-million keeps the output integral and
        // therefore byte-deterministic across platforms.
        let occ_ppm = (e.warp_occupancy * 1e6).round() as u64;
        events.push(format!(
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\
             \"name\":\"{name}\",\"args\":{{\"step\":{step},\"threads\":{threads},\
             \"busy_cycles\":{busy},\"warp_occupancy_ppm\":{occ_ppm}}}}}",
            ts = e.start_cycle,
            dur = e.duration_cycles.max(1),
            name = json_escape(&e.name),
            step = e.step,
            threads = e.threads,
            busy = e.busy_cycles,
        ));
    }
    for e in transfer_events {
        let (tid, name) = match e.dir {
            Dir::HostToDevice => (h2d_tid, "h2d"),
            Dir::DeviceToHost => (d2h_tid, "d2h"),
        };
        events.push(format!(
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\
             \"name\":\"{name}\",\"args\":{{\"step\":{step},\"bytes\":{bytes},\
             \"overlapped\":{overlapped}}}}}",
            ts = e.start_cycle,
            dur = e.duration_cycles.max(1),
            step = e.step,
            bytes = e.bytes,
            overlapped = e.overlapped,
        ));
    }

    for e in fault_events {
        let name = match &e.kernel {
            Some(k) => format!("{}:{}", e.kind.label(), k),
            None => e.kind.label(),
        };
        events.push(format!(
            "{{\"ph\":\"i\",\"pid\":0,\"tid\":{fault_tid},\"ts\":{ts},\"s\":\"t\",\
             \"name\":\"{name}\"}}",
            ts = e.at_cycle,
            name = json_escape(&name),
        ));
    }

    // Counter tracks (phase "C"): identified by name, no tid — the viewer
    // draws each as a stacked area chart under the duration tracks.
    for track in counter_tracks {
        let name = json_escape(&track.name);
        for (ts, values) in &track.points {
            let mut args = String::new();
            for (i, (series, value)) in track.series.iter().zip(values).enumerate() {
                if i > 0 {
                    args.push(',');
                }
                args.push_str(&format!("\"{}\":{}", json_escape(series), value));
            }
            events.push(format!(
                "{{\"ph\":\"C\",\"pid\":0,\"ts\":{ts},\"name\":\"{name}\",\
                 \"args\":{{{args}}}}}"
            ));
        }
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn export_is_valid_and_ordered() {
        let kernels = vec![
            KernelEvent {
                step: 0,
                start_cycle: 0,
                duration_cycles: 10,
                name: "stage-a".into(),
                threads: 32,
                busy_cycles: 320,
                warp_occupancy: 1.0,
            },
            KernelEvent {
                step: 1,
                start_cycle: 10,
                duration_cycles: 5,
                name: "stage-b".into(),
                threads: 16,
                busy_cycles: 40,
                warp_occupancy: 0.5,
            },
        ];
        let transfers = vec![TransferEvent {
            step: 0,
            start_cycle: 0,
            duration_cycles: 3,
            bytes: 4096,
            dir: Dir::HostToDevice,
            overlapped: true,
        }];
        let json = chrome_trace_json(&kernels, &transfers, &[], &[]);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("stage-a"));
        assert!(json.contains("copy-h2d"));
        assert!(json.contains("\"warp_occupancy_ppm\":500000"));
        // No fault events -> no faults track.
        assert!(!json.contains("faults"));
        // Deterministic.
        assert_eq!(json, chrome_trace_json(&kernels, &transfers, &[], &[]));
        // Balanced braces/brackets as a cheap well-formedness check.
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'));
    }

    #[test]
    fn fault_events_appear_on_their_own_track() {
        use crate::fault::{FaultEvent, FaultKind};
        let faults = vec![
            FaultEvent {
                at_cycle: 100,
                kind: FaultKind::FailStop,
                kernel: None,
            },
            FaultEvent {
                at_cycle: 40,
                kind: FaultKind::DropKernel { nth: 3 },
                kernel: Some("system-merkle".into()),
            },
        ];
        let json = chrome_trace_json(&[], &[], &faults, &[]);
        assert!(json.contains("\"name\":\"faults\""));
        assert!(json.contains("\"name\":\"fail\""));
        assert!(json.contains("\"name\":\"drop:3:system-merkle\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert_eq!(json, chrome_trace_json(&[], &[], &faults, &[]));
    }

    #[test]
    fn counter_tracks_render_as_phase_c_events() {
        let tracks = vec![
            CounterTrack {
                name: "service queue depth".into(),
                series: vec!["interactive".into(), "bulk".into()],
                points: vec![(0, vec![1, 4]), (100, vec![0, 2])],
            },
            CounterTrack {
                name: "utilization ppm d0".into(),
                series: vec!["busy".into()],
                points: vec![(0, vec![1_000_000])],
            },
        ];
        let json = chrome_trace_json(&[], &[], &[], &tracks);
        assert!(json.contains(
            "{\"ph\":\"C\",\"pid\":0,\"ts\":0,\"name\":\"service queue depth\",\
             \"args\":{\"interactive\":1,\"bulk\":4}}"
        ));
        assert!(json.contains("\"ts\":100"));
        assert!(json.contains("utilization ppm d0"));
        assert_eq!(json, chrome_trace_json(&[], &[], &[], &tracks));
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'));
    }

    #[test]
    fn empty_counter_input_is_a_byte_exact_no_op() {
        let kernels = vec![KernelEvent {
            step: 0,
            start_cycle: 0,
            duration_cycles: 10,
            name: "stage-a".into(),
            threads: 32,
            busy_cycles: 320,
            warp_occupancy: 1.0,
        }];
        assert_eq!(
            chrome_trace_json(&kernels, &[], &[], &[]),
            chrome_trace_json(
                &kernels,
                &[],
                &[],
                &[CounterTrack {
                    name: "empty".into(),
                    series: vec!["v".into()],
                    points: Vec::new(),
                }]
            ),
            "a counter track with no points must not perturb the export"
        );
        assert!(!chrome_trace_json(&kernels, &[], &[], &[]).contains("\"ph\":\"C\""));
    }
}
