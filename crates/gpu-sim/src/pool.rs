//! A pool of simulated devices advancing on a shared virtual clock.
//!
//! The paper evaluates BatchZK on five device profiles one at a time; the
//! production deployment it motivates (§1, "serves millions of users")
//! needs *several* devices serving one proof stream. [`DevicePool`] is the
//! substrate for that: N independent [`Gpu`]s — homogeneous or a mix of
//! [`DeviceProfile`]s — each with its own memory arena, copy engines, and
//! trace sink, sharing nothing but a virtual time base.
//!
//! Time discipline: every device carries its own clock (host code drives
//! them one at a time, but the clocks represent concurrent wall time).
//! The pool's notion of *now* is the farthest clock ([`DevicePool::
//! virtual_now`]); a scheduler that always extends the least-advanced
//! device ([`DevicePool::earliest_device`]) emulates an event-driven
//! multi-device executor, and [`DevicePool::sync`] is the barrier that
//! idles every device up to the shared now. The pool's makespan — the
//! quantity multi-device throughput is measured against — is the maximum
//! per-device elapsed time, exactly as it would be on real hardware where
//! the batch is done when the last card finishes.

use crate::fault::{DeviceHealth, FaultPlan};
use crate::gpu::Gpu;
use crate::profile::DeviceProfile;
use crate::trace::TraceLevel;

/// Point-in-time view of one pool member.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSnapshot {
    /// Index of the device in the pool.
    pub index: usize,
    /// Profile name ("A100", ...).
    pub name: &'static str,
    /// Device cycles elapsed on this device's clock.
    pub elapsed_cycles: u64,
    /// Elapsed wall time in milliseconds at this device's clock rate.
    pub elapsed_ms: f64,
    /// Time-weighted mean core utilization so far (0..=1).
    pub mean_utilization: f64,
    /// Bytes of device memory currently allocated.
    pub mem_in_use_bytes: u64,
    /// Device memory capacity in bytes.
    pub mem_capacity_bytes: u64,
    /// Device health as of the snapshot (armed faults only; a scripted
    /// fault whose trigger cycle has not been reached reads as healthy).
    pub health: DeviceHealth,
}

/// Point-in-time view of the whole pool.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSnapshot {
    /// One snapshot per device, in pool order.
    pub devices: Vec<DeviceSnapshot>,
    /// The pool's makespan: the maximum per-device elapsed milliseconds.
    pub makespan_ms: f64,
    /// Max over mean of per-device elapsed milliseconds (1.0 = perfectly
    /// balanced; grows as one device straggles). 0 when nothing ran.
    pub imbalance: f64,
}

/// A pool of N simulated devices sharing a virtual time base.
#[derive(Debug)]
pub struct DevicePool {
    devices: Vec<Gpu>,
}

impl DevicePool {
    /// Builds a pool from already-constructed devices.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty — a pool needs at least one device.
    pub fn new(devices: Vec<Gpu>) -> Self {
        assert!(!devices.is_empty(), "a device pool needs at least one GPU");
        Self { devices }
    }

    /// N identical devices of one profile.
    pub fn homogeneous(profile: DeviceProfile, n: usize) -> Self {
        Self::homogeneous_with_trace_level(profile, n, TraceLevel::default())
    }

    /// N identical devices recording at an explicit [`TraceLevel`].
    pub fn homogeneous_with_trace_level(
        profile: DeviceProfile,
        n: usize,
        level: TraceLevel,
    ) -> Self {
        Self::new(
            (0..n)
                .map(|_| Gpu::with_trace_level(profile.clone(), level))
                .collect(),
        )
    }

    /// A mixed pool, one device per profile (heterogeneous deployments).
    pub fn from_profiles(profiles: Vec<DeviceProfile>) -> Self {
        Self::new(profiles.into_iter().map(Gpu::new).collect())
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True if the pool has no devices (never: construction forbids it,
    /// kept for the conventional `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Shared borrow of device `i`.
    pub fn device(&self, i: usize) -> &Gpu {
        &self.devices[i]
    }

    /// Exclusive borrow of device `i`.
    pub fn device_mut(&mut self, i: usize) -> &mut Gpu {
        &mut self.devices[i]
    }

    /// All devices, in pool order.
    pub fn devices(&self) -> &[Gpu] {
        &self.devices
    }

    /// Exclusive borrow of all devices — the split-borrow entry point a
    /// multi-device executor uses to drive several devices in one scope.
    pub fn devices_mut(&mut self) -> &mut [Gpu] {
        &mut self.devices
    }

    /// The shared virtual clock: the farthest per-device clock, in cycles
    /// of each device's own time base converted to seconds (heterogeneous
    /// pools tick at different rates, so *now* is in wall seconds).
    pub fn virtual_now_seconds(&self) -> f64 {
        self.devices
            .iter()
            .map(Gpu::elapsed_seconds)
            .fold(0.0, f64::max)
    }

    /// The pool-wide makespan in milliseconds (max per-device elapsed).
    pub fn makespan_ms(&self) -> f64 {
        self.virtual_now_seconds() * 1e3
    }

    /// Index of the least-advanced device in wall time (ties break to the
    /// lowest index). A scheduler that always feeds this device emulates
    /// event-driven dispatch across the pool.
    pub fn earliest_device(&self) -> usize {
        let mut best = 0usize;
        let mut best_t = f64::INFINITY;
        for (i, g) in self.devices.iter().enumerate() {
            let t = g.elapsed_seconds();
            if t < best_t {
                best = i;
                best_t = t;
            }
        }
        best
    }

    /// Relative compute capacity of device `i` (cores × clock) — the
    /// *nameplate* weight heterogeneous shard policies fall back to before
    /// a device has any execution history.
    pub fn compute_weight(&self, i: usize) -> f64 {
        let p = self.devices[i].profile();
        p.cuda_cores as f64 * p.clock_ghz
    }

    /// Measured throughput of device `i`: useful work completed per
    /// elapsed virtual time, expressed on the same scale as
    /// [`compute_weight`](Self::compute_weight) (mean utilization × cores
    /// × clock, i.e. busy core-cycles per virtual second ÷ 1e9 — exactly
    /// what a [`DeviceSnapshot`]'s `mean_utilization` and elapsed fields
    /// encode). `None` until the device has run anything; schedulers then
    /// fall back to the nameplate, an optimistic prior that measurement
    /// discounts toward what the device actually delivers.
    pub fn measured_weight(&self, i: usize) -> Option<f64> {
        let g = &self.devices[i];
        if g.elapsed_cycles() == 0 {
            return None;
        }
        let p = g.profile();
        Some(g.mean_utilization() * p.cuda_cores as f64 * p.clock_ghz)
    }

    /// Barrier: idles every device forward to the shared virtual now, and
    /// returns that now in seconds. After a `sync` all clocks agree in
    /// wall time (cycle counts still differ across heterogeneous clocks).
    pub fn sync(&mut self) -> f64 {
        let now = self.virtual_now_seconds();
        for g in &mut self.devices {
            let cycles = (now * g.profile().clock_ghz * 1e9).ceil() as u64;
            g.idle_until(cycles);
        }
        now
    }

    /// A deterministic snapshot of per-device progress and balance.
    pub fn snapshot(&self) -> PoolSnapshot {
        let devices: Vec<DeviceSnapshot> = self
            .devices
            .iter()
            .enumerate()
            .map(|(index, g)| DeviceSnapshot {
                index,
                name: g.profile().name,
                elapsed_cycles: g.elapsed_cycles(),
                elapsed_ms: g.elapsed_ms(),
                mean_utilization: g.mean_utilization(),
                mem_in_use_bytes: g.memory_ref().in_use(),
                mem_capacity_bytes: g.memory_ref().capacity(),
                health: g.health(),
            })
            .collect();
        let makespan_ms = devices.iter().map(|d| d.elapsed_ms).fold(0.0, f64::max);
        let mean_ms =
            devices.iter().map(|d| d.elapsed_ms).sum::<f64>() / devices.len().max(1) as f64;
        let imbalance = if mean_ms > 0.0 {
            makespan_ms / mean_ms
        } else {
            0.0
        };
        PoolSnapshot {
            devices,
            makespan_ms,
            imbalance,
        }
    }

    /// Distributes a [`FaultPlan`]'s entries onto the pool's devices and
    /// returns how many entries were applied. Entries naming a device
    /// index outside the pool are skipped (a plan scripted for a larger
    /// pool degrades gracefully).
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) -> usize {
        let mut applied = 0;
        for e in plan.entries() {
            if let Some(gpu) = self.devices.get_mut(e.device) {
                gpu.push_fault(e.at_cycle, e.kind);
                applied += 1;
            }
        }
        applied
    }

    /// Indices of devices that have not fail-stopped, in pool order.
    pub fn healthy_devices(&self) -> Vec<usize> {
        (0..self.devices.len())
            .filter(|&i| !self.devices[i].is_failed())
            .collect()
    }

    /// Number of fail-stopped devices.
    pub fn failed_count(&self) -> usize {
        self.devices.iter().filter(|g| g.is_failed()).count()
    }

    /// Number of clock-degraded (but still executing) devices.
    pub fn degraded_count(&self) -> usize {
        self.devices
            .iter()
            .filter(|g| g.health().is_degraded())
            .count()
    }

    /// Dissolves the pool back into its devices.
    pub fn into_devices(self) -> Vec<Gpu> {
        self.devices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{KernelStep, Work};

    fn burn(gpu: &mut Gpu, units: u64) {
        gpu.execute_step(
            &[KernelStep::new(
                "k",
                1024,
                Work::Uniform {
                    units,
                    cycles_per_unit: 100,
                },
            )],
            &[],
            true,
        );
    }

    #[test]
    fn homogeneous_pool_has_independent_devices() {
        let mut pool = DevicePool::homogeneous(DeviceProfile::a100(), 4);
        assert_eq!(pool.len(), 4);
        burn(pool.device_mut(1), 1 << 16);
        assert_eq!(pool.device(0).elapsed_cycles(), 0);
        assert!(pool.device(1).elapsed_cycles() > 0);
        // Memory arenas are private per device.
        pool.device_mut(2).memory().alloc(64, "x").unwrap();
        assert_eq!(pool.device(0).memory_ref().in_use(), 0);
        assert_eq!(pool.device(2).memory_ref().in_use(), 64);
    }

    #[test]
    fn earliest_device_tracks_clocks() {
        let mut pool = DevicePool::homogeneous(DeviceProfile::v100(), 3);
        assert_eq!(pool.earliest_device(), 0, "tie breaks to lowest index");
        burn(pool.device_mut(0), 1 << 12);
        assert_eq!(pool.earliest_device(), 1);
        burn(pool.device_mut(1), 1 << 16);
        burn(pool.device_mut(2), 1 << 14);
        assert_eq!(pool.earliest_device(), 0);
    }

    #[test]
    fn sync_aligns_wall_time() {
        let mut pool =
            DevicePool::from_profiles(vec![DeviceProfile::v100(), DeviceProfile::h100()]);
        burn(pool.device_mut(0), 1 << 16);
        let now = pool.sync();
        assert!(now > 0.0);
        for g in pool.devices() {
            assert!((g.elapsed_seconds() - now).abs() * 1e9 < 2.0, "aligned");
        }
        // Sync never rewinds a clock.
        let before = pool.device(0).elapsed_cycles();
        pool.sync();
        assert!(pool.device(0).elapsed_cycles() >= before);
    }

    #[test]
    fn snapshot_reports_imbalance() {
        let mut pool = DevicePool::homogeneous(DeviceProfile::a100(), 2);
        let idle = pool.snapshot();
        assert_eq!(idle.imbalance, 0.0);
        assert_eq!(idle.makespan_ms, 0.0);
        burn(pool.device_mut(0), 1 << 16);
        let snap = pool.snapshot();
        assert_eq!(snap.devices.len(), 2);
        assert!(snap.makespan_ms > 0.0);
        // All work on one of two devices: max/mean = 2.
        assert!((snap.imbalance - 2.0).abs() < 1e-9, "{}", snap.imbalance);
        burn(pool.device_mut(1), 1 << 16);
        assert!(pool.snapshot().imbalance < 1.5);
    }

    #[test]
    fn compute_weight_orders_heterogeneous_pool() {
        let pool = DevicePool::from_profiles(vec![DeviceProfile::v100(), DeviceProfile::h100()]);
        assert!(pool.compute_weight(1) > pool.compute_weight(0));
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn empty_pool_rejected() {
        let _ = DevicePool::new(vec![]);
    }

    #[test]
    fn fault_plan_distributes_to_devices_and_snapshot_sees_health() {
        let mut pool = DevicePool::homogeneous(DeviceProfile::a100(), 3);
        let plan = FaultPlan::new()
            .fail_stop(1, 0)
            .degraded_clock(2, 0, 250)
            .fail_stop(9, 0); // out of range: skipped
        assert_eq!(pool.apply_fault_plan(&plan), 2);
        for d in 0..3 {
            burn(pool.device_mut(d), 1 << 12);
        }
        assert_eq!(pool.healthy_devices(), vec![0, 2]);
        assert_eq!(pool.failed_count(), 1);
        assert_eq!(pool.degraded_count(), 1);
        let snap = pool.snapshot();
        assert_eq!(snap.devices[0].health, DeviceHealth::Healthy);
        assert_eq!(snap.devices[1].health, DeviceHealth::Failed { at_cycle: 0 });
        assert_eq!(
            snap.devices[2].health,
            DeviceHealth::Degraded {
                factor_percent: 250
            }
        );
        // The dead device executed nothing.
        assert_eq!(snap.devices[1].elapsed_cycles, 0);
        // The degraded device is slower than the healthy one.
        assert!(snap.devices[2].elapsed_cycles > snap.devices[0].elapsed_cycles);
    }

    #[test]
    fn into_devices_roundtrip() {
        let pool = DevicePool::homogeneous(DeviceProfile::gh200(), 3);
        let devices = pool.into_devices();
        assert_eq!(devices.len(), 3);
    }
}
