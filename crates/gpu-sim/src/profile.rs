//! Device profiles for the GPUs in the paper's evaluation (§6.1, Table 8).
//!
//! Core counts, SM counts, and clocks are public NVIDIA specifications; PCIe
//! effective bandwidths are back-derived from the paper's own Table 9
//! measurements (320 MB in 22.95 ms on V100 ⇒ ~13.9 GB/s, etc.), so the
//! simulated transfer times land where the authors measured them.

/// Host–device interconnect generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interconnect {
    /// PCIe 3.0 x16 (~13.9 GB/s effective).
    Pcie3x16,
    /// PCIe 4.0 x16 (~30.6 GB/s effective).
    Pcie4x16,
    /// PCIe 5.0 x16 (~65.3 GB/s effective).
    Pcie5x16,
    /// NVLink-C2C (GH200 Grace↔Hopper, ~450 GB/s).
    NvlinkC2c,
}

impl Interconnect {
    /// Effective unidirectional bandwidth in bytes per second.
    pub fn bytes_per_second(&self) -> f64 {
        match self {
            Interconnect::Pcie3x16 => 13.9e9,
            Interconnect::Pcie4x16 => 30.6e9,
            Interconnect::Pcie5x16 => 65.3e9,
            Interconnect::NvlinkC2c => 450.0e9,
        }
    }

    /// Human-readable name matching the paper's Table 9 column.
    pub fn name(&self) -> &'static str {
        match self {
            Interconnect::Pcie3x16 => "PCIe 3.0 x16",
            Interconnect::Pcie4x16 => "PCIe 4.0 x16",
            Interconnect::Pcie5x16 => "PCIe 5.0 x16",
            Interconnect::NvlinkC2c => "NVLink-C2C",
        }
    }
}

/// Static description of one GPU model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Marketing name ("V100", "GH200", ...).
    pub name: &'static str,
    /// Number of FP32/INT32 CUDA cores.
    pub cuda_cores: u32,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Boost clock in GHz.
    pub clock_ghz: f64,
    /// Device memory capacity in bytes.
    pub device_mem_bytes: u64,
    /// Host link.
    pub interconnect: Interconnect,
}

impl DeviceProfile {
    /// NVIDIA Tesla V100 (5120 cores, 80 SMs, 32 GB, PCIe 3.0).
    pub fn v100() -> Self {
        Self {
            name: "V100",
            cuda_cores: 5120,
            sm_count: 80,
            clock_ghz: 1.38,
            device_mem_bytes: 32 << 30,
            interconnect: Interconnect::Pcie3x16,
        }
    }

    /// NVIDIA A100 (6912 cores, 108 SMs, 40 GB, PCIe 4.0).
    pub fn a100() -> Self {
        Self {
            name: "A100",
            cuda_cores: 6912,
            sm_count: 108,
            clock_ghz: 1.41,
            device_mem_bytes: 40 << 30,
            interconnect: Interconnect::Pcie4x16,
        }
    }

    /// NVIDIA GeForce RTX 3090 Ti (10752 cores, 84 SMs, 24 GB, PCIe 4.0) —
    /// the card of Figure 9.
    pub fn rtx3090ti() -> Self {
        Self {
            name: "3090Ti",
            cuda_cores: 10752,
            sm_count: 84,
            clock_ghz: 1.86,
            device_mem_bytes: 24 << 30,
            interconnect: Interconnect::Pcie4x16,
        }
    }

    /// NVIDIA H100 PCIe (14592 cores, 114 SMs, 80 GB, PCIe 5.0).
    pub fn h100() -> Self {
        Self {
            name: "H100",
            cuda_cores: 14592,
            sm_count: 114,
            clock_ghz: 1.755,
            device_mem_bytes: 80 << 30,
            interconnect: Interconnect::Pcie5x16,
        }
    }

    /// NVIDIA GH200 Grace Hopper (16896 cores, 132 SMs, 96 GB HBM3,
    /// NVLink-C2C to the Grace CPU) — the paper's primary platform.
    pub fn gh200() -> Self {
        Self {
            name: "GH200",
            cuda_cores: 16896,
            sm_count: 132,
            clock_ghz: 1.83,
            device_mem_bytes: 96 << 30,
            interconnect: Interconnect::NvlinkC2c,
        }
    }

    /// All profiles used across the paper's tables, in Table 8 order plus
    /// GH200.
    pub fn all() -> Vec<Self> {
        vec![
            Self::v100(),
            Self::a100(),
            Self::rtx3090ti(),
            Self::h100(),
            Self::gh200(),
        ]
    }

    /// Converts device cycles to seconds at this device's clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e9)
    }

    /// Converts a byte count to the device cycles its transfer occupies on
    /// the host link.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        let seconds = bytes as f64 / self.interconnect.bytes_per_second();
        (seconds * self.clock_ghz * 1e9).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered_by_compute() {
        let caps: Vec<u64> = DeviceProfile::all()
            .iter()
            .map(|p| (p.cuda_cores as f64 * p.clock_ghz * 1e6) as u64)
            .collect();
        for w in caps.windows(2) {
            assert!(w[1] > w[0], "later device should be faster: {caps:?}");
        }
    }

    #[test]
    fn cycle_time_conversion() {
        let v100 = DeviceProfile::v100();
        let secs = v100.cycles_to_seconds(1_380_000_000);
        assert!((secs - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_matches_paper_table9() {
        // Paper Table 9: 320 MB over PCIe 3.0 takes 22.95 ms on V100.
        let v100 = DeviceProfile::v100();
        let cycles = v100.transfer_cycles(320 << 20);
        let ms = v100.cycles_to_seconds(cycles) * 1e3;
        assert!((ms - 22.95).abs() < 2.0, "V100 320MB transfer {ms} ms");

        // And ~4.9 ms on H100 (PCIe 5.0).
        let h100 = DeviceProfile::h100();
        let ms = h100.cycles_to_seconds(h100.transfer_cycles(320 << 20)) * 1e3;
        assert!((ms - 4.9).abs() < 1.0, "H100 320MB transfer {ms} ms");
    }

    #[test]
    fn interconnect_bandwidth_ordering() {
        assert!(
            Interconnect::Pcie3x16.bytes_per_second() < Interconnect::Pcie4x16.bytes_per_second()
        );
        assert!(
            Interconnect::Pcie4x16.bytes_per_second() < Interconnect::Pcie5x16.bytes_per_second()
        );
        assert!(
            Interconnect::Pcie5x16.bytes_per_second() < Interconnect::NvlinkC2c.bytes_per_second()
        );
    }
}
