//! The cycle-level execution engine: kernels, warps, streams and the
//! simulation clock.
//!
//! The simulator advances in *steps* (the paper's pipeline cycles). In each
//! step the caller submits the set of concurrently-resident kernels — each
//! with its dedicated thread allocation, exactly the paper's model where
//! "once GPU kernels are launched, they solely focus on completing their
//! assigned tasks" — plus any host↔device transfers. The engine computes how
//! many device cycles the step occupies, applying:
//!
//! * **warp SIMD semantics** — threads execute in 32-lane warps; a warp's
//!   cost is the maximum over its lanes (divergence/imbalance is paid, §3.3);
//! * **dedicated thread allocations** — kernels run concurrently; the step's
//!   compute time is the *maximum* over kernels, scaled if the total thread
//!   count oversubscribes the physical cores;
//! * **copy/compute overlap** — with multi-stream enabled, the per-direction
//!   copy engines run concurrently with compute (Table 9); without it,
//!   transfers serialize.
//!
//! Busy/idle accounting per step yields the utilization traces of
//! Figures 4 and 9.

use std::collections::BTreeMap;

use crate::cost::CostModel;
use crate::fault::{DeviceHealth, DroppedKernel, FaultEvent, FaultKind};
use crate::memory::DeviceMemory;
use crate::profile::DeviceProfile;
use crate::trace::{KernelEvent, StepEvent, TraceLevel, TransferEvent};

/// Warp width (threads per warp).
pub const WARP_SIZE: u32 = 32;

/// Work submitted to one kernel for one step.
#[derive(Debug, Clone)]
pub enum Work {
    /// `units` identical items of `cycles_per_unit` each, distributed
    /// round-robin across the kernel's threads (perfectly coalesced work —
    /// the shape of Merkle layers and sum-check rounds).
    Uniform {
        /// Number of work items.
        units: u64,
        /// Cycles per item.
        cycles_per_unit: u64,
    },
    /// Explicit per-item costs assigned to threads in submission order
    /// (items `0..threads` form wave 0, etc.). Warp SIMD cost applies within
    /// each 32-lane group — the shape of sparse-matrix rows in the encoder.
    Items(Vec<u64>),
}

impl Work {
    /// Total useful cycles in this work, ignoring scheduling.
    pub fn useful_cycles(&self) -> u64 {
        match self {
            Work::Uniform {
                units,
                cycles_per_unit,
            } => units * cycles_per_unit,
            Work::Items(items) => items.iter().sum(),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            Work::Uniform { units, .. } => *units == 0,
            Work::Items(items) => items.is_empty(),
        }
    }
}

/// One kernel's contribution to a step.
#[derive(Debug, Clone)]
pub struct KernelStep {
    /// Kernel identity for per-kernel statistics (Figure 4).
    pub name: String,
    /// Threads dedicated to this kernel.
    pub threads: u32,
    /// The work it executes this step.
    pub work: Work,
}

impl KernelStep {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, threads: u32, work: Work) -> Self {
        Self {
            name: name.into(),
            threads,
            work,
        }
    }

    /// Cycles this kernel needs to retire its work with its thread budget.
    pub fn duration_cycles(&self) -> u64 {
        assert!(self.threads > 0, "kernel must have at least one thread");
        match &self.work {
            Work::Uniform {
                units,
                cycles_per_unit,
            } => {
                let waves = units.div_ceil(self.threads as u64);
                waves * cycles_per_unit
            }
            Work::Items(items) => {
                // Items are issued to warps in 32-item chunks, round-robin:
                // warp w executes chunks w, w + W, w + 2W, ... Each chunk
                // costs its slowest lane (SIMD divergence); warps retire
                // their chunks independently, so the kernel finishes when
                // the busiest warp does.
                let lanes = (self.threads.min(WARP_SIZE)) as usize;
                let num_warps = (self.threads as usize).div_ceil(WARP_SIZE as usize);
                let mut warp_time = vec![0u64; num_warps];
                for (i, chunk) in items.chunks(lanes).enumerate() {
                    warp_time[i % num_warps] += chunk.iter().copied().max().unwrap_or(0);
                }
                warp_time.into_iter().max().unwrap_or(0)
            }
        }
    }
}

/// Direction of a host↔device transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Host memory to device memory.
    HostToDevice,
    /// Device memory to host memory.
    DeviceToHost,
}

/// A transfer submitted alongside a step.
#[derive(Debug, Clone, Copy)]
pub struct Transfer {
    /// Payload size.
    pub bytes: u64,
    /// Direction.
    pub dir: Dir,
}

/// Timing of one executed step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// Cycles the compute kernels occupied.
    pub compute_cycles: u64,
    /// Cycles the host→device copy engine occupied.
    pub h2d_cycles: u64,
    /// Cycles the device→host copy engine occupied.
    pub d2h_cycles: u64,
    /// Wall cycles the whole step took (after overlap policy).
    pub step_cycles: u64,
    /// Useful compute cycles summed over all threads.
    pub busy_cycles: u64,
}

/// One utilization sample (a step), for Figure 4/9-style traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilSample {
    /// Clock value when the step started.
    pub start_cycle: u64,
    /// Step duration in cycles.
    pub len: u64,
    /// Fraction of physical core-cycles doing useful work (0..=1).
    pub utilization: f64,
    /// Compute cycles of the step (excluding transfer-bound stall).
    pub compute: u64,
    /// Threads allocated across the step's kernels.
    pub alloc_threads: u64,
    /// Fraction of *allocated thread*-cycles doing useful work during the
    /// compute phase — the quantity the paper's Figures 4 and 9 plot
    /// (idle allocated threads, not PCIe stalls or unallocated cores).
    pub compute_utilization: f64,
}

/// Per-kernel cumulative statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Useful cycles executed.
    pub busy_cycles: u64,
    /// Thread-cycles reserved (threads × step length while resident).
    pub occupied_cycles: u64,
    /// Steps this kernel was resident.
    pub steps: u64,
}

/// A simulated GPU: profile + cost model + clock + memory + traces.
#[derive(Debug)]
pub struct Gpu {
    profile: DeviceProfile,
    cost: CostModel,
    memory: DeviceMemory,
    clock: u64,
    trace_level: TraceLevel,
    trace: Vec<UtilSample>,
    kernel_stats: BTreeMap<String, KernelStats>,
    kernel_events: Vec<KernelEvent>,
    transfer_events: Vec<TransferEvent>,
    step_events: Vec<StepEvent>,
    steps: u64,
    total_busy: u64,
    total_h2d_bytes: u64,
    total_d2h_bytes: u64,
    /// Scripted faults not yet armed, as `(trigger_cycle, kind)`.
    fault_script: Vec<(u64, FaultKind)>,
    health: DeviceHealth,
    /// Clock dilation in integer percent (100 = nominal).
    degraded_percent: u32,
    /// Armed drop faults as `(scripted_nth, launches_remaining)`.
    drop_countdowns: Vec<(u32, u32)>,
    dropped: Vec<DroppedKernel>,
    fault_events: Vec<FaultEvent>,
}

impl Gpu {
    /// Creates a device with the default cost model.
    pub fn new(profile: DeviceProfile) -> Self {
        Self::with_cost(profile, CostModel::default())
    }

    /// Creates a device with an explicit cost model.
    pub fn with_cost(profile: DeviceProfile, cost: CostModel) -> Self {
        let memory = DeviceMemory::new(profile.device_mem_bytes);
        Self {
            profile,
            cost,
            memory,
            clock: 0,
            trace_level: TraceLevel::default(),
            trace: Vec::new(),
            kernel_stats: BTreeMap::new(),
            kernel_events: Vec::new(),
            transfer_events: Vec::new(),
            step_events: Vec::new(),
            steps: 0,
            total_busy: 0,
            total_h2d_bytes: 0,
            total_d2h_bytes: 0,
            fault_script: Vec::new(),
            health: DeviceHealth::Healthy,
            degraded_percent: 100,
            drop_countdowns: Vec::new(),
            dropped: Vec::new(),
            fault_events: Vec::new(),
        }
    }

    /// Creates a device with the default cost model and an explicit
    /// [`TraceLevel`].
    pub fn with_trace_level(profile: DeviceProfile, level: TraceLevel) -> Self {
        let mut gpu = Self::new(profile);
        gpu.trace_level = level;
        gpu
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Device memory allocator.
    pub fn memory(&mut self) -> &mut DeviceMemory {
        &mut self.memory
    }

    /// Read-only view of device memory accounting.
    pub fn memory_ref(&self) -> &DeviceMemory {
        &self.memory
    }

    /// Scripts a fault to arm when the device clock reaches `at_cycle`.
    /// Faults are deterministic: they key on the virtual clock, never on
    /// wall time, so a faulty run replays exactly.
    pub fn push_fault(&mut self, at_cycle: u64, kind: FaultKind) {
        self.fault_script.push((at_cycle, kind));
    }

    /// Arms every scripted fault whose trigger cycle has been reached and
    /// returns the resulting health. Called automatically at the start of
    /// [`execute_step`](Self::execute_step); the pipeline layer also calls
    /// it before admitting work so a fail-stop is observed at a stage
    /// boundary.
    pub fn poll_faults(&mut self) -> DeviceHealth {
        if !self.fault_script.is_empty() {
            let clock = self.clock;
            let mut due: Vec<(u64, FaultKind)> = Vec::new();
            self.fault_script.retain(|&(at, kind)| {
                if at <= clock {
                    due.push((at, kind));
                    false
                } else {
                    true
                }
            });
            // Arm in trigger order; the stable sort keeps insertion order
            // for ties, so arming is deterministic.
            due.sort_by_key(|&(at, _)| at);
            for (at, kind) in due {
                if self.health.is_failed() {
                    // A dead device arms nothing further; the entries are
                    // still consumed so the script drains.
                    continue;
                }
                match kind {
                    FaultKind::FailStop => {
                        self.health = DeviceHealth::Failed { at_cycle: at };
                        self.fault_events.push(FaultEvent {
                            at_cycle: at,
                            kind,
                            kernel: None,
                        });
                    }
                    FaultKind::DegradedClock { factor_percent } => {
                        // Faults never speed a device up: degradation is
                        // monotone worsening and clamped at nominal.
                        self.degraded_percent = self.degraded_percent.max(factor_percent.max(100));
                        if self.degraded_percent > 100 {
                            self.health = DeviceHealth::Degraded {
                                factor_percent: self.degraded_percent,
                            };
                        }
                        self.fault_events.push(FaultEvent {
                            at_cycle: at,
                            kind,
                            kernel: None,
                        });
                    }
                    FaultKind::DropKernel { nth } => {
                        self.drop_countdowns.push((nth, nth.max(1)));
                        // The trace event is recorded when the drop fires,
                        // with the suppressed kernel's name.
                    }
                }
            }
        }
        self.health
    }

    /// Current device health (as of the last poll or executed step).
    pub fn health(&self) -> DeviceHealth {
        self.health
    }

    /// True when the device has fail-stopped.
    pub fn is_failed(&self) -> bool {
        self.health.is_failed()
    }

    /// Current clock dilation in integer percent (100 = nominal; 250 means
    /// every compute span takes 2.5× as long).
    pub fn clock_dilation_percent(&self) -> u32 {
        self.degraded_percent
    }

    /// Drains the kernels suppressed by armed [`FaultKind::DropKernel`]
    /// faults since the last call. The pipeline layer polls this after each
    /// step: a non-empty result means stage work silently did not execute
    /// and the affected in-flight tasks must be salvaged and replayed.
    pub fn take_dropped_kernels(&mut self) -> Vec<DroppedKernel> {
        std::mem::take(&mut self.dropped)
    }

    /// Fault events (armed fail-stops/degradations, fired drops) recorded
    /// so far, for trace export.
    pub fn fault_events(&self) -> &[FaultEvent] {
        &self.fault_events
    }

    /// Executes one step: all `kernels` run concurrently on their dedicated
    /// thread allocations while `transfers` move data. With `multi_stream`
    /// the copy engines overlap compute; otherwise everything serializes.
    ///
    /// Scripted faults apply here: a fail-stopped device executes nothing
    /// and returns a zeroed [`StepOutcome`] without advancing its clock; a
    /// clock-degraded device dilates the compute span; an armed
    /// [`FaultKind::DropKernel`] silently suppresses the counted launch
    /// (reported via [`take_dropped_kernels`](Self::take_dropped_kernels)).
    ///
    /// # Panics
    ///
    /// Panics if any kernel has zero threads.
    pub fn execute_step(
        &mut self,
        kernels: &[KernelStep],
        transfers: &[Transfer],
        multi_stream: bool,
    ) -> StepOutcome {
        if self.poll_faults().is_failed() {
            return StepOutcome {
                compute_cycles: 0,
                h2d_cycles: 0,
                d2h_cycles: 0,
                step_cycles: 0,
                busy_cycles: 0,
            };
        }
        // Armed drop faults count non-empty launches in submission order;
        // when a countdown reaches zero, that launch is suppressed — it
        // contributes no compute, busy cycles, threads, or trace events.
        let mut suppressed: Vec<bool> = Vec::new();
        if !self.drop_countdowns.is_empty() {
            suppressed = vec![false; kernels.len()];
            for (i, k) in kernels.iter().enumerate() {
                if k.work.is_empty() || self.drop_countdowns.is_empty() {
                    continue;
                }
                let mut fired = false;
                for (_, remaining) in self.drop_countdowns.iter_mut() {
                    *remaining -= 1;
                    if *remaining == 0 {
                        fired = true;
                    }
                }
                if fired {
                    suppressed[i] = true;
                    for &(nth, remaining) in self.drop_countdowns.iter() {
                        if remaining == 0 {
                            self.fault_events.push(FaultEvent {
                                at_cycle: self.clock,
                                kind: FaultKind::DropKernel { nth },
                                kernel: Some(k.name.clone()),
                            });
                        }
                    }
                    self.dropped.push(DroppedKernel {
                        name: k.name.clone(),
                        at_cycle: self.clock,
                    });
                    self.drop_countdowns.retain(|&(_, r)| r > 0);
                }
            }
        }
        let is_suppressed = |i: usize| suppressed.get(i).copied().unwrap_or(false);

        let mut compute = 0u64;
        let mut busy = 0u64;
        let mut total_threads = 0u64;
        for (i, k) in kernels.iter().enumerate() {
            if k.work.is_empty() || is_suppressed(i) {
                continue;
            }
            compute = compute.max(k.duration_cycles() + self.cost.kernel_launch);
            busy += k.work.useful_cycles();
            total_threads += k.threads as u64;
        }
        // Oversubscription: if more threads are pinned than physical cores,
        // time dilates proportionally (two-way SMT-style interleaving).
        let cores = self.profile.cuda_cores as u64;
        let oversubscribed = total_threads > cores;
        if oversubscribed {
            compute = compute * total_threads / cores;
        }
        // Degraded clock: the compute span stretches; the PCIe engines are
        // unaffected (thermal throttling hits the SM clock, not the bus).
        if self.degraded_percent > 100 {
            compute = compute * self.degraded_percent as u64 / 100;
        }

        let h2d_bytes: u64 = transfers
            .iter()
            .filter(|t| t.dir == Dir::HostToDevice)
            .map(|t| t.bytes)
            .sum();
        let d2h_bytes: u64 = transfers
            .iter()
            .filter(|t| t.dir == Dir::DeviceToHost)
            .map(|t| t.bytes)
            .sum();
        let h2d = self.profile.transfer_cycles(h2d_bytes);
        let d2h = self.profile.transfer_cycles(d2h_bytes);

        let step = if multi_stream {
            compute.max(h2d).max(d2h)
        } else {
            compute + h2d + d2h
        }
        .max(1);

        // Traces and accounting, gated by the trace level. `Off` keeps only
        // the O(1) scalar totals below; `Stats` adds the utilization trace
        // and cumulative per-kernel statistics; `Full` adds per-step events.
        if self.trace_level != TraceLevel::Off {
            let capacity = self.profile.cuda_cores as f64 * step as f64;
            let compute_capacity = total_threads as f64 * compute as f64;
            self.trace.push(UtilSample {
                start_cycle: self.clock,
                len: step,
                utilization: (busy as f64 / capacity).min(1.0),
                compute,
                alloc_threads: total_threads,
                compute_utilization: if compute_capacity > 0.0 {
                    (busy as f64 / compute_capacity).min(1.0)
                } else {
                    0.0
                },
            });
            for (i, k) in kernels.iter().enumerate() {
                if is_suppressed(i) {
                    continue;
                }
                let stats = self.kernel_stats.entry(k.name.clone()).or_default();
                stats.busy_cycles += k.work.useful_cycles();
                stats.occupied_cycles += k.threads as u64 * step;
                stats.steps += 1;
            }
        }
        if self.trace_level == TraceLevel::Full {
            for (i, k) in kernels.iter().enumerate() {
                if k.work.is_empty() || is_suppressed(i) {
                    continue;
                }
                let raw = k.duration_cycles();
                let mut dur = raw + self.cost.kernel_launch;
                if oversubscribed {
                    dur = dur * total_threads / cores;
                }
                if self.degraded_percent > 100 {
                    dur = dur * self.degraded_percent as u64 / 100;
                }
                let useful = k.work.useful_cycles();
                let lane_capacity = k.threads as u64 * raw;
                self.kernel_events.push(KernelEvent {
                    step: self.steps,
                    start_cycle: self.clock,
                    duration_cycles: dur.min(compute),
                    name: k.name.clone(),
                    threads: k.threads,
                    busy_cycles: useful,
                    warp_occupancy: if lane_capacity > 0 {
                        (useful as f64 / lane_capacity as f64).min(1.0)
                    } else {
                        0.0
                    },
                });
            }
            // Each direction has one copy engine; transfers queue on it in
            // submission order. With multi-stream the engines start with the
            // compute; serialized, h2d follows compute and d2h follows h2d.
            let h2d_start = if multi_stream {
                self.clock
            } else {
                self.clock + compute
            };
            let d2h_start = if multi_stream {
                self.clock
            } else {
                self.clock + compute + h2d
            };
            let (mut h2d_off, mut d2h_off) = (0u64, 0u64);
            for t in transfers {
                let dur = self.profile.transfer_cycles(t.bytes);
                let (start, overlapped) = match t.dir {
                    Dir::HostToDevice => {
                        let s = h2d_start + h2d_off;
                        h2d_off += dur;
                        (s, multi_stream && h2d <= compute)
                    }
                    Dir::DeviceToHost => {
                        let s = d2h_start + d2h_off;
                        d2h_off += dur;
                        (s, multi_stream && d2h <= compute)
                    }
                };
                self.transfer_events.push(TransferEvent {
                    step: self.steps,
                    start_cycle: start,
                    duration_cycles: dur,
                    bytes: t.bytes,
                    dir: t.dir,
                    overlapped,
                });
            }
            self.step_events.push(StepEvent {
                step: self.steps,
                start_cycle: self.clock,
                step_cycles: step,
                compute_cycles: compute,
                h2d_cycles: h2d,
                d2h_cycles: d2h,
            });
        }
        self.steps += 1;
        self.clock += step;
        self.total_busy += busy;
        self.total_h2d_bytes += h2d_bytes;
        self.total_d2h_bytes += d2h_bytes;

        StepOutcome {
            compute_cycles: compute,
            h2d_cycles: h2d,
            d2h_cycles: d2h,
            step_cycles: step,
            busy_cycles: busy,
        }
    }

    /// Total elapsed device cycles.
    pub fn elapsed_cycles(&self) -> u64 {
        self.clock
    }

    /// Advances the clock to `cycle` without executing work — the device
    /// sits idle (no busy cycles accrue, utilization drops accordingly).
    /// Used by [`DevicePool::sync`](crate::DevicePool::sync) to realign a
    /// pool of devices on a shared virtual clock. A `cycle` in the past is
    /// a no-op: the simulated clock never moves backwards.
    pub fn idle_until(&mut self, cycle: u64) {
        self.clock = self.clock.max(cycle);
    }

    /// Total elapsed time in seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.profile.cycles_to_seconds(self.clock)
    }

    /// Total elapsed time in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_seconds() * 1e3
    }

    /// The per-step utilization trace.
    pub fn utilization_trace(&self) -> &[UtilSample] {
        &self.trace
    }

    /// Time-weighted mean core utilization over the whole run.
    pub fn mean_utilization(&self) -> f64 {
        if self.clock == 0 {
            return 0.0;
        }
        self.total_busy as f64 / (self.profile.cuda_cores as f64 * self.clock as f64)
    }

    /// Mean utilization of *allocated threads during compute* across the
    /// run — the paper's Figure 4/9 metric.
    pub fn mean_compute_utilization(&self) -> f64 {
        let capacity: f64 = self
            .trace
            .iter()
            .map(|s| s.alloc_threads as f64 * s.compute as f64)
            .sum();
        if capacity == 0.0 {
            return 0.0;
        }
        self.total_busy as f64 / capacity
    }

    /// Cumulative statistics per kernel name.
    pub fn kernel_stats(&self) -> &BTreeMap<String, KernelStats> {
        &self.kernel_stats
    }

    /// The current trace recording level.
    pub fn trace_level(&self) -> TraceLevel {
        self.trace_level
    }

    /// Sets the trace recording level for subsequent steps. Already-recorded
    /// events are kept.
    pub fn set_trace_level(&mut self, level: TraceLevel) {
        self.trace_level = level;
    }

    /// Per-kernel events recorded at [`TraceLevel::Full`].
    pub fn kernel_events(&self) -> &[KernelEvent] {
        &self.kernel_events
    }

    /// Per-transfer events recorded at [`TraceLevel::Full`].
    pub fn transfer_events(&self) -> &[TransferEvent] {
        &self.transfer_events
    }

    /// Per-step timing events recorded at [`TraceLevel::Full`].
    pub fn step_events(&self) -> &[StepEvent] {
        &self.step_events
    }

    /// Serializes the events recorded at [`TraceLevel::Full`] to Chrome-trace
    /// JSON (open in `chrome://tracing` or <https://ui.perfetto.dev>; one
    /// device cycle is rendered as one microsecond). Byte-deterministic for a
    /// given run.
    pub fn chrome_trace_json(&self) -> String {
        self.chrome_trace_json_with_counters(&[])
    }

    /// [`Self::chrome_trace_json`] with external counter tracks (phase
    /// `"C"` events) merged in — e.g. the service flight recorder's queue
    /// depth and utilization series rendered beside the kernel timeline.
    /// An empty `counters` slice is a byte-exact no-op, and the counters
    /// are supplied at export time, so counter support costs nothing per
    /// step at any [`TraceLevel`].
    pub fn chrome_trace_json_with_counters(
        &self,
        counters: &[crate::trace::CounterTrack],
    ) -> String {
        crate::trace::chrome_trace_json(
            &self.kernel_events,
            &self.transfer_events,
            &self.fault_events,
            counters,
        )
    }

    /// Total bytes moved host→device.
    pub fn total_h2d_bytes(&self) -> u64 {
        self.total_h2d_bytes
    }

    /// Total bytes moved device→host.
    pub fn total_d2h_bytes(&self) -> u64 {
        self.total_d2h_bytes
    }

    /// Resets clock, traces, events and statistics but keeps memory state
    /// and the trace level. Device health, armed degradations/drops, and
    /// any not-yet-armed fault script persist (a throttled or dead card
    /// does not heal on a counter reset); un-armed trigger cycles are
    /// interpreted on the post-reset clock.
    pub fn reset_clock(&mut self) {
        self.clock = 0;
        self.trace.clear();
        self.kernel_stats.clear();
        self.kernel_events.clear();
        self.transfer_events.clear();
        self.step_events.clear();
        self.steps = 0;
        self.total_busy = 0;
        self.total_h2d_bytes = 0;
        self.total_d2h_bytes = 0;
        self.fault_events.clear();
        self.dropped.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> Gpu {
        Gpu::new(DeviceProfile::v100())
    }

    #[test]
    fn uniform_work_duration() {
        let k = KernelStep::new(
            "k",
            64,
            Work::Uniform {
                units: 640,
                cycles_per_unit: 10,
            },
        );
        // 640 units over 64 threads = 10 waves of 10 cycles.
        assert_eq!(k.duration_cycles(), 100);
        // Non-divisible: 641 units -> 11 waves.
        let k2 = KernelStep::new(
            "k",
            64,
            Work::Uniform {
                units: 641,
                cycles_per_unit: 10,
            },
        );
        assert_eq!(k2.duration_cycles(), 110);
    }

    #[test]
    fn item_work_pays_warp_divergence() {
        // 32 items, one slow lane: whole warp pays the slow lane.
        let mut items = vec![1u64; 32];
        items[7] = 100;
        let k = KernelStep::new("k", 32, Work::Items(items.clone()));
        assert_eq!(k.duration_cycles(), 100);
        // Same items split into two waves of 16-thread kernel: two warps of
        // 16 lanes each... threads=16 -> waves of 16 items, 2 waves.
        let k2 = KernelStep::new("k", 16, Work::Items(items));
        assert_eq!(k2.duration_cycles(), 100 + 1);
    }

    #[test]
    fn concurrent_kernels_take_max() {
        let mut g = gpu();
        let launch = g.cost().kernel_launch;
        let out = g.execute_step(
            &[
                KernelStep::new(
                    "fast",
                    32,
                    Work::Uniform {
                        units: 32,
                        cycles_per_unit: 10,
                    },
                ),
                KernelStep::new(
                    "slow",
                    32,
                    Work::Uniform {
                        units: 32,
                        cycles_per_unit: 500,
                    },
                ),
            ],
            &[],
            true,
        );
        assert_eq!(out.compute_cycles, 500 + launch);
        assert_eq!(out.busy_cycles, 32 * 10 + 32 * 500);
    }

    #[test]
    fn oversubscription_dilates_time() {
        let mut g = gpu(); // 5120 cores
        let out = g.execute_step(
            &[KernelStep::new(
                "k",
                10240,
                Work::Uniform {
                    units: 10240,
                    cycles_per_unit: 100,
                },
            )],
            &[],
            true,
        );
        let launch = g.cost().kernel_launch;
        assert_eq!(out.compute_cycles, (100 + launch) * 2);
    }

    #[test]
    fn multi_stream_overlaps_transfers() {
        let mut g = gpu();
        let kernels = [KernelStep::new(
            "k",
            1024,
            Work::Uniform {
                units: 1024 * 1024,
                cycles_per_unit: 100,
            },
        )];
        let transfers = [
            Transfer {
                bytes: 1 << 20,
                dir: Dir::HostToDevice,
            },
            Transfer {
                bytes: 1 << 20,
                dir: Dir::DeviceToHost,
            },
        ];
        let overlapped = g.execute_step(&kernels, &transfers, true);
        assert_eq!(
            overlapped.step_cycles,
            overlapped
                .compute_cycles
                .max(overlapped.h2d_cycles)
                .max(overlapped.d2h_cycles)
        );
        let serialized = g.execute_step(&kernels, &transfers, false);
        assert_eq!(
            serialized.step_cycles,
            serialized.compute_cycles + serialized.h2d_cycles + serialized.d2h_cycles
        );
        assert!(serialized.step_cycles > overlapped.step_cycles);
    }

    #[test]
    fn utilization_trace_records_steps() {
        let mut g = gpu();
        g.execute_step(
            &[KernelStep::new(
                "k",
                5120,
                Work::Uniform {
                    units: 5120,
                    cycles_per_unit: 1_000_000,
                },
            )],
            &[],
            true,
        );
        assert_eq!(g.utilization_trace().len(), 1);
        let sample = g.utilization_trace()[0];
        assert!(sample.utilization > 0.95, "full device ~1.0: {sample:?}");
        // An eighth of the device busy -> ~0.125 utilization.
        g.execute_step(
            &[KernelStep::new(
                "k",
                640,
                Work::Uniform {
                    units: 640,
                    cycles_per_unit: 1_000_000,
                },
            )],
            &[],
            true,
        );
        let sample = g.utilization_trace()[1];
        assert!(
            (sample.utilization - 0.125).abs() < 0.01,
            "got {}",
            sample.utilization
        );
    }

    #[test]
    fn kernel_stats_accumulate() {
        let mut g = gpu();
        for _ in 0..3 {
            g.execute_step(
                &[KernelStep::new(
                    "layer0",
                    64,
                    Work::Uniform {
                        units: 64,
                        cycles_per_unit: 10,
                    },
                )],
                &[],
                true,
            );
        }
        let stats = g.kernel_stats().get("layer0").unwrap();
        assert_eq!(stats.steps, 3);
        assert_eq!(stats.busy_cycles, 3 * 640);
    }

    #[test]
    fn empty_kernels_step_still_advances_for_transfers() {
        let mut g = gpu();
        let out = g.execute_step(
            &[],
            &[Transfer {
                bytes: 320 << 20,
                dir: Dir::HostToDevice,
            }],
            true,
        );
        assert_eq!(out.compute_cycles, 0);
        assert!(out.step_cycles > 0);
        let ms = g.profile().cycles_to_seconds(out.step_cycles) * 1e3;
        assert!((ms - 22.95).abs() < 2.0, "paper Table 9 V100 row: {ms} ms");
    }

    #[test]
    fn reset_clock_clears_traces() {
        let mut g = gpu();
        g.execute_step(
            &[KernelStep::new(
                "k",
                1,
                Work::Uniform {
                    units: 1,
                    cycles_per_unit: 5,
                },
            )],
            &[],
            true,
        );
        assert!(g.elapsed_cycles() > 0);
        g.reset_clock();
        assert_eq!(g.elapsed_cycles(), 0);
        assert!(g.utilization_trace().is_empty());
        assert_eq!(g.mean_utilization(), 0.0);
    }

    #[test]
    fn trace_level_off_records_no_samples_but_keeps_totals() {
        let mut g = Gpu::with_trace_level(DeviceProfile::v100(), TraceLevel::Off);
        let out = g.execute_step(
            &[KernelStep::new(
                "k",
                64,
                Work::Uniform {
                    units: 64,
                    cycles_per_unit: 10,
                },
            )],
            &[Transfer {
                bytes: 4096,
                dir: Dir::HostToDevice,
            }],
            true,
        );
        assert!(out.step_cycles > 0);
        assert!(g.utilization_trace().is_empty());
        assert!(g.kernel_stats().is_empty());
        assert!(g.kernel_events().is_empty());
        assert!(g.transfer_events().is_empty());
        assert!(g.step_events().is_empty());
        assert!(g.elapsed_cycles() > 0);
        assert_eq!(g.total_h2d_bytes(), 4096);
        // Counter emission is a no-op at Off: with no recorded events and
        // no counter points, the export carries no duration or counter
        // events, and passing an empty counter slice is byte-exact.
        assert_eq!(
            g.chrome_trace_json(),
            g.chrome_trace_json_with_counters(&[])
        );
        assert!(!g.chrome_trace_json().contains("\"ph\":\"X\""));
        assert!(!g.chrome_trace_json().contains("\"ph\":\"C\""));
        // Timing is identical to a recording device.
        let mut g2 = Gpu::with_trace_level(DeviceProfile::v100(), TraceLevel::Full);
        let out2 = g2.execute_step(
            &[KernelStep::new(
                "k",
                64,
                Work::Uniform {
                    units: 64,
                    cycles_per_unit: 10,
                },
            )],
            &[Transfer {
                bytes: 4096,
                dir: Dir::HostToDevice,
            }],
            true,
        );
        assert_eq!(out, out2);
    }

    #[test]
    fn trace_level_stats_allocates_no_per_step_events_even_with_counters() {
        // Counter tracks are supplied at export time, never recorded per
        // step: after stepping at `Stats`, every per-step event buffer
        // stays empty (stats keeps only aggregate samples), and exporting
        // with counters reads those buffers without touching them.
        let mut g = Gpu::with_trace_level(DeviceProfile::v100(), TraceLevel::Stats);
        for _ in 0..4 {
            g.execute_step(
                &[KernelStep::new(
                    "k",
                    64,
                    Work::Uniform {
                        units: 64,
                        cycles_per_unit: 10,
                    },
                )],
                &[],
                true,
            );
        }
        assert!(g.kernel_events().is_empty());
        assert!(g.transfer_events().is_empty());
        assert!(g.step_events().is_empty());
        assert!(!g.utilization_trace().is_empty(), "stats still samples");
        let track = crate::trace::CounterTrack {
            name: "queue depth".into(),
            series: vec!["all".into()],
            points: vec![(0, vec![2]), (50, vec![1])],
        };
        let json = g.chrome_trace_json_with_counters(&[track]);
        assert!(json.contains("\"ph\":\"C\""));
        // Export did not materialize any per-step events as a side effect.
        assert!(g.kernel_events().is_empty());
        assert!(g.step_events().is_empty());
    }

    #[test]
    fn trace_level_full_records_events() {
        let mut g = Gpu::with_trace_level(DeviceProfile::v100(), TraceLevel::Full);
        g.execute_step(
            &[
                KernelStep::new(
                    "a",
                    32,
                    Work::Uniform {
                        units: 32,
                        cycles_per_unit: 10,
                    },
                ),
                KernelStep::new(
                    "b",
                    64,
                    Work::Uniform {
                        units: 64,
                        cycles_per_unit: 500_000,
                    },
                ),
            ],
            &[
                Transfer {
                    bytes: 1 << 16,
                    dir: Dir::HostToDevice,
                },
                Transfer {
                    bytes: 1 << 10,
                    dir: Dir::DeviceToHost,
                },
            ],
            true,
        );
        g.execute_step(
            &[KernelStep::new(
                "a",
                32,
                Work::Uniform {
                    units: 32,
                    cycles_per_unit: 10,
                },
            )],
            &[],
            true,
        );
        assert_eq!(g.step_events().len(), 2);
        assert_eq!(g.kernel_events().len(), 3);
        assert_eq!(g.transfer_events().len(), 2);
        let steps = g.step_events();
        assert_eq!(steps[0].start_cycle, 0);
        assert_eq!(steps[1].start_cycle, steps[0].step_cycles);
        // Kernel durations never exceed their step's compute span.
        for (e, s) in [
            (&g.kernel_events()[0], steps[0]),
            (&g.kernel_events()[1], steps[0]),
            (&g.kernel_events()[2], steps[1]),
        ] {
            assert!(e.duration_cycles <= s.compute_cycles);
            assert!(e.warp_occupancy > 0.0 && e.warp_occupancy <= 1.0);
        }
        // Fully-coalesced uniform work has occupancy 1.
        assert_eq!(g.kernel_events()[0].warp_occupancy, 1.0);
        // Both transfers fit under the slow kernel: overlapped.
        assert!(g.transfer_events().iter().all(|t| t.overlapped));
        let json = g.chrome_trace_json();
        assert_eq!(json, g.chrome_trace_json(), "export must be deterministic");
        assert!(json.contains("\"traceEvents\""));
        g.reset_clock();
        assert!(g.kernel_events().is_empty());
        assert!(g.step_events().is_empty());
        assert!(g.transfer_events().is_empty());
        assert_eq!(g.trace_level(), TraceLevel::Full, "level survives reset");
    }

    #[test]
    fn serialized_transfers_queue_after_compute() {
        let mut g = Gpu::with_trace_level(DeviceProfile::v100(), TraceLevel::Full);
        let out = g.execute_step(
            &[KernelStep::new(
                "k",
                32,
                Work::Uniform {
                    units: 32,
                    cycles_per_unit: 100,
                },
            )],
            &[
                Transfer {
                    bytes: 1 << 20,
                    dir: Dir::HostToDevice,
                },
                Transfer {
                    bytes: 1 << 20,
                    dir: Dir::DeviceToHost,
                },
            ],
            false,
        );
        let h2d = &g.transfer_events()[0];
        let d2h = &g.transfer_events()[1];
        assert_eq!(h2d.start_cycle, out.compute_cycles);
        assert_eq!(d2h.start_cycle, out.compute_cycles + out.h2d_cycles);
        assert!(!h2d.overlapped && !d2h.overlapped);
    }

    #[test]
    fn fail_stop_freezes_clock_and_reports_failed() {
        let mut g = gpu();
        let work = [KernelStep::new(
            "k",
            64,
            Work::Uniform {
                units: 64,
                cycles_per_unit: 10,
            },
        )];
        let healthy = g.execute_step(&work, &[], true);
        assert!(healthy.step_cycles > 0);
        let before = g.elapsed_cycles();
        g.push_fault(before, crate::FaultKind::FailStop);
        let dead = g.execute_step(&work, &[], true);
        assert_eq!(dead.step_cycles, 0);
        assert_eq!(dead.busy_cycles, 0);
        assert_eq!(g.elapsed_cycles(), before, "clock frozen after fail-stop");
        assert!(g.is_failed());
        assert_eq!(g.health(), crate::DeviceHealth::Failed { at_cycle: before });
        assert_eq!(g.fault_events().len(), 1);
    }

    #[test]
    fn degraded_clock_dilates_compute_but_not_transfers() {
        let work = [KernelStep::new(
            "k",
            64,
            Work::Uniform {
                units: 64,
                cycles_per_unit: 1000,
            },
        )];
        let xfer = [Transfer {
            bytes: 1 << 20,
            dir: Dir::HostToDevice,
        }];
        let mut nominal = gpu();
        let base = nominal.execute_step(&work, &xfer, false);
        let mut slow = gpu();
        slow.push_fault(
            0,
            crate::FaultKind::DegradedClock {
                factor_percent: 300,
            },
        );
        let dilated = slow.execute_step(&work, &xfer, false);
        assert_eq!(dilated.compute_cycles, base.compute_cycles * 3);
        assert_eq!(dilated.h2d_cycles, base.h2d_cycles, "PCIe unaffected");
        assert!(slow.health().is_degraded());
        assert_eq!(slow.clock_dilation_percent(), 300);
        // Determinism: an identical device with the same script matches.
        let mut slow2 = gpu();
        slow2.push_fault(
            0,
            crate::FaultKind::DegradedClock {
                factor_percent: 300,
            },
        );
        assert_eq!(slow2.execute_step(&work, &xfer, false), dilated);
        // Degradation is monotone: a weaker fault never speeds it back up.
        slow.push_fault(
            slow.elapsed_cycles(),
            crate::FaultKind::DegradedClock {
                factor_percent: 150,
            },
        );
        slow.poll_faults();
        assert_eq!(slow.clock_dilation_percent(), 300);
    }

    #[test]
    fn drop_kernel_suppresses_nth_launch() {
        let mut g = gpu();
        let launch = g.cost().kernel_launch;
        g.push_fault(0, crate::FaultKind::DropKernel { nth: 2 });
        let work = |name: &str| {
            KernelStep::new(
                name,
                32,
                Work::Uniform {
                    units: 32,
                    cycles_per_unit: 50,
                },
            )
        };
        // First launch survives (countdown 2 -> 1).
        let first = g.execute_step(&[work("a")], &[], true);
        assert_eq!(first.compute_cycles, 50 + launch);
        assert!(g.take_dropped_kernels().is_empty());
        // Second launch is suppressed: the step runs as if empty.
        let second = g.execute_step(&[work("b")], &[], true);
        assert_eq!(second.compute_cycles, 0);
        assert_eq!(second.busy_cycles, 0);
        let dropped = g.take_dropped_kernels();
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].name, "b");
        assert!(g.take_dropped_kernels().is_empty(), "drained");
        // Third launch runs normally again — the fault fired once.
        let third = g.execute_step(&[work("c")], &[], true);
        assert_eq!(third.compute_cycles, 50 + launch);
        assert_eq!(g.fault_events().len(), 1);
        assert_eq!(g.fault_events()[0].kernel.as_deref(), Some("b"));
    }

    #[test]
    fn faults_trigger_on_virtual_cycles_not_steps() {
        let mut g = gpu();
        let big = [KernelStep::new(
            "k",
            64,
            Work::Uniform {
                units: 64,
                cycles_per_unit: 10_000,
            },
        )];
        g.push_fault(5_000, crate::FaultKind::FailStop);
        // The first step starts at cycle 0: the fault has not armed yet.
        let out = g.execute_step(&big, &[], true);
        assert!(out.step_cycles > 0);
        // The clock is now past the trigger: the next poll arms it.
        assert!(g.poll_faults().is_failed());
    }

    #[test]
    fn faster_device_finishes_sooner() {
        let mk = |profile: DeviceProfile| {
            let mut g = Gpu::new(profile);
            g.execute_step(
                &[KernelStep::new(
                    "k",
                    4096,
                    Work::Uniform {
                        units: 1 << 22,
                        cycles_per_unit: 130,
                    },
                )],
                &[],
                true,
            );
            g.elapsed_seconds()
        };
        assert!(mk(DeviceProfile::h100()) < mk(DeviceProfile::v100()));
    }
}
