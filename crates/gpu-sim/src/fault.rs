//! Deterministic per-device fault injection.
//!
//! Production pools lose devices mid-batch: cards fail outright, thermal
//! throttling halves a clock, a flaky driver silently drops a kernel
//! launch. The simulator models all three as *scripted* faults keyed on
//! the device's **virtual cycle counter** — never on wall-clock — so a
//! faulty run is exactly as deterministic as a healthy one: the same
//! [`FaultPlan`] against the same workload produces byte-identical
//! clocks, traces, errors, and (after recovery) outputs at any host
//! thread count.
//!
//! The three fault kinds ([`FaultKind`]) and their execution semantics:
//!
//! * [`FaultKind::FailStop`] — the device permanently stops executing at
//!   the scripted cycle. Its clock freezes, subsequent steps run nothing,
//!   and its health reports [`DeviceHealth::Failed`]. The pipeline layer
//!   detects this at a stage boundary and salvages in-flight work.
//! * [`FaultKind::DegradedClock`] — from the scripted cycle on, every
//!   step's compute span dilates by `factor_percent / 100` (integer
//!   percent keeps the arithmetic exact). The device keeps producing
//!   correct results, just slower — and because its measured utilization
//!   drops, measured-weight shard policies automatically route work away
//!   from it.
//! * [`FaultKind::DropKernel`] — the `nth` non-empty kernel launch at or
//!   after the scripted cycle is silently suppressed: it contributes no
//!   compute, no busy cycles, and no trace event. The pipeline layer
//!   observes the drop after the step and treats the affected in-flight
//!   tasks as lost (they are salvaged and replayed).
//!
//! A [`FaultPlan`] scripts faults for a whole pool (entries carry a
//! device index); [`DevicePool::apply_fault_plan`](crate::DevicePool::
//! apply_fault_plan) distributes the entries, and each [`Gpu`](crate::Gpu)
//! arms its own script as its clock crosses the trigger cycles. Plans
//! round-trip through a compact text spec ([`FaultPlan::parse`] /
//! [`FaultPlan::spec`]) so a failure observed in a trace can be replayed
//! from the command line.

use std::fmt;

/// One kind of scripted device fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The device permanently stops executing at the trigger cycle.
    FailStop,
    /// The device's compute clock dilates: every step takes
    /// `factor_percent / 100` times as long from the trigger cycle on.
    /// `100` is nominal speed; `250` runs 2.5× slower. Values below 100
    /// are clamped to nominal (faults never speed a device up).
    DegradedClock {
        /// Dilation factor in integer percent (100 = nominal).
        factor_percent: u32,
    },
    /// The `nth` (1-based) non-empty kernel launch at or after the
    /// trigger cycle is silently dropped.
    DropKernel {
        /// Which launch to drop, counting from the trigger cycle.
        nth: u32,
    },
}

impl FaultKind {
    /// Stable label for traces, metrics, and spec round-tripping.
    pub fn label(&self) -> String {
        match self {
            FaultKind::FailStop => "fail".to_string(),
            FaultKind::DegradedClock { factor_percent } => format!("slow:{factor_percent}"),
            FaultKind::DropKernel { nth } => format!("drop:{nth}"),
        }
    }
}

/// One scripted fault: which device, when (virtual cycles on that
/// device's clock), and what happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEntry {
    /// Pool index of the device the fault strikes.
    pub device: usize,
    /// Device-clock cycle at which the fault arms (the fault fires on the
    /// first step whose start cycle is at or past this).
    pub at_cycle: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic script of per-device faults for a pool.
///
/// Plans are pure data: applying the same plan to the same pool and
/// workload reproduces the same failure, recovery, and outputs exactly.
///
/// # Examples
///
/// ```
/// use batchzk_gpu_sim::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .fail_stop(1, 50_000)
///     .degraded_clock(2, 0, 300)
///     .drop_kernel(0, 10_000, 3);
/// let spec = plan.spec();
/// assert_eq!(FaultPlan::parse(&spec).unwrap(), plan);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    entries: Vec<FaultEntry>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fail-stop of `device` at `at_cycle` (builder style).
    pub fn fail_stop(mut self, device: usize, at_cycle: u64) -> Self {
        self.push(FaultEntry {
            device,
            at_cycle,
            kind: FaultKind::FailStop,
        });
        self
    }

    /// Adds a clock degradation of `device` from `at_cycle` on (builder
    /// style). `factor_percent` is the dilation in integer percent.
    pub fn degraded_clock(mut self, device: usize, at_cycle: u64, factor_percent: u32) -> Self {
        self.push(FaultEntry {
            device,
            at_cycle,
            kind: FaultKind::DegradedClock { factor_percent },
        });
        self
    }

    /// Adds a dropped kernel launch on `device`: the `nth` launch at or
    /// after `at_cycle` is suppressed (builder style).
    pub fn drop_kernel(mut self, device: usize, at_cycle: u64, nth: u32) -> Self {
        self.push(FaultEntry {
            device,
            at_cycle,
            kind: FaultKind::DropKernel { nth: nth.max(1) },
        });
        self
    }

    /// Appends one entry.
    pub fn push(&mut self, entry: FaultEntry) {
        self.entries.push(entry);
    }

    /// All entries, in insertion order.
    pub fn entries(&self) -> &[FaultEntry] {
        &self.entries
    }

    /// True when the plan scripts no faults.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries targeting device `d`, in insertion order.
    pub fn for_device(&self, d: usize) -> Vec<FaultEntry> {
        self.entries
            .iter()
            .copied()
            .filter(|e| e.device == d)
            .collect()
    }

    /// Parses the compact text spec: comma-separated entries of the form
    /// `<device>@<cycle>:fail`, `<device>@<cycle>:slow:<percent>`, or
    /// `<device>@<cycle>:drop:<nth>`. Whitespace around entries is
    /// ignored; an empty spec is the empty plan.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the malformed entry.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for raw in spec.split(',') {
            let entry = raw.trim();
            if entry.is_empty() {
                continue;
            }
            let err = || format!("malformed fault entry `{entry}`");
            let (target, action) = entry.split_once(':').ok_or_else(err)?;
            let (device, cycle) = target.split_once('@').ok_or_else(err)?;
            let device: usize = device.trim().parse().map_err(|_| err())?;
            let at_cycle: u64 = cycle.trim().parse().map_err(|_| err())?;
            let kind = match action.split_once(':') {
                None if action == "fail" => FaultKind::FailStop,
                Some(("slow", pct)) => FaultKind::DegradedClock {
                    factor_percent: pct.trim().parse().map_err(|_| err())?,
                },
                Some(("drop", nth)) => FaultKind::DropKernel {
                    nth: nth.trim().parse::<u32>().map_err(|_| err())?.max(1),
                },
                _ => return Err(err()),
            };
            plan.push(FaultEntry {
                device,
                at_cycle,
                kind,
            });
        }
        Ok(plan)
    }

    /// Renders the plan back to the [`parse`](Self::parse) spec format.
    pub fn spec(&self) -> String {
        self.entries
            .iter()
            .map(|e| format!("{}@{}:{}", e.device, e.at_cycle, e.kind.label()))
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.spec())
    }
}

/// The health of one device, as set by armed faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeviceHealth {
    /// Executing normally.
    #[default]
    Healthy,
    /// Clock-degraded: steps dilate by `factor_percent / 100`.
    Degraded {
        /// Dilation in integer percent (always > 100 once degraded).
        factor_percent: u32,
    },
    /// Fail-stopped: the device executes nothing and its clock is frozen.
    Failed {
        /// The scripted cycle the fail-stop armed at.
        at_cycle: u64,
    },
}

impl DeviceHealth {
    /// True for [`DeviceHealth::Failed`].
    pub fn is_failed(&self) -> bool {
        matches!(self, DeviceHealth::Failed { .. })
    }

    /// True for [`DeviceHealth::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, DeviceHealth::Degraded { .. })
    }
}

/// One fault arming or firing on a device, recorded for traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Device-clock cycle the event is stamped with: the scripted trigger
    /// for fail-stop/degradation, the firing step's start for drops.
    pub at_cycle: u64,
    /// The fault that armed or fired.
    pub kind: FaultKind,
    /// For [`FaultKind::DropKernel`]: the name of the suppressed kernel.
    pub kernel: Option<String>,
}

/// A kernel launch suppressed by an armed [`FaultKind::DropKernel`],
/// reported by [`crate::Gpu::take_dropped_kernels`] so the pipeline
/// layer can salvage the tasks whose stage work silently did not
/// execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DroppedKernel {
    /// Name of the kernel whose launch was dropped.
    pub name: String,
    /// Start cycle of the step the drop fired in.
    pub at_cycle: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_and_accessors() {
        let plan = FaultPlan::new()
            .fail_stop(1, 500)
            .degraded_clock(0, 0, 250)
            .drop_kernel(1, 100, 2);
        assert_eq!(plan.entries().len(), 3);
        assert!(!plan.is_empty());
        assert_eq!(plan.for_device(1).len(), 2);
        assert_eq!(plan.for_device(2).len(), 0);
        assert_eq!(
            plan.for_device(0)[0].kind,
            FaultKind::DegradedClock {
                factor_percent: 250
            }
        );
    }

    #[test]
    fn spec_round_trips() {
        let plan = FaultPlan::new()
            .fail_stop(3, 123_456)
            .degraded_clock(0, 42, 400)
            .drop_kernel(2, 0, 7);
        assert_eq!(plan.spec(), "3@123456:fail,0@42:slow:400,2@0:drop:7");
        assert_eq!(FaultPlan::parse(&plan.spec()).unwrap(), plan);
        assert_eq!(plan.to_string(), plan.spec());
    }

    #[test]
    fn parse_tolerates_whitespace_and_empty() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("  ,  ").unwrap().is_empty());
        let plan = FaultPlan::parse(" 1@10:fail , 0@0:slow:200 ").unwrap();
        assert_eq!(plan.entries().len(), 2);
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        for bad in [
            "fail",
            "1@x:fail",
            "x@10:fail",
            "1@10:melt",
            "1@10:slow:fast",
            "1@10:drop:",
            "1@10",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn drop_nth_clamped_to_one() {
        let plan = FaultPlan::new().drop_kernel(0, 0, 0);
        assert_eq!(plan.entries()[0].kind, FaultKind::DropKernel { nth: 1 });
        let parsed = FaultPlan::parse("0@0:drop:0").unwrap();
        assert_eq!(parsed.entries()[0].kind, FaultKind::DropKernel { nth: 1 });
    }

    #[test]
    fn health_predicates() {
        assert!(!DeviceHealth::Healthy.is_failed());
        assert!(DeviceHealth::Failed { at_cycle: 7 }.is_failed());
        assert!(DeviceHealth::Degraded {
            factor_percent: 200
        }
        .is_degraded());
        assert!(!DeviceHealth::Healthy.is_degraded());
    }
}
