//! Deterministic open-loop arrival traces in virtual device time.
//!
//! The online proving service (DESIGN.md §13) is exercised with *open-loop*
//! load: request arrival times are fixed in advance, in virtual device-clock
//! cycles, and do not react to how fast the service drains them. A trace is
//! described by an [`ArrivalPlan`] — a list of generator segments with a
//! compact text grammar modelled on [`FaultPlan`](crate::FaultPlan)'s spec
//! format — and expanded to a concrete, sorted list of [`Arrival`]s by
//! [`ArrivalPlan::expand`].
//!
//! Everything is exact: seeds are part of the spec, the Poisson sampler uses
//! a software logarithm built from `+ - * /` only (every operation is
//! IEEE-754 correctly rounded, so expansion is bit-identical on any
//! platform), and expansion never consults the wall clock. The same spec
//! string therefore always yields the same arrival list, which is what makes
//! the BENCH.json `service` section byte-deterministic.
//!
//! # Grammar
//!
//! Comma-separated segments, each `<class>[/<backend>]@<cycle>:<kind>`:
//!
//! | segment | meaning |
//! |---------|---------|
//! | `<class>@<cycle>:one` | a single arrival at an explicit cycle |
//! | `<class>@<cycle>:poisson:<gap>:<count>:<seed>` | `count` Poisson arrivals from `cycle`, mean inter-arrival `gap` cycles |
//! | `<class>@<cycle>:onoff:<gap>:<count>:<seed>:<on>:<off>` | the same Poisson process gated by an on/off duty cycle: arrivals only land inside `on`-cycle windows separated by `off`-cycle silences |
//!
//! `class` is a lowercase label (`[a-z0-9_-]+`) the service layer maps to a
//! priority class. It may carry an optional `/<backend>` suffix (same
//! charset) naming the prover backend the request targets — e.g.
//! `interactive/groth16@0:one`; without a suffix the service's default
//! backend applies. The simulator treats both as opaque labels; the CLI
//! layer validates backend names. Whitespace around segments is ignored;
//! an empty spec is the empty plan. [`ArrivalPlan::spec`] renders the plan
//! back to this grammar, and `parse(spec()) == plan` round-trips.
//!
//! ```
//! use batchzk_gpu_sim::ArrivalPlan;
//!
//! let plan = ArrivalPlan::parse(
//!     "interactive@0:poisson:5000:8:1, bulk@0:onoff:2000:8:2:40000:80000",
//! )
//! .unwrap();
//! let arrivals = plan.expand();
//! assert_eq!(arrivals.len(), 16);
//! assert!(arrivals.windows(2).all(|w| w[0].at_cycle <= w[1].at_cycle));
//! assert_eq!(ArrivalPlan::parse(&plan.spec()).unwrap(), plan);
//! ```

use std::fmt;

/// One request arrival: a priority-class label and the virtual device-clock
/// cycle the request reaches the service front.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Priority-class label from the generating segment (e.g.
    /// `"interactive"`). The service layer maps it to a priority class.
    pub class: String,
    /// Prover-backend label from the generating segment, if the segment
    /// named one (`class/backend` in the spec); `None` means the service's
    /// default backend.
    pub backend: Option<String>,
    /// Virtual device-clock cycle of the arrival.
    pub at_cycle: u64,
}

/// The arrival process one [`ArrivalSegment`] generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// A single arrival at the segment's start cycle.
    One,
    /// A seeded Poisson process: exponential inter-arrival gaps with the
    /// given mean, starting at the segment's start cycle.
    Poisson {
        /// Mean inter-arrival gap in cycles (> 0).
        mean_gap: u64,
        /// Number of arrivals to generate.
        count: u32,
        /// Seed for the per-segment deterministic RNG.
        seed: u64,
    },
    /// A bursty on/off-modulated Poisson process: the same exponential gaps,
    /// but time only advances inside `on`-cycle windows; each window is
    /// followed by `off` cycles of silence.
    OnOff {
        /// Mean inter-arrival gap in cycles (> 0) while "on".
        mean_gap: u64,
        /// Number of arrivals to generate.
        count: u32,
        /// Seed for the per-segment deterministic RNG.
        seed: u64,
        /// Width of each "on" window in cycles (> 0).
        on: u64,
        /// Width of each "off" silence in cycles.
        off: u64,
    },
}

impl ArrivalKind {
    fn label(&self) -> String {
        match self {
            ArrivalKind::One => "one".into(),
            ArrivalKind::Poisson {
                mean_gap,
                count,
                seed,
            } => format!("poisson:{mean_gap}:{count}:{seed}"),
            ArrivalKind::OnOff {
                mean_gap,
                count,
                seed,
                on,
                off,
            } => format!("onoff:{mean_gap}:{count}:{seed}:{on}:{off}"),
        }
    }
}

/// One generator segment: a class label, a start cycle, and a process kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalSegment {
    /// Priority-class label stamped on every arrival this segment emits.
    pub class: String,
    /// Optional prover-backend label stamped on every arrival this segment
    /// emits; `None` means the service's default backend.
    pub backend: Option<String>,
    /// Virtual cycle the process starts at.
    pub start_cycle: u64,
    /// The arrival process.
    pub kind: ArrivalKind,
}

/// A deterministic open-loop arrival trace: an ordered list of generator
/// segments with a compact text spec grammar (see [`ArrivalPlan::parse`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ArrivalPlan {
    segments: Vec<ArrivalSegment>,
}

impl ArrivalPlan {
    /// An empty plan (no arrivals).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a single arrival of `class` at `cycle`. As in the spec grammar,
    /// `class` may carry a `/<backend>` suffix.
    pub fn one(mut self, class: &str, cycle: u64) -> Self {
        let (class, backend) = split_token(class);
        self.segments.push(ArrivalSegment {
            class,
            backend,
            start_cycle: cycle,
            kind: ArrivalKind::One,
        });
        self
    }

    /// Adds a seeded Poisson segment: `count` arrivals of `class` from
    /// `start_cycle` with mean inter-arrival gap `mean_gap` cycles. As in
    /// the spec grammar, `class` may carry a `/<backend>` suffix.
    pub fn poisson(
        mut self,
        class: &str,
        start_cycle: u64,
        mean_gap: u64,
        count: u32,
        seed: u64,
    ) -> Self {
        let (class, backend) = split_token(class);
        self.segments.push(ArrivalSegment {
            class,
            backend,
            start_cycle,
            kind: ArrivalKind::Poisson {
                mean_gap,
                count,
                seed,
            },
        });
        self
    }

    /// Adds a bursty on/off segment: Poisson arrivals of `class` gated by
    /// `on`-cycle active windows separated by `off`-cycle silences. As in
    /// the spec grammar, `class` may carry a `/<backend>` suffix.
    #[allow(clippy::too_many_arguments)]
    pub fn onoff(
        mut self,
        class: &str,
        start_cycle: u64,
        mean_gap: u64,
        count: u32,
        seed: u64,
        on: u64,
        off: u64,
    ) -> Self {
        let (class, backend) = split_token(class);
        self.segments.push(ArrivalSegment {
            class,
            backend,
            start_cycle,
            kind: ArrivalKind::OnOff {
                mean_gap,
                count,
                seed,
                on,
                off,
            },
        });
        self
    }

    /// The segments, in insertion order.
    pub fn segments(&self) -> &[ArrivalSegment] {
        &self.segments
    }

    /// True when the plan generates no arrivals.
    pub fn is_empty(&self) -> bool {
        self.expand().is_empty()
    }

    /// The distinct class labels, in order of first appearance.
    pub fn classes(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for s in &self.segments {
            if !out.contains(&s.class) {
                out.push(s.class.clone());
            }
        }
        out
    }

    /// The distinct backend labels explicitly named by segments, in order
    /// of first appearance (segments without a suffix contribute nothing).
    /// The CLI layer validates these against the prover-backend registry.
    pub fn backends(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for s in &self.segments {
            if let Some(b) = &s.backend {
                if !out.contains(b) {
                    out.push(b.clone());
                }
            }
        }
        out
    }

    /// Parses the compact text spec: comma-separated segments of the form
    /// `<class>@<cycle>:one`,
    /// `<class>@<cycle>:poisson:<gap>:<count>:<seed>`, or
    /// `<class>@<cycle>:onoff:<gap>:<count>:<seed>:<on>:<off>`, where
    /// `class` is a lowercase label (`[a-z0-9_-]+`), optionally suffixed
    /// `/<backend>` (same charset) to target a specific prover backend.
    /// Whitespace around segments is ignored; an empty spec is the empty
    /// plan.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the malformed segment.
    pub fn parse(spec: &str) -> Result<ArrivalPlan, String> {
        let mut plan = ArrivalPlan::new();
        for raw in spec.split(',') {
            let entry = raw.trim();
            if entry.is_empty() {
                continue;
            }
            let err = || format!("malformed arrival segment `{entry}`");
            let (target, action) = entry.split_once(':').ok_or_else(err)?;
            let (token, cycle) = target.split_once('@').ok_or_else(err)?;
            let label_ok = |s: &str| {
                !s.is_empty()
                    && s.chars().all(|c| {
                        c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-'
                    })
            };
            let (class, backend) = split_token(token.trim());
            if !label_ok(&class) || backend.as_deref().is_some_and(|b| !label_ok(b)) {
                return Err(err());
            }
            let start_cycle: u64 = cycle.trim().parse().map_err(|_| err())?;
            let fields: Vec<&str> = action.split(':').map(str::trim).collect();
            let num = |s: &str| -> Result<u64, String> { s.parse::<u64>().map_err(|_| err()) };
            let kind = match fields.as_slice() {
                ["one"] => ArrivalKind::One,
                ["poisson", gap, count, seed] => ArrivalKind::Poisson {
                    mean_gap: positive(num(gap)?, err)?,
                    count: num(count)? as u32,
                    seed: num(seed)?,
                },
                ["onoff", gap, count, seed, on, off] => ArrivalKind::OnOff {
                    mean_gap: positive(num(gap)?, err)?,
                    count: num(count)? as u32,
                    seed: num(seed)?,
                    on: positive(num(on)?, err)?,
                    off: num(off)?,
                },
                _ => return Err(err()),
            };
            plan.segments.push(ArrivalSegment {
                class,
                backend,
                start_cycle,
                kind,
            });
        }
        Ok(plan)
    }

    /// Renders the plan back to the [`parse`](Self::parse) spec format.
    pub fn spec(&self) -> String {
        self.segments
            .iter()
            .map(|s| {
                let token = match &s.backend {
                    Some(b) => format!("{}/{b}", s.class),
                    None => s.class.clone(),
                };
                format!("{token}@{}:{}", s.start_cycle, s.kind.label())
            })
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Expands the plan to the concrete arrival list, sorted by cycle
    /// (ties broken by segment insertion order, then emission order).
    /// Expansion is pure integer/IEEE arithmetic seeded from the spec, so
    /// the same plan always yields the same list, on any platform.
    pub fn expand(&self) -> Vec<Arrival> {
        let mut out: Vec<(u64, usize, Arrival)> = Vec::new();
        for (seg_idx, seg) in self.segments.iter().enumerate() {
            let emit = |out: &mut Vec<(u64, usize, Arrival)>, at_cycle: u64| {
                out.push((
                    at_cycle,
                    seg_idx,
                    Arrival {
                        class: seg.class.clone(),
                        backend: seg.backend.clone(),
                        at_cycle,
                    },
                ));
            };
            match seg.kind {
                ArrivalKind::One => emit(&mut out, seg.start_cycle),
                ArrivalKind::Poisson {
                    mean_gap,
                    count,
                    seed,
                } => {
                    let mut rng = SplitMix64(seed);
                    let mut t = seg.start_cycle;
                    for _ in 0..count {
                        t = t.saturating_add(exp_gap(&mut rng, mean_gap));
                        emit(&mut out, t);
                    }
                }
                ArrivalKind::OnOff {
                    mean_gap,
                    count,
                    seed,
                    on,
                    off,
                } => {
                    let mut rng = SplitMix64(seed);
                    // Active time: cycles elapsed inside "on" windows only.
                    let mut active = 0u64;
                    for _ in 0..count {
                        active = active.saturating_add(exp_gap(&mut rng, mean_gap));
                        // Map active time to wall time through the duty
                        // cycle: each full `on` window costs `on + off`.
                        let wall = (active / on).saturating_mul(on + off) + (active % on);
                        emit(&mut out, seg.start_cycle.saturating_add(wall));
                    }
                }
            }
        }
        out.sort_by_key(|(cycle, seg, _)| (*cycle, *seg));
        out.into_iter().map(|(_, _, a)| a).collect()
    }
}

impl fmt::Display for ArrivalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.spec())
    }
}

/// Splits a `class[/backend]` token into its parts (first `/` wins; the
/// parser rejects backends that themselves contain `/`).
fn split_token(token: &str) -> (String, Option<String>) {
    match token.split_once('/') {
        Some((class, backend)) => (class.into(), Some(backend.into())),
        None => (token.into(), None),
    }
}

fn positive(v: u64, err: impl Fn() -> String) -> Result<u64, String> {
    if v == 0 {
        Err(err())
    } else {
        Ok(v)
    }
}

/// SplitMix64; duplicated privately because this crate has no deps.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Samples an exponential inter-arrival gap with the given mean via inverse
/// transform: `gap = -ln(u) * mean` with `u` uniform in `(0, 1]`.
fn exp_gap(rng: &mut SplitMix64, mean_gap: u64) -> u64 {
    // 53 random bits, shifted into (0, 1]: never zero, never subnormal.
    let u = ((rng.next() >> 11) + 1) as f64 / (1u64 << 53) as f64;
    (-det_ln(u) * mean_gap as f64).round() as u64
}

/// Software natural logarithm for `x` in `(0, 1]` using only `+ - * /` —
/// every operation is IEEE-754 correctly rounded, so the result is
/// bit-identical on any platform (libm's `ln` is not guaranteed to be).
///
/// Decomposes `x = m * 2^e` with `m` in `[0.5, 1)`, then
/// `ln(m) = 2 * atanh((m - 1) / (m + 1))` by its Taylor series, which
/// converges fast because `|z| <= 1/3` on that interval.
fn det_ln(x: f64) -> f64 {
    debug_assert!(x > 0.0 && x <= 1.0);
    if x == 1.0 {
        // The decomposition below writes 1.0 as 0.5 * 2^1, which leaves a
        // 1-ulp series residue; ln(1) = 0 is exactly representable.
        return 0.0;
    }
    let bits = x.to_bits();
    let e = ((bits >> 52) & 0x7ff) as i64 - 1022; // x = m * 2^e, m in [0.5, 1)
    let m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1022u64 << 52));
    let z = (m - 1.0) / (m + 1.0);
    let z2 = z * z;
    let mut term = z;
    let mut atanh = z;
    for k in 1..20 {
        term *= z2;
        atanh += term / (2 * k + 1) as f64;
    }
    e as f64 * std::f64::consts::LN_2 + 2.0 * atanh
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_ln_matches_libm() {
        // Sanity only: on this platform the software log should agree with
        // libm to ~1 ulp over the sampler's input range.
        let mut rng = SplitMix64(7);
        for _ in 0..10_000 {
            let u = ((rng.next() >> 11) + 1) as f64 / (1u64 << 53) as f64;
            let got = det_ln(u);
            let want = u.ln();
            assert!(
                (got - want).abs() <= want.abs() * 1e-15 + 1e-15,
                "ln({u}) = {got}, libm {want}"
            );
        }
        assert_eq!(det_ln(1.0), 0.0);
    }

    #[test]
    fn poisson_mean_gap_is_close() {
        let plan = ArrivalPlan::new().poisson("standard", 0, 10_000, 4000, 42);
        let arrivals = plan.expand();
        assert_eq!(arrivals.len(), 4000);
        let last = arrivals.last().unwrap().at_cycle;
        let mean = last as f64 / 4000.0;
        assert!(
            (mean - 10_000.0).abs() < 600.0,
            "empirical mean gap {mean} far from 10000"
        );
    }

    #[test]
    fn onoff_arrivals_respect_duty_cycle() {
        let (on, off) = (5_000u64, 20_000u64);
        let plan = ArrivalPlan::new().onoff("bulk", 1_000, 500, 64, 3, on, off);
        for a in plan.expand() {
            let phase = (a.at_cycle - 1_000) % (on + off);
            assert!(phase <= on, "arrival at phase {phase} inside off window");
        }
    }

    #[test]
    fn spec_round_trips() {
        let plan = ArrivalPlan::new()
            .one("interactive", 17)
            .poisson("standard", 0, 9_000, 32, 11)
            .onoff("bulk", 250_000, 2_000, 64, 12, 40_000, 80_000);
        let spec = plan.spec();
        assert_eq!(
            spec,
            "interactive@17:one,standard@0:poisson:9000:32:11,\
             bulk@250000:onoff:2000:64:12:40000:80000"
                .replace(" ", "")
        );
        let reparsed = ArrivalPlan::parse(&spec).unwrap();
        assert_eq!(reparsed, plan);
        assert_eq!(reparsed.expand(), plan.expand());
        assert_eq!(format!("{plan}"), spec);
    }

    #[test]
    fn expansion_is_deterministic_and_sorted() {
        let plan = ArrivalPlan::parse(
            "interactive@0:poisson:5000:50:1,standard@0:poisson:7000:50:2,bulk@0:onoff:1000:50:3:30000:60000",
        )
        .unwrap();
        let a = plan.expand();
        let b = plan.expand();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at_cycle <= w[1].at_cycle));
        assert_eq!(a.len(), 150);
        // Different seed, different trace.
        let other = ArrivalPlan::parse("interactive@0:poisson:5000:50:9").unwrap();
        assert_ne!(other.expand()[..], a[..]);
    }

    #[test]
    fn whitespace_and_empty_specs() {
        assert_eq!(ArrivalPlan::parse("").unwrap(), ArrivalPlan::new());
        assert_eq!(ArrivalPlan::parse(" , ,, ").unwrap(), ArrivalPlan::new());
        let plan = ArrivalPlan::parse("  interactive@5:one ,bulk@0:poisson:100:2:7 ").unwrap();
        assert_eq!(plan.segments().len(), 2);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "interactive@5",                    // no kind
            "interactive:one",                  // no @cycle
            "Interactive@5:one",                // uppercase class
            "@5:one",                           // empty class
            "interactive@x:one",                // bad cycle
            "interactive@5:two",                // unknown kind
            "interactive@5:poisson:100:2",      // missing seed
            "interactive@5:poisson:0:2:7",      // zero mean gap
            "interactive@5:onoff:100:2:7:0:50", // zero on-window
            "interactive@5:onoff:100:2:7:50",   // missing off
            "interactive@5:poisson:100:2:7:9",  // trailing field
            "interactive/@5:one",               // empty backend
            "/groth16@5:one",                   // empty class with backend
            "interactive/Groth@5:one",          // uppercase backend
            "interactive/a/b@5:one",            // nested slash
        ] {
            let err = ArrivalPlan::parse(bad).unwrap_err();
            assert!(err.contains("malformed arrival segment"), "{bad}: {err}");
        }
    }

    #[test]
    fn backend_suffix_round_trips_and_stamps_arrivals() {
        let plan = ArrivalPlan::parse(
            "interactive@0:poisson:100:4:1, interactive/groth16@0:poisson:100:4:2,\
             bulk/sumcheck@5:one",
        )
        .unwrap();
        assert_eq!(plan.classes(), ["interactive", "bulk"]);
        assert_eq!(plan.backends(), ["groth16", "sumcheck"]);
        assert_eq!(ArrivalPlan::parse(&plan.spec()).unwrap(), plan);
        let arrivals = plan.expand();
        assert_eq!(arrivals.len(), 9);
        let tagged = arrivals
            .iter()
            .filter(|a| a.backend.as_deref() == Some("groth16"))
            .count();
        assert_eq!(tagged, 4);
        assert!(arrivals
            .iter()
            .filter(|a| a.backend.is_none())
            .all(|a| a.class == "interactive"));
        // Builder path splits the same token grammar.
        let built = ArrivalPlan::new().one("bulk/sumcheck", 5);
        assert_eq!(built.segments()[0].backend.as_deref(), Some("sumcheck"));
        assert_eq!(built.spec(), "bulk/sumcheck@5:one");
    }

    #[test]
    fn classes_lists_first_appearance_order() {
        let plan =
            ArrivalPlan::parse("bulk@0:one,interactive@1:one,bulk@2:one,standard@3:one").unwrap();
        assert_eq!(plan.classes(), ["bulk", "interactive", "standard"]);
        assert!(!plan.is_empty());
        assert!(ArrivalPlan::new().is_empty());
    }
}
