//! Device-memory accounting: a capacity-checked allocator with peak
//! tracking, backing the paper's Table 10 (amortized device memory per
//! in-flight proof) and the dynamic load/store analysis of §3.1.

use std::collections::HashMap;
use std::fmt;

/// Error returned when an allocation would exceed device capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfDeviceMemory {
    /// Bytes requested by the failing allocation.
    pub requested: u64,
    /// Bytes in use at the time of the request.
    pub in_use: u64,
    /// Device capacity.
    pub capacity: u64,
}

impl fmt::Display for OutOfDeviceMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of device memory: requested {} bytes with {}/{} in use",
            self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for OutOfDeviceMemory {}

/// Handle to a live device allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemHandle(u64);

/// A capacity-checked bump allocator with labelled live allocations and
/// peak-usage tracking.
#[derive(Debug)]
pub struct DeviceMemory {
    capacity: u64,
    in_use: u64,
    peak: u64,
    next_id: u64,
    live: HashMap<MemHandle, (u64, String)>,
}

impl DeviceMemory {
    /// Creates an allocator over `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            in_use: 0,
            peak: 0,
            next_id: 0,
            live: HashMap::new(),
        }
    }

    /// Allocates `bytes`, tagged with a human-readable label.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfDeviceMemory`] if the allocation would exceed
    /// capacity — the failure mode the paper's dynamic loading strategy is
    /// designed to avoid.
    pub fn alloc(&mut self, bytes: u64, label: &str) -> Result<MemHandle, OutOfDeviceMemory> {
        if self.in_use + bytes > self.capacity {
            return Err(OutOfDeviceMemory {
                requested: bytes,
                in_use: self.in_use,
                capacity: self.capacity,
            });
        }
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        let handle = MemHandle(self.next_id);
        self.next_id += 1;
        self.live.insert(handle, (bytes, label.to_string()));
        Ok(handle)
    }

    /// Frees a live allocation, returning its size.
    ///
    /// # Panics
    ///
    /// Panics on a double free or unknown handle (a simulation bug, not a
    /// recoverable condition).
    pub fn free(&mut self, handle: MemHandle) -> u64 {
        let (bytes, _) = self
            .live
            .remove(&handle)
            .expect("free of unknown or already-freed device allocation");
        self.in_use -= bytes;
        bytes
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// High-water mark since construction (or the last [`Self::reset_peak`]).
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Resets the peak tracker to the current usage.
    pub fn reset_peak(&mut self) {
        self.peak = self.in_use;
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Sum of live allocation sizes whose label contains `needle`.
    pub fn in_use_labelled(&self, needle: &str) -> u64 {
        self.live
            .values()
            .filter(|(_, l)| l.contains(needle))
            .map(|(b, _)| *b)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_accounting() {
        let mut mem = DeviceMemory::new(1000);
        let a = mem.alloc(400, "a").unwrap();
        let b = mem.alloc(500, "b").unwrap();
        assert_eq!(mem.in_use(), 900);
        assert_eq!(mem.peak(), 900);
        assert_eq!(mem.free(a), 400);
        assert_eq!(mem.in_use(), 500);
        assert_eq!(mem.peak(), 900, "peak persists after free");
        mem.free(b);
        assert_eq!(mem.in_use(), 0);
        assert_eq!(mem.live_count(), 0);
    }

    #[test]
    fn capacity_enforced() {
        let mut mem = DeviceMemory::new(100);
        let _a = mem.alloc(60, "a").unwrap();
        let err = mem.alloc(50, "b").unwrap_err();
        assert_eq!(err.requested, 50);
        assert_eq!(err.in_use, 60);
        assert_eq!(err.capacity, 100);
        // Exact fit is fine.
        assert!(mem.alloc(40, "c").is_ok());
    }

    #[test]
    #[should_panic(expected = "already-freed")]
    fn double_free_panics() {
        let mut mem = DeviceMemory::new(100);
        let a = mem.alloc(10, "a").unwrap();
        mem.free(a);
        mem.free(a);
    }

    #[test]
    fn labelled_usage() {
        let mut mem = DeviceMemory::new(1000);
        let _a = mem.alloc(100, "merkle-layer-0").unwrap();
        let _b = mem.alloc(200, "merkle-layer-1").unwrap();
        let _c = mem.alloc(300, "sumcheck-buf").unwrap();
        assert_eq!(mem.in_use_labelled("merkle"), 300);
        assert_eq!(mem.in_use_labelled("sumcheck"), 300);
        assert_eq!(mem.in_use_labelled("nothing"), 0);
    }

    #[test]
    fn reset_peak() {
        let mut mem = DeviceMemory::new(1000);
        let a = mem.alloc(800, "a").unwrap();
        mem.free(a);
        assert_eq!(mem.peak(), 800);
        mem.reset_peak();
        assert_eq!(mem.peak(), 0);
    }

    #[test]
    fn error_displays() {
        let err = OutOfDeviceMemory {
            requested: 5,
            in_use: 95,
            capacity: 100,
        };
        assert!(err.to_string().contains("95/100"));
    }
}
