//! Algorithm 1 of the paper, verbatim: sum-check proof generation for a
//! multilinear polynomial in `O(2^n)` time (Vu et al., "A hybrid architecture
//! for interactive verifiable computation").
//!
//! This module is the CPU reference ("Arkworks (CPU)" column of Table 4) and
//! the bit-exact oracle the pipelined GPU module in `batchzk-pipeline` is
//! tested against. The Fiat–Shamir wrappers live in the `prove` module; here
//! the random numbers `r_1, ..., r_n` are explicit inputs, exactly as in the
//! paper's pseudocode.

use batchzk_field::lut::SubsetSumLUT;
use batchzk_field::Field;

/// A sum-check proof in the paper's format: one pair
/// `(π_{i1}, π_{i2})` per round.
pub type PairProof<F> = Vec<(F, F)>;

/// Generates a sum-check proof for the table `a` (length `2^n`) under the
/// given per-round random numbers, folding the table in place — no copy of
/// the `2^n`-entry table is ever made, so batch callers pay zero per-task
/// allocation beyond the table they already own. After return the table is
/// truncated to a single entry, `a[0] = p(r_n, ..., r_1)`.
///
/// Returns `π = [(π_11, π_12), ..., (π_n1, π_n2)]`.
///
/// # Panics
///
/// Panics if `a.len() != 2^{rs.len()}`.
///
/// # Examples
///
/// ```
/// use batchzk_sumcheck::algorithm1;
/// use batchzk_field::{Field, Fr};
///
/// let table: Vec<Fr> = (0..8u64).map(Fr::from).collect();
/// let h: Fr = table.iter().copied().sum();
/// let rs = [Fr::from(5u64), Fr::from(6u64), Fr::from(7u64)];
/// let proof = algorithm1::prove(&mut table.clone(), &rs);
/// // Round sums reconstruct the claimed total.
/// assert_eq!(proof[0].0 + proof[0].1, h);
/// ```
pub fn prove<F: Field>(a: &mut Vec<F>, rs: &[F]) -> PairProof<F> {
    let n = rs.len();
    assert_eq!(a.len(), 1usize << n, "table length must be 2^n");
    let mut proof = Vec::with_capacity(n);
    for (i, &r) in rs.iter().enumerate() {
        let half = 1usize << (n - i - 1);
        let mut pi1 = F::ZERO;
        let mut pi2 = F::ZERO;
        for b in 0..half {
            pi1 += a[b];
            pi2 += a[b + half];
            // One-mul fold: (1-r)·lo + r·hi == lo + r·(hi - lo), exactly.
            let lo = a[b];
            a[b] = lo + r * (a[b + half] - lo);
        }
        a.truncate(half);
        proof.push((pi1, pi2));
    }
    proof
}

/// Like [`prove`], additionally returning the final folded table entry
/// `p(r_n, ..., r_1)` — the value the verifier's final oracle check needs.
pub fn prove_with_final<F: Field>(a: &mut Vec<F>, rs: &[F]) -> (PairProof<F>, F) {
    let proof = prove(a, rs);
    (proof, a[0])
}

/// How many leading rounds of [`prove_binary`] run multiplication-free.
/// After `L` rounds each table entry selects from a `2^L`-weight tensor, so
/// the per-entry selector masks need `2^L` bits and the materialization
/// table `2^{2^L}` entries — `L = 3` (8-bit masks, 256-entry table) is the
/// sweet spot.
pub const BINARY_LUT_ROUNDS: usize = 3;

/// [`prove_with_final`] specialized to a 0/1 table, e.g. a bit-decomposed
/// witness column. Byte-identical output, but the first
/// [`BINARY_LUT_ROUNDS`] rounds run **without a single per-entry field
/// multiplication**.
///
/// The trick (the subset-sum-LUT idiom from Orion's encoder, applied to
/// sum-check): after `j` folds, every table entry is
/// `Σ_m sel_m · W_j[m]` where `W_j[m] = Π_k (m_k ? r_k : 1-r_k)` is the
/// `eq` weight tensor of the challenges so far and the selectors `sel_m`
/// are original table bits. So the whole fold state is a `2^j`-bit mask
/// per entry — updated with one shift-or — and both the round sums and
/// the final materialization are histogram lookups into a
/// [`SubsetSumLUT`] over the (tiny) weight tensor. The expensive early
/// rounds, which touch the most entries, thus cost integer ops only;
/// per-round field work is `O(2^{2^j})`, independent of the table size.
/// The remaining rounds delegate to [`prove`] on the materialized table.
///
/// # Panics
///
/// Panics if `bits.len() != 2^{rs.len()}`.
///
/// # Examples
///
/// ```
/// use batchzk_sumcheck::algorithm1;
/// use batchzk_field::{Field, Fr};
///
/// let bits = [true, false, false, true, true, true, false, true];
/// let rs = [Fr::from(5u64), Fr::from(6u64), Fr::from(7u64)];
/// let table: Vec<Fr> = bits.iter().map(|&b| Fr::from(b as u64)).collect();
/// let fast = algorithm1::prove_binary(&bits, &rs);
/// assert_eq!(fast, algorithm1::prove_with_final(&mut table.clone(), &rs));
/// ```
pub fn prove_binary<F: Field>(bits: &[bool], rs: &[F]) -> (PairProof<F>, F) {
    let n = rs.len();
    assert_eq!(bits.len(), 1usize << n, "table length must be 2^n");
    let lut_rounds = n.min(BINARY_LUT_ROUNDS);
    let mut proof = Vec::with_capacity(n);

    // masks[b]: which weight-tensor entries the original bits select.
    let mut masks: Vec<u8> = bits.iter().map(|&b| b as u8).collect();
    // weights[m] = Π_k (bit k of m ? r_{k+1} : 1 - r_{k+1}); starts as the
    // empty product.
    let mut weights: Vec<F> = vec![F::ONE];

    for (j, &r) in rs[..lut_rounds].iter().enumerate() {
        let half = 1usize << (n - j - 1);
        let width = 1usize << j; // selector bits per mask before this fold
        let lut = SubsetSumLUT::new(&weights, width);
        // Round sums as histograms: Σ_b T[mask_b] = Σ_m count_m · T[m],
        // so the field work is 2^width muls, not `half` of them.
        let mut counts = vec![[0u64; 2]; 1 << width];
        for (b, &m) in masks.iter().enumerate() {
            counts[m as usize][(b >= half) as usize] += 1;
        }
        let mut pi1 = F::ZERO;
        let mut pi2 = F::ZERO;
        for (m, c) in counts.iter().enumerate() {
            let t = lut.lookup(0, m);
            if c[0] > 0 {
                pi1 += F::from(c[0]) * t;
            }
            if c[1] > 0 {
                pi2 += F::from(c[1]) * t;
            }
        }
        proof.push((pi1, pi2));

        // The fold itself: integer shift-or per entry, zero field ops.
        for b in 0..half {
            masks[b] |= masks[b + half] << width;
        }
        masks.truncate(half);

        // Grow the weight tensor: low block × (1-r), high block × r.
        let one_minus_r = F::ONE - r;
        let mut next = Vec::with_capacity(weights.len() * 2);
        next.extend(weights.iter().map(|&w| w * one_minus_r));
        next.extend(weights.iter().map(|&w| w * r));
        weights = next;
    }

    // Materialize the folded table from the final LUT and delegate the
    // remaining rounds to the general prover.
    let lut = SubsetSumLUT::new(&weights, 1 << lut_rounds);
    let mut a: Vec<F> = masks.iter().map(|&m| lut.lookup(0, m as usize)).collect();
    let (tail, final_val) = prove_with_final(&mut a, &rs[lut_rounds..]);
    proof.extend(tail);
    (proof, final_val)
}

/// Verifies a pair-format proof against the claimed hypercube sum `h`.
///
/// Checks `π_{11} + π_{12} = H` and the per-round consistency
/// `π_{i1} + π_{i2} = (1 - r_{i-1})·π_{(i-1)1} + r_{i-1}·π_{(i-1)2}`,
/// then returns the final claimed evaluation `p(r_n, ..., r_1)` for the
/// caller's oracle check — or `None` if any round check fails.
pub fn verify<F: Field>(h: F, proof: &PairProof<F>, rs: &[F]) -> Option<F> {
    if proof.len() != rs.len() {
        return None;
    }
    let mut claim = h;
    for (&(pi1, pi2), &r) in proof.iter().zip(rs) {
        if pi1 + pi2 != claim {
            return None;
        }
        claim = (F::ONE - r) * pi1 + r * pi2;
    }
    Some(claim)
}

/// Verifies the proof end-to-end, including the final oracle evaluation
/// against the original polynomial table.
///
/// Used in tests and by the batch system's self-checks; a succinct verifier
/// would instead query a polynomial commitment at the final point.
pub fn verify_with_oracle<F: Field>(h: F, proof: &PairProof<F>, rs: &[F], table: &[F]) -> bool {
    let Some(final_claim) = verify(h, proof, rs) else {
        return false;
    };
    // Final point: round i fixed x_{n+1-i} = r_i, so x = (r_n, ..., r_1).
    let point: Vec<F> = rs.iter().rev().copied().collect();
    let poly = crate::MultilinearPoly::new(table.to_vec());
    poly.evaluate(&point) == final_claim
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchzk_field::{Field, Fr};
    use batchzk_hash::Prg;

    fn rand_table(n: usize, seed: u64) -> Vec<Fr> {
        let mut rng = Prg::seed_from_u64(seed);
        (0..1usize << n).map(|_| Fr::random(&mut rng)).collect()
    }

    fn rand_point(n: usize, seed: u64) -> Vec<Fr> {
        let mut rng = Prg::seed_from_u64(seed);
        (0..n).map(|_| Fr::random(&mut rng)).collect()
    }

    #[test]
    fn completeness_across_sizes() {
        for n in 1..=10 {
            let table = rand_table(n, n as u64);
            let rs = rand_point(n, 100 + n as u64);
            let h: Fr = table.iter().copied().sum();
            let proof = prove(&mut table.clone(), &rs);
            assert!(verify_with_oracle(h, &proof, &rs, &table), "n={n}");
        }
    }

    #[test]
    fn wrong_sum_rejected() {
        let mut table = rand_table(6, 1);
        let rs = rand_point(6, 2);
        let h: Fr = table.iter().copied().sum();
        let proof = prove(&mut table, &rs);
        assert!(verify(h + Fr::ONE, &proof, &rs).is_none());
    }

    #[test]
    fn tampered_round_rejected() {
        let table = rand_table(6, 3);
        let rs = rand_point(6, 4);
        let h: Fr = table.iter().copied().sum();
        let mut proof = prove(&mut table.clone(), &rs);
        proof[3].0 += Fr::ONE;
        assert!(!verify_with_oracle(h, &proof, &rs, &table));
    }

    #[test]
    fn compensating_tamper_caught_by_oracle() {
        // Shift both halves so the round sum still matches the claim; the
        // next-round consistency (or final oracle) must catch it.
        let table = rand_table(5, 5);
        let rs = rand_point(5, 6);
        let h: Fr = table.iter().copied().sum();
        let mut proof = prove(&mut table.clone(), &rs);
        proof[0].0 += Fr::ONE;
        proof[0].1 -= Fr::ONE;
        assert!(!verify_with_oracle(h, &proof, &rs, &table));
    }

    #[test]
    fn truncated_proof_rejected() {
        let mut table = rand_table(4, 7);
        let rs = rand_point(4, 8);
        let h: Fr = table.iter().copied().sum();
        let mut proof = prove(&mut table, &rs);
        proof.pop();
        assert!(verify(h, &proof, &rs).is_none());
    }

    #[test]
    fn final_value_is_polynomial_evaluation() {
        let table = rand_table(7, 9);
        let rs = rand_point(7, 10);
        let (_, final_val) = prove_with_final(&mut table.clone(), &rs);
        let point: Vec<Fr> = rs.iter().rev().copied().collect();
        let poly = crate::MultilinearPoly::new(table);
        assert_eq!(final_val, poly.evaluate(&point));
    }

    #[test]
    fn zero_table_proves_zero() {
        let table = vec![Fr::ZERO; 16];
        let rs = rand_point(4, 11);
        let proof = prove(&mut table.clone(), &rs);
        assert!(verify_with_oracle(Fr::ZERO, &proof, &rs, &table));
    }

    #[test]
    fn single_variable() {
        let table = vec![Fr::from(3u64), Fr::from(4u64)];
        let rs = [Fr::from(10u64)];
        let proof = prove(&mut table.clone(), &rs);
        assert_eq!(proof, vec![(Fr::from(3u64), Fr::from(4u64))]);
        assert!(verify_with_oracle(Fr::from(7u64), &proof, &rs, &table));
    }

    #[test]
    #[should_panic(expected = "2^n")]
    fn mismatched_lengths_panic() {
        let _ = prove(&mut vec![Fr::ONE; 8], &[Fr::ONE, Fr::ONE]);
    }

    fn rand_bits(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = Prg::seed_from_u64(seed);
        (0..1usize << n)
            .map(|_| Fr::random(&mut rng).to_bytes()[0] & 1 == 1)
            .collect()
    }

    #[test]
    fn prove_binary_is_byte_identical_to_general_prover() {
        // Covers n below, at, and above the LUT-round cutoff.
        for n in 0..=9 {
            let bits = rand_bits(n, 77 + n as u64);
            let rs = rand_point(n, 200 + n as u64);
            let table: Vec<Fr> = bits.iter().map(|&b| Fr::from(b as u64)).collect();
            let slow = prove_with_final(&mut table.clone(), &rs);
            let fast = prove_binary(&bits, &rs);
            assert_eq!(fast, slow, "n={n}");
        }
    }

    #[test]
    fn prove_binary_extreme_tables() {
        for n in [1usize, 4, 6] {
            let rs = rand_point(n, 300 + n as u64);
            for bits in [vec![false; 1 << n], vec![true; 1 << n]] {
                let table: Vec<Fr> = bits.iter().map(|&b| Fr::from(b as u64)).collect();
                let slow = prove_with_final(&mut table.clone(), &rs);
                assert_eq!(prove_binary(&bits, &rs), slow, "n={n}");
            }
        }
    }

    #[test]
    fn prove_binary_verifies() {
        let bits = rand_bits(8, 13);
        let rs = rand_point(8, 14);
        let table: Vec<Fr> = bits.iter().map(|&b| Fr::from(b as u64)).collect();
        let h: Fr = table.iter().copied().sum();
        let (proof, _) = prove_binary(&bits, &rs);
        assert!(verify_with_oracle(h, &proof, &rs, &table));
    }

    #[test]
    #[should_panic(expected = "2^n")]
    fn prove_binary_mismatched_lengths_panic() {
        let _ = prove_binary::<Fr>(&[true; 8], &[Fr::ONE, Fr::ONE]);
    }
}
