//! Multilinear polynomials represented by their evaluations over the Boolean
//! hypercube.

use batchzk_field::Field;

/// A multilinear polynomial `p(x_1, ..., x_n)` stored as its `2^n`
/// evaluations, indexed by `b = Σ b_i 2^{i-1}` (paper's Algorithm 1
/// convention: `x_1` is the least-significant bit, `x_n` the most
/// significant).
///
/// # Examples
///
/// ```
/// use batchzk_sumcheck::MultilinearPoly;
/// use batchzk_field::{Field, Fr};
///
/// // p(x1, x2) with p(0,0)=1, p(1,0)=2, p(0,1)=3, p(1,1)=4
/// let p = MultilinearPoly::new(vec![
///     Fr::from(1u64), Fr::from(2u64), Fr::from(3u64), Fr::from(4u64),
/// ]);
/// assert_eq!(p.evaluate(&[Fr::ZERO, Fr::ONE]), Fr::from(3u64));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultilinearPoly<F> {
    evals: Vec<F>,
    num_vars: usize,
}

impl<F: Field> MultilinearPoly<F> {
    /// Wraps a table of `2^n` hypercube evaluations.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two (zero included).
    pub fn new(evals: Vec<F>) -> Self {
        assert!(
            evals.len().is_power_of_two(),
            "evaluation table length must be a power of two"
        );
        let num_vars = evals.len().trailing_zeros() as usize;
        Self { evals, num_vars }
    }

    /// The constant-zero polynomial on `n` variables.
    pub fn zero(num_vars: usize) -> Self {
        Self {
            evals: vec![F::ZERO; 1 << num_vars],
            num_vars,
        }
    }

    /// Builds a multilinear extension of a vector, zero-padding to the next
    /// power of two.
    pub fn from_vec_padded(mut values: Vec<F>) -> Self {
        let n = values.len().next_power_of_two().max(1);
        values.resize(n, F::ZERO);
        Self::new(values)
    }

    /// Number of variables `n`.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The evaluation table (length `2^n`).
    pub fn evals(&self) -> &[F] {
        &self.evals
    }

    /// Consumes the polynomial, returning its evaluation table.
    pub fn into_evals(self) -> Vec<F> {
        self.evals
    }

    /// Sum of all hypercube evaluations — the `H` of the sum-check claim.
    pub fn hypercube_sum(&self) -> F {
        self.evals.iter().copied().sum()
    }

    /// Evaluates at an arbitrary point `(x_1, ..., x_n)`.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.num_vars()`.
    pub fn evaluate(&self, point: &[F]) -> F {
        assert_eq!(point.len(), self.num_vars, "point dimension mismatch");
        let mut table = self.evals.clone();
        // Fold variables from the top (x_n) down, matching fix_top_variable.
        for &r in point.iter().rev() {
            let half = table.len() / 2;
            for b in 0..half {
                table[b] = table[b] + r * (table[b + half] - table[b]);
            }
            table.truncate(half);
        }
        table[0]
    }

    /// Fixes the most-significant variable `x_n` to `r`, halving the table —
    /// one round of Algorithm 1's update
    /// `A[b] = (1 - r)·A[b] + r·A[b + 2^{n-1}]`.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial has no variables left.
    pub fn fix_top_variable(&mut self, r: F) {
        assert!(self.num_vars > 0, "no variable left to fix");
        let half = self.evals.len() / 2;
        for b in 0..half {
            let lo = self.evals[b];
            let hi = self.evals[b + half];
            self.evals[b] = lo + r * (hi - lo);
        }
        self.evals.truncate(half);
        self.num_vars -= 1;
    }
}

/// Builds the `eq(tau, ·)` table: `out[b] = Π_i (tau_i b_i + (1-tau_i)(1-b_i))`.
///
/// This is the multilinear extension of the Kronecker delta at `tau`,
/// central to the Spartan-style sum-checks.
pub fn eq_table<F: Field>(tau: &[F]) -> Vec<F> {
    let mut table = vec![F::ONE];
    for &t in tau {
        let mut next = vec![F::ZERO; table.len() * 2];
        let (lo, hi) = next.split_at_mut(table.len());
        for (i, &v) in table.iter().enumerate() {
            let high = v * t;
            hi[i] = high;
            lo[i] = v - high;
        }
        table = next;
    }
    table
}

/// Evaluates `eq(x, y)` for two arbitrary points of equal dimension.
///
/// # Panics
///
/// Panics if the points have different lengths.
pub fn eq_eval<F: Field>(x: &[F], y: &[F]) -> F {
    assert_eq!(x.len(), y.len(), "eq points must have equal dimension");
    x.iter()
        .zip(y)
        .map(|(&a, &b)| a * b + (F::ONE - a) * (F::ONE - b))
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchzk_field::Fr;
    use batchzk_hash::Prg;

    fn rand_poly(n: usize, seed: u64) -> MultilinearPoly<Fr> {
        let mut rng = Prg::seed_from_u64(seed);
        MultilinearPoly::new((0..1usize << n).map(|_| Fr::random(&mut rng)).collect())
    }

    #[test]
    fn evaluate_agrees_on_hypercube() {
        let p = rand_poly(4, 1);
        for b in 0..16usize {
            let point: Vec<Fr> = (0..4).map(|i| Fr::from(((b >> i) & 1) as u64)).collect();
            assert_eq!(p.evaluate(&point), p.evals()[b], "b={b}");
        }
    }

    #[test]
    fn evaluate_is_multilinear_in_each_variable() {
        // p(.., x_i = r, ..) must be linear in r: check with three collinear
        // evaluations: p(2r) - 2p(r) + p(0)·... simpler: p at r and check
        // p(r) == (1-r)p(0) + r·p(1) along each axis.
        let p = rand_poly(3, 2);
        let mut rng = Prg::seed_from_u64(3);
        for axis in 0..3 {
            let mut base: Vec<Fr> = (0..3).map(|_| Fr::random(&mut rng)).collect();
            let r = Fr::random(&mut rng);
            base[axis] = Fr::ZERO;
            let p0 = p.evaluate(&base);
            base[axis] = Fr::ONE;
            let p1 = p.evaluate(&base);
            base[axis] = r;
            assert_eq!(p.evaluate(&base), (Fr::ONE - r) * p0 + r * p1);
        }
    }

    #[test]
    fn fix_top_variable_matches_evaluate() {
        let mut p = rand_poly(5, 4);
        let full = p.clone();
        let mut rng = Prg::seed_from_u64(5);
        let rs: Vec<Fr> = (0..5).map(|_| Fr::random(&mut rng)).collect();
        // Fix x5, x4, ..., x1 with rs[0..5]; final value equals
        // full.evaluate(x1..x5 = rs[4], rs[3], ..., rs[0]).
        for &r in &rs {
            p.fix_top_variable(r);
        }
        let point: Vec<Fr> = rs.iter().rev().copied().collect();
        assert_eq!(p.evals()[0], full.evaluate(&point));
    }

    #[test]
    fn eq_table_is_delta_on_hypercube() {
        let tau = [Fr::ONE, Fr::ZERO, Fr::ONE]; // point (1, 0, 1) -> index 0b101 = 5
        let table = eq_table(&tau);
        for (b, &v) in table.iter().enumerate() {
            if b == 0b101 {
                assert_eq!(v, Fr::ONE);
            } else {
                assert_eq!(v, Fr::ZERO);
            }
        }
    }

    #[test]
    fn eq_table_matches_eq_eval() {
        let mut rng = Prg::seed_from_u64(6);
        let tau: Vec<Fr> = (0..4).map(|_| Fr::random(&mut rng)).collect();
        let table = eq_table(&tau);
        for (b, entry) in table.iter().enumerate().take(16) {
            let point: Vec<Fr> = (0..4).map(|i| Fr::from(((b >> i) & 1) as u64)).collect();
            assert_eq!(*entry, eq_eval(&tau, &point), "b={b}");
        }
    }

    #[test]
    fn eq_table_sums_to_one() {
        let mut rng = Prg::seed_from_u64(7);
        let tau: Vec<Fr> = (0..6).map(|_| Fr::random(&mut rng)).collect();
        let total: Fr = eq_table(&tau).iter().copied().sum();
        assert_eq!(total, Fr::ONE);
    }

    #[test]
    fn mle_of_eq_table_recovers_eq() {
        let mut rng = Prg::seed_from_u64(8);
        let tau: Vec<Fr> = (0..4).map(|_| Fr::random(&mut rng)).collect();
        let x: Vec<Fr> = (0..4).map(|_| Fr::random(&mut rng)).collect();
        let p = MultilinearPoly::new(eq_table(&tau));
        assert_eq!(p.evaluate(&x), eq_eval(&tau, &x));
    }

    #[test]
    fn from_vec_padded_pads_with_zero() {
        let p = MultilinearPoly::from_vec_padded(vec![Fr::ONE, Fr::ONE, Fr::ONE]);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.evals()[3], Fr::ZERO);
        assert_eq!(p.hypercube_sum(), Fr::from(3u64));
    }

    #[test]
    fn zero_poly() {
        let p = MultilinearPoly::<Fr>::zero(3);
        assert_eq!(p.hypercube_sum(), Fr::ZERO);
        assert_eq!(p.evaluate(&[Fr::from(9u64); 3]), Fr::ZERO);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_length_panics() {
        let _ = MultilinearPoly::new(vec![Fr::ONE; 3]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn bad_point_panics() {
        let p = MultilinearPoly::new(vec![Fr::ONE; 4]);
        let _ = p.evaluate(&[Fr::ONE]);
    }
}
