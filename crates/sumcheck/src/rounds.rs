//! Shared round machinery for Fiat–Shamir sum-checks of arbitrary small
//! degree: round-polynomial interpolation and the verifier's round loop.

use batchzk_field::{batch_invert, Field};
use batchzk_hash::Transcript;

/// A Fiat–Shamir sum-check proof: per round, the evaluations of the round
/// polynomial `g_i` at `X = 0, 1, ..., d` where `d` is the degree bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SumcheckProof<F> {
    /// `rounds[i]` holds `d + 1` evaluations of round polynomial `g_i`.
    pub rounds: Vec<Vec<F>>,
}

impl<F: Field> SumcheckProof<F> {
    /// Number of rounds (= number of variables summed over).
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }
}

/// Precomputed inverted Lagrange denominators for interpolation on the
/// consecutive integer nodes `0, 1, ..., d`.
///
/// The denominators `j!·(d−j)!·(−1)^{d−j}` depend only on the degree, not
/// on the values or the evaluation point, so a verifier running many rounds
/// of the same degree builds this once — one `batch_invert` for the whole
/// sum-check instead of one per round.
#[derive(Debug, Clone)]
pub struct LagrangeDenoms<F> {
    /// `inv_denoms[j] = 1 / (j!·(d−j)!·(−1)^{d−j})`.
    inv_denoms: Vec<F>,
}

impl<F: Field> LagrangeDenoms<F> {
    /// Precomputes the inverted denominators for degree `degree`.
    pub fn new(degree: usize) -> Self {
        let mut denoms: Vec<F> = (0..=degree)
            .map(|j| {
                let mut v = F::ONE;
                for t in 1..=j {
                    v *= F::from(t as u64);
                }
                for t in 1..=(degree - j) {
                    v *= F::from(t as u64);
                }
                if (degree - j) % 2 == 1 {
                    -v
                } else {
                    v
                }
            })
            .collect();
        batch_invert(&mut denoms);
        Self { inv_denoms: denoms }
    }

    /// The degree these denominators were built for.
    pub fn degree(&self) -> usize {
        self.inv_denoms.len() - 1
    }

    /// Evaluates the degree-`d` polynomial through `(0, ys[0]), ...,
    /// (d, ys[d])` at `r` without any inversion work.
    ///
    /// # Panics
    ///
    /// Panics if `ys.len() != self.degree() + 1`.
    pub fn interpolate_at(&self, ys: &[F], r: F) -> F {
        assert_eq!(
            ys.len(),
            self.inv_denoms.len(),
            "value count must match the precomputed degree"
        );
        let d = ys.len() - 1;
        if d == 0 {
            return ys[0];
        }
        // terms (r - k) for k = 0..=d
        let diffs: Vec<F> = (0..=d).map(|k| r - F::from(k as u64)).collect();
        // If r is one of the nodes, return directly (denominator would vanish).
        if let Some(k) = diffs.iter().position(|v| v.is_zero()) {
            return ys[k];
        }
        // prefix[j] = Π_{k<j} diffs[k], suffix[j] = Π_{k>j} diffs[k]
        let mut prefix = vec![F::ONE; d + 1];
        for j in 1..=d {
            prefix[j] = prefix[j - 1] * diffs[j - 1];
        }
        let mut suffix = vec![F::ONE; d + 1];
        for j in (0..d).rev() {
            suffix[j] = suffix[j + 1] * diffs[j + 1];
        }
        (0..=d)
            .map(|j| ys[j] * prefix[j] * suffix[j] * self.inv_denoms[j])
            .sum()
    }
}

/// Evaluates the degree-`d` polynomial through the points
/// `(0, ys[0]), ..., (d, ys[d])` at `r` (Lagrange on consecutive integer
/// nodes).
///
/// One-shot convenience over [`LagrangeDenoms`]; callers interpolating many
/// round polynomials of the same degree should precompute the denominators
/// instead, as [`verify_rounds`] does.
///
/// # Panics
///
/// Panics if `ys` is empty.
pub fn interpolate_at<F: Field>(ys: &[F], r: F) -> F {
    assert!(!ys.is_empty(), "need at least one interpolation node");
    LagrangeDenoms::new(ys.len() - 1).interpolate_at(ys, r)
}

/// Runs the verifier's round loop for a degree-`degree` sum-check.
///
/// Per round, checks `g_i(0) + g_i(1) == claim`, absorbs the round
/// polynomial, squeezes the challenge `r_i`, and folds the claim to
/// `g_i(r_i)`. Returns `(final_claim, rs)` on success; the caller must
/// finish with an oracle / commitment check of `final_claim` at the point
/// determined by `rs`.
pub fn verify_rounds<F: Field>(
    claim: F,
    proof: &SumcheckProof<F>,
    degree: usize,
    transcript: &mut Transcript,
) -> Option<(F, Vec<F>)> {
    let mut claim = claim;
    let mut rs = Vec::with_capacity(proof.rounds.len());
    // The Lagrange denominators depend only on the degree: invert them once
    // for the whole proof rather than once per round.
    let denoms = LagrangeDenoms::new(degree);
    for round in &proof.rounds {
        if round.len() != degree + 1 {
            return None;
        }
        if round[0] + round[1] != claim {
            return None;
        }
        transcript.absorb_fields(b"sumcheck-round", round);
        let r: F = transcript.challenge_field(b"sumcheck-r");
        claim = denoms.interpolate_at(round, r);
        rs.push(r);
    }
    Some((claim, rs))
}

/// Prover-side helper: absorbs a round polynomial and squeezes the matching
/// challenge (must mirror [`verify_rounds`] exactly).
pub fn prover_round_challenge<F: Field>(round: &[F], transcript: &mut Transcript) -> F {
    transcript.absorb_fields(b"sumcheck-round", round);
    transcript.challenge_field(b"sumcheck-r")
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchzk_field::Fr;
    use batchzk_hash::Prg;

    #[test]
    fn interpolation_recovers_polynomial() {
        // f(x) = 3x^3 + 2x^2 + x + 7
        let f = |x: Fr| Fr::from(3u64) * x * x * x + Fr::from(2u64) * x * x + x + Fr::from(7u64);
        let ys: Vec<Fr> = (0..4u64).map(|k| f(Fr::from(k))).collect();
        let mut rng = Prg::seed_from_u64(1);
        for _ in 0..20 {
            let r = Fr::random(&mut rng);
            assert_eq!(interpolate_at(&ys, r), f(r));
        }
        // At the nodes themselves.
        for k in 0..4u64 {
            assert_eq!(interpolate_at(&ys, Fr::from(k)), f(Fr::from(k)));
        }
    }

    #[test]
    fn interpolation_degree_zero_and_one() {
        assert_eq!(
            interpolate_at(&[Fr::from(5u64)], Fr::from(99u64)),
            Fr::from(5u64)
        );
        // Line through (0,1), (1,3): f(x) = 1 + 2x
        let ys = [Fr::ONE, Fr::from(3u64)];
        assert_eq!(interpolate_at(&ys, Fr::from(10u64)), Fr::from(21u64));
    }

    #[test]
    fn interpolation_linear_in_values() {
        let mut rng = Prg::seed_from_u64(2);
        let ya: Vec<Fr> = (0..5).map(|_| Fr::random(&mut rng)).collect();
        let yb: Vec<Fr> = (0..5).map(|_| Fr::random(&mut rng)).collect();
        let sum: Vec<Fr> = ya.iter().zip(&yb).map(|(a, b)| *a + *b).collect();
        let r = Fr::random(&mut rng);
        assert_eq!(
            interpolate_at(&sum, r),
            interpolate_at(&ya, r) + interpolate_at(&yb, r)
        );
    }

    #[test]
    fn precomputed_denoms_match_oneshot() {
        let mut rng = Prg::seed_from_u64(3);
        for d in 0..6usize {
            let denoms = LagrangeDenoms::new(d);
            assert_eq!(denoms.degree(), d);
            let ys: Vec<Fr> = (0..=d).map(|_| Fr::random(&mut rng)).collect();
            for _ in 0..8 {
                let r = Fr::random(&mut rng);
                assert_eq!(denoms.interpolate_at(&ys, r), interpolate_at(&ys, r));
            }
            // Node hits go through the shortcut path too.
            for k in 0..=d as u64 {
                assert_eq!(
                    denoms.interpolate_at(&ys, Fr::from(k)),
                    ys[k as usize],
                    "d={d} k={k}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "precomputed degree")]
    fn denoms_reject_wrong_arity() {
        let denoms = LagrangeDenoms::<Fr>::new(2);
        let _ = denoms.interpolate_at(&[Fr::ONE, Fr::ONE], Fr::ONE);
    }

    #[test]
    fn verify_rounds_rejects_wrong_arity() {
        let proof = SumcheckProof {
            rounds: vec![vec![Fr::ONE, Fr::ONE, Fr::ONE]], // 3 evals = degree 2
        };
        let mut t = Transcript::new(b"t");
        assert!(verify_rounds(Fr::from(2u64), &proof, 1, &mut t).is_none());
    }
}
