//! # batchzk-sumcheck
//!
//! The sum-check protocol (§2.3 of the paper): multilinear polynomials over
//! the Boolean hypercube, the paper's Algorithm 1 prover with explicit
//! randomness (the oracle for the pipelined GPU module), and Fiat–Shamir
//! sum-checks of degree 1–3 used by the Spartan/Brakedown-style SNARK in
//! `batchzk-zkp`.
//!
//! # Examples
//!
//! ```
//! use batchzk_sumcheck::{MultilinearPoly, prove_linear, verify_rounds};
//! use batchzk_field::{Field, Fr};
//! use batchzk_hash::Transcript;
//!
//! let p = MultilinearPoly::new((0..8u64).map(Fr::from).collect());
//! let claim = p.hypercube_sum();
//!
//! let mut pt = Transcript::new(b"doc");
//! let out = prove_linear(&p, &mut pt);
//!
//! let mut vt = Transcript::new(b"doc");
//! let (final_claim, _rs) = verify_rounds(claim, &out.proof, 1, &mut vt).unwrap();
//! assert_eq!(p.evaluate(&out.point()), final_claim);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod algorithm1;
mod poly;
mod prove;
mod rounds;

pub use poly::{eq_eval, eq_table, MultilinearPoly};
pub use prove::{prove_cubic_eq, prove_linear, prove_quadratic, ProverOutput};
pub use rounds::{
    interpolate_at, prover_round_challenge, verify_rounds, LagrangeDenoms, SumcheckProof,
};

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use batchzk_field::{Field, Fr, SplitMix64};
    use batchzk_hash::Transcript;

    fn table(rng: &mut SplitMix64, n: usize) -> Vec<Fr> {
        (0..1usize << n).map(|_| Fr::random(rng)).collect()
    }

    fn point(rng: &mut SplitMix64, n: usize) -> Vec<Fr> {
        (0..n).map(|_| Fr::random(rng)).collect()
    }

    #[test]
    fn algorithm1_complete() {
        let mut rng = SplitMix64::seed_from_u64(0xD0);
        for _ in 0..24 {
            let table = table(&mut rng, 6);
            let rs = point(&mut rng, 6);
            let h: Fr = table.iter().copied().sum();
            let proof = algorithm1::prove(&mut table.clone(), &rs);
            assert!(algorithm1::verify_with_oracle(h, &proof, &rs, &table));
        }
    }

    #[test]
    fn algorithm1_sound_against_sum_tamper() {
        let mut rng = SplitMix64::seed_from_u64(0xD1);
        for _ in 0..24 {
            let mut table = table(&mut rng, 5);
            let rs = point(&mut rng, 5);
            let delta = Fr::random(&mut rng);
            if delta.is_zero() {
                continue;
            }
            let h: Fr = table.iter().copied().sum();
            let proof = algorithm1::prove(&mut table, &rs);
            assert!(algorithm1::verify(h + delta, &proof, &rs).is_none());
        }
    }

    #[test]
    fn fs_linear_complete() {
        let mut rng = SplitMix64::seed_from_u64(0xD2);
        for _ in 0..24 {
            let p = MultilinearPoly::new(table(&mut rng, 5));
            let mut pt = Transcript::new(b"prop");
            let out = prove_linear(&p, &mut pt);
            let mut vt = Transcript::new(b"prop");
            let (fc, _) = verify_rounds(p.hypercube_sum(), &out.proof, 1, &mut vt).unwrap();
            assert_eq!(p.evaluate(&out.point()), fc);
        }
    }

    #[test]
    fn quadratic_complete() {
        let mut rng = SplitMix64::seed_from_u64(0xD3);
        for _ in 0..24 {
            let f = MultilinearPoly::new(table(&mut rng, 4));
            let g = MultilinearPoly::new(table(&mut rng, 4));
            let h: Fr = f.evals().iter().zip(g.evals()).map(|(a, b)| *a * *b).sum();
            let mut pt = Transcript::new(b"prop2");
            let out = prove_quadratic(&f, &g, &mut pt);
            let mut vt = Transcript::new(b"prop2");
            let (fc, _) = verify_rounds(h, &out.proof, 2, &mut vt).unwrap();
            assert_eq!(fc, out.final_evals[0] * out.final_evals[1]);
        }
    }

    #[test]
    fn eq_eval_symmetric() {
        let mut rng = SplitMix64::seed_from_u64(0xD4);
        for _ in 0..24 {
            let x = point(&mut rng, 5);
            let y = point(&mut rng, 5);
            assert_eq!(eq_eval(&x, &y), eq_eval(&y, &x));
        }
    }

    #[test]
    fn evaluate_linear_combination() {
        let mut rng = SplitMix64::seed_from_u64(0xD5);
        for _ in 0..24 {
            let ta = table(&mut rng, 4);
            let tb = table(&mut rng, 4);
            let pt = point(&mut rng, 4);
            let c = Fr::random(&mut rng);
            let a = MultilinearPoly::new(ta.clone());
            let b = MultilinearPoly::new(tb.clone());
            let combo =
                MultilinearPoly::new(ta.iter().zip(&tb).map(|(x, y)| *x + c * *y).collect());
            assert_eq!(combo.evaluate(&pt), a.evaluate(&pt) + c * b.evaluate(&pt));
        }
    }
}
