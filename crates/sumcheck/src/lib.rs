//! # batchzk-sumcheck
//!
//! The sum-check protocol (§2.3 of the paper): multilinear polynomials over
//! the Boolean hypercube, the paper's Algorithm 1 prover with explicit
//! randomness (the oracle for the pipelined GPU module), and Fiat–Shamir
//! sum-checks of degree 1–3 used by the Spartan/Brakedown-style SNARK in
//! `batchzk-zkp`.
//!
//! # Examples
//!
//! ```
//! use batchzk_sumcheck::{MultilinearPoly, prove_linear, verify_rounds};
//! use batchzk_field::{Field, Fr};
//! use batchzk_hash::Transcript;
//!
//! let p = MultilinearPoly::new((0..8u64).map(Fr::from).collect());
//! let claim = p.hypercube_sum();
//!
//! let mut pt = Transcript::new(b"doc");
//! let out = prove_linear(&p, &mut pt);
//!
//! let mut vt = Transcript::new(b"doc");
//! let (final_claim, _rs) = verify_rounds(claim, &out.proof, 1, &mut vt).unwrap();
//! assert_eq!(p.evaluate(&out.point()), final_claim);
//! ```

pub mod algorithm1;
mod poly;
mod prove;
mod rounds;

pub use poly::{MultilinearPoly, eq_eval, eq_table};
pub use prove::{ProverOutput, prove_cubic_eq, prove_linear, prove_quadratic};
pub use rounds::{SumcheckProof, interpolate_at, prover_round_challenge, verify_rounds};

#[cfg(test)]
mod proptests {
    use super::*;
    use batchzk_field::{Field, Fr};
    use batchzk_hash::Transcript;
    use proptest::prelude::*;

    fn arb_fr() -> impl Strategy<Value = Fr> {
        any::<[u8; 64]>().prop_map(|b| Fr::from_uniform_bytes(&b))
    }

    fn arb_table(n: usize) -> impl Strategy<Value = Vec<Fr>> {
        proptest::collection::vec(arb_fr(), 1 << n)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn algorithm1_complete(table in arb_table(6), rs in proptest::collection::vec(arb_fr(), 6)) {
            let h: Fr = table.iter().copied().sum();
            let proof = algorithm1::prove(table.clone(), &rs);
            prop_assert!(algorithm1::verify_with_oracle(h, &proof, &rs, &table));
        }

        #[test]
        fn algorithm1_sound_against_sum_tamper(
            table in arb_table(5),
            rs in proptest::collection::vec(arb_fr(), 5),
            delta in arb_fr(),
        ) {
            prop_assume!(!delta.is_zero());
            let h: Fr = table.iter().copied().sum();
            let proof = algorithm1::prove(table, &rs);
            prop_assert!(algorithm1::verify(h + delta, &proof, &rs).is_none());
        }

        #[test]
        fn fs_linear_complete(table in arb_table(5)) {
            let p = MultilinearPoly::new(table);
            let mut pt = Transcript::new(b"prop");
            let out = prove_linear(&p, &mut pt);
            let mut vt = Transcript::new(b"prop");
            let (fc, _) = verify_rounds(p.hypercube_sum(), &out.proof, 1, &mut vt).unwrap();
            prop_assert_eq!(p.evaluate(&out.point()), fc);
        }

        #[test]
        fn quadratic_complete(fa in arb_table(4), ga in arb_table(4)) {
            let f = MultilinearPoly::new(fa);
            let g = MultilinearPoly::new(ga);
            let h: Fr = f.evals().iter().zip(g.evals()).map(|(a, b)| *a * *b).sum();
            let mut pt = Transcript::new(b"prop2");
            let out = prove_quadratic(&f, &g, &mut pt);
            let mut vt = Transcript::new(b"prop2");
            let (fc, _) = verify_rounds(h, &out.proof, 2, &mut vt).unwrap();
            prop_assert_eq!(fc, out.final_evals[0] * out.final_evals[1]);
        }

        #[test]
        fn eq_eval_symmetric(x in proptest::collection::vec(arb_fr(), 5),
                             y in proptest::collection::vec(arb_fr(), 5)) {
            prop_assert_eq!(eq_eval(&x, &y), eq_eval(&y, &x));
        }

        #[test]
        fn evaluate_linear_combination(ta in arb_table(4), tb in arb_table(4), pt in proptest::collection::vec(arb_fr(), 4), c in arb_fr()) {
            let a = MultilinearPoly::new(ta.clone());
            let b = MultilinearPoly::new(tb.clone());
            let combo = MultilinearPoly::new(
                ta.iter().zip(&tb).map(|(x, y)| *x + c * *y).collect());
            prop_assert_eq!(combo.evaluate(&pt), a.evaluate(&pt) + c * b.evaluate(&pt));
        }
    }
}
