//! Fiat–Shamir sum-check provers for the polynomial shapes the SNARK needs:
//! plain multilinear (degree 1), products of two multilinears (degree 2),
//! and the Spartan core `eq·(a·b - c)` (degree 3).

use batchzk_field::Field;
use batchzk_hash::Transcript;

use crate::poly::MultilinearPoly;
use crate::rounds::{prover_round_challenge, SumcheckProof};

/// Output of a prover run: the proof, the challenge vector in round order,
/// and the final evaluations of each input polynomial at the bound point.
#[derive(Debug, Clone)]
pub struct ProverOutput<F> {
    /// The round polynomials.
    pub proof: SumcheckProof<F>,
    /// Challenges `r_1, ..., r_n` in the order they were drawn (round `i`
    /// fixed variable `x_{n+1-i}`); the evaluation point in `(x_1, ..., x_n)`
    /// order is [`Self::point`].
    pub rs: Vec<F>,
    /// Final evaluation of each input polynomial at the bound point.
    pub final_evals: Vec<F>,
}

impl<F: Field> ProverOutput<F> {
    /// The evaluation point `(x_1, ..., x_n)` the final claims refer to.
    pub fn point(&self) -> Vec<F> {
        self.rs.iter().rev().copied().collect()
    }
}

/// Proves `H = Σ_b p(b)` for a single multilinear polynomial (degree-1
/// rounds). Equivalent to Algorithm 1 with transcript-derived randomness.
pub fn prove_linear<F: Field>(
    poly: &MultilinearPoly<F>,
    transcript: &mut Transcript,
) -> ProverOutput<F> {
    let mut p = poly.clone();
    let n = p.num_vars();
    let mut rounds = Vec::with_capacity(n);
    let mut rs = Vec::with_capacity(n);
    for _ in 0..n {
        let half = p.evals().len() / 2;
        let g0: F = p.evals()[..half].iter().copied().sum();
        let g1: F = p.evals()[half..].iter().copied().sum();
        let round = vec![g0, g1];
        let r = prover_round_challenge(&round, transcript);
        rounds.push(round);
        p.fix_top_variable(r);
        rs.push(r);
    }
    ProverOutput {
        proof: SumcheckProof { rounds },
        rs,
        final_evals: vec![p.evals()[0]],
    }
}

/// Proves `H = Σ_b f(b)·g(b)` (degree-2 rounds, evaluations at X ∈ {0,1,2}).
///
/// # Panics
///
/// Panics if the polynomials have different variable counts.
pub fn prove_quadratic<F: Field>(
    f: &MultilinearPoly<F>,
    g: &MultilinearPoly<F>,
    transcript: &mut Transcript,
) -> ProverOutput<F> {
    assert_eq!(f.num_vars(), g.num_vars(), "variable count mismatch");
    let mut f = f.clone();
    let mut g = g.clone();
    let n = f.num_vars();
    let mut rounds = Vec::with_capacity(n);
    let mut rs = Vec::with_capacity(n);
    let two = F::from(2u64);
    for _ in 0..n {
        let half = f.evals().len() / 2;
        let mut e0 = F::ZERO;
        let mut e1 = F::ZERO;
        let mut e2 = F::ZERO;
        for b in 0..half {
            let (f0, f1) = (f.evals()[b], f.evals()[b + half]);
            let (g0, g1) = (g.evals()[b], g.evals()[b + half]);
            e0 += f0 * g0;
            e1 += f1 * g1;
            // X = 2: t(2) = 2·t1 - t0 for a linear table interpolation.
            e2 += (two * f1 - f0) * (two * g1 - g0);
        }
        let round = vec![e0, e1, e2];
        let r = prover_round_challenge(&round, transcript);
        rounds.push(round);
        f.fix_top_variable(r);
        g.fix_top_variable(r);
        rs.push(r);
    }
    ProverOutput {
        proof: SumcheckProof { rounds },
        rs,
        final_evals: vec![f.evals()[0], g.evals()[0]],
    }
}

/// Proves `H = Σ_b eq(b)·(a(b)·c(b) - d(b))` — the Spartan outer sum-check
/// (degree-3 rounds, evaluations at X ∈ {0,1,2,3}).
///
/// The `final_evals` are `[eq, a, c, d]` at the bound point.
///
/// # Panics
///
/// Panics if the polynomials have different variable counts.
pub fn prove_cubic_eq<F: Field>(
    eq: &MultilinearPoly<F>,
    a: &MultilinearPoly<F>,
    c: &MultilinearPoly<F>,
    d: &MultilinearPoly<F>,
    transcript: &mut Transcript,
) -> ProverOutput<F> {
    let n = eq.num_vars();
    assert!(
        a.num_vars() == n && c.num_vars() == n && d.num_vars() == n,
        "variable count mismatch"
    );
    let mut eq = eq.clone();
    let mut a = a.clone();
    let mut c = c.clone();
    let mut d = d.clone();
    let mut rounds = Vec::with_capacity(n);
    let mut rs = Vec::with_capacity(n);
    for _ in 0..n {
        let half = a.evals().len() / 2;
        let mut evals = [F::ZERO; 4];
        for b in 0..half {
            let pairs = [
                (eq.evals()[b], eq.evals()[b + half]),
                (a.evals()[b], a.evals()[b + half]),
                (c.evals()[b], c.evals()[b + half]),
                (d.evals()[b], d.evals()[b + half]),
            ];
            // t(X) = t0 + X·(t1 - t0); evaluate the product expression at
            // X = 0, 1, 2, 3.
            for (x, slot) in evals.iter_mut().enumerate() {
                let xf = F::from(x as u64);
                let at = |&(t0, t1): &(F, F)| t0 + xf * (t1 - t0);
                let (eqv, av, cv, dv) =
                    (at(&pairs[0]), at(&pairs[1]), at(&pairs[2]), at(&pairs[3]));
                *slot += eqv * (av * cv - dv);
            }
        }
        let round = evals.to_vec();
        let r = prover_round_challenge(&round, transcript);
        rounds.push(round);
        eq.fix_top_variable(r);
        a.fix_top_variable(r);
        c.fix_top_variable(r);
        d.fix_top_variable(r);
        rs.push(r);
    }
    ProverOutput {
        proof: SumcheckProof { rounds },
        rs,
        final_evals: vec![eq.evals()[0], a.evals()[0], c.evals()[0], d.evals()[0]],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::eq_table;
    use crate::rounds::verify_rounds;
    use batchzk_field::Fr;
    use batchzk_hash::Prg;

    fn rand_poly(n: usize, rng: &mut Prg) -> MultilinearPoly<Fr> {
        MultilinearPoly::new((0..1usize << n).map(|_| Fr::random(rng)).collect())
    }

    #[test]
    fn linear_roundtrip() {
        let mut rng = Prg::seed_from_u64(1);
        for n in 1..=8 {
            let p = rand_poly(n, &mut rng);
            let h = p.hypercube_sum();
            let mut pt = Transcript::new(b"lin");
            let out = prove_linear(&p, &mut pt);
            let mut vt = Transcript::new(b"lin");
            let (fc, rs) = verify_rounds(h, &out.proof, 1, &mut vt).expect("verifies");
            assert_eq!(rs, out.rs);
            assert_eq!(fc, out.final_evals[0]);
            assert_eq!(p.evaluate(&out.point()), fc, "n={n}");
        }
    }

    #[test]
    fn quadratic_roundtrip() {
        let mut rng = Prg::seed_from_u64(2);
        for n in 1..=7 {
            let f = rand_poly(n, &mut rng);
            let g = rand_poly(n, &mut rng);
            let h: Fr = f.evals().iter().zip(g.evals()).map(|(a, b)| *a * *b).sum();
            let mut pt = Transcript::new(b"quad");
            let out = prove_quadratic(&f, &g, &mut pt);
            let mut vt = Transcript::new(b"quad");
            let (fc, _) = verify_rounds(h, &out.proof, 2, &mut vt).expect("verifies");
            assert_eq!(fc, out.final_evals[0] * out.final_evals[1]);
            let point = out.point();
            assert_eq!(f.evaluate(&point), out.final_evals[0]);
            assert_eq!(g.evaluate(&point), out.final_evals[1]);
        }
    }

    #[test]
    fn cubic_eq_roundtrip() {
        let mut rng = Prg::seed_from_u64(3);
        let n = 5;
        let tau: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let eq = MultilinearPoly::new(eq_table(&tau));
        let a = rand_poly(n, &mut rng);
        let c = rand_poly(n, &mut rng);
        let d = rand_poly(n, &mut rng);
        let h: Fr = (0..1usize << n)
            .map(|b| eq.evals()[b] * (a.evals()[b] * c.evals()[b] - d.evals()[b]))
            .sum();
        let mut pt = Transcript::new(b"cubic");
        let out = prove_cubic_eq(&eq, &a, &c, &d, &mut pt);
        let mut vt = Transcript::new(b"cubic");
        let (fc, _) = verify_rounds(h, &out.proof, 3, &mut vt).expect("verifies");
        let [eqv, av, cv, dv]: [Fr; 4] = out.final_evals.clone().try_into().unwrap();
        assert_eq!(fc, eqv * (av * cv - dv));
        let point = out.point();
        assert_eq!(eq.evaluate(&point), eqv);
        assert_eq!(a.evaluate(&point), av);
    }

    #[test]
    fn cubic_eq_zero_claim_when_satisfied() {
        // If d == a∘c pointwise, the claim is zero regardless of eq.
        let mut rng = Prg::seed_from_u64(4);
        let n = 4;
        let tau: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        let eq = MultilinearPoly::new(eq_table(&tau));
        let a = rand_poly(n, &mut rng);
        let c = rand_poly(n, &mut rng);
        let d = MultilinearPoly::new(
            a.evals()
                .iter()
                .zip(c.evals())
                .map(|(x, y)| *x * *y)
                .collect(),
        );
        let mut pt = Transcript::new(b"sat");
        let out = prove_cubic_eq(&eq, &a, &c, &d, &mut pt);
        let mut vt = Transcript::new(b"sat");
        assert!(verify_rounds(Fr::ZERO, &out.proof, 3, &mut vt).is_some());
    }

    #[test]
    fn wrong_claim_rejected() {
        let mut rng = Prg::seed_from_u64(5);
        let f = rand_poly(4, &mut rng);
        let g = rand_poly(4, &mut rng);
        let h: Fr = f.evals().iter().zip(g.evals()).map(|(a, b)| *a * *b).sum();
        let mut pt = Transcript::new(b"neg");
        let out = prove_quadratic(&f, &g, &mut pt);
        let mut vt = Transcript::new(b"neg");
        assert!(verify_rounds(h + Fr::ONE, &out.proof, 2, &mut vt).is_none());
    }

    #[test]
    fn transcript_domain_binds_proof() {
        // Verifying under a different domain must fail the final oracle
        // check (challenges diverge).
        let mut rng = Prg::seed_from_u64(6);
        let p = rand_poly(5, &mut rng);
        let h = p.hypercube_sum();
        let mut pt = Transcript::new(b"domain-a");
        let out = prove_linear(&p, &mut pt);
        let mut vt = Transcript::new(b"domain-b");
        if let Some((fc, rs)) = verify_rounds(h, &out.proof, 1, &mut vt) {
            let point: Vec<Fr> = rs.iter().rev().copied().collect();
            assert_ne!(p.evaluate(&point), fc);
        }
    }
}
