//! # batchzk-curve
//!
//! BN254 G1 group arithmetic and multi-scalar multiplication — the
//! substrate of the Groth16-style *baseline* systems (Libsnark,
//! Bellperson) that Tables 7 and 8 of the paper compare against. BatchZK's
//! own protocol never touches a curve; this crate exists so the "old
//! protocol" columns are backed by real arithmetic rather than guesses.

mod g1;
mod msm;

pub use g1::{G1Affine, G1Projective};
pub use msm::{msm, msm_group_op_count, msm_naive, window_size};
