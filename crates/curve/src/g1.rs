//! BN254 G1 group arithmetic in Jacobian coordinates.
//!
//! Curve: `y^2 = x^3 + 3` over `Fq`, prime order `r` (= `Fr::MODULUS`),
//! generator `(1, 2)`. Formulas follow the standard a=0 Jacobian
//! addition/doubling from the Explicit-Formulas Database.

use batchzk_field::{batch_invert, Field, Fq, Fr};

/// A point in affine coordinates (or the point at infinity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct G1Affine {
    /// x-coordinate (meaningless when `infinity`).
    pub x: Fq,
    /// y-coordinate (meaningless when `infinity`).
    pub y: Fq,
    /// Marker for the identity element.
    pub infinity: bool,
}

/// A point in Jacobian projective coordinates (`x = X/Z^2`, `y = Y/Z^3`).
#[derive(Debug, Clone, Copy)]
pub struct G1Projective {
    x: Fq,
    y: Fq,
    z: Fq,
}

impl G1Affine {
    /// The group generator `(1, 2)`.
    pub fn generator() -> Self {
        Self {
            x: Fq::ONE,
            y: Fq::from(2u64),
            infinity: false,
        }
    }

    /// The identity element.
    pub fn identity() -> Self {
        Self {
            x: Fq::ZERO,
            y: Fq::ZERO,
            infinity: true,
        }
    }

    /// Checks the curve equation `y^2 = x^3 + 3`.
    pub fn is_on_curve(&self) -> bool {
        self.infinity || self.y.square() == self.x.square() * self.x + Fq::from(3u64)
    }

    /// Negates the point.
    pub fn neg(&self) -> Self {
        Self {
            x: self.x,
            y: -self.y,
            infinity: self.infinity,
        }
    }

    /// Deterministically derives a curve point from a counter by
    /// try-and-increment (test/bench fixture generator, not constant-time).
    pub fn from_counter(counter: u64) -> Self {
        let mut x = Fq::from(counter);
        loop {
            let rhs = x.square() * x + Fq::from(3u64);
            if let Some(y) = rhs.sqrt() {
                return Self {
                    x,
                    y,
                    infinity: false,
                };
            }
            x += Fq::ONE;
        }
    }
}

impl From<G1Affine> for G1Projective {
    fn from(p: G1Affine) -> Self {
        if p.infinity {
            G1Projective::identity()
        } else {
            G1Projective {
                x: p.x,
                y: p.y,
                z: Fq::ONE,
            }
        }
    }
}

impl PartialEq for G1Projective {
    fn eq(&self, other: &Self) -> bool {
        // (X1/Z1^2, Y1/Z1^3) == (X2/Z2^2, Y2/Z2^3) without inversions.
        let self_inf = self.is_identity();
        let other_inf = other.is_identity();
        if self_inf || other_inf {
            return self_inf == other_inf;
        }
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        self.x * z2z2 == other.x * z1z1 && self.y * z2z2 * other.z == other.y * z1z1 * self.z
    }
}

impl Eq for G1Projective {}

impl G1Projective {
    /// The identity element.
    pub fn identity() -> Self {
        Self {
            x: Fq::ONE,
            y: Fq::ONE,
            z: Fq::ZERO,
        }
    }

    /// The group generator.
    pub fn generator() -> Self {
        G1Affine::generator().into()
    }

    /// Returns `true` for the identity element.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Point doubling (EFD dbl-2009-l, a = 0).
    pub fn double(&self) -> Self {
        if self.is_identity() {
            return *self;
        }
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        let d = ((self.x + b).square() - a - c).double();
        let e = a + a.double(); // 3A
        let f = e.square();
        let x3 = f - d.double();
        let y3 = e * (d - x3) - c.double().double().double(); // 8C
        let z3 = (self.y * self.z).double();
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Point addition (EFD add-2007-bl).
    pub fn add(&self, other: &Self) -> Self {
        if self.is_identity() {
            return *other;
        }
        if other.is_identity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        let u1 = self.x * z2z2;
        let u2 = other.x * z1z1;
        let s1 = self.y * other.z * z2z2;
        let s2 = other.y * self.z * z1z1;
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2 - u1;
        let i = h.double().square();
        let j = h * i;
        let r = (s2 - s1).double();
        let v = u1 * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (s1 * j).double();
        let z3 = ((self.z + other.z).square() - z1z1 - z2z2) * h;
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition with an affine point (EFD madd-2007-bl).
    pub fn add_affine(&self, other: &G1Affine) -> Self {
        if other.infinity {
            return *self;
        }
        if self.is_identity() {
            return (*other).into();
        }
        let z1z1 = self.z.square();
        let u2 = other.x * z1z1;
        let s2 = other.y * self.z * z1z1;
        if self.x == u2 {
            if self.y == s2 {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2 - self.x;
        let hh = h.square();
        let i = hh.double().double(); // 4·HH
        let j = h * i;
        let r = (s2 - self.y).double();
        let v = self.x * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (self.y * j).double();
        let z3 = (self.z + h).square() - z1z1 - hh;
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        Self {
            x: self.x,
            y: -self.y,
            z: self.z,
        }
    }

    /// Scalar multiplication by an `Fr` scalar (double-and-add, MSB first).
    pub fn mul_scalar(&self, scalar: &Fr) -> Self {
        let limbs = scalar.to_canonical_limbs();
        let mut acc = Self::identity();
        for &limb in limbs.iter().rev() {
            for bit in (0..64).rev() {
                acc = acc.double();
                if (limb >> bit) & 1 == 1 {
                    acc = acc.add(self);
                }
            }
        }
        acc
    }

    /// Converts to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> G1Affine {
        if self.is_identity() {
            return G1Affine::identity();
        }
        let zinv = self.z.inverse().expect("non-identity has z != 0");
        let zinv2 = zinv.square();
        G1Affine {
            x: self.x * zinv2,
            y: self.y * zinv2 * zinv,
            infinity: false,
        }
    }

    /// Batch conversion to affine with a single shared inversion.
    pub fn batch_to_affine(points: &[Self]) -> Vec<G1Affine> {
        let mut zs: Vec<Fq> = points.iter().map(|p| p.z).collect();
        batch_invert(&mut zs);
        points
            .iter()
            .zip(zs)
            .map(|(p, zinv)| {
                if p.is_identity() {
                    G1Affine::identity()
                } else {
                    let zinv2 = zinv.square();
                    G1Affine {
                        x: p.x * zinv2,
                        y: p.y * zinv2 * zinv,
                        infinity: false,
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_on_curve() {
        assert!(G1Affine::generator().is_on_curve());
        assert!(G1Affine::identity().is_on_curve());
    }

    #[test]
    fn group_laws() {
        let g = G1Projective::generator();
        let g2 = g.double();
        let g3 = g2.add(&g);
        let g4a = g3.add(&g);
        let g4b = g2.double();
        assert_eq!(g4a, g4b);
        // Commutativity.
        assert_eq!(g.add(&g2), g2.add(&g));
        // Identity.
        assert_eq!(g.add(&G1Projective::identity()), g);
        // Inverse.
        assert!(g.add(&g.neg()).is_identity());
    }

    #[test]
    fn doubling_matches_self_add() {
        let g = G1Projective::generator();
        assert_eq!(g.add(&g), g.double());
        let p = g.mul_scalar(&Fr::from(12345u64));
        assert_eq!(p.add(&p), p.double());
    }

    #[test]
    fn mixed_add_matches_projective_add() {
        let g = G1Projective::generator();
        let p = g.mul_scalar(&Fr::from(777u64));
        let q = g.mul_scalar(&Fr::from(888u64));
        let q_affine = q.to_affine();
        assert_eq!(p.add(&q), p.add_affine(&q_affine));
        // Edge: adding a point to itself through the mixed path.
        let p_affine = p.to_affine();
        assert_eq!(p.add_affine(&p_affine), p.double());
        // Edge: adding the negation.
        assert!(p.add_affine(&p_affine.neg()).is_identity());
    }

    #[test]
    fn scalar_mul_small_values() {
        let g = G1Projective::generator();
        let mut acc = G1Projective::identity();
        for k in 0..20u64 {
            assert_eq!(g.mul_scalar(&Fr::from(k)), acc, "k={k}");
            acc = acc.add(&g);
        }
    }

    #[test]
    fn scalar_mul_distributes() {
        let g = G1Projective::generator();
        let a = Fr::from(123456789u64);
        let b = Fr::from(987654321u64);
        assert_eq!(
            g.mul_scalar(&a).add(&g.mul_scalar(&b)),
            g.mul_scalar(&(a + b))
        );
    }

    #[test]
    fn order_annihilates() {
        // r·G = identity: multiply by r expressed as (r-1) + 1.
        let g = G1Projective::generator();
        let r_minus_1 = -Fr::ONE;
        assert!(g.mul_scalar(&r_minus_1).add(&g).is_identity());
    }

    #[test]
    fn affine_roundtrip() {
        let g = G1Projective::generator();
        let p = g.mul_scalar(&Fr::from(31415u64));
        let a = p.to_affine();
        assert!(a.is_on_curve());
        assert_eq!(G1Projective::from(a), p);
    }

    #[test]
    fn batch_to_affine_matches_individual() {
        let g = G1Projective::generator();
        let pts: Vec<G1Projective> = (0..10u64).map(|k| g.mul_scalar(&Fr::from(k))).collect();
        let batch = G1Projective::batch_to_affine(&pts);
        for (p, a) in pts.iter().zip(&batch) {
            assert_eq!(p.to_affine(), *a);
        }
        assert!(batch[0].infinity); // 0·G
    }

    #[test]
    fn from_counter_points_are_on_curve() {
        for c in 0..10u64 {
            assert!(G1Affine::from_counter(c).is_on_curve());
        }
    }
}
