//! Multi-scalar multiplication: naive reference and Pippenger's bucket
//! method.
//!
//! MSM dominates Groth16-style provers (the paper's Table 1); Table 7/8
//! charge the Libsnark/Bellperson baseline columns with exactly this
//! computation.

use batchzk_field::Fr;

use crate::g1::{G1Affine, G1Projective};

/// Naive MSM: `Σ scalar_i · point_i` via per-term double-and-add. Reference
/// oracle for [`msm`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn msm_naive(points: &[G1Affine], scalars: &[Fr]) -> G1Projective {
    assert_eq!(
        points.len(),
        scalars.len(),
        "points/scalars length mismatch"
    );
    points
        .iter()
        .zip(scalars)
        .fold(G1Projective::identity(), |acc, (p, s)| {
            acc.add(&G1Projective::from(*p).mul_scalar(s))
        })
}

/// Chooses Pippenger's window size for `n` terms.
pub fn window_size(n: usize) -> usize {
    match n {
        0..=3 => 1,
        4..=31 => 3,
        32..=255 => 5,
        256..=2047 => 7,
        2048..=16383 => 10,
        16384..=131071 => 13,
        _ => 16,
    }
}

/// Pippenger bucket-method MSM.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn msm(points: &[G1Affine], scalars: &[Fr]) -> G1Projective {
    assert_eq!(
        points.len(),
        scalars.len(),
        "points/scalars length mismatch"
    );
    if points.is_empty() {
        return G1Projective::identity();
    }
    let c = window_size(points.len());
    let limbs: Vec<[u64; 4]> = scalars.iter().map(|s| s.to_canonical_limbs()).collect();
    let num_windows = 254_usize.div_ceil(c);

    // Process windows from the most significant down, accumulating with
    // `c` doublings between windows.
    let mut total = G1Projective::identity();
    for w in (0..num_windows).rev() {
        for _ in 0..c {
            total = total.double();
        }
        let mut buckets = vec![G1Projective::identity(); (1 << c) - 1];
        let bit_offset = w * c;
        for (point, scalar_limbs) in points.iter().zip(&limbs) {
            let idx = window_value(scalar_limbs, bit_offset, c);
            if idx > 0 {
                buckets[idx - 1] = buckets[idx - 1].add_affine(point);
            }
        }
        // Running-sum trick: Σ_k k·bucket_k with 2·(2^c) additions.
        let mut running = G1Projective::identity();
        let mut window_sum = G1Projective::identity();
        for b in buckets.iter().rev() {
            running = running.add(b);
            window_sum = window_sum.add(&running);
        }
        total = total.add(&window_sum);
    }
    total
}

/// Extracts `width` bits of a 256-bit little-endian scalar starting at
/// `bit_offset`.
fn window_value(limbs: &[u64; 4], bit_offset: usize, width: usize) -> usize {
    let mut v = 0usize;
    for i in 0..width {
        let bit = bit_offset + i;
        if bit >= 256 {
            break;
        }
        if (limbs[bit / 64] >> (bit % 64)) & 1 == 1 {
            v |= 1 << i;
        }
    }
    v
}

/// Operation counts for one MSM, used by the GPU-simulator cost model for
/// the Bellperson baseline: Pippenger performs roughly
/// `num_windows · (n + 2^(c+1))` group additions plus 254 doublings.
pub fn msm_group_op_count(n: usize) -> u64 {
    let c = window_size(n);
    let windows = 254_usize.div_ceil(c);
    (windows as u64) * (n as u64 + (1u64 << (c + 1))) + 254
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchzk_field::Field;
    use batchzk_field::{RngCore, SplitMix64};

    fn fixture(n: usize, seed: u64) -> (Vec<G1Affine>, Vec<Fr>) {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let points: Vec<G1Affine> = (0..n)
            .map(|i| G1Affine::from_counter(1 + i as u64 * 7))
            .collect();
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
        (points, scalars)
    }

    #[test]
    fn pippenger_matches_naive() {
        for n in [1usize, 2, 3, 7, 32, 100] {
            let (points, scalars) = fixture(n, n as u64);
            assert_eq!(
                msm(&points, &scalars),
                msm_naive(&points, &scalars),
                "n={n}"
            );
        }
    }

    #[test]
    fn empty_msm_is_identity() {
        assert!(msm(&[], &[]).is_identity());
    }

    #[test]
    fn zero_scalars_give_identity() {
        let (points, _) = fixture(10, 1);
        let scalars = vec![Fr::ZERO; 10];
        assert!(msm(&points, &scalars).is_identity());
    }

    #[test]
    fn one_scalars_give_point_sum() {
        let (points, _) = fixture(8, 2);
        let scalars = vec![Fr::ONE; 8];
        let expect = points
            .iter()
            .fold(G1Projective::identity(), |acc, p| acc.add_affine(p));
        assert_eq!(msm(&points, &scalars), expect);
    }

    #[test]
    fn msm_is_bilinear_in_scalars() {
        let (points, s1) = fixture(16, 3);
        let (_, s2) = fixture(16, 4);
        let sum: Vec<Fr> = s1.iter().zip(&s2).map(|(a, b)| *a + *b).collect();
        assert_eq!(
            msm(&points, &sum),
            msm(&points, &s1).add(&msm(&points, &s2))
        );
    }

    #[test]
    fn pippenger_matches_naive_on_seeded_random_inputs() {
        // Property sweep: many seeds, sizes spanning several window-size
        // rungs, scalars fully random.
        let mut rng = SplitMix64::seed_from_u64(0xbeef);
        for trial in 0..24 {
            let n = 1 + (rng.next_u64() % 96) as usize;
            let (points, scalars) = fixture(n, rng.next_u64());
            assert_eq!(
                msm(&points, &scalars),
                msm_naive(&points, &scalars),
                "trial={trial} n={n}"
            );
        }
    }

    #[test]
    fn pippenger_matches_naive_with_zero_scalars_mixed_in() {
        let mut rng = SplitMix64::seed_from_u64(0xf00d);
        for n in [5usize, 33, 64] {
            let (points, mut scalars) = fixture(n, n as u64 ^ 0x55);
            // Zero out a pseudo-random subset (always including the ends).
            scalars[0] = Fr::ZERO;
            scalars[n - 1] = Fr::ZERO;
            for s in scalars.iter_mut() {
                if rng.next_u64().is_multiple_of(3) {
                    *s = Fr::ZERO;
                }
            }
            assert_eq!(
                msm(&points, &scalars),
                msm_naive(&points, &scalars),
                "n={n}"
            );
        }
    }

    #[test]
    fn pippenger_matches_naive_with_identity_points_mixed_in() {
        let mut rng = SplitMix64::seed_from_u64(0xabad);
        for n in [4usize, 40, 70] {
            let (mut points, scalars) = fixture(n, n as u64 ^ 0xaa);
            points[0] = G1Affine::identity();
            for p in points.iter_mut() {
                if rng.next_u64().is_multiple_of(4) {
                    *p = G1Affine::identity();
                }
            }
            assert_eq!(
                msm(&points, &scalars),
                msm_naive(&points, &scalars),
                "n={n}"
            );
        }
    }

    #[test]
    fn pippenger_matches_naive_at_window_boundaries() {
        // One size on each side of every window_size ladder rung that is
        // cheap enough to cross-check against the naive oracle.
        for n in [3usize, 4, 31, 32, 255, 256] {
            let (points, scalars) = fixture(n, 0x1000 + n as u64);
            assert_eq!(
                msm(&points, &scalars),
                msm_naive(&points, &scalars),
                "n={n}"
            );
        }
        // The ladder itself steps exactly at the documented boundaries.
        assert_ne!(window_size(3), window_size(4));
        assert_ne!(window_size(31), window_size(32));
        assert_ne!(window_size(255), window_size(256));
        assert_ne!(window_size(2047), window_size(2048));
    }

    #[test]
    fn op_count_is_monotone() {
        assert!(msm_group_op_count(1 << 10) < msm_group_op_count(1 << 14));
        assert!(msm_group_op_count(1 << 14) < msm_group_op_count(1 << 18));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        let (points, _) = fixture(4, 5);
        let _ = msm(&points, &[Fr::ONE]);
    }
}
