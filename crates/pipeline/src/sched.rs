//! Multi-device scheduling: shard policies over a [`DevicePool`].
//!
//! The paper pins one pipeline to one device; a production deployment
//! (§1, "serves millions of users") spreads one proof stream over many.
//! This module is the thin scheduling layer between the two: it decides
//! *which device gets which task* ([`plan_shards`]) and then drives one
//! [`PipelineExecutor`] per device to completion ([`run_sharded`]),
//! reassembling outputs in input order so sharding is invisible to the
//! caller — a sharded run emits byte-identical results to a
//! single-device run.
//!
//! Three policies are provided:
//!
//! * [`ShardPolicy::RoundRobin`] — task *i* to device *i mod N*; the
//!   baseline, optimal for homogeneous pools and uniform tasks;
//! * [`ShardPolicy::LeastOutstanding`] — greedy: each task goes to the
//!   device with the least outstanding work normalized by its weight —
//!   *measured* throughput (completed work per elapsed virtual second,
//!   from the pool's device snapshots) once a device has history, the
//!   cores × clock nameplate before — which load-balances heterogeneous
//!   pools;
//! * [`ShardPolicy::MemoryAware`] — least-outstanding placement among
//!   devices the task *fits* on, plus a per-device in-flight admission
//!   cap sized from the device's memory capacity. A batch whose full
//!   pipeline residency would OOM one device is thereby *split in time*
//!   (fewer tasks resident at once) and across devices instead of
//!   erroring; only a single task that exceeds every device's capacity
//!   still fails, with the usual
//!   [`OutOfDeviceMemory`](crate::PipelineError::OutOfDeviceMemory)
//!   diagnostics.
//!
//! All policies are deterministic: identical inputs produce identical
//! plans, and since tasks are independent (each proof's transcript
//! depends only on its own inputs), identical outputs.
//!
//! **Fault tolerance.** When a device carries a scripted fault (see
//! [`batchzk_gpu_sim::FaultPlan`]), [`run_sharded`] absorbs the
//! recoverable errors ([`PipelineError::DeviceFailed`] /
//! [`PipelineError::KernelDropped`]): completed outputs are kept, the
//! salvaged remainder is resharded over surviving devices with the same
//! measured-weight greedy policy, and the replay repeats until every task
//! completes (or every device is dead, which surfaces a clean error). The
//! recovered outputs are byte-identical to a fault-free run, and a
//! [`RecoveryReport`] on the result describes what it cost
//! (`DESIGN.md` §12).
//!
//! # Examples
//!
//! ```
//! use batchzk_gpu_sim::{DevicePool, DeviceProfile, Gpu, Work};
//! use batchzk_pipeline::{
//!     run_sharded, BoxedStage, PipeStage, ShardPolicy, StageWork,
//! };
//!
//! struct Double;
//! impl PipeStage<u64> for Double {
//!     fn name(&self) -> String {
//!         "double".into()
//!     }
//!     fn threads(&self) -> u32 {
//!         32
//!     }
//!     fn process(&self, task: &mut u64) -> StageWork {
//!         *task *= 2;
//!         StageWork {
//!             work: Work::Uniform { units: 32, cycles_per_unit: 10 },
//!             h2d_bytes: 0,
//!             d2h_bytes: 0,
//!             mem_after: 0,
//!         }
//!     }
//! }
//!
//! let mut pool = DevicePool::homogeneous(DeviceProfile::a100(), 2);
//! let run = run_sharded(
//!     &mut pool,
//!     ShardPolicy::LeastOutstanding,
//!     (0..8u64).collect(),
//!     |_| 0,
//!     |_gpu: &Gpu| vec![Box::new(Double) as BoxedStage<u64>],
//!     true,
//! )
//! .unwrap();
//! assert_eq!(run.outputs, (0..8u64).map(|t| t * 2).collect::<Vec<_>>());
//! assert!(run.recovery.is_none(), "no faults scripted");
//! ```

use batchzk_gpu_sim::{DevicePool, Gpu};

use crate::engine::{BoxedStage, PipelineError, PipelineExecutor, PipelineRun, RunStats};

/// How tasks are distributed across the devices of a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Task `i` goes to device `i % N`.
    RoundRobin,
    /// Each task goes to the device with the least outstanding work,
    /// normalized by compute weight (ties break to the lowest index).
    LeastOutstanding,
    /// Least-outstanding placement restricted to devices with capacity
    /// for the task, plus per-device in-flight caps that keep pipeline
    /// residency within device memory (splitting the batch in time
    /// rather than erroring).
    MemoryAware,
}

impl ShardPolicy {
    /// Every policy, in a stable order (tests iterate this).
    pub const ALL: [ShardPolicy; 3] = [
        ShardPolicy::RoundRobin,
        ShardPolicy::LeastOutstanding,
        ShardPolicy::MemoryAware,
    ];

    /// Stable kebab-case name (CLI flag value, metric label).
    pub fn name(&self) -> &'static str {
        match self {
            ShardPolicy::RoundRobin => "round-robin",
            ShardPolicy::LeastOutstanding => "least-outstanding",
            ShardPolicy::MemoryAware => "memory-aware",
        }
    }

    /// Parses a policy from its [`name`](Self::name).
    pub fn parse(s: &str) -> Option<ShardPolicy> {
        Self::ALL.into_iter().find(|p| p.name() == s)
    }
}

impl std::fmt::Display for ShardPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The output of [`plan_shards`]: who runs what, and how much of it at
/// once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Per device, the original task indices assigned to it, in input
    /// order.
    pub assignments: Vec<Vec<usize>>,
    /// Per device, the in-flight admission cap the executor should run
    /// under (equals the pipeline depth when memory imposes no limit).
    pub max_in_flight: Vec<usize>,
}

/// Assigns `footprints.len()` tasks to the pool's devices under `policy`.
///
/// `footprints[i]` is the estimated peak device-memory footprint of task
/// `i` in bytes (0 when unknown — the memory-aware policy then degrades
/// to least-outstanding). `pipeline_depth` is the stage count: the
/// natural in-flight maximum.
pub fn plan_shards(
    pool: &DevicePool,
    policy: ShardPolicy,
    footprints: &[u64],
    pipeline_depth: usize,
) -> ShardPlan {
    let n = pool.len();
    let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); n];
    let depth = pipeline_depth.max(1);
    let mut max_in_flight = vec![depth; n];
    match policy {
        ShardPolicy::RoundRobin => {
            for i in 0..footprints.len() {
                assignments[i % n].push(i);
            }
        }
        ShardPolicy::LeastOutstanding => {
            greedy_assign(pool, footprints, &mut assignments, |_, _| true);
        }
        ShardPolicy::MemoryAware => {
            let capacities: Vec<u64> = (0..n)
                .map(|d| pool.device(d).memory_ref().capacity())
                .collect();
            greedy_assign(pool, footprints, &mut assignments, |d, fp| {
                // A device qualifies if one task plus the transient
                // alloc-before-free overlap fits; if nobody qualifies the
                // caller falls back below.
                fp.saturating_mul(2) <= capacities[d]
            });
            // Any task too large for every device: place it on the
            // biggest device anyway so the executor surfaces the precise
            // OutOfDeviceMemory diagnostics.
            for (i, &fp) in footprints.iter().enumerate() {
                if fp.saturating_mul(2) > *capacities.iter().max().expect("non-empty pool")
                    && !assignments.iter().any(|a| a.contains(&i))
                {
                    let biggest = capacities
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, &c)| c)
                        .map(|(d, _)| d)
                        .expect("non-empty pool");
                    assignments[biggest].push(i);
                }
            }
            for a in &mut assignments {
                a.sort_unstable();
            }
            // Cap residency so (cap + 1) footprints fit: each resident
            // task holds up to one footprint, and a stage transition
            // briefly holds the old and new allocation of one task at
            // once.
            for d in 0..n {
                let worst = assignments[d]
                    .iter()
                    .map(|&i| footprints[i])
                    .max()
                    .unwrap_or(0);
                if let Some(fit) = capacities[d].checked_div(worst) {
                    max_in_flight[d] = (fit.saturating_sub(1).max(1) as usize).min(depth);
                }
            }
        }
    }
    ShardPlan {
        assignments,
        max_in_flight,
    }
}

/// The weight the least-outstanding policy divides a device's load by:
/// the device's *measured* throughput (useful work completed per elapsed
/// virtual second, as reported by the pool's snapshots) once it has run
/// anything, and the cores × clock nameplate before — an optimistic
/// prior that measurement then discounts toward what the device actually
/// delivers (memory stalls, transfer backpressure and all).
pub fn device_weight(pool: &DevicePool, d: usize) -> f64 {
    pool.measured_weight(d)
        .unwrap_or_else(|| pool.compute_weight(d))
        .max(1.0)
}

/// Greedy least-outstanding-work assignment: each task (in input order)
/// goes to the eligible device with the smallest assigned-work-to-weight
/// ratio ([`device_weight`]); ties break to the lowest device index.
fn greedy_assign(
    pool: &DevicePool,
    footprints: &[u64],
    assignments: &mut [Vec<usize>],
    eligible: impl Fn(usize, u64) -> bool,
) {
    let n = assignments.len();
    let weights: Vec<f64> = (0..n).map(|d| device_weight(pool, d)).collect();
    // Outstanding work per device, in footprint-bytes as the work proxy
    // (every task contributes at least one unit so zero-footprint tasks
    // still spread out).
    let mut outstanding = vec![0.0f64; n];
    for (i, &fp) in footprints.iter().enumerate() {
        let work = fp.max(1) as f64;
        let mut best: Option<usize> = None;
        for d in 0..n {
            if !eligible(d, fp) {
                continue;
            }
            let load = (outstanding[d] + work) / weights[d];
            if best.is_none_or(|b| load < (outstanding[b] + work) / weights[b]) {
                best = Some(d);
            }
        }
        if let Some(d) = best {
            outstanding[d] += work;
            assignments[d].push(i);
        }
    }
}

/// What it cost a sharded run to survive scripted device faults: which
/// devices died, how much work was replayed, and the faults themselves.
///
/// Present on [`ShardedRun::recovery`] only when at least one recoverable
/// fault ([`PipelineError::DeviceFailed`] /
/// [`PipelineError::KernelDropped`]) fired — a fault-free run reports
/// `None` and behaves exactly as before the fault layer existed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Pool indices of devices that fail-stopped, in order of discovery.
    pub failed_devices: Vec<usize>,
    /// Kernel-drop faults absorbed (the device stayed healthy; the step's
    /// in-flight tasks were replayed).
    pub dropped_kernels: usize,
    /// Tasks salvaged and re-run, counted once per replay (a task that
    /// survives two faults counts twice).
    pub replayed_tasks: usize,
    /// Resharding rounds beyond the initial one (0 would mean no replay
    /// was needed, but the report only exists when a fault fired).
    pub replay_rounds: usize,
    /// Every recoverable fault observed, in device order within each
    /// round and rounds in replay order.
    pub faults: Vec<PipelineError>,
}

/// The result of a sharded multi-device run.
#[derive(Debug)]
pub struct ShardedRun<T> {
    /// Outputs in the *original input order* — sharding is invisible.
    pub outputs: Vec<T>,
    /// Per-device run statistics, in pool order (devices that received no
    /// tasks report zeroed stats). Under fault recovery a device's stats
    /// accumulate over its replay rounds.
    pub device_stats: Vec<RunStats>,
    /// The plan that produced this run.
    pub plan: ShardPlan,
    /// The policy that produced the plan.
    pub policy: ShardPolicy,
    /// Wall time of the whole run: the maximum per-device elapsed time
    /// (the batch is done when the last device finishes), in ms. Replay
    /// rounds after a fault are sequential with the initial round, so
    /// their per-round maxima add.
    pub makespan_ms: f64,
    /// Per-device elapsed milliseconds for this run (deltas, so prior
    /// device time from earlier runs is excluded).
    pub device_ms: Vec<f64>,
    /// Fault-recovery account; `None` for a fault-free run.
    pub recovery: Option<RecoveryReport>,
}

impl<T> ShardedRun<T> {
    /// Total tasks completed.
    pub fn tasks(&self) -> usize {
        self.outputs.len()
    }

    /// Throughput against the makespan, in tasks per millisecond.
    pub fn throughput_per_ms(&self) -> f64 {
        if self.makespan_ms > 0.0 {
            self.outputs.len() as f64 / self.makespan_ms
        } else {
            0.0
        }
    }

    /// Max-over-mean of per-device elapsed time across devices that ran
    /// work (1.0 = perfectly balanced; 0 when nothing ran).
    pub fn imbalance(&self) -> f64 {
        let active: Vec<f64> = self
            .device_ms
            .iter()
            .copied()
            .filter(|&ms| ms > 0.0)
            .collect();
        if active.is_empty() {
            return 0.0;
        }
        let mean = active.iter().sum::<f64>() / active.len() as f64;
        if mean > 0.0 {
            self.makespan_ms / mean
        } else {
            0.0
        }
    }
}

/// Folds one replay round's [`RunStats`] into a device's accumulated
/// stats. Counters and byte totals add; utilization is cycle-weighted and
/// latency task-weighted; throughput and occupancy are recomputed against
/// the merged totals; peak memory takes the max; lifecycles concatenate
/// (completion order within a round, rounds in replay order).
fn merge_stats(into: &mut Option<RunStats>, add: RunStats) {
    let Some(base) = into else {
        *into = Some(add);
        return;
    };
    let cycles = base.total_cycles + add.total_cycles;
    if cycles > 0 {
        base.mean_utilization = (base.mean_utilization * base.total_cycles as f64
            + add.mean_utilization * add.total_cycles as f64)
            / cycles as f64;
    }
    let tasks = base.tasks + add.tasks;
    if tasks > 0 {
        base.mean_latency_ms = (base.mean_latency_ms * base.tasks as f64
            + add.mean_latency_ms * add.tasks as f64)
            / tasks as f64;
    }
    base.total_cycles = cycles;
    base.total_ms += add.total_ms;
    base.tasks = tasks;
    base.throughput_per_ms = if base.total_ms > 0.0 {
        base.tasks as f64 / base.total_ms
    } else {
        0.0
    };
    base.peak_mem_bytes = base.peak_mem_bytes.max(add.peak_mem_bytes);
    base.h2d_bytes += add.h2d_bytes;
    base.d2h_bytes += add.d2h_bytes;
    if base.stage_stats.is_empty() {
        base.stage_stats = add.stage_stats;
    } else if base.stage_stats.len() == add.stage_stats.len() {
        for (s, a) in base.stage_stats.iter_mut().zip(add.stage_stats) {
            s.tasks += a.tasks;
            s.occupied_cycles += a.occupied_cycles;
            s.busy_cycles += a.busy_cycles;
            s.imbalance_stall_cycles += a.imbalance_stall_cycles;
            s.memory_stall_cycles += a.memory_stall_cycles;
            s.fill_cycles += a.fill_cycles;
            s.idle_cycles += a.idle_cycles;
            s.drain_cycles += a.drain_cycles;
            s.h2d_bytes += a.h2d_bytes;
            s.d2h_bytes += a.d2h_bytes;
            s.occupancy = if cycles > 0 {
                s.occupied_cycles as f64 / cycles as f64
            } else {
                0.0
            };
        }
    }
    base.lifecycles.extend(add.lifecycles);
}

/// Shards `tasks` over the pool under `policy` and runs every shard to
/// completion, one [`PipelineExecutor`] per device.
///
/// `footprint` estimates a task's peak device-memory footprint in bytes
/// (used by the memory-aware policy; return 0 if unknown). `stages`
/// builds a fresh stage vector for a device — stages may depend on the
/// device's cost model, so the factory receives the device (it must be
/// `Sync`: device workers build their stage sets concurrently).
///
/// Devices share nothing, so each shard runs on its own host worker
/// (`batchzk-par`; thread count from `--threads` / `BATCHZK_THREADS`),
/// and each device advances its own virtual clock, so per-device times
/// represent concurrent execution; the makespan is their maximum.
/// Outputs, statistics, clocks and errors are byte-identical at any host
/// thread count — every device always runs its shard to completion (or
/// its own error), and results merge in device order.
///
/// **Fault recovery.** A device that hits a scripted recoverable fault
/// ([`PipelineError::DeviceFailed`] / [`PipelineError::KernelDropped`])
/// does not fail the run: its completed outputs are kept, the salvaged
/// remainder (in admission order) is resharded over the surviving
/// devices with the same measured-weight greedy assignment, and the
/// replay loops until every task completes. Stages must therefore be
/// *replay-safe*: a salvaged task restarts from stage 0, which is
/// correct for stages that overwrite their task state (as all the proof
/// modules do) but not for blind accumulation. Recovered outputs are
/// byte-identical to a fault-free run; [`ShardedRun::recovery`] reports
/// the cost.
///
/// # Errors
///
/// Returns [`PipelineError::OutOfDeviceMemory`] (the lowest-indexed
/// failing device's) if a shard's working set does not fit its device
/// even under the admission cap; every device's allocations are released
/// before returning. OOM is *not* recovered — it is a planning defect,
/// not a device fault. Returns [`PipelineError::DeviceFailed`] only when
/// every device in the pool has fail-stopped, leaving no survivor to
/// replay on.
pub fn run_sharded<T: Send>(
    pool: &mut DevicePool,
    policy: ShardPolicy,
    tasks: Vec<T>,
    footprint: impl Fn(&T) -> u64,
    stages: impl Fn(&Gpu) -> Vec<BoxedStage<T>> + Sync,
    multi_stream: bool,
) -> Result<ShardedRun<T>, PipelineError> {
    let n = pool.len();
    let footprints: Vec<u64> = tasks.iter().map(&footprint).collect();
    let depth = stages(pool.device(0)).len();
    let plan = plan_shards(pool, policy, &footprints, depth);

    // Tear the batch into per-device shards, remembering original slots.
    let mut shards: Vec<Vec<(usize, T)>> = (0..n).map(|_| Vec::new()).collect();
    let mut owner = vec![0usize; tasks.len()];
    for (d, assigned) in plan.assignments.iter().enumerate() {
        for &i in assigned {
            owner[i] = d;
        }
    }
    for (i, task) in tasks.into_iter().enumerate() {
        shards[owner[i]].push((i, task));
    }

    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None)
        .take(shards.iter().map(Vec::len).sum())
        .collect();

    let mut device_stats: Vec<Option<RunStats>> = (0..n).map(|_| None).collect();
    let mut device_ms = vec![0.0f64; n];
    let mut makespan_ms = 0.0f64;
    let mut recovery: Option<RecoveryReport> = None;
    let mut caps = plan.max_in_flight.clone();

    loop {
        // One round: every device drains its current shard concurrently.
        // Coarse beats fine: with several active devices and host threads
        // to spare, each device gets its own worker and the per-slot
        // fan-out inside each executor stays serial (no host
        // oversubscription). A lone active device instead hands the whole
        // thread budget to its executor's per-slot fan-out.
        let host_threads = batchzk_par::current_threads();
        let active = shards.iter().filter(|s| !s.is_empty()).count();
        let slot_threads = if host_threads > 1 && active > 1 {
            1
        } else {
            host_threads
        };

        // On a recoverable fault the worker harvests what completed and
        // salvages the rest instead of discarding the round.
        type DeviceRun<T> = (
            Vec<usize>,
            f64,
            PipelineRun<T>,
            Option<(PipelineError, Vec<T>)>,
        );
        let device_runs: Vec<DeviceRun<T>> = {
            let stages = &stages;
            let caps = &caps;
            let round_shards = std::mem::replace(&mut shards, (0..n).map(|_| Vec::new()).collect());
            let mut items: Vec<(&mut Gpu, Vec<(usize, T)>)> =
                pool.devices_mut().iter_mut().zip(round_shards).collect();
            batchzk_par::par_map_mut_with(host_threads, &mut items, |d, (gpu, shard)| {
                let shard = std::mem::take(shard);
                let device_stages = stages(gpu);
                let start = gpu.elapsed_ms();
                let mut exec = PipelineExecutor::new(gpu, device_stages, multi_stream);
                exec.set_host_threads(slot_threads);
                exec.set_queue_capacity(shard.len().max(1));
                exec.set_max_in_flight(caps[d]);
                let mut indices = Vec::with_capacity(shard.len());
                for (i, task) in shard {
                    indices.push(i);
                    if exec.submit(task).is_err() {
                        unreachable!("queue sized to the shard");
                    }
                }
                let (run, fault) = match exec.drain() {
                    Ok(run) => (run, None),
                    Err(e) => {
                        let partial = exec.harvest();
                        let leftover = exec.take_pending();
                        (partial, Some((e, leftover)))
                    }
                };
                drop(exec);
                (indices, gpu.elapsed_ms() - start, run, fault)
            })
        };

        // Merge the round in device order; collect what a fault lost.
        let mut lost: Vec<(usize, T)> = Vec::new();
        let mut fatal: Option<PipelineError> = None;
        let mut round_max_ms = 0.0f64;
        for (d, (indices, elapsed, run, fault)) in device_runs.into_iter().enumerate() {
            let done = run.outputs.len();
            for (&i, out) in indices.iter().zip(run.outputs) {
                slots[i] = Some(out);
            }
            merge_stats(&mut device_stats[d], run.stats);
            device_ms[d] += elapsed;
            round_max_ms = round_max_ms.max(elapsed);
            if let Some((err, leftover)) = fault {
                match err {
                    PipelineError::DeviceFailed { .. } | PipelineError::KernelDropped { .. } => {
                        let rec = recovery.get_or_insert_with(RecoveryReport::default);
                        if matches!(err, PipelineError::DeviceFailed { .. }) {
                            if !rec.failed_devices.contains(&d) {
                                rec.failed_devices.push(d);
                            }
                        } else {
                            rec.dropped_kernels += 1;
                        }
                        rec.replayed_tasks += leftover.len();
                        rec.faults.push(err);
                        lost.extend(indices[done..].iter().copied().zip(leftover));
                    }
                    other => {
                        if fatal.is_none() {
                            fatal = Some(other);
                        }
                    }
                }
            }
        }
        // Replay rounds run after the previous round's laggard, so
        // per-round maxima accumulate into the makespan.
        makespan_ms += round_max_ms;
        if let Some(e) = fatal {
            return Err(e);
        }
        if lost.is_empty() {
            break;
        }

        // Reshard the lost slice over the survivors and go again.
        let rec = recovery.as_mut().expect("lost tasks imply a fault");
        rec.replay_rounds += 1;
        lost.sort_by_key(|&(i, _)| i);
        let failed: Vec<bool> = (0..n).map(|d| pool.device(d).is_failed()).collect();
        if failed.iter().all(|&f| f) {
            // Nobody left to replay on: surface the first fail-stop.
            return Err(rec
                .faults
                .iter()
                .find(|e| matches!(e, PipelineError::DeviceFailed { .. }))
                .cloned()
                .expect("an all-failed pool saw at least one fail-stop"));
        }
        let capacities: Vec<u64> = (0..n)
            .map(|d| pool.device(d).memory_ref().capacity())
            .collect();
        let lost_fp: Vec<u64> = lost.iter().map(|&(i, _)| footprints[i]).collect();
        let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); n];
        greedy_assign(pool, &lost_fp, &mut assignments, |d, fp| {
            !failed[d]
                && (policy != ShardPolicy::MemoryAware || fp.saturating_mul(2) <= capacities[d])
        });
        // A task that fits no surviving device goes to the biggest healthy
        // one so the executor surfaces precise OOM diagnostics.
        let mut assigned = vec![false; lost.len()];
        for a in &assignments {
            for &p in a {
                assigned[p] = true;
            }
        }
        if assigned.iter().any(|&a| !a) {
            let biggest = (0..n)
                .filter(|&d| !failed[d])
                .max_by_key(|&d| capacities[d])
                .expect("a healthy device exists");
            for (p, was) in assigned.iter().enumerate() {
                if !was {
                    assignments[biggest].push(p);
                }
            }
            assignments[biggest].sort_unstable();
        }
        let mut lost_owner = vec![0usize; lost.len()];
        for (d, a) in assignments.iter().enumerate() {
            for &p in a {
                lost_owner[p] = d;
            }
        }
        for (p, (i, task)) in lost.into_iter().enumerate() {
            shards[lost_owner[p]].push((i, task));
        }
        // Re-derive memory-aware admission caps for the replay shards —
        // a survivor may inherit bigger tasks than its original shard.
        if policy == ShardPolicy::MemoryAware {
            for d in 0..n {
                let worst = shards[d]
                    .iter()
                    .map(|&(i, _)| footprints[i])
                    .max()
                    .unwrap_or(0);
                if let Some(fit) = capacities[d].checked_div(worst) {
                    caps[d] = (fit.saturating_sub(1).max(1) as usize).min(depth.max(1));
                }
            }
        }
    }

    let outputs: Vec<T> = slots
        .into_iter()
        .map(|s| s.expect("every task ran on exactly one device"))
        .collect();
    let device_stats: Vec<RunStats> = device_stats
        .into_iter()
        .map(|s| s.expect("every device ran in the first round"))
        .collect();
    Ok(ShardedRun {
        outputs,
        device_stats,
        plan,
        policy,
        makespan_ms,
        device_ms,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{PipeStage, StageWork};
    use batchzk_gpu_sim::{DeviceProfile, Work};

    struct AddStage {
        amount: u64,
        mem: u64,
    }

    impl PipeStage<u64> for AddStage {
        fn name(&self) -> String {
            format!("add-{}", self.amount)
        }
        fn threads(&self) -> u32 {
            32
        }
        fn process(&self, task: &mut u64) -> StageWork {
            *task += self.amount;
            StageWork {
                work: Work::Uniform {
                    units: 32,
                    cycles_per_unit: 100,
                },
                h2d_bytes: 0,
                d2h_bytes: 0,
                mem_after: self.mem,
            }
        }
    }

    fn factory(mem: u64) -> impl Fn(&Gpu) -> Vec<BoxedStage<u64>> {
        move |_gpu| {
            vec![
                Box::new(AddStage { amount: 1, mem }) as BoxedStage<u64>,
                Box::new(AddStage { amount: 10, mem }),
                Box::new(AddStage { amount: 100, mem }),
            ]
        }
    }

    #[test]
    fn policy_names_round_trip() {
        for p in ShardPolicy::ALL {
            assert_eq!(ShardPolicy::parse(p.name()), Some(p));
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!(ShardPolicy::parse("nope"), None);
    }

    #[test]
    fn round_robin_interleaves() {
        let pool = DevicePool::homogeneous(DeviceProfile::a100(), 3);
        let plan = plan_shards(&pool, ShardPolicy::RoundRobin, &[64; 7], 4);
        assert_eq!(plan.assignments[0], vec![0, 3, 6]);
        assert_eq!(plan.assignments[1], vec![1, 4]);
        assert_eq!(plan.assignments[2], vec![2, 5]);
        assert_eq!(plan.max_in_flight, vec![4, 4, 4]);
    }

    #[test]
    fn least_outstanding_respects_compute_weight() {
        // An H100 next to a V100: the stronger device should take more
        // than half of a uniform batch.
        let pool = DevicePool::from_profiles(vec![DeviceProfile::v100(), DeviceProfile::h100()]);
        let plan = plan_shards(&pool, ShardPolicy::LeastOutstanding, &[64; 12], 4);
        assert!(
            plan.assignments[1].len() > plan.assignments[0].len(),
            "h100 shard {} <= v100 shard {}",
            plan.assignments[1].len(),
            plan.assignments[0].len()
        );
        let total: usize = plan.assignments.iter().map(Vec::len).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn memory_aware_caps_in_flight() {
        let small = DeviceProfile {
            device_mem_bytes: 300,
            ..DeviceProfile::a100()
        };
        let pool = DevicePool::homogeneous(small, 2);
        // Footprint 100: capacity/footprint - 1 = 2 resident tasks max.
        let plan = plan_shards(&pool, ShardPolicy::MemoryAware, &[100; 8], 4);
        assert_eq!(plan.max_in_flight, vec![2, 2]);
        let total: usize = plan.assignments.iter().map(Vec::len).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn sharded_outputs_preserve_input_order() {
        for policy in ShardPolicy::ALL {
            let mut pool = DevicePool::homogeneous(DeviceProfile::a100(), 4);
            let tasks: Vec<u64> = (0..13).map(|i| i * 1000).collect();
            let run = run_sharded(&mut pool, policy, tasks.clone(), |_| 64, factory(64), true)
                .expect("fits");
            let expect: Vec<u64> = tasks.iter().map(|t| t + 111).collect();
            assert_eq!(run.outputs, expect, "policy {policy}");
            assert_eq!(run.tasks(), 13);
            assert!(run.makespan_ms > 0.0);
            assert!(run.imbalance() >= 1.0);
            assert_eq!(run.device_stats.len(), 4);
        }
    }

    #[test]
    fn memory_aware_completes_where_unrestricted_ooms() {
        // 300 bytes of device memory, 120-byte tasks, 3 stages: full
        // residency needs 3 footprints (360 bytes) => OOM.
        let tiny = DeviceProfile {
            device_mem_bytes: 300,
            ..DeviceProfile::a100()
        };
        let mut pool = DevicePool::homogeneous(tiny.clone(), 2);
        let err = run_sharded(
            &mut pool,
            ShardPolicy::RoundRobin,
            (0..6u64).collect(),
            |_| 120,
            factory(120),
            true,
        )
        .expect_err("full residency cannot fit");
        assert!(matches!(err, PipelineError::OutOfDeviceMemory { .. }));
        for d in 0..2 {
            assert_eq!(pool.device(d).memory_ref().in_use(), 0, "clean on error");
        }
        // The memory-aware policy splits the batch in time and completes.
        let mut pool = DevicePool::homogeneous(tiny, 2);
        let run = run_sharded(
            &mut pool,
            ShardPolicy::MemoryAware,
            (0..6u64).collect(),
            |_| 120,
            factory(120),
            true,
        )
        .expect("admission cap keeps residency within memory");
        assert_eq!(run.outputs, (0..6).map(|t| t + 111).collect::<Vec<_>>());
    }

    #[test]
    fn oversized_task_still_reports_oom() {
        let tiny = DeviceProfile {
            device_mem_bytes: 100,
            ..DeviceProfile::a100()
        };
        let mut pool = DevicePool::homogeneous(tiny, 2);
        let err = run_sharded(
            &mut pool,
            ShardPolicy::MemoryAware,
            vec![1u64],
            |_| 400,
            factory(400),
            true,
        )
        .expect_err("a single over-capacity task cannot be split");
        assert!(matches!(err, PipelineError::OutOfDeviceMemory { .. }));
    }

    #[test]
    fn empty_task_list_is_fine() {
        let mut pool = DevicePool::homogeneous(DeviceProfile::a100(), 2);
        let run = run_sharded(
            &mut pool,
            ShardPolicy::LeastOutstanding,
            Vec::<u64>::new(),
            |_| 64,
            factory(64),
            true,
        )
        .expect("nothing to do");
        assert!(run.outputs.is_empty());
        assert_eq!(run.makespan_ms, 0.0);
        assert_eq!(run.imbalance(), 0.0);
    }

    #[test]
    fn two_devices_are_faster_than_one() {
        let tasks: Vec<u64> = (0..24).collect();
        let mut one = DevicePool::homogeneous(DeviceProfile::a100(), 1);
        let single = run_sharded(
            &mut one,
            ShardPolicy::RoundRobin,
            tasks.clone(),
            |_| 64,
            factory(64),
            true,
        )
        .expect("fits");
        let mut two = DevicePool::homogeneous(DeviceProfile::a100(), 2);
        let dual = run_sharded(
            &mut two,
            ShardPolicy::RoundRobin,
            tasks,
            |_| 64,
            factory(64),
            true,
        )
        .expect("fits");
        assert_eq!(single.outputs, dual.outputs, "identical results");
        assert!(
            dual.makespan_ms < single.makespan_ms / 1.5,
            "2 devices {} vs 1 device {}",
            dual.makespan_ms,
            single.makespan_ms
        );
    }

    /// Mixed V100 + H100 pool: once both devices carry measured history,
    /// the least-outstanding weights come from throughput actually
    /// delivered, and the faster device receives proportionally more
    /// tasks.
    #[test]
    fn measured_throughput_steers_heterogeneous_sharding() {
        let mut pool =
            DevicePool::from_profiles(vec![DeviceProfile::v100(), DeviceProfile::h100()]);
        // Fresh pool: nameplate weights only.
        assert!(pool.measured_weight(0).is_none());
        let _ = run_sharded(
            &mut pool,
            ShardPolicy::RoundRobin,
            (0..8u64).collect(),
            |_| 64,
            factory(64),
            true,
        )
        .expect("priming run fits");
        // Warmed pool: both devices report measured throughput, and the
        // H100 delivered more work per virtual second on the identical
        // priming shard.
        let w_v100 = pool.measured_weight(0).expect("ran");
        let w_h100 = pool.measured_weight(1).expect("ran");
        assert!(w_h100 > w_v100, "h100 {w_h100} <= v100 {w_v100}");
        let plan = plan_shards(&pool, ShardPolicy::LeastOutstanding, &[64; 24], 3);
        let (v100, h100) = (plan.assignments[0].len(), plan.assignments[1].len());
        assert_eq!(v100 + h100, 24);
        assert!(h100 > v100, "h100 shard {h100} <= v100 shard {v100}");
        // Shares track the measured-weight ratio within one-task slack.
        let expect_h100 = 24.0 * w_h100 / (w_v100 + w_h100);
        assert!(
            (h100 as f64 - expect_h100).abs() <= 1.0,
            "h100 got {h100}, measured weights predict {expect_h100:.2}"
        );
    }

    /// A measured slowdown (a device that idles away most of its virtual
    /// time) outweighs a stronger nameplate.
    #[test]
    fn measured_weight_discounts_idle_devices() {
        let mut pool =
            DevicePool::from_profiles(vec![DeviceProfile::v100(), DeviceProfile::h100()]);
        // Both devices execute the same work, but the H100 then idles for
        // 100x the span, tanking its delivered throughput.
        for d in 0..2 {
            let gpu = pool.device_mut(d);
            gpu.execute_step(
                &[batchzk_gpu_sim::KernelStep::new(
                    "prime",
                    1024,
                    Work::Uniform {
                        units: 1 << 16,
                        cycles_per_unit: 100,
                    },
                )],
                &[],
                true,
            );
        }
        let h100_clock = pool.device(1).elapsed_cycles();
        pool.device_mut(1).idle_until(h100_clock * 100);
        assert!(
            pool.measured_weight(1).expect("ran") < pool.measured_weight(0).expect("ran"),
            "idle h100 must measure below busy v100"
        );
        let plan = plan_shards(&pool, ShardPolicy::LeastOutstanding, &[64; 12], 3);
        assert!(
            plan.assignments[0].len() > plan.assignments[1].len(),
            "measured weights should favor the busy v100: {:?}",
            plan.assignments.iter().map(Vec::len).collect::<Vec<_>>()
        );
    }

    /// Device snapshots — clocks, utilization, memory — are a function of
    /// the submitted work only, not of how host workers interleave: any
    /// thread count produces the identical `PoolSnapshot`.
    #[test]
    fn pool_snapshots_independent_of_worker_interleaving() {
        let run_at = |threads: usize| {
            batchzk_par::with_threads(threads, || {
                let mut pool = DevicePool::homogeneous(DeviceProfile::a100(), 4);
                let tasks: Vec<u64> = (0..21).map(|i| i * 3).collect();
                let run = run_sharded(
                    &mut pool,
                    ShardPolicy::LeastOutstanding,
                    tasks,
                    |_| 64,
                    factory(64),
                    true,
                )
                .expect("fits");
                (pool.snapshot(), run.outputs, run.device_ms)
            })
        };
        let (snap1, out1, ms1) = run_at(1);
        for threads in [2, 4] {
            let (snap, out, ms) = run_at(threads);
            assert_eq!(snap, snap1, "snapshot differs at {threads} threads");
            assert_eq!(out, out1, "outputs differ at {threads} threads");
            assert_eq!(ms, ms1, "device times differ at {threads} threads");
        }
    }

    /// Replay-safe stage for fault tests: OR-ing a bit is idempotent, so
    /// a salvaged task that restarts from stage 0 converges to the same
    /// value (unlike `AddStage`, which would double-count).
    struct OrStage {
        bit: u64,
    }

    impl PipeStage<u64> for OrStage {
        fn name(&self) -> String {
            format!("or-{:x}", self.bit)
        }
        fn threads(&self) -> u32 {
            32
        }
        fn process(&self, task: &mut u64) -> StageWork {
            *task |= self.bit;
            StageWork {
                work: Work::Uniform {
                    units: 32,
                    cycles_per_unit: 100,
                },
                h2d_bytes: 0,
                d2h_bytes: 0,
                mem_after: 64,
            }
        }
    }

    fn or_factory() -> impl Fn(&Gpu) -> Vec<BoxedStage<u64>> {
        |_gpu| {
            vec![
                Box::new(OrStage { bit: 0x100 }) as BoxedStage<u64>,
                Box::new(OrStage { bit: 0x200 }),
                Box::new(OrStage { bit: 0x400 }),
            ]
        }
    }

    /// The tentpole invariant: a scripted single-device fail-stop
    /// mid-batch completes on the survivor with outputs byte-identical to
    /// a fault-free run, and the recovery report accounts for the replay.
    #[test]
    fn single_fail_stop_recovers_byte_identical_outputs() {
        use batchzk_gpu_sim::FaultPlan;
        let tasks: Vec<u64> = (0..16).collect();
        let mut clean_pool = DevicePool::homogeneous(DeviceProfile::a100(), 2);
        let clean = run_sharded(
            &mut clean_pool,
            ShardPolicy::LeastOutstanding,
            tasks.clone(),
            |_| 64,
            or_factory(),
            true,
        )
        .expect("fault-free run completes");
        assert!(clean.recovery.is_none());

        let mut pool = DevicePool::homogeneous(DeviceProfile::a100(), 2);
        // Cycle 1: device 1 fail-stops at its second step boundary, with
        // tasks in flight and most of its shard still pending.
        pool.apply_fault_plan(&FaultPlan::new().fail_stop(1, 1));
        let run = run_sharded(
            &mut pool,
            ShardPolicy::LeastOutstanding,
            tasks,
            |_| 64,
            or_factory(),
            true,
        )
        .expect("survivor absorbs the dead device's shard");
        assert_eq!(run.outputs, clean.outputs, "recovery must be invisible");
        let rec = run.recovery.as_ref().expect("a fault fired");
        assert_eq!(rec.failed_devices, vec![1]);
        assert_eq!(rec.dropped_kernels, 0);
        assert_eq!(rec.replay_rounds, 1);
        assert!(rec.replayed_tasks > 0, "the dead shard was replayed");
        assert_eq!(rec.faults.len(), 1);
        assert!(matches!(
            rec.faults[0],
            PipelineError::DeviceFailed { salvaged, .. } if salvaged > 0
        ));
        // The dead device's memory was released by the salvage.
        assert_eq!(pool.device(1).memory_ref().in_use(), 0);
        assert!(pool.device(1).is_failed());
        // Recovery costs time: the survivor ran two rounds.
        assert!(run.makespan_ms > clean.makespan_ms);
    }

    /// When every device fail-stops there is no survivor to reshard onto:
    /// the run returns a clean `DeviceFailed` instead of hanging or
    /// panicking.
    #[test]
    fn fail_stop_of_every_device_is_a_clean_error() {
        use batchzk_gpu_sim::FaultPlan;
        let mut pool = DevicePool::homogeneous(DeviceProfile::a100(), 2);
        pool.apply_fault_plan(&FaultPlan::new().fail_stop(0, 0).fail_stop(1, 0));
        let err = run_sharded(
            &mut pool,
            ShardPolicy::RoundRobin,
            (0..8u64).collect(),
            |_| 64,
            or_factory(),
            true,
        )
        .expect_err("no survivors");
        assert!(matches!(err, PipelineError::DeviceFailed { .. }));
    }

    /// A kernel-drop fault leaves the device healthy, so the replay goes
    /// back to the same device — even a single-device pool recovers.
    #[test]
    fn kernel_drop_replays_on_the_same_device() {
        use batchzk_gpu_sim::FaultPlan;
        let tasks: Vec<u64> = (0..6).collect();
        let mut clean_pool = DevicePool::homogeneous(DeviceProfile::a100(), 1);
        let clean = run_sharded(
            &mut clean_pool,
            ShardPolicy::RoundRobin,
            tasks.clone(),
            |_| 64,
            or_factory(),
            true,
        )
        .expect("fault-free");
        let mut pool = DevicePool::homogeneous(DeviceProfile::a100(), 1);
        pool.apply_fault_plan(&FaultPlan::new().drop_kernel(0, 0, 2));
        let run = run_sharded(
            &mut pool,
            ShardPolicy::RoundRobin,
            tasks,
            |_| 64,
            or_factory(),
            true,
        )
        .expect("drop is absorbed by replay");
        assert_eq!(run.outputs, clean.outputs);
        let rec = run.recovery.as_ref().expect("a fault fired");
        assert!(rec.failed_devices.is_empty(), "device stayed healthy");
        assert_eq!(rec.dropped_kernels, 1);
        assert_eq!(rec.replay_rounds, 1);
        assert!(matches!(
            &rec.faults[0],
            PipelineError::KernelDropped { stage, .. } if stage.starts_with("or-")
        ));
        assert!(!pool.device(0).is_failed());
    }

    /// A degraded clock is not an error: the run completes with no
    /// recovery report, just more virtual time on the slow device.
    #[test]
    fn degraded_clock_slows_but_completes_without_recovery() {
        use batchzk_gpu_sim::FaultPlan;
        let mut pool = DevicePool::homogeneous(DeviceProfile::a100(), 2);
        pool.apply_fault_plan(&FaultPlan::new().degraded_clock(1, 0, 300));
        let run = run_sharded(
            &mut pool,
            ShardPolicy::RoundRobin,
            (0..8u64).collect(),
            |_| 64,
            or_factory(),
            true,
        )
        .expect("degradation is not failure");
        assert!(run.recovery.is_none());
        assert_eq!(
            run.outputs,
            (0..8u64).map(|t| t | 0x700).collect::<Vec<_>>()
        );
        assert_eq!(pool.degraded_count(), 1);
        assert!(
            run.device_ms[1] > run.device_ms[0] * 2.0,
            "3x-degraded device {} vs healthy {}",
            run.device_ms[1],
            run.device_ms[0]
        );
    }

    /// The determinism matrix extended to faulty runs: the same fault
    /// plan at 1, 2 and 4 host threads produces byte-identical outputs,
    /// recovery reports, and per-device stats.
    #[test]
    fn faulty_runs_identical_across_thread_counts() {
        use batchzk_gpu_sim::FaultPlan;
        let run_at = |threads: usize| {
            batchzk_par::with_threads(threads, || {
                let mut pool = DevicePool::homogeneous(DeviceProfile::a100(), 3);
                pool.apply_fault_plan(&FaultPlan::new().fail_stop(1, 2_000).drop_kernel(2, 0, 3));
                let run = run_sharded(
                    &mut pool,
                    ShardPolicy::LeastOutstanding,
                    (0..21u64).collect(),
                    |_| 64,
                    or_factory(),
                    true,
                )
                .expect("recovers");
                (run, pool.snapshot())
            })
        };
        let (base, snap1) = run_at(1);
        base.recovery.as_ref().expect("the fault plan fired");
        for threads in [2, 4] {
            let (run, snap) = run_at(threads);
            assert_eq!(run.outputs, base.outputs, "threads={threads}");
            assert_eq!(run.recovery, base.recovery, "threads={threads}");
            assert_eq!(run.device_ms, base.device_ms, "threads={threads}");
            assert_eq!(snap, snap1, "threads={threads}");
            for (a, b) in run.device_stats.iter().zip(&base.device_stats) {
                assert_eq!(a.total_cycles, b.total_cycles, "threads={threads}");
                assert_eq!(a.stage_stats, b.stage_stats, "threads={threads}");
                assert_eq!(a.lifecycles, b.lifecycles, "threads={threads}");
            }
        }
    }

    /// Seeded sweep over scripted fault plans (SplitMix64; no external
    /// generator): whenever the pool keeps at least one healthy device
    /// the run must recover byte-identically to the fault-free baseline,
    /// and an all-failed pool must error cleanly — never hang, never
    /// return wrong bytes.
    #[test]
    fn scripted_fault_sweep_recovers_or_errors_cleanly() {
        use batchzk_gpu_sim::{FaultKind, FaultPlan};
        struct Rng(u64);
        impl Rng {
            fn next(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            }
            fn range(&mut self, lo: u64, hi: u64) -> u64 {
                lo + ((self.next() as u128 * (hi - lo) as u128) >> 64) as u64
            }
        }
        let devices = 3usize;
        let tasks: Vec<u64> = (0..18).collect();
        let mut clean_pool = DevicePool::homogeneous(DeviceProfile::a100(), devices);
        let clean = run_sharded(
            &mut clean_pool,
            ShardPolicy::LeastOutstanding,
            tasks.clone(),
            |_| 64,
            or_factory(),
            true,
        )
        .expect("baseline");

        let mut rng = Rng(0xBA7C);
        for case in 0..12 {
            let mut plan = FaultPlan::new();
            let entries = rng.range(1, 4);
            for _ in 0..entries {
                let device = rng.range(0, devices as u64) as usize;
                let at_cycle = rng.range(0, 30_000);
                let kind = match rng.range(0, 3) {
                    0 => FaultKind::FailStop,
                    1 => FaultKind::DegradedClock {
                        factor_percent: rng.range(150, 500) as u32,
                    },
                    _ => FaultKind::DropKernel {
                        nth: rng.range(1, 6) as u32,
                    },
                };
                plan.push(batchzk_gpu_sim::FaultEntry {
                    device,
                    at_cycle,
                    kind,
                });
            }
            let mut pool = DevicePool::homogeneous(DeviceProfile::a100(), devices);
            pool.apply_fault_plan(&plan);
            match run_sharded(
                &mut pool,
                ShardPolicy::LeastOutstanding,
                tasks.clone(),
                |_| 64,
                or_factory(),
                true,
            ) {
                Ok(run) => assert_eq!(
                    run.outputs, clean.outputs,
                    "case {case} plan {plan} corrupted outputs"
                ),
                Err(e) => {
                    assert!(
                        matches!(e, PipelineError::DeviceFailed { .. }),
                        "case {case} plan {plan}: unexpected error {e}"
                    );
                    assert_eq!(
                        pool.healthy_devices().len(),
                        0,
                        "case {case} plan {plan}: errored with survivors"
                    );
                }
            }
        }
    }

    /// The full `RunStats` of every device — cycle counts, stalls,
    /// lifecycles — are byte-identical across host thread counts.
    #[test]
    fn device_stats_identical_across_thread_counts() {
        let run_at = |threads: usize| {
            batchzk_par::with_threads(threads, || {
                let mut pool = DevicePool::homogeneous(DeviceProfile::a100(), 3);
                run_sharded(
                    &mut pool,
                    ShardPolicy::RoundRobin,
                    (0..10u64).collect(),
                    |_| 64,
                    factory(64),
                    true,
                )
                .expect("fits")
            })
        };
        let base = run_at(1);
        for threads in [2, 4] {
            let run = run_at(threads);
            assert_eq!(run.outputs, base.outputs);
            for (a, b) in run.device_stats.iter().zip(&base.device_stats) {
                assert_eq!(a.total_cycles, b.total_cycles, "threads={threads}");
                assert_eq!(a.stage_stats, b.stage_stats, "threads={threads}");
                assert_eq!(a.lifecycles, b.lifecycles, "threads={threads}");
                assert_eq!(a.peak_mem_bytes, b.peak_mem_bytes);
                assert_eq!(a.h2d_bytes, b.h2d_bytes);
            }
        }
    }
}
