//! The pipelined sum-check module (§3.2, Figure 5).
//!
//! Each of the `n` rounds of Algorithm 1 gets a dedicated kernel; input
//! tables stream through them one proof per cycle. Sum-check is
//! memory-bound, so the module's costs are dominated by global accesses,
//! and the tables live in **two recyclable pipeline-level buffers** with the
//! odd/even read/write alternation of Figure 5b — device memory is a
//! function of the table size only, never of the batch size.

use batchzk_field::Field;
use batchzk_gpu_sim::{Gpu, Work};

use crate::engine::{
    allocate_threads, BoxedStage, PipeStage, Pipeline, PipelineError, PipelineRun, StageWork,
};

/// A sum-check proof-generation task.
#[derive(Debug)]
pub struct SumcheckTask<F> {
    table: Vec<F>,
    /// The per-round random numbers (paper Algorithm 1 input).
    rs: Vec<F>,
    /// Accumulated proof pairs.
    proof: Vec<(F, F)>,
    /// The claimed hypercube sum (recorded at entry for convenience).
    claim: F,
}

impl<F: Field> SumcheckTask<F> {
    /// Creates a task from an evaluation table and its round randomness.
    ///
    /// # Panics
    ///
    /// Panics if `table.len() != 2^{rs.len()}`.
    pub fn new(table: Vec<F>, rs: Vec<F>) -> Self {
        assert_eq!(table.len(), 1usize << rs.len(), "table length must be 2^n");
        let claim = table.iter().copied().sum();
        let proof = Vec::with_capacity(rs.len());
        Self {
            table,
            rs,
            proof,
            claim,
        }
    }

    /// The finished proof in the paper's pair format.
    ///
    /// # Panics
    ///
    /// Panics if the task has not completed all rounds.
    pub fn proof(&self) -> &[(F, F)] {
        assert!(
            self.proof.len() == self.rs.len(),
            "task has not completed the pipeline"
        );
        &self.proof
    }

    /// The claimed sum `H`.
    pub fn claim(&self) -> F {
        self.claim
    }

    /// The randomness the proof was generated under.
    pub fn randomness(&self) -> &[F] {
        &self.rs
    }

    /// A copy of the current (possibly partially folded) table.
    pub fn table_snapshot(&self) -> Vec<F> {
        self.table.clone()
    }

    /// Executes round `round` of Algorithm 1 in place, returning the number
    /// of table pairs processed.
    ///
    /// # Panics
    ///
    /// Panics if rounds are executed out of order.
    pub fn run_round(&mut self, round: usize) -> usize {
        assert_eq!(self.proof.len(), round, "rounds must run in order");
        let half = self.table.len() / 2;
        let r = self.rs[round];
        let mut pi1 = F::ZERO;
        let mut pi2 = F::ZERO;
        for b in 0..half {
            pi1 += self.table[b];
            pi2 += self.table[b + half];
            self.table[b] = (F::ONE - r) * self.table[b] + r * self.table[b + half];
        }
        self.table.truncate(half);
        self.proof.push((pi1, pi2));
        half
    }
}

/// Kernel for round `round` (0-based): folds a `2^{n-round}` table in half.
struct RoundStage {
    threads: u32,
    round: usize,
    pair_cost: u64,
    /// Bytes loaded at entry (round 0 only — dynamic loading).
    load_bytes: u64,
    /// Bytes stored at exit (final round only — the proof).
    store_bytes: u64,
}

impl<F: Field> PipeStage<SumcheckTask<F>> for RoundStage {
    fn name(&self) -> String {
        format!("sumcheck-round-{}", self.round)
    }
    fn threads(&self) -> u32 {
        self.threads
    }
    fn process(&self, task: &mut SumcheckTask<F>) -> StageWork {
        let half = task.run_round(self.round);
        StageWork {
            work: Work::Uniform {
                units: half as u64,
                cycles_per_unit: self.pair_cost,
            },
            h2d_bytes: self.load_bytes,
            d2h_bytes: self.store_bytes,
            // Tables live in the shared double buffers, not per-task memory.
            mem_after: 0,
        }
    }
}

/// Result of a pipelined sum-check batch run.
pub type SumcheckRun<F> = PipelineRun<SumcheckTask<F>>;

/// Runs the pipelined module over a batch of equally-sized tables.
///
/// # Errors
///
/// Returns [`PipelineError::OutOfDeviceMemory`] if the shared double
/// buffers or the per-task working set do not fit in device memory.
///
/// # Panics
///
/// Panics if `tasks` is empty or table sizes differ.
pub fn run_pipelined<F: Field>(
    gpu: &mut Gpu,
    tasks: Vec<SumcheckTask<F>>,
    module_threads: u32,
    multi_stream: bool,
) -> Result<SumcheckRun<F>, PipelineError> {
    assert!(!tasks.is_empty(), "need at least one task");
    let n = tasks[0].rs.len();
    assert!(n >= 1, "need at least one variable");
    assert!(
        tasks.iter().all(|t| t.rs.len() == n),
        "all tables in a batch must have equal size"
    );
    let elem_bytes = 32u64;
    let table_len = 1u64 << n;

    // Figure 5b: two recyclable buffers. Odd time-period stages read from
    // the lower buffer and write to the upper one; even stages do the
    // reverse. Each buffer therefore holds the tables of every other stage:
    //   lower: 2^n + 2^{n-2} + ...   upper: 2^{n-1} + 2^{n-3} + ...
    let lower_elems: u64 = (0..n).step_by(2).map(|i| table_len >> i).sum();
    let upper_elems: u64 = (1..n).step_by(2).map(|i| table_len >> i).sum();
    let oom_err =
        |stage: &str, oom: batchzk_gpu_sim::OutOfDeviceMemory| PipelineError::OutOfDeviceMemory {
            stage: stage.into(),
            requested_bytes: oom.requested,
            in_use_bytes: oom.in_use,
            capacity_bytes: oom.capacity,
        };
    let buf_lo = match gpu
        .memory()
        .alloc(lower_elems * elem_bytes, "sumcheck-buffer-lower")
    {
        Ok(handle) => handle,
        Err(oom) => return Err(oom_err("sumcheck-buffer-lower", oom)),
    };
    let buf_hi = match gpu
        .memory()
        .alloc(upper_elems.max(1) * elem_bytes, "sumcheck-buffer-upper")
    {
        Ok(handle) => handle,
        Err(oom) => {
            gpu.memory().free(buf_lo);
            return Err(oom_err("sumcheck-buffer-upper", oom));
        }
    };

    // Stage weights: round i touches 2^{n-1-i} pairs.
    let weights: Vec<u64> = (0..n).map(|i| table_len >> (i + 1)).collect();
    let threads = allocate_threads(module_threads, &weights);
    let pair_cost = gpu.cost().sumcheck_pair() + gpu.cost().shared_access;

    let stages: Vec<BoxedStage<SumcheckTask<F>>> = (0..n)
        .map(|round| {
            Box::new(RoundStage {
                threads: threads[round],
                round,
                pair_cost,
                load_bytes: if round == 0 {
                    table_len * elem_bytes
                } else {
                    0
                },
                store_bytes: if round == n - 1 {
                    2 * n as u64 * elem_bytes
                } else {
                    0
                },
            }) as BoxedStage<SumcheckTask<F>>
        })
        .collect();

    // Free the shared buffers on both the success and the error path: the
    // engine has already released its own allocations if it failed.
    let run = Pipeline::new(gpu, stages, multi_stream).run(tasks);
    gpu.memory().free(buf_lo);
    gpu.memory().free(buf_hi);
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchzk_field::Fr;
    use batchzk_gpu_sim::DeviceProfile;
    use batchzk_hash::Prg;
    use batchzk_sumcheck::algorithm1;

    fn fixture(count: usize, n: usize, seed: u64) -> Vec<SumcheckTask<Fr>> {
        let mut rng = Prg::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let table: Vec<Fr> = (0..1usize << n).map(|_| Fr::random(&mut rng)).collect();
                let rs: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
                SumcheckTask::new(table, rs)
            })
            .collect()
    }

    #[test]
    fn proofs_match_algorithm1() {
        let tasks = fixture(6, 6, 1);
        let reference: Vec<_> = tasks
            .iter()
            .map(|t| algorithm1::prove(&mut t.table.clone(), &t.rs))
            .collect();
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let run = run_pipelined(&mut gpu, tasks, 512, true).expect("fits");
        for (task, expect) in run.outputs.iter().zip(&reference) {
            assert_eq!(task.proof(), &expect[..]);
        }
    }

    #[test]
    fn proofs_verify() {
        let tasks = fixture(4, 7, 2);
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let run = run_pipelined(&mut gpu, tasks, 512, true).expect("fits");
        for task in &run.outputs {
            let proof: Vec<(Fr, Fr)> = task.proof().to_vec();
            assert!(algorithm1::verify(task.claim(), &proof, task.randomness()).is_some());
        }
    }

    #[test]
    fn buffer_memory_is_batch_size_independent() {
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let small = run_pipelined(&mut gpu, fixture(2, 8, 3), 256, true)
            .expect("fits")
            .stats
            .peak_mem_bytes;
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let large = run_pipelined(&mut gpu, fixture(40, 8, 4), 256, true)
            .expect("fits")
            .stats
            .peak_mem_bytes;
        assert_eq!(small, large);
        // Two buffers together hold ~2 * 2^n elements.
        assert!(large <= 2 * (1u64 << 8) * 32 + 64);
    }

    #[test]
    fn all_buffers_freed_after_run() {
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let _ = run_pipelined(&mut gpu, fixture(3, 5, 5), 128, true);
        assert_eq!(gpu.memory_ref().in_use(), 0);
    }

    #[test]
    fn throughput_grows_with_batch() {
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let one = run_pipelined(&mut gpu, fixture(1, 8, 6), 512, true)
            .expect("fits")
            .stats;
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let many = run_pipelined(&mut gpu, fixture(32, 8, 7), 512, true)
            .expect("fits")
            .stats;
        assert!(many.throughput_per_ms > 2.0 * one.throughput_per_ms);
    }

    #[test]
    #[should_panic(expected = "equal size")]
    fn ragged_batch_rejected() {
        let mut tasks = fixture(2, 5, 8);
        tasks.push(fixture(1, 4, 9).pop().unwrap());
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let _ = run_pipelined(&mut gpu, tasks, 64, true);
    }
}
