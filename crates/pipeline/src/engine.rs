//! The generic systolic pipeline engine.
//!
//! Every pipelined module in the paper shares one execution discipline
//! (§3, §4): the computation is split into stages, each stage is a dedicated
//! GPU kernel with a fixed thread allocation, and tasks stream through the
//! stages one per cycle. At any cycle, stage `i` works on the task that
//! entered `i` cycles ago; at the end of the cycle every task advances one
//! stage and a new task (if any) enters stage 0. Except for pipeline fill
//! and drain, every kernel is busy every cycle.
//!
//! [`Pipeline::run`] drives the simulated GPU *and* performs the real
//! computation: each [`PipeStage::process`] mutates the task (hashing,
//! folding, multiplying — real arithmetic) and returns the cost description
//! the simulator charges. Alongside the run's aggregate [`RunStats`] it
//! produces one [`StageStats`] per stage — the per-stage occupancy and
//! stall decomposition behind the paper's Figure 4 timelines.

use std::collections::VecDeque;
use std::fmt;

use batchzk_gpu_sim::{Dir, Gpu, KernelStep, MemHandle, Transfer, Work};
use batchzk_metrics::Span;

/// Cost description returned by a stage for one task-cycle.
#[derive(Debug, Clone)]
pub struct StageWork {
    /// The kernel work executed this cycle.
    pub work: Work,
    /// Bytes loaded host→device for this task this cycle (dynamic loading).
    pub h2d_bytes: u64,
    /// Bytes stored device→host this cycle (dynamic storing).
    pub d2h_bytes: u64,
    /// The task's total device-memory footprint *after* this stage.
    pub mem_after: u64,
}

/// One stage of a pipelined module.
pub trait PipeStage<T> {
    /// Kernel name (appears in per-kernel statistics / Figure 4 traces).
    fn name(&self) -> String;

    /// Threads dedicated to this stage's kernel.
    fn threads(&self) -> u32;

    /// Performs the stage's real computation on `task` and returns its cost.
    fn process(&self, task: &mut T) -> StageWork;

    /// The serial phase decomposition a *kernel-per-task* baseline walks
    /// for this stage (tree layers, sum-check rounds, NTT levels, MSM
    /// windows), or `None` when the stage has no finer granularity than
    /// its aggregate [`process`](Self::process) charge. The pipelined
    /// executor never calls this; the naive runner
    /// ([`run_stages_naive`](crate::naive::run_stages_naive)) issues one
    /// device step per phase, reproducing the Figure-4a utilization
    /// collapse when late phases have fewer work units than the threads
    /// the task holds. Called after [`process`](Self::process) on the
    /// same task, so phase sizes may depend on the processed state.
    fn naive_phases(&self, task: &T) -> Option<Vec<Work>> {
        let _ = task;
        None
    }
}

/// The boxed stage type every pipeline is built from. `Send + Sync` so a
/// stage set can move to a device worker thread and be shared by the
/// host-parallel per-slot fan-out; stages hold read-only configuration
/// (costs, thread counts, `Arc`ed inputs), so the bounds are natural.
pub type BoxedStage<T> = Box<dyn PipeStage<T> + Send + Sync>;

/// Error returned by [`Pipeline::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// A stage's device-memory footprint could not be allocated. All live
    /// pipeline allocations are released before this is returned, so the
    /// GPU's allocator is left clean (completed outputs are discarded).
    OutOfDeviceMemory {
        /// Name of the stage whose allocation failed.
        stage: String,
        /// Bytes the failing allocation requested.
        requested_bytes: u64,
        /// Bytes in use on the device at the time of the request.
        in_use_bytes: u64,
        /// Device capacity in bytes.
        capacity_bytes: u64,
    },
    /// The device fail-stopped (a scripted
    /// [`FaultKind::FailStop`](batchzk_gpu_sim::FaultKind::FailStop)
    /// fault armed). Unlike OOM, this error is *recoverable at the pool
    /// level*: every in-flight task was salvaged back to the front of the
    /// pending queue (in admission order, with its device memory released)
    /// before this was returned, so a scheduler can harvest completed
    /// outputs, take the pending tasks, and replay them on surviving
    /// devices.
    DeviceFailed {
        /// Device-clock cycle the fail-stop was scripted at.
        at_cycle: u64,
        /// In-flight tasks returned to the pending queue.
        salvaged: usize,
    },
    /// A scripted fault silently dropped one of the pipeline's kernel
    /// launches, so a stage's work did not execute even though its host-side
    /// computation ran. The affected step cannot be trusted: every in-flight
    /// task was salvaged back to the pending queue (as for
    /// [`DeviceFailed`](Self::DeviceFailed)) for replay from stage 0. The
    /// device itself remains healthy.
    KernelDropped {
        /// Name of the stage/kernel whose launch was dropped.
        stage: String,
        /// Device-clock cycle the drop fired at.
        at_cycle: u64,
        /// In-flight tasks returned to the pending queue.
        salvaged: usize,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::OutOfDeviceMemory {
                stage,
                requested_bytes,
                in_use_bytes,
                capacity_bytes,
            } => write!(
                f,
                "pipeline stage `{stage}` exceeded simulated device memory: \
                 requested {requested_bytes} bytes with \
                 {in_use_bytes}/{capacity_bytes} in use"
            ),
            PipelineError::DeviceFailed { at_cycle, salvaged } => write!(
                f,
                "device fail-stopped at cycle {at_cycle}; \
                 {salvaged} in-flight task(s) salvaged for replay"
            ),
            PipelineError::KernelDropped {
                stage,
                at_cycle,
                salvaged,
            } => write!(
                f,
                "kernel launch for stage `{stage}` dropped at cycle {at_cycle}; \
                 {salvaged} in-flight task(s) salvaged for replay"
            ),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Per-stage occupancy and stall accounting for one pipeline run.
///
/// Every device cycle of the run is attributed to exactly one bucket per
/// stage, so the buckets satisfy two conservation laws:
///
/// * `busy + imbalance_stall + memory_stall == occupied_cycles`
/// * `occupied_cycles + fill_cycles + idle_cycles + drain_cycles ==`
///   the run's `total_cycles`
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Kernel/stage name.
    pub name: String,
    /// Threads dedicated to the stage.
    pub threads: u32,
    /// Tasks the stage processed (= steps it held a task).
    pub tasks: u64,
    /// Cycles the stage held a task (steady state + its share of skew).
    pub occupied_cycles: u64,
    /// Cycles the stage's own kernel was actually executing.
    pub busy_cycles: u64,
    /// Occupied cycles spent waiting for a *slower sibling stage* to finish
    /// its kernel — the paper's stage-imbalance cost (§4).
    pub imbalance_stall_cycles: u64,
    /// Occupied cycles spent waiting for host↔device transfers that the
    /// compute could not hide (PCIe backpressure).
    pub memory_stall_cycles: u64,
    /// Cycles before the first task reached this stage (pipeline fill).
    pub fill_cycles: u64,
    /// Mid-run cycles with no resident task (bubbles between tasks).
    pub idle_cycles: u64,
    /// Cycles after the last task left this stage (pipeline drain).
    pub drain_cycles: u64,
    /// Host→device bytes loaded by this stage over the run.
    pub h2d_bytes: u64,
    /// Device→host bytes stored by this stage over the run.
    pub d2h_bytes: u64,
    /// Fraction of run cycles the stage held a task (0..=1).
    pub occupancy: f64,
}

/// Aggregate results of a pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Total device cycles from first load to last drain.
    pub total_cycles: u64,
    /// Total wall time in milliseconds at the device clock.
    pub total_ms: f64,
    /// Tasks completed.
    pub tasks: usize,
    /// Tasks per millisecond (the paper's throughput metric).
    pub throughput_per_ms: f64,
    /// Mean per-task latency (entry to exit) in milliseconds.
    pub mean_latency_ms: f64,
    /// Peak device memory over the run, in bytes.
    pub peak_mem_bytes: u64,
    /// Time-weighted mean core utilization (0..=1).
    pub mean_utilization: f64,
    /// Total host→device traffic in bytes.
    pub h2d_bytes: u64,
    /// Total device→host traffic in bytes.
    pub d2h_bytes: u64,
    /// Per-stage occupancy/stall breakdown, in stage order.
    pub stage_stats: Vec<StageStats>,
    /// Per-task lifecycle spans, in completion order (empty for non-pipelined
    /// baselines). Each span's stage intervals tile the task's residency, so
    /// summing a stage's cycles across spans reproduces that stage's
    /// `occupied_cycles`.
    pub lifecycles: Vec<Span>,
}

/// Outcome of [`Pipeline::run`]: the completed tasks in completion order
/// plus timing statistics.
#[derive(Debug)]
pub struct PipelineRun<T> {
    /// Completed tasks (same order they entered).
    pub outputs: Vec<T>,
    /// Statistics of the run.
    pub stats: RunStats,
}

struct Slot<T> {
    task: T,
    entry_cycle: u64,
    mem: Option<MemHandle>,
    mem_bytes: u64,
    span: Span,
}

/// Per-stage running accumulator for [`StageStats`].
#[derive(Default)]
struct StageAcc {
    tasks: u64,
    occupied: u64,
    busy: u64,
    imbalance: u64,
    memory: u64,
    fill: u64,
    idle: u64,
    /// Unoccupied cycles since the stage last held a task; resolved into
    /// `idle` when the stage becomes occupied again, or into drain at the
    /// end of the run.
    gap: u64,
    seen: bool,
    h2d: u64,
    d2h: u64,
}

fn work_is_empty(work: &Work) -> bool {
    match work {
        Work::Uniform { units, .. } => *units == 0,
        Work::Items(items) => items.is_empty(),
    }
}

/// A persistent pipeline executor bound to a simulated GPU.
///
/// Where [`Pipeline::run`] consumes a whole batch and blocks to
/// completion, the executor keeps the pipeline resident and exposes the
/// three verbs a scheduling layer composes:
///
/// * [`submit`](Self::submit) — enqueue one task into the bounded pending
///   queue (non-blocking; hands the task back if the queue is full);
/// * [`step`](Self::step) — advance the pipeline by exactly one cycle:
///   admit at most one pending task into stage 0, execute every occupied
///   stage concurrently, retire the last stage's task;
/// * [`drain`](Self::drain) — step until the pipeline and queue are empty
///   and harvest a [`PipelineRun`] for the epoch since construction (or
///   the previous drain); the executor stays usable afterwards.
///
/// Two admission knobs back the scheduling policies in [`crate::sched`]:
/// the *queue capacity* bounds host-side backlog, and *max in-flight*
/// bounds how many tasks may be resident in stages at once — the
/// memory-aware admission lever (each in-flight task holds up to one
/// stage footprint of device memory, so capping in-flight caps the peak).
///
/// Per-slot lifecycle [`Span`]s, stage occupancy/stall accounting, and
/// the OOM error contract are identical to the old consuming `run`.
pub struct PipelineExecutor<'g, T> {
    gpu: &'g mut Gpu,
    stages: Vec<BoxedStage<T>>,
    multi_stream: bool,
    host_threads: usize,
    queue_capacity: usize,
    max_in_flight: usize,
    pending: VecDeque<T>,
    slots: Vec<Option<Slot<T>>>,
    outputs: Vec<T>,
    latencies: Vec<u64>,
    lifecycles: Vec<Span>,
    accs: Vec<StageAcc>,
    in_flight: usize,
    admitted: usize,
    epoch_start_cycles: u64,
    epoch_start_h2d: u64,
    epoch_start_d2h: u64,
}

impl<'g, T: Send> PipelineExecutor<'g, T> {
    /// Creates a resident executor. The pending queue defaults to twice
    /// the stage count and max in-flight to the stage count (no extra
    /// admission limit); both are adjustable.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn new(gpu: &'g mut Gpu, stages: Vec<BoxedStage<T>>, multi_stream: bool) -> Self {
        assert!(!stages.is_empty(), "a pipeline needs at least one stage");
        let num_stages = stages.len();
        gpu.memory().reset_peak();
        let epoch_start_cycles = gpu.elapsed_cycles();
        let epoch_start_h2d = gpu.total_h2d_bytes();
        let epoch_start_d2h = gpu.total_d2h_bytes();
        Self {
            gpu,
            stages,
            multi_stream,
            host_threads: 1,
            queue_capacity: 2 * num_stages,
            max_in_flight: num_stages,
            pending: VecDeque::new(),
            slots: (0..num_stages).map(|_| None).collect(),
            outputs: Vec::new(),
            latencies: Vec::new(),
            lifecycles: Vec::new(),
            accs: (0..num_stages).map(|_| StageAcc::default()).collect(),
            in_flight: 0,
            admitted: 0,
            epoch_start_cycles,
            epoch_start_h2d,
            epoch_start_d2h,
        }
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Sets how many host threads the per-slot payload computation may fan
    /// out across (min 1; default 1 — fully inline serial processing).
    /// Each occupied slot holds a distinct in-flight task, so the payloads
    /// are independent; results are always collected back in slot order,
    /// making every output and statistic byte-identical to the serial run.
    pub fn set_host_threads(&mut self, threads: usize) {
        self.host_threads = threads.max(1);
    }

    /// Host threads available to the per-slot fan-out.
    pub fn host_threads(&self) -> usize {
        self.host_threads
    }

    /// Sets the pending-queue bound (min 1).
    pub fn set_queue_capacity(&mut self, capacity: usize) {
        self.queue_capacity = capacity.max(1);
    }

    /// The pending-queue bound.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Caps how many tasks may be resident in stages at once (clamped to
    /// `1..=num_stages`) — the memory-aware admission lever.
    pub fn set_max_in_flight(&mut self, max: usize) {
        self.max_in_flight = max.clamp(1, self.stages.len());
    }

    /// The in-flight admission cap.
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    /// Tasks waiting in the pending queue.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Tasks currently resident in pipeline stages.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Pending plus in-flight — the executor's outstanding work, the
    /// quantity the least-outstanding-work shard policy balances.
    pub fn outstanding(&self) -> usize {
        self.pending.len() + self.in_flight
    }

    /// Completed tasks held for the next [`drain`](Self::drain).
    pub fn completed_len(&self) -> usize {
        self.outputs.len()
    }

    /// True when no work is pending, resident, or awaiting harvest.
    pub fn is_idle(&self) -> bool {
        self.in_flight == 0 && self.pending.is_empty()
    }

    /// The device's elapsed virtual clock in cycles — the time base the
    /// online service layer (`crate::service`) uses to order submit/step
    /// events across a pool of executors.
    pub fn clock_cycles(&self) -> u64 {
        self.gpu.elapsed_cycles()
    }

    /// Fast-forwards the device clock to `cycle` while the executor is
    /// idle, so a request arriving after a quiet period is admitted at its
    /// virtual arrival time rather than at the clock of the last drained
    /// batch. A no-op when `cycle` is in the past or work is resident.
    pub fn idle_until(&mut self, cycle: u64) {
        if self.is_idle() {
            self.gpu.idle_until(cycle);
        }
    }

    /// Enqueues one task. Returns the task back as `Err` when the bounded
    /// queue is full — the caller decides whether to step the pipeline,
    /// back off, or shed load.
    pub fn submit(&mut self, task: T) -> Result<(), T> {
        if self.pending.len() >= self.queue_capacity {
            return Err(task);
        }
        self.pending.push_back(task);
        Ok(())
    }

    /// Advances the pipeline by one cycle. Returns `Ok(false)` — without
    /// advancing the device clock — when there is nothing to do.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::OutOfDeviceMemory`] if a stage's footprint
    /// does not fit in device memory. All pipeline allocations are
    /// released and the slots cleared (partially processed tasks are
    /// unrecoverable); queued tasks stay pending.
    ///
    /// Returns [`PipelineError::DeviceFailed`] when the device's scripted
    /// fail-stop has armed, and [`PipelineError::KernelDropped`] when a
    /// scripted fault suppressed one of this step's kernel launches. Both
    /// salvage every in-flight task back to the front of the pending queue
    /// in admission order (device memory released), so
    /// [`take_pending`](Self::take_pending) recovers exactly the
    /// not-yet-completed tasks for replay elsewhere.
    pub fn step(&mut self) -> Result<bool, PipelineError> {
        if self.in_flight == 0 && self.pending.is_empty() {
            return Ok(false);
        }
        // Observe scripted faults at the stage boundary, before any host
        // work runs: a dead device admits nothing and executes nothing.
        if let batchzk_gpu_sim::DeviceHealth::Failed { at_cycle } = self.gpu.poll_faults() {
            let salvaged = self.salvage_slots();
            return Err(PipelineError::DeviceFailed { at_cycle, salvaged });
        }
        let num_stages = self.stages.len();

        // Admit a new task into stage 0 if it is free and the in-flight
        // cap allows.
        if self.slots[0].is_none() && self.in_flight < self.max_in_flight {
            if let Some(task) = self.pending.pop_front() {
                let entry_cycle = self.gpu.elapsed_cycles();
                let mut span = Span::new(self.admitted, entry_cycle);
                span.enter_stage(&self.stages[0].name(), entry_cycle);
                self.slots[0] = Some(Slot {
                    task,
                    entry_cycle,
                    mem: None,
                    mem_bytes: 0,
                    span,
                });
                self.admitted += 1;
                self.in_flight += 1;
            }
        }

        // Execute all occupied stages concurrently. Each occupied slot
        // holds a *distinct* in-flight task, so the real per-slot payloads
        // (leaf hashing, round folding, column encoding) are independent
        // and fan out across the host thread pool. Results come back in
        // slot order, so the kernel list, transfers and accounting below
        // are byte-identical to the serial run at any thread count.
        let stages = &self.stages;
        let mut occupied: Vec<(usize, &mut Slot<T>)> = self
            .slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.as_mut().map(|slot| (i, slot)))
            .collect();
        let works: Vec<StageWork> =
            batchzk_par::par_map_mut_with(self.host_threads, &mut occupied, |_, (i, slot)| {
                stages[*i].process(&mut slot.task)
            });

        let mut kernels: Vec<KernelStep> = Vec::new();
        let mut kernel_stage: Vec<usize> = Vec::new();
        let mut transfers: Vec<Transfer> = Vec::new();
        let mut mem_updates: Vec<(usize, u64)> = Vec::new();
        for ((i, slot), sw) in occupied.iter_mut().zip(works) {
            let i = *i;
            self.accs[i].h2d += sw.h2d_bytes;
            self.accs[i].d2h += sw.d2h_bytes;
            slot.span.add_bytes(sw.h2d_bytes, sw.d2h_bytes);
            kernels.push(KernelStep::new(
                stages[i].name(),
                stages[i].threads(),
                sw.work,
            ));
            kernel_stage.push(i);
            if sw.h2d_bytes > 0 {
                transfers.push(Transfer {
                    bytes: sw.h2d_bytes,
                    dir: Dir::HostToDevice,
                });
            }
            if sw.d2h_bytes > 0 {
                transfers.push(Transfer {
                    bytes: sw.d2h_bytes,
                    dir: Dir::DeviceToHost,
                });
            }
            mem_updates.push((i, sw.mem_after));
        }
        drop(occupied);

        // Apply memory footprints (alloc new before freeing old, so the
        // transient overlap of a copy shows up in the peak).
        for (i, new_bytes) in mem_updates {
            let slot = self.slots[i].as_mut().expect("slot occupied");
            if new_bytes != slot.mem_bytes {
                let new_handle = if new_bytes > 0 {
                    match self.gpu.memory().alloc(new_bytes, &self.stages[i].name()) {
                        Ok(handle) => Some(handle),
                        Err(oom) => {
                            // Release every live pipeline allocation so
                            // the device allocator is clean for the
                            // caller, then surface the failing stage.
                            for s in self.slots.iter_mut().flatten() {
                                if let Some(handle) = s.mem.take() {
                                    self.gpu.memory().free(handle);
                                }
                            }
                            for s in self.slots.iter_mut() {
                                *s = None;
                            }
                            self.in_flight = 0;
                            return Err(PipelineError::OutOfDeviceMemory {
                                stage: self.stages[i].name(),
                                requested_bytes: oom.requested,
                                in_use_bytes: oom.in_use,
                                capacity_bytes: oom.capacity,
                            });
                        }
                    }
                } else {
                    None
                };
                if let Some(old) = slot.mem.take() {
                    self.gpu.memory().free(old);
                }
                slot.mem = new_handle;
                slot.mem_bytes = new_bytes;
            }
        }

        let out = self
            .gpu
            .execute_step(&kernels, &transfers, self.multi_stream);

        // A scripted fault may have suppressed one of this step's launches:
        // the stage's host-side computation ran but the device work did
        // not, so the step's results are untrusted. Salvage everything in
        // flight for replay from stage 0 (all task state is recomputed on
        // replay) and skip this step's stage accounting — the faulted
        // step's cycles stay attributed to the run total only, which the
        // per-epoch conservation laws tolerate because the epoch ends here.
        let dropped = self.gpu.take_dropped_kernels();
        if let Some(drop) = dropped.into_iter().next() {
            let salvaged = self.salvage_slots();
            return Err(PipelineError::KernelDropped {
                stage: drop.name,
                at_cycle: drop.at_cycle,
                salvaged,
            });
        }

        // Attribute this step's cycles to each stage's buckets. A
        // stage's own kernel span is recomputed exactly as the simulator
        // scales it (launch overhead + oversubscription dilation, capped
        // at the step's compute span); the remainder of the step is
        // either sibling imbalance (compute - own) or transfer
        // backpressure (step - compute).
        let launch = self.gpu.cost().kernel_launch;
        let cores = self.gpu.profile().cuda_cores as u64;
        let dilation = self.gpu.clock_dilation_percent() as u64;
        let total_threads: u64 = kernels
            .iter()
            .filter(|k| !work_is_empty(&k.work))
            .map(|k| k.threads as u64)
            .sum();
        let occupied_this_step: Vec<bool> = {
            let mut v = vec![false; num_stages];
            for &i in &kernel_stage {
                v[i] = true;
            }
            v
        };
        let step_len = out.step_cycles;
        let compute = out.compute_cycles;
        for i in 0..num_stages {
            let acc = &mut self.accs[i];
            if occupied_this_step[i] {
                acc.seen = true;
                acc.idle += acc.gap;
                acc.gap = 0;
                acc.tasks += 1;
                acc.occupied += step_len;
                let k = &kernels[kernel_stage.iter().position(|&s| s == i).expect("occupied")];
                let own = if work_is_empty(&k.work) {
                    0
                } else {
                    let mut d = k.duration_cycles() + launch;
                    if total_threads > cores {
                        d = d * total_threads / cores;
                    }
                    // Mirror the simulator's degraded-clock dilation so
                    // busy/imbalance attribution stays faithful on a
                    // throttled device.
                    if dilation > 100 {
                        d = d * dilation / 100;
                    }
                    d.min(compute)
                };
                acc.busy += own;
                acc.imbalance += compute - own;
                acc.memory += step_len - compute;
            } else if acc.seen {
                acc.gap += step_len;
            } else {
                acc.fill += step_len;
            }
        }

        // Advance: the last stage's task exits, everyone shifts by one.
        let now = self.gpu.elapsed_cycles();
        if let Some(mut slot) = self.slots[num_stages - 1].take() {
            if let Some(handle) = slot.mem {
                self.gpu.memory().free(handle);
            }
            slot.span.exit_stage(now);
            slot.span.complete(now);
            self.latencies.push(now - slot.entry_cycle);
            self.lifecycles.push(slot.span);
            self.outputs.push(slot.task);
            self.in_flight -= 1;
        }
        for i in (1..num_stages).rev() {
            if self.slots[i].is_none() {
                if let Some(mut slot) = self.slots[i - 1].take() {
                    slot.span.exit_stage(now);
                    slot.span.enter_stage(&self.stages[i].name(), now);
                    self.slots[i] = Some(slot);
                }
            }
        }
        Ok(true)
    }

    /// Returns every in-flight task to the *front* of the pending queue and
    /// frees its device memory, reporting how many were salvaged. Slots are
    /// walked shallowest-first so the deepest (earliest-admitted) task ends
    /// up at the queue front — the pending queue regains exact admission
    /// order, which is what lets a scheduler map salvaged tasks back to
    /// their original batch positions without tagging them. The queue may
    /// transiently exceed its capacity here; the capacity only bounds
    /// [`submit`](Self::submit).
    fn salvage_slots(&mut self) -> usize {
        let mut salvaged = 0;
        for i in 0..self.slots.len() {
            if let Some(mut slot) = self.slots[i].take() {
                if let Some(handle) = slot.mem.take() {
                    self.gpu.memory().free(handle);
                }
                self.pending.push_front(slot.task);
                salvaged += 1;
            }
        }
        self.in_flight = 0;
        salvaged
    }

    /// Removes and returns every pending task in queue order. After a
    /// recoverable fault ([`PipelineError::DeviceFailed`] /
    /// [`PipelineError::KernelDropped`]) this is exactly the batch suffix
    /// that did not complete, in admission order — the slice a pool
    /// scheduler reshards onto surviving devices.
    pub fn take_pending(&mut self) -> Vec<T> {
        std::mem::take(&mut self.pending).into()
    }

    /// Steps until the pipeline and pending queue are empty, then harvests
    /// the epoch's completed tasks and statistics. The executor remains
    /// usable: a subsequent `submit`/`drain` starts a fresh epoch on the
    /// same (still-advancing) device clock.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::OutOfDeviceMemory`] if a stage's footprint
    /// does not fit in device memory; all pipeline allocations are
    /// released before returning (completed outputs are discarded). On a
    /// recoverable fault ([`PipelineError::DeviceFailed`] /
    /// [`PipelineError::KernelDropped`]) the caller can still
    /// [`harvest`](Self::harvest) the tasks completed before the fault and
    /// [`take_pending`](Self::take_pending) the salvaged remainder.
    pub fn drain(&mut self) -> Result<PipelineRun<T>, PipelineError> {
        while self.step()? {}
        Ok(self.harvest())
    }

    /// Harvests the epoch since construction or the previous harvest:
    /// completed tasks in completion order plus their statistics. Resets
    /// the accumulators; tasks still pending or in flight are carried into
    /// the next epoch (drain first for a clean cut).
    pub fn harvest(&mut self) -> PipelineRun<T> {
        let total_tasks = self.outputs.len();
        let total_cycles = self.gpu.elapsed_cycles() - self.epoch_start_cycles;
        let total_ms = self.gpu.profile().cycles_to_seconds(total_cycles) * 1e3;
        let latencies = std::mem::take(&mut self.latencies);
        let mean_latency_ms = if latencies.is_empty() {
            0.0
        } else {
            let sum: u64 = latencies.iter().sum();
            self.gpu
                .profile()
                .cycles_to_seconds(sum / latencies.len() as u64)
                * 1e3
        };
        let accs = std::mem::replace(
            &mut self.accs,
            (0..self.stages.len())
                .map(|_| StageAcc::default())
                .collect(),
        );
        let stage_stats = self
            .stages
            .iter()
            .zip(accs)
            .map(|(stage, acc)| StageStats {
                name: stage.name(),
                threads: stage.threads(),
                tasks: acc.tasks,
                occupied_cycles: acc.occupied,
                busy_cycles: acc.busy,
                imbalance_stall_cycles: acc.imbalance,
                memory_stall_cycles: acc.memory,
                fill_cycles: acc.fill,
                idle_cycles: acc.idle,
                // Whatever gap was still open when the epoch ended is drain.
                drain_cycles: acc.gap,
                h2d_bytes: acc.h2d,
                d2h_bytes: acc.d2h,
                occupancy: if total_cycles > 0 {
                    acc.occupied as f64 / total_cycles as f64
                } else {
                    0.0
                },
            })
            .collect();
        let stats = RunStats {
            total_cycles,
            total_ms,
            tasks: total_tasks,
            throughput_per_ms: if total_ms > 0.0 {
                total_tasks as f64 / total_ms
            } else {
                0.0
            },
            mean_latency_ms,
            peak_mem_bytes: self.gpu.memory_ref().peak(),
            mean_utilization: self.gpu.mean_utilization(),
            h2d_bytes: self.gpu.total_h2d_bytes() - self.epoch_start_h2d,
            d2h_bytes: self.gpu.total_d2h_bytes() - self.epoch_start_d2h,
            stage_stats,
            lifecycles: std::mem::take(&mut self.lifecycles),
        };
        let outputs = std::mem::take(&mut self.outputs);
        self.admitted = 0;
        self.epoch_start_cycles = self.gpu.elapsed_cycles();
        self.epoch_start_h2d = self.gpu.total_h2d_bytes();
        self.epoch_start_d2h = self.gpu.total_d2h_bytes();
        self.gpu.memory().reset_peak();
        PipelineRun { outputs, stats }
    }
}

/// A configured pipeline bound to a simulated GPU — the batch-at-a-time
/// compatibility facade over [`PipelineExecutor`].
pub struct Pipeline<'g, T> {
    gpu: &'g mut Gpu,
    stages: Vec<BoxedStage<T>>,
    multi_stream: bool,
}

impl<'g, T: Send> Pipeline<'g, T> {
    /// Creates a pipeline from its stages.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn new(gpu: &'g mut Gpu, stages: Vec<BoxedStage<T>>, multi_stream: bool) -> Self {
        assert!(!stages.is_empty(), "a pipeline needs at least one stage");
        Self {
            gpu,
            stages,
            multi_stream,
        }
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Streams `tasks` through the pipeline: one task enters per cycle, all
    /// occupied stages execute concurrently, and one task exits per cycle
    /// once the pipeline is full. Thin wrapper over [`PipelineExecutor`]:
    /// submit everything, drain once.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::OutOfDeviceMemory`] if a stage's footprint
    /// does not fit in device memory; all pipeline allocations are released
    /// before returning.
    pub fn run(self, tasks: Vec<T>) -> Result<PipelineRun<T>, PipelineError> {
        let Pipeline {
            gpu,
            stages,
            multi_stream,
        } = self;
        let mut executor = PipelineExecutor::new(gpu, stages, multi_stream);
        executor.set_host_threads(batchzk_par::current_threads());
        executor.set_queue_capacity(tasks.len().max(1));
        for task in tasks {
            if executor.submit(task).is_err() {
                unreachable!("queue sized to the whole batch");
            }
        }
        executor.drain()
    }
}

/// Splits `total_threads` across stages proportionally to their work
/// weights, guaranteeing at least one thread per stage — the paper's §4
/// allocation rule ("we allocate 2240 = 35×64, 768 = 12×64, and
/// 7296 = 113×64 threads...").
pub fn allocate_threads(total_threads: u32, weights: &[u64]) -> Vec<u32> {
    assert!(!weights.is_empty(), "need at least one stage weight");
    let total_weight: u64 = weights.iter().sum::<u64>().max(1);
    let mut out: Vec<u32> = weights
        .iter()
        .map(|&w| {
            let share = (total_threads as u64 * w) / total_weight;
            share.max(1) as u32
        })
        .collect();
    // Trim any overshoot caused by the min-1 clamp, largest first.
    let mut sum: u32 = out.iter().sum();
    while sum > total_threads.max(weights.len() as u32) {
        let (idx, _) = out
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .expect("non-empty");
        out[idx] -= 1;
        sum -= 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchzk_gpu_sim::DeviceProfile;

    /// A trivial stage that adds a constant to a u64 task.
    struct AddStage {
        amount: u64,
        threads: u32,
        cycles: u64,
    }

    impl PipeStage<u64> for AddStage {
        fn name(&self) -> String {
            format!("add-{}", self.amount)
        }
        fn threads(&self) -> u32 {
            self.threads
        }
        fn process(&self, task: &mut u64) -> StageWork {
            *task += self.amount;
            StageWork {
                work: Work::Uniform {
                    units: self.threads as u64,
                    cycles_per_unit: self.cycles,
                },
                h2d_bytes: 0,
                d2h_bytes: 0,
                mem_after: 64,
            }
        }
    }

    fn three_stage(gpu: &mut Gpu) -> Pipeline<'_, u64> {
        let stages: Vec<BoxedStage<u64>> = vec![
            Box::new(AddStage {
                amount: 1,
                threads: 32,
                cycles: 100,
            }),
            Box::new(AddStage {
                amount: 10,
                threads: 32,
                cycles: 100,
            }),
            Box::new(AddStage {
                amount: 100,
                threads: 32,
                cycles: 100,
            }),
        ];
        Pipeline::new(gpu, stages, true)
    }

    #[test]
    fn tasks_pass_through_all_stages_in_order() {
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let run = three_stage(&mut gpu)
            .run(vec![0, 1000, 2000])
            .expect("fits");
        assert_eq!(run.outputs, vec![111, 1111, 2111]);
        assert_eq!(run.stats.tasks, 3);
    }

    #[test]
    fn pipeline_overlaps_tasks() {
        // m tasks through s stages takes m + s - 1 cycles, not m * s.
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let run = three_stage(&mut gpu).run((0..10).collect()).expect("fits");
        // Each cycle costs the same; total cycles / per-cycle cost = 12.
        let per_cycle = run.stats.total_cycles / 12;
        assert!(
            run.stats.total_cycles >= per_cycle * 12 && run.stats.total_cycles < per_cycle * 13,
            "expected ~12 uniform cycles, got {}",
            run.stats.total_cycles
        );
    }

    #[test]
    fn empty_task_list() {
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let run = three_stage(&mut gpu).run(vec![]).expect("fits");
        assert!(run.outputs.is_empty());
        assert_eq!(run.stats.total_cycles, 0);
        assert_eq!(run.stats.stage_stats.len(), 3);
        assert!(run.stats.stage_stats.iter().all(|s| s.occupancy == 0.0));
    }

    #[test]
    fn single_task_latency_equals_total() {
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let run = three_stage(&mut gpu).run(vec![7]).expect("fits");
        assert_eq!(run.outputs, vec![118]);
        assert!((run.stats.mean_latency_ms - run.stats.total_ms).abs() < 1e-9);
    }

    #[test]
    fn memory_is_freed_on_exit() {
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let run = three_stage(&mut gpu).run((0..5).collect()).expect("fits");
        assert!(run.stats.peak_mem_bytes >= 64);
        assert_eq!(gpu.memory_ref().in_use(), 0, "all task memory released");
        // Peak is bounded by stages * per-task footprint (3 * 64) plus the
        // transient alloc-before-free overlap of one stage (64).
        assert!(run.stats.peak_mem_bytes <= 4 * 64);
    }

    #[test]
    fn out_of_memory_reports_stage_and_releases_allocations() {
        let mut gpu = Gpu::new(DeviceProfile {
            device_mem_bytes: 100,
            ..DeviceProfile::v100()
        });
        let err = three_stage(&mut gpu).run(vec![0, 1, 2]).unwrap_err();
        let PipelineError::OutOfDeviceMemory {
            stage,
            requested_bytes,
            in_use_bytes,
            capacity_bytes,
        } = err.clone()
        else {
            panic!("expected OOM, got {err:?}");
        };
        // The second admitted task's stage-0 allocation collides with the
        // first task's footprint still resident downstream.
        assert_eq!(stage, "add-1");
        assert_eq!(requested_bytes, 64);
        assert_eq!(in_use_bytes, 64);
        assert_eq!(capacity_bytes, 100);
        assert!(err.to_string().contains("add-1"));
        assert_eq!(gpu.memory_ref().in_use(), 0, "error path released memory");
    }

    #[test]
    fn stage_stats_satisfy_conservation_laws() {
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let stages: Vec<BoxedStage<u64>> = vec![
            Box::new(AddStage {
                amount: 1,
                threads: 64,
                cycles: 50,
            }),
            Box::new(AddStage {
                amount: 10,
                threads: 32,
                cycles: 400,
            }),
            Box::new(AddStage {
                amount: 100,
                threads: 32,
                cycles: 100,
            }),
        ];
        let run = Pipeline::new(&mut gpu, stages, true)
            .run((0..7).collect())
            .expect("fits");
        let total = run.stats.total_cycles;
        assert_eq!(run.stats.stage_stats.len(), 3);
        for s in &run.stats.stage_stats {
            assert_eq!(s.tasks, 7);
            assert!(s.occupancy > 0.0 && s.occupancy <= 1.0, "{s:?}");
            assert_eq!(
                s.busy_cycles + s.imbalance_stall_cycles + s.memory_stall_cycles,
                s.occupied_cycles,
                "occupied split: {s:?}"
            );
            assert_eq!(
                s.occupied_cycles + s.fill_cycles + s.idle_cycles + s.drain_cycles,
                total,
                "run split: {s:?}"
            );
        }
        let [a, b, c] = &run.stats.stage_stats[..] else {
            panic!("three stages")
        };
        // Stage 0 fills first and drains longest; stage 2 the reverse.
        assert_eq!(a.fill_cycles, 0);
        assert!(c.fill_cycles > 0);
        assert!(a.drain_cycles > 0);
        assert_eq!(c.drain_cycles, 0);
        // The slow middle stage dominates: it stalls least on imbalance.
        assert!(b.imbalance_stall_cycles < a.imbalance_stall_cycles);
        assert!(b.imbalance_stall_cycles < c.imbalance_stall_cycles);
        assert!(b.busy_cycles > a.busy_cycles);
    }

    #[test]
    fn stage_transfer_bytes_sum_to_run_totals() {
        struct LoadStage;
        impl PipeStage<u64> for LoadStage {
            fn name(&self) -> String {
                "load".into()
            }
            fn threads(&self) -> u32 {
                32
            }
            fn process(&self, _task: &mut u64) -> StageWork {
                StageWork {
                    work: Work::Uniform {
                        units: 32,
                        cycles_per_unit: 10,
                    },
                    h2d_bytes: 1024,
                    d2h_bytes: 128,
                    mem_after: 0,
                }
            }
        }
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let stages: Vec<BoxedStage<u64>> = vec![Box::new(LoadStage), Box::new(LoadStage)];
        let run = Pipeline::new(&mut gpu, stages, true)
            .run((0..6).collect())
            .expect("fits");
        let h2d: u64 = run.stats.stage_stats.iter().map(|s| s.h2d_bytes).sum();
        let d2h: u64 = run.stats.stage_stats.iter().map(|s| s.d2h_bytes).sum();
        assert_eq!(h2d, run.stats.h2d_bytes);
        assert_eq!(d2h, run.stats.d2h_bytes);
        assert_eq!(h2d, 2 * 6 * 1024);
    }

    #[test]
    fn allocate_threads_proportional() {
        // The paper's example: ratio 35:12:113 over 10240 threads.
        let alloc = allocate_threads(10240, &[35, 12, 113]);
        assert_eq!(alloc.len(), 3);
        let sum: u32 = alloc.iter().sum();
        assert!(sum <= 10240 && sum > 10000, "sum={sum}");
        assert!((alloc[0] as f64 / alloc[1] as f64 - 35.0 / 12.0).abs() < 0.1);
        assert!((alloc[2] as f64 / alloc[0] as f64 - 113.0 / 35.0).abs() < 0.1);
    }

    #[test]
    fn allocate_threads_minimum_one() {
        let alloc = allocate_threads(4, &[1000, 1, 1, 1]);
        assert!(alloc.iter().all(|&t| t >= 1));
    }

    #[test]
    fn lifecycle_spans_tile_stage_occupancy() {
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let run = three_stage(&mut gpu).run((0..9).collect()).expect("fits");
        assert_eq!(run.stats.lifecycles.len(), 9);
        for (i, span) in run.stats.lifecycles.iter().enumerate() {
            assert_eq!(span.index, i, "completion order == admission order");
            assert!(span.is_complete());
            assert_eq!(span.stages.len(), 3, "one stage span per stage");
            let tiled: u64 = span.stages.iter().map(|s| s.cycles()).sum();
            assert_eq!(tiled, span.total_cycles(), "stage spans tile residency");
        }
        // Summing a stage's cycles across all spans reproduces the stage's
        // occupied-cycle accounting exactly.
        for s in &run.stats.stage_stats {
            let from_spans: u64 = run
                .stats
                .lifecycles
                .iter()
                .map(|sp| sp.stage_cycles(&s.name))
                .sum();
            assert_eq!(from_spans, s.occupied_cycles, "stage {}", s.name);
        }
    }

    #[test]
    fn mean_utilization_high_in_steady_state() {
        // Balanced stages + many tasks => most thread-cycles useful.
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let stages: Vec<BoxedStage<u64>> = (0..4)
            .map(|i| {
                Box::new(AddStage {
                    amount: i,
                    threads: 1280,
                    cycles: 50_000,
                }) as BoxedStage<u64>
            })
            .collect();
        let run = Pipeline::new(&mut gpu, stages, true)
            .run((0..64).collect())
            .expect("fits");
        assert!(
            run.stats.mean_utilization > 0.8,
            "steady-state utilization {}",
            run.stats.mean_utilization
        );
    }

    fn three_stages() -> Vec<BoxedStage<u64>> {
        vec![
            Box::new(AddStage {
                amount: 1,
                threads: 32,
                cycles: 100,
            }),
            Box::new(AddStage {
                amount: 10,
                threads: 32,
                cycles: 100,
            }),
            Box::new(AddStage {
                amount: 100,
                threads: 32,
                cycles: 100,
            }),
        ]
    }

    #[test]
    fn executor_matches_consuming_run_cycle_for_cycle() {
        let tasks: Vec<u64> = (0..10).collect();
        let mut g1 = Gpu::new(DeviceProfile::v100());
        let via_run = three_stage(&mut g1).run(tasks.clone()).expect("fits");
        let mut g2 = Gpu::new(DeviceProfile::v100());
        let mut exec = PipelineExecutor::new(&mut g2, three_stages(), true);
        exec.set_queue_capacity(tasks.len());
        for t in tasks {
            exec.submit(t).expect("queue sized to batch");
        }
        let via_exec = exec.drain().expect("fits");
        assert_eq!(via_run.outputs, via_exec.outputs);
        assert_eq!(via_run.stats.total_cycles, via_exec.stats.total_cycles);
        assert_eq!(via_run.stats.stage_stats, via_exec.stats.stage_stats);
        assert_eq!(g1.elapsed_cycles(), g2.elapsed_cycles());
    }

    #[test]
    fn executor_bounded_queue_hands_task_back() {
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let mut exec = PipelineExecutor::new(&mut gpu, three_stages(), true);
        exec.set_queue_capacity(2);
        assert_eq!(exec.submit(1), Ok(()));
        assert_eq!(exec.submit(2), Ok(()));
        assert_eq!(exec.submit(3), Err(3), "full queue returns the task");
        // One step admits a task, freeing a queue slot.
        assert!(exec.step().expect("fits"));
        assert_eq!(exec.submit(3), Ok(()));
        let run = exec.drain().expect("fits");
        assert_eq!(run.outputs, vec![112, 113, 114]);
    }

    #[test]
    fn executor_max_in_flight_caps_residency_and_memory() {
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let mut exec = PipelineExecutor::new(&mut gpu, three_stages(), true);
        exec.set_queue_capacity(16);
        exec.set_max_in_flight(1);
        for t in 0..8u64 {
            exec.submit(t).expect("capacity 16");
        }
        let run = exec.drain().expect("fits");
        assert_eq!(run.outputs, (0..8).map(|t| t + 111).collect::<Vec<_>>());
        // With one task resident at a time the peak is one footprint plus
        // the transient alloc-before-free overlap, not stages * footprint.
        assert!(
            run.stats.peak_mem_bytes <= 2 * 64,
            "peak {}",
            run.stats.peak_mem_bytes
        );
    }

    #[test]
    fn executor_step_is_noop_when_idle() {
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let mut exec = PipelineExecutor::new(&mut gpu, three_stages(), true);
        assert!(exec.is_idle());
        assert!(!exec.step().expect("nothing to do"));
        assert_eq!(exec.gpu.elapsed_cycles(), 0, "idle step keeps the clock");
    }

    #[test]
    fn executor_epochs_are_independent() {
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let mut exec = PipelineExecutor::new(&mut gpu, three_stages(), true);
        exec.set_queue_capacity(8);
        for t in 0..4u64 {
            exec.submit(t).expect("fits");
        }
        let first = exec.drain().expect("fits");
        assert_eq!(first.stats.tasks, 4);
        for t in 0..2u64 {
            exec.submit(t).expect("fits");
        }
        let second = exec.drain().expect("fits");
        assert_eq!(second.stats.tasks, 2, "epoch stats reset on drain");
        assert_eq!(second.outputs, vec![111, 112]);
        assert_eq!(second.stats.lifecycles.len(), 2);
        assert_eq!(second.stats.lifecycles[0].index, 0, "spans renumbered");
        for s in &second.stats.stage_stats {
            assert_eq!(s.tasks, 2);
            assert_eq!(
                s.occupied_cycles + s.fill_cycles + s.idle_cycles + s.drain_cycles,
                second.stats.total_cycles,
                "conservation holds within the second epoch: {s:?}"
            );
        }
    }

    #[test]
    fn executor_oom_keeps_pending_tasks() {
        let mut gpu = Gpu::new(DeviceProfile {
            device_mem_bytes: 100,
            ..DeviceProfile::v100()
        });
        let mut exec = PipelineExecutor::new(&mut gpu, three_stages(), true);
        exec.set_queue_capacity(8);
        for t in 0..4u64 {
            exec.submit(t).expect("fits");
        }
        let err = exec.drain().expect_err("100 bytes cannot hold two tasks");
        assert!(matches!(err, PipelineError::OutOfDeviceMemory { .. }));
        assert_eq!(exec.in_flight(), 0, "slots cleared on OOM");
        assert!(exec.pending_len() > 0, "queued tasks survive the OOM");
        assert_eq!(exec.gpu.memory_ref().in_use(), 0);
        // Capping in-flight to one task lets the remaining work complete.
        // Two tasks were in flight when the second's stage-0 allocation
        // collided with the first's resident footprint; those are lost.
        exec.set_max_in_flight(1);
        let run = exec.drain().expect("one footprint fits");
        assert_eq!(run.outputs.len(), 2);
    }

    /// Restart-safe stage for fault tests: OR-ing a bit is idempotent, so a
    /// task salvaged mid-pipeline and replayed from stage 0 converges to
    /// the same value as an uninterrupted pass (matching the real proving
    /// stages, which overwrite their intermediates).
    struct OrStage {
        bit: u64,
        threads: u32,
        cycles: u64,
    }

    impl PipeStage<u64> for OrStage {
        fn name(&self) -> String {
            format!("or-{}", self.bit)
        }
        fn threads(&self) -> u32 {
            self.threads
        }
        fn process(&self, task: &mut u64) -> StageWork {
            *task |= self.bit;
            StageWork {
                work: Work::Uniform {
                    units: self.threads as u64,
                    cycles_per_unit: self.cycles,
                },
                h2d_bytes: 0,
                d2h_bytes: 0,
                mem_after: 64,
            }
        }
    }

    fn or_stages() -> Vec<BoxedStage<u64>> {
        (0..3)
            .map(|i| {
                Box::new(OrStage {
                    bit: 1 << (i + 8),
                    threads: 32,
                    cycles: 100,
                }) as BoxedStage<u64>
            })
            .collect()
    }

    #[test]
    fn fail_stop_salvages_in_flight_tasks_in_admission_order() {
        use batchzk_gpu_sim::FaultKind;
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let mut exec = PipelineExecutor::new(&mut gpu, or_stages(), true);
        exec.set_queue_capacity(8);
        for t in 1..=6u64 {
            exec.submit(t).expect("fits");
        }
        // Two fill steps put two tasks in flight (none completed yet),
        // then the device fails.
        for _ in 0..2 {
            exec.step().expect("healthy");
        }
        assert_eq!(exec.in_flight(), 2);
        let now = exec.gpu.elapsed_cycles();
        exec.gpu.push_fault(now, FaultKind::FailStop);
        let err = exec.step().expect_err("device dead");
        assert_eq!(
            err,
            PipelineError::DeviceFailed {
                at_cycle: now,
                salvaged: 2
            }
        );
        assert!(err.to_string().contains("fail-stopped"));
        assert_eq!(exec.in_flight(), 0);
        assert_eq!(exec.gpu.memory_ref().in_use(), 0, "salvage frees memory");
        // Salvage restores exact admission order: in-flight tasks (1,2,3,
        // partially processed) ahead of never-admitted ones (4,5,6).
        let pending = exec.take_pending();
        assert_eq!(pending.len(), 6);
        assert_eq!(
            pending.iter().map(|t| t & 0xff).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5, 6]
        );
        // Nothing completed before the fault.
        let partial = exec.harvest();
        assert!(partial.outputs.is_empty());
    }

    #[test]
    fn fail_stop_mid_batch_keeps_completed_outputs() {
        use batchzk_gpu_sim::FaultKind;
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let mut exec = PipelineExecutor::new(&mut gpu, or_stages(), true);
        exec.set_queue_capacity(8);
        for t in 1..=6u64 {
            exec.submit(t).expect("fits");
        }
        // Five steps complete three tasks (depth 3: a task retires at the
        // end of its third step).
        for _ in 0..5 {
            exec.step().expect("healthy");
        }
        exec.gpu
            .push_fault(exec.gpu.elapsed_cycles(), FaultKind::FailStop);
        assert!(matches!(
            exec.step(),
            Err(PipelineError::DeviceFailed { .. })
        ));
        let partial = exec.harvest();
        assert_eq!(partial.outputs, vec![1 | 0x700, 2 | 0x700, 3 | 0x700]);
        let pending = exec.take_pending();
        assert_eq!(
            pending.iter().map(|t| t & 0xff).collect::<Vec<_>>(),
            vec![4, 5, 6],
            "completed prefix + salvaged suffix tile the batch"
        );
    }

    #[test]
    fn dropped_kernel_surfaces_stage_and_salvages() {
        use batchzk_gpu_sim::FaultKind;
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let mut exec = PipelineExecutor::new(&mut gpu, or_stages(), true);
        exec.set_queue_capacity(8);
        for t in 1..=4u64 {
            exec.submit(t).expect("fits");
        }
        // Step 1 launches one kernel (or-256); drop the second launch,
        // which is step 2's deeper stage set.
        exec.gpu.push_fault(0, FaultKind::DropKernel { nth: 2 });
        exec.step().expect("first launch survives");
        let err = exec.step().expect_err("second launch dropped");
        let PipelineError::KernelDropped {
            stage, salvaged, ..
        } = &err
        else {
            panic!("expected KernelDropped, got {err:?}");
        };
        assert!(stage.starts_with("or-"), "stage name surfaced: {stage}");
        assert_eq!(*salvaged, 2);
        assert!(err.to_string().contains("dropped"));
        // The device stays healthy: replaying the salvaged tasks on the
        // same executor completes and produces fully-processed values.
        assert!(!exec.gpu.is_failed());
        let _ = exec.harvest();
        let run = exec.drain().expect("replay completes");
        assert_eq!(run.outputs.len(), 4);
        assert!(run.outputs.iter().all(|t| t & 0x700 == 0x700));
    }
}
