//! The "intuitive" non-pipelined GPU baselines (Figure 4a).
//!
//! One kernel per task: every task receives an equal slice of the thread
//! budget and walks its serial phases (tree layers / sum-check rounds /
//! encoder levels) inside that single kernel. As the per-phase workload
//! shrinks, allocated threads idle — the utilization collapse of Figures 4a
//! and 9. These runners stand in for the systems the paper compares against:
//! Simon (GPU Merkle), Icicle (GPU sum-check) and "Ours-np" (the authors'
//! own encoder without pipelining).

use std::sync::Arc;

use batchzk_encoder::Encoder;
use batchzk_field::Field;
use batchzk_gpu_sim::{Dir, Gpu, KernelStep, Transfer, Work};
use batchzk_hash::{hash_block, hash_pair, Digest};

use crate::engine::RunStats;
use crate::sumcheck::SumcheckTask;

/// Output of a naive batch run.
#[derive(Debug)]
pub struct NaiveRun<T> {
    /// Completed task outputs, in input order.
    pub outputs: Vec<T>,
    /// Timing statistics.
    pub stats: RunStats,
}

fn finish_stats(gpu: &Gpu, start_cycles: u64, tasks: usize, latencies: &[u64]) -> RunStats {
    let total_cycles = gpu.elapsed_cycles() - start_cycles;
    let total_ms = gpu.profile().cycles_to_seconds(total_cycles) * 1e3;
    let mean_latency_ms = if latencies.is_empty() {
        0.0
    } else {
        let sum: u64 = latencies.iter().sum();
        gpu.profile()
            .cycles_to_seconds(sum / latencies.len() as u64)
            * 1e3
    };
    RunStats {
        total_cycles,
        total_ms,
        tasks,
        throughput_per_ms: if total_ms > 0.0 {
            tasks as f64 / total_ms
        } else {
            0.0
        },
        mean_latency_ms,
        peak_mem_bytes: gpu.memory_ref().peak(),
        mean_utilization: gpu.mean_utilization(),
        h2d_bytes: gpu.total_h2d_bytes(),
        d2h_bytes: gpu.total_d2h_bytes(),
        // The naive runners have no stage structure to attribute cycles to,
        // and therefore no per-task lifecycle spans either.
        stage_stats: Vec::new(),
        lifecycles: Vec::new(),
    }
}

/// Runs an arbitrary stage set in the kernel-per-task naive model: each
/// group of `concurrent` tasks walks all stages serially (no cross-stage
/// pipelining, no transfer/compute overlap), every task holding an equal
/// `total_threads / concurrent` slice of the thread budget, with the full
/// working set of `preload_bytes` pre-loaded to device memory. The stage
/// math is exactly the pipelined math — outputs are byte-identical to a
/// [`Pipeline`](crate::engine::Pipeline) run of the same stages — only
/// the schedule (and therefore the clock) differs.
///
/// Stages that expose a
/// [`naive_phases`](crate::engine::PipeStage::naive_phases) decomposition
/// are charged one device step per serial phase — the Figure-4a model,
/// where a task's kernel holds its full thread slice through every small
/// late phase. Stages without phases are charged their aggregate
/// [`StageWork`](crate::engine::StageWork). Per-stage `mem_after` reports
/// are ignored: the naive model's residency is the pre-load.
///
/// # Panics
///
/// Panics if `tasks` is empty, the pre-load does not fit in device
/// memory, or tasks in one group disagree on their phase count (the
/// runner batches groups in lockstep, so it requires a uniform circuit).
pub fn run_stages_naive<T: Send>(
    gpu: &mut Gpu,
    stages: Vec<crate::engine::BoxedStage<T>>,
    tasks: Vec<T>,
    kernel_prefix: &str,
    preload_bytes: u64,
    total_threads: u32,
    concurrent: usize,
) -> NaiveRun<T> {
    assert!(!tasks.is_empty(), "need at least one task");
    let concurrent = concurrent.max(1).min(tasks.len());
    let threads_per_task = (total_threads as usize / concurrent).max(1) as u32;
    let start = gpu.elapsed_cycles();
    gpu.memory().reset_peak();
    let input_mem = gpu
        .memory()
        .alloc(preload_bytes, &format!("naive-{kernel_prefix}-inputs"))
        .expect("naive pre-load must fit for this experiment");

    let mut outputs = Vec::with_capacity(tasks.len());
    let mut latencies = Vec::with_capacity(tasks.len());
    let mut queue = tasks;
    while !queue.is_empty() {
        let take = concurrent.min(queue.len());
        let mut group: Vec<T> = queue.drain(..take).collect();
        let group_start = gpu.elapsed_cycles();
        for stage in &stages {
            let works = batchzk_par::par_map_mut(&mut group, |_, task| stage.process(task));
            let h2d: u64 = works.iter().map(|w| w.h2d_bytes).sum();
            let d2h: u64 = works.iter().map(|w| w.d2h_bytes).sum();
            let mut transfers = Vec::new();
            if h2d > 0 {
                transfers.push(Transfer {
                    bytes: h2d,
                    dir: Dir::HostToDevice,
                });
            }
            if d2h > 0 {
                transfers.push(Transfer {
                    bytes: d2h,
                    dir: Dir::DeviceToHost,
                });
            }
            // Phase-granular when the stage provides it (tasks advance
            // their serial phases in lockstep, transfers ride the first
            // step); aggregate otherwise.
            let phase_lists: Vec<Option<Vec<Work>>> =
                group.iter().map(|t| stage.naive_phases(t)).collect();
            if phase_lists.iter().all(Option::is_some) {
                let phases: Vec<Vec<Work>> = phase_lists.into_iter().flatten().collect();
                let depth = phases[0].len();
                assert!(
                    phases.iter().all(|p| p.len() == depth),
                    "ragged phase counts in one naive group"
                );
                for j in 0..depth {
                    let kernels: Vec<KernelStep> = phases
                        .iter()
                        .enumerate()
                        .map(|(i, p)| {
                            KernelStep::new(
                                format!("naive-{kernel_prefix}-task{i}"),
                                threads_per_task,
                                p[j].clone(),
                            )
                        })
                        .collect();
                    gpu.execute_step(&kernels, if j == 0 { &transfers } else { &[] }, true);
                }
            } else {
                let kernels: Vec<KernelStep> = works
                    .into_iter()
                    .enumerate()
                    .map(|(i, w)| {
                        KernelStep::new(
                            format!("naive-{kernel_prefix}-task{i}"),
                            threads_per_task,
                            w.work,
                        )
                    })
                    .collect();
                gpu.execute_step(&kernels, &transfers, true);
            }
        }
        let group_latency = gpu.elapsed_cycles() - group_start;
        for task in group {
            outputs.push(task);
            latencies.push(group_latency);
        }
    }
    gpu.memory().free(input_mem);
    let stats = finish_stats(gpu, start, outputs.len(), &latencies);
    NaiveRun { outputs, stats }
}

/// Naive batched Merkle generation (the Simon model): `concurrent` kernels
/// at a time, each building one whole tree with `total_threads/concurrent`
/// threads, all input data pre-loaded to device memory.
///
/// # Panics
///
/// Panics if inputs are empty, ragged, or not power-of-two sized.
pub fn merkle_naive(
    gpu: &mut Gpu,
    trees: Vec<Vec<[u8; 64]>>,
    total_threads: u32,
    concurrent: usize,
) -> NaiveRun<Digest> {
    assert!(!trees.is_empty(), "need at least one tree");
    let n = trees[0].len();
    assert!(
        n.is_power_of_two() && n >= 2,
        "tree size must be a power of two >= 2"
    );
    assert!(trees.iter().all(|t| t.len() == n), "ragged batch");
    let concurrent = concurrent.max(1).min(trees.len());
    let threads_per_task = (total_threads as usize / concurrent).max(1) as u32;
    let node_cost = gpu.cost().merkle_node();
    let start = gpu.elapsed_cycles();
    gpu.memory().reset_peak();

    // Pre-loading: all m trees' blocks resident at once (the mN footprint
    // the paper's §3.1 calls a "huge burden").
    let all_blocks_bytes = (trees.len() * n * 64) as u64;
    let input_mem = gpu
        .memory()
        .alloc(all_blocks_bytes, "naive-merkle-inputs")
        .expect("naive pre-load must fit for this experiment");

    let mut outputs = Vec::with_capacity(trees.len());
    let mut latencies = Vec::with_capacity(trees.len());
    for group in trees.chunks(concurrent) {
        let group_start = gpu.elapsed_cycles();
        // Leaf layer then log N pair layers, all groups in lockstep.
        let mut layers: Vec<Vec<Digest>> = Vec::new();
        let mut units = n as u64;
        // Leaf hashing step.
        let kernels: Vec<KernelStep> = group
            .iter()
            .enumerate()
            .map(|(i, _)| {
                KernelStep::new(
                    format!("naive-merkle-task{i}"),
                    threads_per_task,
                    Work::Uniform {
                        units,
                        cycles_per_unit: node_cost,
                    },
                )
            })
            .collect();
        gpu.execute_step(
            &kernels,
            &[Transfer {
                bytes: (group.len() * n * 64) as u64,
                dir: Dir::HostToDevice,
            }],
            true,
        );
        layers.extend(batchzk_par::par_map(group, |tree| {
            tree.iter().map(hash_block).collect::<Vec<Digest>>()
        }));
        // Reduction layers.
        while units > 1 {
            units /= 2;
            let kernels: Vec<KernelStep> = group
                .iter()
                .enumerate()
                .map(|(i, _)| {
                    KernelStep::new(
                        format!("naive-merkle-task{i}"),
                        threads_per_task,
                        Work::Uniform {
                            units,
                            cycles_per_unit: node_cost,
                        },
                    )
                })
                .collect();
            gpu.execute_step(&kernels, &[], true);
            batchzk_par::par_map_mut(&mut layers, |_, layer| {
                *layer = layer.chunks(2).map(|p| hash_pair(&p[0], &p[1])).collect();
            });
        }
        let group_latency = gpu.elapsed_cycles() - group_start;
        for layer in layers {
            outputs.push(layer[0]);
            latencies.push(group_latency);
        }
    }
    gpu.memory().free(input_mem);
    let stats = finish_stats(gpu, start, outputs.len(), &latencies);
    NaiveRun { outputs, stats }
}

/// Naive batched sum-check generation (the Icicle model).
///
/// # Panics
///
/// Panics if inputs are empty or ragged.
pub fn sumcheck_naive<F: Field>(
    gpu: &mut Gpu,
    tasks: Vec<SumcheckTask<F>>,
    total_threads: u32,
    concurrent: usize,
) -> NaiveRun<SumcheckTask<F>> {
    assert!(!tasks.is_empty(), "need at least one task");
    let n = tasks[0].randomness().len();
    assert!(
        tasks.iter().all(|t| t.randomness().len() == n),
        "ragged batch"
    );
    let concurrent = concurrent.max(1).min(tasks.len());
    let threads_per_task = (total_threads as usize / concurrent).max(1) as u32;
    let pair_cost = gpu.cost().sumcheck_pair() + gpu.cost().shared_access;
    let start = gpu.elapsed_cycles();
    gpu.memory().reset_peak();

    // All m tables resident at once.
    let table_bytes = ((1usize << n) * 32) as u64;
    let input_mem = gpu
        .memory()
        .alloc(table_bytes * tasks.len() as u64, "naive-sumcheck-inputs")
        .expect("naive pre-load must fit for this experiment");

    let mut outputs = Vec::with_capacity(tasks.len());
    let mut latencies = Vec::with_capacity(tasks.len());
    let mut queue = tasks;
    while !queue.is_empty() {
        let take = concurrent.min(queue.len());
        let mut group: Vec<SumcheckTask<F>> = queue.drain(..take).collect();
        let group_start = gpu.elapsed_cycles();
        gpu.execute_step(
            &[],
            &[Transfer {
                bytes: table_bytes * group.len() as u64,
                dir: Dir::HostToDevice,
            }],
            true,
        );
        for round in 0..n {
            let pairs = 1u64 << (n - 1 - round);
            let kernels: Vec<KernelStep> = (0..group.len())
                .map(|i| {
                    KernelStep::new(
                        format!("naive-sumcheck-task{i}"),
                        threads_per_task,
                        Work::Uniform {
                            units: pairs,
                            cycles_per_unit: pair_cost,
                        },
                    )
                })
                .collect();
            gpu.execute_step(&kernels, &[], true);
            batchzk_par::par_map_mut(&mut group, |_, task| task.run_round(round));
        }
        let group_latency = gpu.elapsed_cycles() - group_start;
        for task in group {
            outputs.push(task);
            latencies.push(group_latency);
        }
    }
    gpu.memory().free(input_mem);
    let stats = finish_stats(gpu, start, outputs.len(), &latencies);
    NaiveRun { outputs, stats }
}

/// Naive batched encoding ("Ours-np"): one kernel per message walks all
/// levels serially.
///
/// # Panics
///
/// Panics if inputs are empty or mismatch the encoder.
pub fn encode_naive<F: Field>(
    gpu: &mut Gpu,
    encoder: Arc<Encoder<F>>,
    messages: Vec<Vec<F>>,
    total_threads: u32,
    concurrent: usize,
) -> NaiveRun<Vec<F>> {
    assert!(!messages.is_empty(), "need at least one message");
    assert!(
        messages.iter().all(|m| m.len() == encoder.message_len()),
        "message length must match the encoder"
    );
    let concurrent = concurrent.max(1).min(messages.len());
    let threads_per_task = (total_threads as usize / concurrent).max(1) as u32;
    let cost = *gpu.cost();
    let start = gpu.elapsed_cycles();
    gpu.memory().reset_peak();

    let msg_bytes = (encoder.message_len() * 32) as u64;
    let code_bytes = (encoder.codeword_len() * 32) as u64;
    let input_mem = gpu
        .memory()
        .alloc(code_bytes * messages.len() as u64, "naive-encode-buffers")
        .expect("naive pre-load must fit for this experiment");

    let mut outputs = Vec::with_capacity(messages.len());
    let mut latencies = Vec::with_capacity(messages.len());
    for group in messages.chunks(concurrent) {
        let group_start = gpu.elapsed_cycles();
        gpu.execute_step(
            &[],
            &[Transfer {
                bytes: msg_bytes * group.len() as u64,
                dir: Dir::HostToDevice,
            }],
            true,
        );
        // Forward then backward phases, serial within each kernel. Rows are
        // *not* bucket-sorted here: the non-pipelined baseline also predates
        // the warp-balancing trick.
        let phases: Vec<Vec<u64>> = encoder
            .levels()
            .iter()
            .map(|l| {
                (0..l.a.rows())
                    .map(|i| l.a.row_degree(i) as u64 * cost.spmv_term())
                    .collect()
            })
            .chain(encoder.levels().iter().rev().map(|l| {
                (0..l.b.rows())
                    .map(|i| l.b.row_degree(i) as u64 * cost.spmv_term())
                    .collect()
            }))
            .collect();
        for items in &phases {
            let kernels: Vec<KernelStep> = (0..group.len())
                .map(|i| {
                    KernelStep::new(
                        format!("naive-encode-task{i}"),
                        threads_per_task,
                        Work::Items(items.clone()),
                    )
                })
                .collect();
            gpu.execute_step(&kernels, &[], true);
        }
        outputs.extend(batchzk_par::par_map(group, |msg| encoder.encode(msg)));
        let group_latency = gpu.elapsed_cycles() - group_start;
        for _ in group {
            latencies.push(group_latency);
        }
    }
    gpu.memory().free(input_mem);
    let stats = finish_stats(gpu, start, outputs.len(), &latencies);
    NaiveRun { outputs, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchzk_encoder::EncoderParams;
    use batchzk_field::Fr;
    use batchzk_gpu_sim::DeviceProfile;
    use batchzk_hash::Prg;
    use batchzk_merkle::MerkleTree;

    fn trees(count: usize, n: usize) -> Vec<Vec<[u8; 64]>> {
        (0..count)
            .map(|t| {
                (0..n)
                    .map(|i| {
                        let mut b = [0u8; 64];
                        b[..8].copy_from_slice(&((t * n + i) as u64).to_le_bytes());
                        b
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn naive_merkle_roots_correct() {
        let batch = trees(6, 16);
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let run = merkle_naive(&mut gpu, batch.clone(), 512, 4);
        for (root, blocks) in run.outputs.iter().zip(&batch) {
            assert_eq!(*root, MerkleTree::from_blocks(blocks).root());
        }
    }

    #[test]
    fn pipelined_merkle_beats_naive_throughput() {
        // The paper's headline comparison (Table 3): same device, same
        // thread budget, same batch.
        let batch = trees(48, 256);
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let naive = merkle_naive(&mut gpu, batch.clone(), 1024, 8).stats;
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let piped = crate::merkle::run_pipelined(&mut gpu, batch, 1024, true)
            .expect("fits")
            .stats;
        assert!(
            piped.throughput_per_ms > naive.throughput_per_ms,
            "pipelined {} <= naive {}",
            piped.throughput_per_ms,
            naive.throughput_per_ms
        );
        // And the naive approach needs far more device memory (mN vs 2N).
        assert!(naive.peak_mem_bytes > 4 * piped.peak_mem_bytes);
    }

    #[test]
    fn naive_latency_beats_pipelined_latency() {
        // Table 6: pipelining trades latency for throughput. The naive
        // scheme devotes the whole thread budget to one tree at a time
        // (concurrent = 1), minimizing per-task latency; the pipelined
        // scheme makes each task traverse log N cycles, each paced by the
        // balanced per-stage workload.
        let batch = trees(8, 1024);
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let naive = merkle_naive(&mut gpu, batch.clone(), 256, 1).stats;
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let piped = crate::merkle::run_pipelined(&mut gpu, batch, 256, true)
            .expect("fits")
            .stats;
        assert!(
            naive.mean_latency_ms < piped.mean_latency_ms,
            "naive latency {} >= pipelined {}",
            naive.mean_latency_ms,
            piped.mean_latency_ms
        );
    }

    #[test]
    fn naive_sumcheck_matches_reference() {
        let mut rng = Prg::seed_from_u64(1);
        let n = 6;
        let tasks: Vec<SumcheckTask<Fr>> = (0..4)
            .map(|_| {
                let table: Vec<Fr> = (0..1usize << n).map(|_| Fr::random(&mut rng)).collect();
                let rs: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
                SumcheckTask::new(table, rs)
            })
            .collect();
        let reference: Vec<_> = tasks
            .iter()
            .map(|t| batchzk_sumcheck::algorithm1::prove(&mut t.table_snapshot(), t.randomness()))
            .collect();
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let run = sumcheck_naive(&mut gpu, tasks, 256, 2);
        for (task, expect) in run.outputs.iter().zip(&reference) {
            assert_eq!(task.proof(), &expect[..]);
        }
    }

    #[test]
    fn naive_encode_matches_reference() {
        let enc = Arc::new(Encoder::<Fr>::new(150, EncoderParams::default(), 3));
        let mut rng = Prg::seed_from_u64(2);
        let msgs: Vec<Vec<Fr>> = (0..3)
            .map(|_| (0..150).map(|_| Fr::random(&mut rng)).collect())
            .collect();
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let run = encode_naive(&mut gpu, Arc::clone(&enc), msgs.clone(), 256, 2);
        for (code, msg) in run.outputs.iter().zip(&msgs) {
            assert_eq!(code, &enc.encode(msg));
        }
    }

    #[test]
    fn naive_utilization_collapses_vs_pipelined() {
        // Figure 9's story: deep trees leave most naive threads idle.
        let batch = trees(32, 512);
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let naive = merkle_naive(&mut gpu, batch.clone(), 2048, 4).stats;
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let piped = crate::merkle::run_pipelined(&mut gpu, batch, 2048, true)
            .expect("fits")
            .stats;
        assert!(
            piped.mean_utilization > naive.mean_utilization,
            "pipelined {} <= naive {}",
            piped.mean_utilization,
            naive.mean_utilization
        );
    }
}
