//! Glue between pipeline runs and the service-level metrics registry.
//!
//! [`Pipeline::run`](crate::Pipeline::run) stays metrics-agnostic — it
//! reports everything it measured in [`RunStats`], including per-task
//! lifecycle [`Span`](batchzk_metrics::Span)s. The functions here fold a
//! finished run (or a failed one) into a
//! [`Registry`](batchzk_metrics::Registry) under a stable metric schema, so
//! every caller — the module pipelines, the system prover, the ML service —
//! exposes the same names:
//!
//! | metric | kind | labels |
//! |---|---|---|
//! | `batchzk_runs_total` | counter | `module` |
//! | `batchzk_tasks_total` | counter | `module` |
//! | `batchzk_oom_total` | counter | `module`, `stage` |
//! | `batchzk_h2d_bytes_total` / `batchzk_d2h_bytes_total` | counter | `module` |
//! | `batchzk_lifecycle_cycles` | histogram | `module` |
//! | `batchzk_stage_cycles` | histogram | `module`, `stage` |
//! | `batchzk_stage_occupancy` | gauge | `module`, `stage` |
//! | `batchzk_throughput_tasks_per_ms` | gauge | `module` |
//! | `batchzk_mean_utilization` | gauge | `module` |

use crate::engine::{PipelineError, RunStats, StageStats};
use batchzk_metrics::{Registry, StageObservation};

/// Folds a completed run's statistics into `registry` under `module`.
///
/// Counters accumulate across runs (a [`StreamingProver`]-style service
/// calls this once per chunk); gauges reflect the most recent run.
pub fn record_run(registry: &mut Registry, module: &str, stats: &RunStats) {
    let m = [("module", module)];
    registry.counter_add("batchzk_runs_total", &m, 1);
    registry.counter_add("batchzk_tasks_total", &m, stats.tasks as u64);
    registry.counter_add("batchzk_h2d_bytes_total", &m, stats.h2d_bytes);
    registry.counter_add("batchzk_d2h_bytes_total", &m, stats.d2h_bytes);
    registry.gauge_set(
        "batchzk_throughput_tasks_per_ms",
        &m,
        stats.throughput_per_ms,
    );
    registry.gauge_set("batchzk_mean_utilization", &m, stats.mean_utilization);
    for span in &stats.lifecycles {
        registry.observe("batchzk_lifecycle_cycles", &m, span.total_cycles());
        for stage in &span.stages {
            registry.observe(
                "batchzk_stage_cycles",
                &[("module", module), ("stage", &stage.stage)],
                stage.cycles(),
            );
        }
    }
    for stage in &stats.stage_stats {
        registry.gauge_set(
            "batchzk_stage_occupancy",
            &[("module", module), ("stage", &stage.name)],
            stage.occupancy,
        );
    }
}

/// Folds a failed run into `registry` under `module` — currently one OOM
/// counter per failing stage, making memory pressure visible in exposition
/// output.
pub fn record_error(registry: &mut Registry, module: &str, error: &PipelineError) {
    match error {
        PipelineError::OutOfDeviceMemory { stage, .. } => {
            registry.counter_add(
                "batchzk_oom_total",
                &[("module", module), ("stage", stage)],
                1,
            );
        }
    }
}

/// Converts per-stage run statistics into the analyzer's input form.
pub fn stage_observations(stage_stats: &[StageStats]) -> Vec<StageObservation> {
    stage_stats
        .iter()
        .map(|s| StageObservation {
            name: s.name.clone(),
            threads: s.threads,
            tasks: s.tasks,
            busy_cycles: s.busy_cycles,
            occupied_cycles: s.occupied_cycles,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merkle;
    use batchzk_gpu_sim::{DeviceProfile, Gpu};

    fn trees(count: usize, n: usize) -> Vec<Vec<[u8; 64]>> {
        (0..count)
            .map(|t| {
                (0..n)
                    .map(|i| {
                        let mut b = [0u8; 64];
                        b[..8].copy_from_slice(&((t * n + i) as u64).to_le_bytes());
                        b
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn record_run_populates_all_metric_families() {
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let run = merkle::run_pipelined(&mut gpu, trees(6, 16), 512, true).expect("fits");
        let mut reg = Registry::new();
        record_run(&mut reg, "merkle", &run.stats);
        let m = [("module", "merkle")];
        assert_eq!(reg.counter("batchzk_runs_total", &m), 1);
        assert_eq!(reg.counter("batchzk_tasks_total", &m), 6);
        let h = reg
            .histogram("batchzk_lifecycle_cycles", &m)
            .expect("lifecycle histogram recorded");
        assert_eq!(h.count(), 6);
        assert!(h.quantile(0.5) > 0);
        assert!(reg
            .gauge("batchzk_throughput_tasks_per_ms", &m)
            .expect("gauge set")
            .is_finite());
        // One occupancy gauge and one stage histogram per stage.
        for s in &run.stats.stage_stats {
            let labels = [("module", "merkle"), ("stage", s.name.as_str())];
            assert!(reg.gauge("batchzk_stage_occupancy", &labels).is_some());
            let sh = reg
                .histogram("batchzk_stage_cycles", &labels)
                .expect("stage histogram recorded");
            assert_eq!(sh.count(), 6);
            // The histogram's sum is exactly the stage's occupied cycles —
            // the span/stage conservation law surfaced through metrics.
            assert_eq!(sh.sum(), s.occupied_cycles as u128);
        }
        // Accumulation across runs.
        record_run(&mut reg, "merkle", &run.stats);
        assert_eq!(reg.counter("batchzk_runs_total", &m), 2);
        assert_eq!(reg.counter("batchzk_tasks_total", &m), 12);
    }

    #[test]
    fn oom_counter_increments_when_pipeline_oom_fires() {
        // Device too small for two concurrent Merkle tasks: the PR 1 OOM
        // path fires and the metrics layer counts it per stage.
        let small = DeviceProfile {
            device_mem_bytes: 100,
            ..DeviceProfile::v100()
        };
        let mut gpu = Gpu::new(small);
        let mut reg = Registry::new();
        let err = merkle::run_pipelined(&mut gpu, trees(4, 8), 256, true)
            .expect_err("must exceed 100 bytes of device memory");
        record_error(&mut reg, "merkle", &err);
        let PipelineError::OutOfDeviceMemory { stage, .. } = &err;
        assert_eq!(
            reg.counter(
                "batchzk_oom_total",
                &[("module", "merkle"), ("stage", stage)]
            ),
            1
        );
        record_error(&mut reg, "merkle", &err);
        assert_eq!(
            reg.counter(
                "batchzk_oom_total",
                &[("module", "merkle"), ("stage", stage)]
            ),
            2
        );
        // The counter shows up in both exposition formats.
        assert!(reg.to_prometheus().contains("batchzk_oom_total"));
        assert!(reg.to_json().contains("batchzk_oom_total"));
    }

    #[test]
    fn stage_observations_mirror_stage_stats() {
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let run = merkle::run_pipelined(&mut gpu, trees(4, 16), 512, true).expect("fits");
        let obs = stage_observations(&run.stats.stage_stats);
        assert_eq!(obs.len(), run.stats.stage_stats.len());
        for (o, s) in obs.iter().zip(&run.stats.stage_stats) {
            assert_eq!(o.name, s.name);
            assert_eq!(o.threads, s.threads);
            assert_eq!(o.busy_cycles, s.busy_cycles);
            assert_eq!(o.occupied_cycles, s.occupied_cycles);
        }
    }
}
