//! Glue between pipeline runs and the service-level metrics registry.
//!
//! [`Pipeline::run`](crate::Pipeline::run) stays metrics-agnostic — it
//! reports everything it measured in [`RunStats`], including per-task
//! lifecycle [`Span`](batchzk_metrics::Span)s. The functions here fold a
//! finished run (or a failed one) into a
//! [`Registry`] under a stable metric schema, so
//! every caller — the module pipelines, the system prover, the ML service —
//! exposes the same names:
//!
//! | metric | kind | labels |
//! |---|---|---|
//! | `batchzk_runs_total` | counter | `module` |
//! | `batchzk_tasks_total` | counter | `module` |
//! | `batchzk_oom_total` | counter | `module`, `stage` |
//! | `batchzk_h2d_bytes_total` / `batchzk_d2h_bytes_total` | counter | `module` |
//! | `batchzk_lifecycle_cycles` | histogram | `module` |
//! | `batchzk_stage_cycles` | histogram | `module`, `stage` |
//! | `batchzk_stage_occupancy` | gauge | `module`, `stage` |
//! | `batchzk_throughput_tasks_per_ms` | gauge | `module` |
//! | `batchzk_mean_utilization` | gauge | `module` |
//!
//! Multi-device runs ([`record_pool_run`]) add a `device` label dimension —
//! the same families, qualified per pool member — plus pool-level gauges:
//!
//! | metric | kind | labels |
//! |---|---|---|
//! | `batchzk_tasks_total` | counter | `module`, `device` |
//! | `batchzk_h2d_bytes_total` / `batchzk_d2h_bytes_total` | counter | `module`, `device` |
//! | `batchzk_lifecycle_cycles` | histogram | `module`, `device` |
//! | `batchzk_stage_occupancy` | gauge | `module`, `device`, `stage` |
//! | `batchzk_throughput_tasks_per_ms` | gauge | `module`, `device` |
//! | `batchzk_mean_utilization` | gauge | `module`, `device` |
//! | `batchzk_pool_devices` | gauge | `module` |
//! | `batchzk_pool_makespan_ms` | gauge | `module` |
//! | `batchzk_pool_imbalance` | gauge | `module` |
//!
//! Fault-tolerant runs ([`record_error`], [`record_recovery`],
//! [`record_pool_health`]) add the failure families (see `OPERATIONS.md`
//! for the runbook that reads them):
//!
//! | metric | kind | labels |
//! |---|---|---|
//! | `batchzk_device_failures_total` | counter | `module` |
//! | `batchzk_kernels_dropped_total` | counter | `module`, `stage` |
//! | `batchzk_tasks_replayed_total` | counter | `module` |
//! | `batchzk_recovery_replay_rounds` | gauge | `module` |
//! | `batchzk_pool_failed_devices` | gauge | `module` |
//! | `batchzk_pool_degraded_devices` | gauge | `module` |
//!
//! Online service runs ([`record_service`]) add the per-class SLO
//! families the `OPERATIONS.md` SLO-management runbook reads:
//!
//! | metric | kind | labels |
//! |---|---|---|
//! | `batchzk_service_requests_total` | counter | `module`, `class` |
//! | `batchzk_service_accepted_total` | counter | `module`, `class` |
//! | `batchzk_service_rejected_total` | counter | `module`, `class`, `reason` |
//! | `batchzk_service_completed_total` | counter | `module`, `class` |
//! | `batchzk_service_slo_miss_total` | counter | `module`, `class` |
//! | `batchzk_service_latency_cycles` | histogram | `module`, `class` |
//! | `batchzk_service_slo_attainment` | gauge | `module`, `class` |
//! | `batchzk_service_latency_p99_cycles` | gauge | `module`, `class` |
//! | `batchzk_service_rejection_rate` | gauge | `module` |
//! | `batchzk_service_goodput_per_mcycle` | gauge | `module` |
//!
//! Since the `ProverBackend` split, runs and service outcomes can also be
//! qualified by which prover backend produced them. The backend-aware
//! entry points ([`record_run_with_backend`],
//! [`record_service_backends`], [`timeline_counter_tracks_labeled`]) are
//! strictly additive: they record the same unlabelled families
//! byte-for-byte (or leave them untouched) and *add* series under a
//! `backend` label dimension, so pre-existing dashboards keep reading the
//! same values:
//!
//! | metric | kind | labels |
//! |---|---|---|
//! | `batchzk_runs_total` | counter | `module`, `backend` |
//! | `batchzk_tasks_total` | counter | `module`, `backend` |
//! | `batchzk_throughput_tasks_per_ms` | gauge | `module`, `backend` |
//! | `batchzk_mean_utilization` | gauge | `module`, `backend` |
//! | `batchzk_service_completed_total` | counter | `module`, `backend` |
//! | `batchzk_service_slo_miss_total` | counter | `module`, `backend` |
//! | `batchzk_service_latency_cycles` | histogram | `module`, `backend` |

use crate::engine::{PipelineError, RunStats, StageStats};
use crate::sched::RecoveryReport;
use crate::service::{PriorityClass, RejectReason, ServiceConfig, ServiceOutcome};
use batchzk_gpu_sim::CounterTrack;
use batchzk_metrics::{AlertKind, AlertRule, Registry, StageObservation, Timeline};

/// Folds a completed run's statistics into `registry` under `module`.
///
/// Counters accumulate across runs (a `StreamingProver`-style service
/// calls this once per chunk); gauges reflect the most recent run.
pub fn record_run(registry: &mut Registry, module: &str, stats: &RunStats) {
    let m = [("module", module)];
    registry.counter_add("batchzk_runs_total", &m, 1);
    registry.counter_add("batchzk_tasks_total", &m, stats.tasks as u64);
    registry.counter_add("batchzk_h2d_bytes_total", &m, stats.h2d_bytes);
    registry.counter_add("batchzk_d2h_bytes_total", &m, stats.d2h_bytes);
    registry.gauge_set(
        "batchzk_throughput_tasks_per_ms",
        &m,
        stats.throughput_per_ms,
    );
    registry.gauge_set("batchzk_mean_utilization", &m, stats.mean_utilization);
    for span in &stats.lifecycles {
        registry.observe("batchzk_lifecycle_cycles", &m, span.total_cycles());
        for stage in &span.stages {
            registry.observe(
                "batchzk_stage_cycles",
                &[("module", module), ("stage", &stage.stage)],
                stage.cycles(),
            );
        }
    }
    for stage in &stats.stage_stats {
        registry.gauge_set(
            "batchzk_stage_occupancy",
            &[("module", module), ("stage", &stage.name)],
            stage.occupancy,
        );
    }
}

/// Backend-qualified variant of [`record_run`]: records the exact same
/// `module`-labelled series (so existing dashboards see no difference),
/// then qualifies the headline run families with an additional `backend`
/// label naming the prover backend that produced the run.
pub fn record_run_with_backend(
    registry: &mut Registry,
    module: &str,
    backend: &str,
    stats: &RunStats,
) {
    record_run(registry, module, stats);
    let b = [("module", module), ("backend", backend)];
    registry.counter_add("batchzk_runs_total", &b, 1);
    registry.counter_add("batchzk_tasks_total", &b, stats.tasks as u64);
    registry.gauge_set(
        "batchzk_throughput_tasks_per_ms",
        &b,
        stats.throughput_per_ms,
    );
    registry.gauge_set("batchzk_mean_utilization", &b, stats.mean_utilization);
}

/// Folds one pool-wide run (per-device [`RunStats`] plus per-device
/// elapsed milliseconds, as produced by
/// [`run_sharded`](crate::sched::run_sharded)) into `registry` under
/// `module`.
///
/// Module-level series aggregate across devices exactly as a
/// single-device [`record_run`] would (a one-device pool records the
/// same values), device-level series carry an additional `device` label
/// (`"0"`, `"1"`, …), and three pool gauges summarize balance:
/// `batchzk_pool_devices`, `batchzk_pool_makespan_ms`, and
/// `batchzk_pool_imbalance` (max-over-mean of active device time).
pub fn record_pool_run(
    registry: &mut Registry,
    module: &str,
    device_stats: &[RunStats],
    device_ms: &[f64],
) {
    let m = [("module", module)];
    let tasks: u64 = device_stats.iter().map(|s| s.tasks as u64).sum();
    let h2d: u64 = device_stats.iter().map(|s| s.h2d_bytes).sum();
    let d2h: u64 = device_stats.iter().map(|s| s.d2h_bytes).sum();
    let makespan_ms = device_ms.iter().copied().fold(0.0, f64::max);
    registry.counter_add("batchzk_runs_total", &m, 1);
    registry.counter_add("batchzk_tasks_total", &m, tasks);
    registry.counter_add("batchzk_h2d_bytes_total", &m, h2d);
    registry.counter_add("batchzk_d2h_bytes_total", &m, d2h);
    registry.gauge_set(
        "batchzk_throughput_tasks_per_ms",
        &m,
        if makespan_ms > 0.0 {
            tasks as f64 / makespan_ms
        } else {
            0.0
        },
    );
    let active: Vec<&RunStats> = device_stats.iter().filter(|s| s.tasks > 0).collect();
    let mean_util = if active.is_empty() {
        0.0
    } else {
        active.iter().map(|s| s.mean_utilization).sum::<f64>() / active.len() as f64
    };
    registry.gauge_set("batchzk_mean_utilization", &m, mean_util);
    for stats in device_stats {
        for span in &stats.lifecycles {
            registry.observe("batchzk_lifecycle_cycles", &m, span.total_cycles());
            for stage in &span.stages {
                registry.observe(
                    "batchzk_stage_cycles",
                    &[("module", module), ("stage", &stage.stage)],
                    stage.cycles(),
                );
            }
        }
    }
    // Module-level stage occupancy: mean across devices that ran work.
    if let Some(first) = active.first() {
        for (i, stage) in first.stage_stats.iter().enumerate() {
            let occ = active
                .iter()
                .filter_map(|s| s.stage_stats.get(i).map(|st| st.occupancy))
                .sum::<f64>()
                / active.len() as f64;
            registry.gauge_set(
                "batchzk_stage_occupancy",
                &[("module", module), ("stage", &stage.name)],
                occ,
            );
        }
    }
    // Per-device series under the added `device` label dimension.
    for (d, stats) in device_stats.iter().enumerate() {
        let dev = d.to_string();
        let dm = [("module", module), ("device", dev.as_str())];
        registry.counter_add("batchzk_tasks_total", &dm, stats.tasks as u64);
        registry.counter_add("batchzk_h2d_bytes_total", &dm, stats.h2d_bytes);
        registry.counter_add("batchzk_d2h_bytes_total", &dm, stats.d2h_bytes);
        registry.gauge_set(
            "batchzk_throughput_tasks_per_ms",
            &dm,
            stats.throughput_per_ms,
        );
        registry.gauge_set("batchzk_mean_utilization", &dm, stats.mean_utilization);
        for span in &stats.lifecycles {
            registry.observe("batchzk_lifecycle_cycles", &dm, span.total_cycles());
        }
        for stage in &stats.stage_stats {
            registry.gauge_set(
                "batchzk_stage_occupancy",
                &[
                    ("module", module),
                    ("device", dev.as_str()),
                    ("stage", &stage.name),
                ],
                stage.occupancy,
            );
        }
    }
    // Pool-level balance gauges.
    registry.gauge_set("batchzk_pool_devices", &m, device_stats.len() as f64);
    registry.gauge_set("batchzk_pool_makespan_ms", &m, makespan_ms);
    let active_ms: Vec<f64> = device_ms.iter().copied().filter(|&ms| ms > 0.0).collect();
    let imbalance = if active_ms.is_empty() {
        0.0
    } else {
        makespan_ms / (active_ms.iter().sum::<f64>() / active_ms.len() as f64)
    };
    registry.gauge_set("batchzk_pool_imbalance", &m, imbalance);
}

/// Folds a failed run into `registry` under `module`: an OOM counter per
/// failing stage, a device-failure counter per fail-stop, and a
/// dropped-kernel counter per suppressed launch — making memory pressure
/// and device faults visible in exposition output.
pub fn record_error(registry: &mut Registry, module: &str, error: &PipelineError) {
    match error {
        PipelineError::OutOfDeviceMemory { stage, .. } => {
            registry.counter_add(
                "batchzk_oom_total",
                &[("module", module), ("stage", stage)],
                1,
            );
        }
        PipelineError::DeviceFailed { .. } => {
            registry.counter_add("batchzk_device_failures_total", &[("module", module)], 1);
        }
        PipelineError::KernelDropped { stage, .. } => {
            registry.counter_add(
                "batchzk_kernels_dropped_total",
                &[("module", module), ("stage", stage)],
                1,
            );
        }
    }
}

/// Folds a sharded run's [`RecoveryReport`] into `registry` under
/// `module`: one [`record_error`] per absorbed fault plus counters for
/// the replay volume and a gauge for the rounds the recovery took.
///
/// Call this after [`record_pool_run`] when
/// [`ShardedRun::recovery`](crate::ShardedRun::recovery) is `Some`; a
/// fault-free run records nothing.
pub fn record_recovery(registry: &mut Registry, module: &str, recovery: &RecoveryReport) {
    let m = [("module", module)];
    for fault in &recovery.faults {
        record_error(registry, module, fault);
    }
    registry.counter_add(
        "batchzk_tasks_replayed_total",
        &m,
        recovery.replayed_tasks as u64,
    );
    registry.gauge_set(
        "batchzk_recovery_replay_rounds",
        &m,
        recovery.replay_rounds as f64,
    );
}

/// Records the pool's current health as gauges under `module`:
/// `batchzk_pool_failed_devices` and `batchzk_pool_degraded_devices`.
/// Complements [`record_recovery`] (which counts events) with the
/// resulting state, so dashboards can alert on a shrinking pool even
/// between runs.
pub fn record_pool_health(
    registry: &mut Registry,
    module: &str,
    pool: &batchzk_gpu_sim::DevicePool,
) {
    let m = [("module", module)];
    registry.gauge_set(
        "batchzk_pool_failed_devices",
        &m,
        pool.failed_count() as f64,
    );
    registry.gauge_set(
        "batchzk_pool_degraded_devices",
        &m,
        pool.degraded_count() as f64,
    );
}

/// Folds one online service run into `registry` under `module`: per-class
/// admission counters (the conservation law `requests = accepted +
/// rejected` holds per class by construction), a per-class latency
/// histogram over arrival→completion cycles, SLO burn counters/gauges,
/// and service-wide rejection-rate and goodput gauges. The SLO-management
/// runbook in `OPERATIONS.md` is written against these families.
pub fn record_service<T>(registry: &mut Registry, module: &str, outcome: &ServiceOutcome<T>) {
    let m = [("module", module)];
    let mut submitted_all = 0u64;
    let mut rejected_all = 0u64;
    for report in &outcome.reports {
        let class = report.class.name();
        let c = [("module", module), ("class", class)];
        registry.counter_add("batchzk_service_requests_total", &c, report.submitted);
        registry.counter_add("batchzk_service_accepted_total", &c, report.accepted);
        registry.counter_add(
            "batchzk_service_rejected_total",
            &[
                ("module", module),
                ("class", class),
                ("reason", RejectReason::QueueFull.name()),
            ],
            report.rejected_queue_full,
        );
        registry.counter_add(
            "batchzk_service_rejected_total",
            &[
                ("module", module),
                ("class", class),
                ("reason", RejectReason::Saturated.name()),
            ],
            report.rejected_saturated,
        );
        registry.counter_add("batchzk_service_completed_total", &c, report.completed);
        registry.counter_add(
            "batchzk_service_slo_miss_total",
            &c,
            report.completed - report.within_slo,
        );
        registry.gauge_set(
            "batchzk_service_slo_attainment",
            &c,
            report.slo_attainment(),
        );
        registry.gauge_set(
            "batchzk_service_latency_p99_cycles",
            &c,
            report.latency_p99_cycles as f64,
        );
        submitted_all += report.submitted;
        rejected_all += report.rejected_queue_full + report.rejected_saturated;
    }
    for completion in &outcome.completions {
        registry.observe(
            "batchzk_service_latency_cycles",
            &[("module", module), ("class", completion.class.name())],
            completion.latency_cycles(),
        );
    }
    registry.gauge_set(
        "batchzk_service_rejection_rate",
        &m,
        if submitted_all == 0 {
            0.0
        } else {
            rejected_all as f64 / submitted_all as f64
        },
    );
    registry.gauge_set(
        "batchzk_service_goodput_per_mcycle",
        &m,
        outcome.goodput_per_mcycle(),
    );
}

/// Adds the `backend` label dimension to a service outcome's completion
/// families: per-backend completed counters, SLO-miss counters, and
/// latency histograms, derived by classifying each completion's finished
/// task through `backend_of`. Strictly additive — call it *after*
/// [`record_service`]; the unlabelled families are untouched. This is how
/// a mixed-protocol trace (one pool, several prover backends) stays
/// observable per backend under the shared SLO classes.
pub fn record_service_backends<T>(
    registry: &mut Registry,
    module: &str,
    outcome: &ServiceOutcome<T>,
    backend_of: impl Fn(&T) -> &'static str,
) {
    for completion in &outcome.completions {
        let labels = [
            ("module", module),
            ("backend", backend_of(&completion.task)),
        ];
        registry.counter_add("batchzk_service_completed_total", &labels, 1);
        let latency = completion.latency_cycles();
        registry.observe("batchzk_service_latency_cycles", &labels, latency);
        let slo = outcome
            .reports
            .iter()
            .find(|r| r.class == completion.class)
            .map_or(u64::MAX, |r| r.slo_cycles);
        if latency > slo {
            registry.counter_add("batchzk_service_slo_miss_total", &labels, 1);
        }
    }
}

/// The default alerting policy for an online service run: the rule set the
/// flight recorder is evaluated against unless an operator supplies their
/// own. Per class: an SLO burn-rate rule (≥ 50% of a window's completions
/// missing their SLO, sustained 2 windows) and a queue-growth rule (the
/// class queue pinned at its admission cap, sustained 2 windows). Service
/// wide: a rejection-rate rule (≥ 25% of a window's arrivals shed,
/// sustained 2 windows). Per device: a stall rule (≥ 95% idle while the
/// service has queued backlog, sustained 2 windows).
///
/// Each rule names the `OPERATIONS.md` runbook section the on-call should
/// open; the alert-response table there maps back to these rule names.
pub fn default_service_rules(config: &ServiceConfig, devices: usize) -> Vec<AlertRule> {
    let mut rules = Vec::new();
    for (ci, class) in PriorityClass::ALL.iter().enumerate() {
        rules.push(AlertRule {
            name: format!("slo-burn-{}", class.name()),
            kind: AlertKind::BurnRate { class: ci },
            threshold_ppm: 500_000,
            for_windows: 2,
            runbook: "OPERATIONS.md#reading-per-class-slo-burn".into(),
        });
        rules.push(AlertRule {
            name: format!("queue-growth-{}", class.name()),
            kind: AlertKind::QueueGrowth { class: ci },
            threshold_ppm: (config.classes[ci].queue_cap as u64).saturating_mul(1_000_000),
            for_windows: 2,
            runbook: "OPERATIONS.md#tuning-the-admission-caps".into(),
        });
    }
    rules.push(AlertRule {
        name: "rejection-rate".into(),
        kind: AlertKind::RejectionRate { class: None },
        threshold_ppm: 250_000,
        for_windows: 2,
        runbook: "OPERATIONS.md#when-the-rejection-rate-spikes".into(),
    });
    for d in 0..devices {
        rules.push(AlertRule {
            name: format!("device-stall-{d}"),
            kind: AlertKind::DeviceStall { device: d },
            threshold_ppm: 950_000,
            for_windows: 2,
            runbook: "OPERATIONS.md#reading-the-failure-metrics".into(),
        });
    }
    rules
}

/// One Chrome-trace counter point set, column-major to row-major.
fn track(name: &str, series: Vec<String>, columns: Vec<Vec<u64>>, starts: &[u64]) -> CounterTrack {
    let points = starts
        .iter()
        .enumerate()
        .map(|(i, &ts)| (ts, columns.iter().map(|col| col[i]).collect()))
        .collect();
    CounterTrack {
        name: name.into(),
        series,
        points,
    }
}

/// Converts a finalized service [`Timeline`] into Chrome-trace counter
/// tracks (phase `"C"` events, one point per window at the window's start
/// cycle): per-class queue depth and rejections, per-device utilization
/// (ppm) and in-flight peak, and the windowed p99 lifecycle latency.
/// Merge them into a device trace with
/// `Gpu::chrome_trace_json_with_counters`; `chrome://tracing` and Perfetto
/// render each track as a stacked area chart above the kernel spans.
pub fn timeline_counter_tracks(timeline: &Timeline) -> Vec<CounterTrack> {
    let starts: Vec<u64> = timeline.windows().iter().map(|w| w.start_cycle).collect();
    let class_series: Vec<String> = timeline.class_names().to_vec();
    let device_series: Vec<String> = (0..timeline.devices())
        .map(|d| format!("device{d}"))
        .collect();
    let queue_cols = (0..class_series.len())
        .map(|c| timeline.queue_depth_series(c))
        .collect();
    let reject_cols = (0..class_series.len())
        .map(|c| timeline.rejected_series(c))
        .collect();
    let util_cols = (0..timeline.devices())
        .map(|d| timeline.utilization_ppm_series(d))
        .collect();
    let inflight_cols = (0..timeline.devices())
        .map(|d| timeline.in_flight_series(d))
        .collect();
    vec![
        track(
            "service queue depth",
            class_series.clone(),
            queue_cols,
            &starts,
        ),
        track("service rejections", class_series, reject_cols, &starts),
        track(
            "device utilization ppm",
            device_series.clone(),
            util_cols,
            &starts,
        ),
        track("device in-flight", device_series, inflight_cols, &starts),
        track(
            "service latency p99 cycles",
            vec!["p99".into()],
            vec![timeline.p99_series()],
            &starts,
        ),
    ]
}

/// [`timeline_counter_tracks`] with every track name suffixed
/// `" [<backend>]"` — the timeline's `backend` label. A mixed-protocol
/// service merges one labelled track set per serving backend (or a single
/// set labelled with the composite backend name) into the same device
/// trace without the counter names colliding.
pub fn timeline_counter_tracks_labeled(timeline: &Timeline, backend: &str) -> Vec<CounterTrack> {
    let mut tracks = timeline_counter_tracks(timeline);
    for track in &mut tracks {
        track.name = format!("{} [{backend}]", track.name);
    }
    tracks
}

/// Converts per-stage run statistics into the analyzer's input form.
pub fn stage_observations(stage_stats: &[StageStats]) -> Vec<StageObservation> {
    stage_stats
        .iter()
        .map(|s| StageObservation {
            name: s.name.clone(),
            threads: s.threads,
            tasks: s.tasks,
            busy_cycles: s.busy_cycles,
            occupied_cycles: s.occupied_cycles,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merkle;
    use batchzk_gpu_sim::{DeviceProfile, Gpu};

    fn trees(count: usize, n: usize) -> Vec<Vec<[u8; 64]>> {
        (0..count)
            .map(|t| {
                (0..n)
                    .map(|i| {
                        let mut b = [0u8; 64];
                        b[..8].copy_from_slice(&((t * n + i) as u64).to_le_bytes());
                        b
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn record_run_populates_all_metric_families() {
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let run = merkle::run_pipelined(&mut gpu, trees(6, 16), 512, true).expect("fits");
        let mut reg = Registry::new();
        record_run(&mut reg, "merkle", &run.stats);
        let m = [("module", "merkle")];
        assert_eq!(reg.counter("batchzk_runs_total", &m), 1);
        assert_eq!(reg.counter("batchzk_tasks_total", &m), 6);
        let h = reg
            .histogram("batchzk_lifecycle_cycles", &m)
            .expect("lifecycle histogram recorded");
        assert_eq!(h.count(), 6);
        assert!(h.quantile(0.5) > 0);
        assert!(reg
            .gauge("batchzk_throughput_tasks_per_ms", &m)
            .expect("gauge set")
            .is_finite());
        // One occupancy gauge and one stage histogram per stage.
        for s in &run.stats.stage_stats {
            let labels = [("module", "merkle"), ("stage", s.name.as_str())];
            assert!(reg.gauge("batchzk_stage_occupancy", &labels).is_some());
            let sh = reg
                .histogram("batchzk_stage_cycles", &labels)
                .expect("stage histogram recorded");
            assert_eq!(sh.count(), 6);
            // The histogram's sum is exactly the stage's occupied cycles —
            // the span/stage conservation law surfaced through metrics.
            assert_eq!(sh.sum(), s.occupied_cycles as u128);
        }
        // Accumulation across runs.
        record_run(&mut reg, "merkle", &run.stats);
        assert_eq!(reg.counter("batchzk_runs_total", &m), 2);
        assert_eq!(reg.counter("batchzk_tasks_total", &m), 12);
    }

    #[test]
    fn oom_counter_increments_when_pipeline_oom_fires() {
        // Device too small for two concurrent Merkle tasks: the PR 1 OOM
        // path fires and the metrics layer counts it per stage.
        let small = DeviceProfile {
            device_mem_bytes: 100,
            ..DeviceProfile::v100()
        };
        let mut gpu = Gpu::new(small);
        let mut reg = Registry::new();
        let err = merkle::run_pipelined(&mut gpu, trees(4, 8), 256, true)
            .expect_err("must exceed 100 bytes of device memory");
        record_error(&mut reg, "merkle", &err);
        let PipelineError::OutOfDeviceMemory { stage, .. } = &err else {
            panic!("expected OOM, got {err:?}");
        };
        assert_eq!(
            reg.counter(
                "batchzk_oom_total",
                &[("module", "merkle"), ("stage", stage)]
            ),
            1
        );
        record_error(&mut reg, "merkle", &err);
        assert_eq!(
            reg.counter(
                "batchzk_oom_total",
                &[("module", "merkle"), ("stage", stage)]
            ),
            2
        );
        // The counter shows up in both exposition formats.
        assert!(reg.to_prometheus().contains("batchzk_oom_total"));
        assert!(reg.to_json().contains("batchzk_oom_total"));
    }

    #[test]
    fn pool_run_records_module_device_and_pool_series() {
        // Two devices run disjoint shards of the same module pipeline.
        let mut g0 = Gpu::new(DeviceProfile::v100());
        let r0 = merkle::run_pipelined(&mut g0, trees(4, 16), 512, true).expect("fits");
        let mut g1 = Gpu::new(DeviceProfile::v100());
        let r1 = merkle::run_pipelined(&mut g1, trees(2, 16), 512, true).expect("fits");
        let stats = [r0.stats, r1.stats];
        let ms = [g0.elapsed_ms(), g1.elapsed_ms()];
        let mut reg = Registry::new();
        record_pool_run(&mut reg, "merkle", &stats, &ms);
        let m = [("module", "merkle")];
        // Module-level aggregates.
        assert_eq!(reg.counter("batchzk_runs_total", &m), 1);
        assert_eq!(reg.counter("batchzk_tasks_total", &m), 6);
        assert_eq!(
            reg.histogram("batchzk_lifecycle_cycles", &m)
                .expect("lifecycle histogram")
                .count(),
            6
        );
        // Per-device dimension.
        assert_eq!(
            reg.counter(
                "batchzk_tasks_total",
                &[("module", "merkle"), ("device", "0")]
            ),
            4
        );
        assert_eq!(
            reg.counter(
                "batchzk_tasks_total",
                &[("module", "merkle"), ("device", "1")]
            ),
            2
        );
        for s in &stats[0].stage_stats {
            assert!(reg
                .gauge(
                    "batchzk_stage_occupancy",
                    &[
                        ("module", "merkle"),
                        ("device", "0"),
                        ("stage", s.name.as_str())
                    ]
                )
                .is_some());
        }
        // Pool gauges.
        assert_eq!(reg.gauge("batchzk_pool_devices", &m), Some(2.0));
        let makespan = reg.gauge("batchzk_pool_makespan_ms", &m).expect("set");
        assert!((makespan - ms[0].max(ms[1])).abs() < 1e-12);
        let imbalance = reg.gauge("batchzk_pool_imbalance", &m).expect("set");
        assert!(imbalance >= 1.0, "{imbalance}");
    }

    #[test]
    fn recovery_and_health_metrics_record_fault_families() {
        use batchzk_gpu_sim::{DevicePool, FaultPlan};
        let mut reg = Registry::new();
        let report = crate::sched::RecoveryReport {
            failed_devices: vec![1],
            dropped_kernels: 1,
            replayed_tasks: 7,
            replay_rounds: 2,
            faults: vec![
                PipelineError::DeviceFailed {
                    at_cycle: 100,
                    salvaged: 3,
                },
                PipelineError::KernelDropped {
                    stage: "merkle-layer".into(),
                    at_cycle: 40,
                    salvaged: 4,
                },
            ],
        };
        record_recovery(&mut reg, "system", &report);
        let m = [("module", "system")];
        assert_eq!(reg.counter("batchzk_device_failures_total", &m), 1);
        assert_eq!(
            reg.counter(
                "batchzk_kernels_dropped_total",
                &[("module", "system"), ("stage", "merkle-layer")]
            ),
            1
        );
        assert_eq!(reg.counter("batchzk_tasks_replayed_total", &m), 7);
        assert_eq!(reg.gauge("batchzk_recovery_replay_rounds", &m), Some(2.0));

        // Health gauges reflect the pool's current state.
        let mut pool = DevicePool::homogeneous(DeviceProfile::v100(), 3);
        pool.apply_fault_plan(&FaultPlan::new().fail_stop(1, 0).degraded_clock(2, 0, 200));
        for d in 0..3 {
            pool.device_mut(d).poll_faults();
        }
        record_pool_health(&mut reg, "system", &pool);
        assert_eq!(reg.gauge("batchzk_pool_failed_devices", &m), Some(1.0));
        assert_eq!(reg.gauge("batchzk_pool_degraded_devices", &m), Some(1.0));
        assert!(reg
            .to_prometheus()
            .contains("batchzk_device_failures_total"));
    }

    #[test]
    fn service_metrics_record_slo_families() {
        use crate::service::{
            run_service, ClassPolicy, PriorityClass, ServiceConfig, ServiceRequest,
        };
        use crate::{BoxedStage, PipeStage, StageWork};
        use batchzk_gpu_sim::{DevicePool, Work};

        struct Busy;
        impl PipeStage<u64> for Busy {
            fn name(&self) -> String {
                "busy".into()
            }
            fn threads(&self) -> u32 {
                32
            }
            fn process(&self, _task: &mut u64) -> StageWork {
                StageWork {
                    work: Work::Uniform {
                        units: 32,
                        cycles_per_unit: 50,
                    },
                    h2d_bytes: 0,
                    d2h_bytes: 0,
                    mem_after: 64,
                }
            }
        }

        let config = ServiceConfig {
            classes: [ClassPolicy {
                queue_cap: 2,
                slo_cycles: 10_000,
            }; 3],
            max_outstanding: 4,
            device_queue_cap: 1,
            max_in_flight: 0,
            timeline_window_cycles: 0,
        };
        let requests: Vec<ServiceRequest<u64>> = (0..12)
            .map(|i| ServiceRequest {
                class: PriorityClass::ALL[i % 3],
                arrival_cycle: 100,
                task: i as u64,
            })
            .collect();
        let mut pool = DevicePool::homogeneous(DeviceProfile::v100(), 1);
        let stages = |_: &Gpu| -> Vec<BoxedStage<u64>> { vec![Box::new(Busy), Box::new(Busy)] };
        let outcome = run_service(&mut pool, &config, requests, stages, true).unwrap();
        assert!(!outcome.rejected.is_empty(), "burst should shed load");

        let mut reg = Registry::new();
        record_service(&mut reg, "service", &outcome);
        let mut requests_total = 0;
        let mut accepted_total = 0;
        let mut rejected_total = 0;
        for class in PriorityClass::ALL {
            let c = [("module", "service"), ("class", class.name())];
            requests_total += reg.counter("batchzk_service_requests_total", &c);
            accepted_total += reg.counter("batchzk_service_accepted_total", &c);
            for reason in ["queue-full", "saturated"] {
                rejected_total += reg.counter(
                    "batchzk_service_rejected_total",
                    &[
                        ("module", "service"),
                        ("class", class.name()),
                        ("reason", reason),
                    ],
                );
            }
            assert!(reg.gauge("batchzk_service_slo_attainment", &c).is_some());
        }
        assert_eq!(requests_total, 12);
        assert_eq!(requests_total, accepted_total + rejected_total);
        let h = reg
            .histogram(
                "batchzk_service_latency_cycles",
                &[("module", "service"), ("class", "interactive")],
            )
            .expect("latency histogram recorded");
        assert!(h.count() > 0);
        assert!(
            reg.gauge("batchzk_service_rejection_rate", &[("module", "service")])
                .expect("rejection rate gauge")
                > 0.0
        );
        assert!(reg
            .to_prometheus()
            .contains("batchzk_service_requests_total"));
    }

    #[test]
    fn default_rules_cover_every_class_and_device_and_fire_deterministically() {
        use crate::service::{ClassPolicy, PriorityClass, ServiceConfig};
        use batchzk_metrics::{evaluate, TimelineConfig};

        let config = ServiceConfig {
            classes: [ClassPolicy {
                queue_cap: 2,
                slo_cycles: 1_000,
            }; 3],
            max_outstanding: 8,
            device_queue_cap: 1,
            max_in_flight: 0,
            timeline_window_cycles: 0,
        };
        let rules = default_service_rules(&config, 2);
        // 2 rules per class + 1 global rejection-rate + 1 per device.
        assert_eq!(rules.len(), 2 * PriorityClass::ALL.len() + 1 + 2);
        let mut names: Vec<&str> = rules.iter().map(|r| r.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), rules.len(), "rule names are unique");
        for r in &rules {
            assert!(r.runbook.starts_with("OPERATIONS.md#"), "{}", r.runbook);
        }

        // A synthetic timeline shedding half its traffic for two windows
        // fires the global rejection-rate rule, which resolves at the
        // first clean window.
        let mut t = Timeline::new(TimelineConfig {
            window_cycles: 100,
            max_windows: 16,
            class_names: PriorityClass::ALL.iter().map(|c| c.name().into()).collect(),
            devices: 2,
        });
        for w in 0..2u64 {
            t.record_accept(w * 100, 0);
            t.record_reject_queue_full(w * 100 + 1, 0);
        }
        t.record_accept(250, 0);
        t.finalize(300);
        let log = evaluate(&t, &rules);
        let rejection = log.events_for("rejection-rate");
        assert_eq!(rejection.len(), 2);
        assert!(rejection[0].fired);
        assert_eq!(rejection[0].window, 1);
        assert!(!rejection[1].fired);
        assert_eq!(rejection[1].window, 2);
        assert_eq!(log.to_json(), evaluate(&t, &rules).to_json());
    }

    #[test]
    fn counter_tracks_mirror_the_timeline_and_merge_into_a_device_trace() {
        use batchzk_metrics::TimelineConfig;

        let mut t = Timeline::new(TimelineConfig {
            window_cycles: 100,
            max_windows: 8,
            class_names: vec!["interactive".into(), "bulk".into()],
            devices: 1,
        });
        t.record_accept(0, 0);
        t.sample_queue_depth(10, 0, 3);
        t.record_reject_queue_full(120, 1);
        t.record_busy(0, 0, 150);
        t.record_completion(180, 0, 180, true);
        t.finalize(200);

        let tracks = timeline_counter_tracks(&t);
        assert_eq!(tracks.len(), 5);
        for track in &tracks {
            assert_eq!(track.points.len(), t.windows().len());
            for (ts, values) in &track.points {
                assert_eq!(values.len(), track.series.len());
                assert!(t.windows().iter().any(|w| w.start_cycle == *ts));
            }
        }
        let depth = &tracks[0];
        assert_eq!(depth.name, "service queue depth");
        assert_eq!(depth.series, vec!["interactive", "bulk"]);
        assert_eq!(depth.points[0].1, vec![3, 0]);
        let rejects = &tracks[1];
        assert_eq!(rejects.points[1].1, vec![0, 1]);

        // Merged into a device trace they render as phase-"C" events.
        let gpu = Gpu::new(DeviceProfile::v100());
        let json = gpu.chrome_trace_json_with_counters(&tracks);
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"name\":\"service queue depth\""));
        assert_eq!(json, gpu.chrome_trace_json_with_counters(&tracks));
    }

    #[test]
    fn backend_label_is_additive_over_unlabelled_families() {
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let run = merkle::run_pipelined(&mut gpu, trees(6, 16), 512, true).expect("fits");

        // The backend-aware entry point records the plain module families
        // byte-for-byte...
        let mut plain = Registry::new();
        record_run(&mut plain, "merkle", &run.stats);
        let mut labelled = Registry::new();
        record_run_with_backend(&mut labelled, "merkle", "sumcheck", &run.stats);
        let m = [("module", "merkle")];
        assert_eq!(
            plain.counter("batchzk_tasks_total", &m),
            labelled.counter("batchzk_tasks_total", &m)
        );
        assert_eq!(
            plain.gauge("batchzk_throughput_tasks_per_ms", &m),
            labelled.gauge("batchzk_throughput_tasks_per_ms", &m)
        );
        // ...and adds the backend-qualified dimension on top.
        let b = [("module", "merkle"), ("backend", "sumcheck")];
        assert_eq!(labelled.counter("batchzk_runs_total", &b), 1);
        assert_eq!(labelled.counter("batchzk_tasks_total", &b), 6);
        assert!(labelled
            .gauge("batchzk_throughput_tasks_per_ms", &b)
            .is_some());
        assert_eq!(plain.counter("batchzk_runs_total", &b), 0);
    }

    #[test]
    fn service_backend_families_classify_completions() {
        use crate::service::{
            run_service, ClassPolicy, PriorityClass, ServiceConfig, ServiceRequest,
        };
        use crate::{BoxedStage, PipeStage, StageWork};
        use batchzk_gpu_sim::{DevicePool, Work};

        struct Busy;
        impl PipeStage<u64> for Busy {
            fn name(&self) -> String {
                "busy".into()
            }
            fn threads(&self) -> u32 {
                32
            }
            fn process(&self, _task: &mut u64) -> StageWork {
                StageWork {
                    work: Work::Uniform {
                        units: 32,
                        cycles_per_unit: 50,
                    },
                    h2d_bytes: 0,
                    d2h_bytes: 0,
                    mem_after: 64,
                }
            }
        }

        let config = ServiceConfig {
            classes: [ClassPolicy {
                queue_cap: 8,
                slo_cycles: 3_000,
            }; 3],
            max_outstanding: 32,
            device_queue_cap: 4,
            max_in_flight: 0,
            timeline_window_cycles: 0,
        };
        // Even request indices target one backend, odd the other.
        let requests: Vec<ServiceRequest<u64>> = (0..8u64)
            .map(|i| ServiceRequest {
                class: PriorityClass::ALL[(i % 3) as usize],
                arrival_cycle: 100 * i,
                task: i,
            })
            .collect();
        let mut pool = DevicePool::homogeneous(DeviceProfile::v100(), 1);
        let stages = |_: &Gpu| -> Vec<BoxedStage<u64>> { vec![Box::new(Busy)] };
        let outcome = run_service(&mut pool, &config, requests, stages, true).unwrap();
        let total_completed = outcome.completions.len() as u64;
        assert!(total_completed > 0);

        let backend_of = |t: &u64| -> &'static str {
            if t.is_multiple_of(2) {
                "sumcheck"
            } else {
                "groth16"
            }
        };
        let mut reg = Registry::new();
        record_service_backends(&mut reg, "service", &outcome, backend_of);
        let sc = [("module", "service"), ("backend", "sumcheck")];
        let gr = [("module", "service"), ("backend", "groth16")];
        // Per-backend completions partition the total.
        assert_eq!(
            reg.counter("batchzk_service_completed_total", &sc)
                + reg.counter("batchzk_service_completed_total", &gr),
            total_completed
        );
        let expect_sc = outcome
            .completions
            .iter()
            .filter(|c| c.task % 2 == 0)
            .count() as u64;
        assert_eq!(
            reg.counter("batchzk_service_completed_total", &sc),
            expect_sc
        );
        // Per-backend SLO misses partition the per-class miss totals.
        let misses: u64 = outcome
            .reports
            .iter()
            .map(|r| r.completed - r.within_slo)
            .sum();
        assert_eq!(
            reg.counter("batchzk_service_slo_miss_total", &sc)
                + reg.counter("batchzk_service_slo_miss_total", &gr),
            misses
        );
        let h = reg
            .histogram("batchzk_service_latency_cycles", &sc)
            .expect("recorded");
        assert_eq!(h.count(), expect_sc);
        // The unlabelled families are untouched by the backend pass.
        assert_eq!(
            reg.counter(
                "batchzk_service_completed_total",
                &[("module", "service"), ("class", "interactive")]
            ),
            0
        );
    }

    #[test]
    fn labeled_counter_tracks_suffix_the_backend() {
        use batchzk_metrics::TimelineConfig;
        let mut t = Timeline::new(TimelineConfig {
            window_cycles: 100,
            max_windows: 4,
            class_names: vec!["interactive".into()],
            devices: 1,
        });
        t.record_accept(0, 0);
        t.finalize(100);
        let tracks = timeline_counter_tracks_labeled(&t, "mixed");
        assert!(!tracks.is_empty());
        for (labelled, plain) in tracks.iter().zip(timeline_counter_tracks(&t)) {
            assert_eq!(labelled.name, format!("{} [mixed]", plain.name));
            assert_eq!(labelled.points, plain.points);
        }
    }

    #[test]
    fn stage_observations_mirror_stage_stats() {
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let run = merkle::run_pipelined(&mut gpu, trees(4, 16), 512, true).expect("fits");
        let obs = stage_observations(&run.stats.stage_stats);
        assert_eq!(obs.len(), run.stats.stage_stats.len());
        for (o, s) in obs.iter().zip(&run.stats.stage_stats) {
            assert_eq!(o.name, s.name);
            assert_eq!(o.threads, s.threads);
            assert_eq!(o.busy_cycles, s.busy_cycles);
            assert_eq!(o.occupied_cycles, s.occupied_cycles);
        }
    }
}
