//! The pipelined Groth16-style NTT+MSM backend.
//!
//! The Groth16-style "old protocol" existed in this codebase only as an
//! analytic timing baseline (`bench::baseline`); here it becomes a
//! first-class pipelined prover whose stages run the *real*
//! [`batchzk_field::NttDomain`] and [`batchzk_curve::msm`] (Pippenger)
//! computation while charging the gpu-sim cost model with the same
//! per-proof operation counts the baseline uses ([`MSM_COUNT`] MSMs,
//! [`NTT_COUNT`] size-`2S` NTTs, [`BYTES_PER_CONSTRAINT`] resident bytes
//! per constraint):
//!
//! 1. **witness-ntt** — interpolate the three gate polynomials `A, B, C`
//!    (three inverse NTTs of size `n`) and lift `A, B` onto the double
//!    domain (two forward NTTs of size `2n`);
//! 2. **quotient** — pointwise-multiply on the double domain, inverse-NTT
//!    back, and fold-divide by the vanishing polynomial `x^n − 1`
//!    (asserting a zero remainder — the witness must satisfy the gates);
//! 3. **msm-bucket** — Pippenger bucket accumulation for the commitments
//!    to `A, B, C, h`: four real G1 MSMs, charged as [`MSM_COUNT`]
//!    G1-equivalents (the uncomputed fifth stands in for the G2 half);
//! 4. **msm-reduce** — the per-window running-sum chains plus Fiat–Shamir
//!    assembly: derive `r` from the commitments and emit the evaluation
//!    proof.
//!
//! Stages overlap their H2D/D2H transfers with compute when the pipeline
//! runs multi-stream (double-buffering), exactly like the sumcheck system.
//! The [`prove_naive`] runner is the kernel-per-task contrast: the same
//! four stages walked serially per task group, no cross-stage overlap.
//!
//! The proof is *structural*: commitments and quotient are real
//! computation, but without pairings the verifier checks the divisibility
//! identity `A(r)·B(r) − C(r) = h(r)·(r^n − 1)` at a transcript-derived
//! point against prover-supplied evaluations, rather than a pairing
//! equation. That is sufficient for this simulator's purpose — identical
//! arithmetic workload and byte-deterministic outputs — and is documented
//! here so nobody mistakes it for a sound SNARK.

use std::sync::Arc;

use batchzk_curve::{msm, msm_group_op_count, window_size, G1Affine, G1Projective};
use batchzk_field::{Field, Fr, NttDomain, SplitMix64};
use batchzk_gpu_sim::{Gpu, Work};
use batchzk_hash::Transcript;

use crate::engine::{allocate_threads, BoxedStage, PipeStage, StageWork};
use crate::naive::{run_stages_naive, NaiveRun};

/// G1-equivalent MSMs in one Groth16 proof (three in G1, one in G2 ≈ two
/// G1-equivalents).
pub const MSM_COUNT: u64 = 5;
/// NTT transforms (of size `2S`) in one Groth16 proof.
pub const NTT_COUNT: u64 = 7;
/// Modeled device bytes per constraint for a resident Groth16 proving run
/// (witness + bases + FFT buffers + proving key), calibrated against the
/// paper's Table 10 (1.38 GB at `S = 2^20` ⇒ ~1.4 KB per constraint).
pub const BYTES_PER_CONSTRAINT: u64 = 1400;

/// Fiat–Shamir domain separator for the Groth16-style transcript.
pub const DOMAIN: &[u8] = b"batchzk-groth16-v1";

/// Number of leading witness values exposed as the public statement.
const PUBLIC_LEN: usize = 4;

/// The shared circuit: a cyclic multiplication relation of `2^log_size`
/// gates. Gate `i` takes left input `w_i`, right input `w_{(i+1) mod n}`,
/// and must output their product — so the gate polynomials satisfy
/// `A·B − C ≡ 0` on the evaluation domain for *every* witness, and the
/// quotient by `x^n − 1` is exact. This keeps the prover's arithmetic
/// identical in shape to a real Groth16 R1CS run without carrying a
/// constraint system.
pub struct GrothCircuit {
    log_size: u32,
    domain: NttDomain<Fr>,
    ext_domain: NttDomain<Fr>,
    bases: Vec<G1Affine>,
}

impl GrothCircuit {
    /// Creates a circuit of `2^log_size` gates with deterministic
    /// commitment bases.
    ///
    /// # Panics
    ///
    /// Panics if `log_size + 1` exceeds the scalar field's two-adicity
    /// (the quotient works on a domain of size `2^(log_size + 1)`).
    pub fn new(log_size: u32) -> Self {
        let n = 1usize << log_size;
        Self {
            log_size,
            domain: NttDomain::new(log_size),
            ext_domain: NttDomain::new(log_size + 1),
            bases: (0..n)
                .map(|i| G1Affine::from_counter(1 + i as u64))
                .collect(),
        }
    }

    /// Number of gates.
    pub fn size(&self) -> usize {
        1 << self.log_size
    }

    /// log2 of the gate count.
    pub fn log_size(&self) -> u32 {
        self.log_size
    }

    /// Deterministically generates a witness for this circuit from `seed`
    /// (any vector of `n` scalars satisfies the cyclic relation).
    pub fn witness(&self, seed: u64) -> Vec<Fr> {
        let mut rng = SplitMix64::seed_from_u64(seed);
        (0..self.size()).map(|_| Fr::random(&mut rng)).collect()
    }

    /// Real butterfly count of stage 1: three inverse size-`n` NTTs plus
    /// two forward size-`2n` NTTs.
    fn stage1_butterflies(&self) -> u64 {
        let n = self.size() as u64;
        let log_n = self.log_size as u64;
        3 * (n / 2) * log_n + 2 * n * (log_n + 1)
    }

    /// The baseline's total NTT budget for one proof: [`NTT_COUNT`]
    /// transforms of size `2n`, `n·(log n + 1)` butterflies each.
    fn ntt_budget(&self) -> u64 {
        let n = self.size() as u64;
        n * (self.log_size as u64 + 1) * NTT_COUNT
    }
}

/// A Groth16-style proof-in-progress moving through the four stages.
pub struct GrothTask {
    witness: Vec<Fr>,
    statement: Vec<Fr>,
    /// Coefficients of `A, B, C` after stage 1.
    coeffs: Option<[Vec<Fr>; 3]>,
    /// `A, B` evaluations on the double domain after stage 1.
    ext_evals: Option<[Vec<Fr>; 2]>,
    /// Quotient coefficients after stage 2.
    h: Option<Vec<Fr>>,
    /// Projective commitments to `A, B, C, h` after stage 3.
    commitments: Option<[G1Projective; 4]>,
    proof: Option<GrothProof>,
}

impl GrothTask {
    /// Wraps one witness vector as a fresh task; the first
    /// `min(4, n)` witness values become the public statement.
    pub fn new(witness: Vec<Fr>) -> Self {
        let statement = witness[..PUBLIC_LEN.min(witness.len())].to_vec();
        Self {
            witness,
            statement,
            coeffs: None,
            ext_evals: None,
            h: None,
            commitments: None,
            proof: None,
        }
    }

    /// The public statement this task proves against.
    pub fn statement(&self) -> &[Fr] {
        &self.statement
    }

    /// The finished proof.
    ///
    /// # Panics
    ///
    /// Panics if the task has not completed the pipeline.
    pub fn into_proof(self) -> GrothProof {
        self.proof.expect("task has not completed the pipeline")
    }
}

/// A finished Groth16-style proof: commitments to the gate polynomials
/// and quotient, plus their evaluations at the transcript point `r`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrothProof {
    /// Commitment to `A`.
    pub com_a: G1Affine,
    /// Commitment to `B`.
    pub com_b: G1Affine,
    /// Commitment to `C`.
    pub com_c: G1Affine,
    /// Commitment to the quotient `h`.
    pub com_h: G1Affine,
    /// `A(r)`.
    pub eval_a: Fr,
    /// `B(r)`.
    pub eval_b: Fr,
    /// `C(r)`.
    pub eval_c: Fr,
    /// `h(r)`.
    pub eval_h: Fr,
}

impl GrothProof {
    /// Serialized size: four uncompressed G1 points and four scalars.
    pub fn size_bytes(&self) -> usize {
        4 * 64 + 4 * 32
    }
}

fn absorb_point(transcript: &mut Transcript, label: &[u8], p: &G1Affine) {
    transcript.absorb_field(label, &p.x);
    transcript.absorb_field(label, &p.y);
    transcript.absorb_bytes(label, &[p.infinity as u8]);
}

/// Derives the evaluation challenge `r` from the statement and
/// commitments — shared between prover stage 4 and [`verify`].
fn challenge_point(statement: &[Fr], proof_points: [&G1Affine; 4]) -> Fr {
    let mut transcript = Transcript::new(DOMAIN);
    transcript.absorb_fields(b"statement", statement);
    let labels: [&[u8]; 4] = [b"com-a", b"com-b", b"com-c", b"com-h"];
    for (label, point) in labels.iter().zip(proof_points) {
        absorb_point(&mut transcript, label, point);
    }
    transcript.challenge_field::<Fr>(b"eval-point")
}

/// Horner evaluation of a coefficient vector at `x`.
fn horner(coeffs: &[Fr], x: Fr) -> Fr {
    coeffs.iter().rev().fold(Fr::ZERO, |acc, c| acc * x + *c)
}

/// Stage 1: interpolate `A, B, C` and lift `A, B` to the double domain.
struct WitnessNttStage {
    circuit: Arc<GrothCircuit>,
    threads: u32,
    butterfly_cost: u64,
}

impl PipeStage<GrothTask> for WitnessNttStage {
    fn name(&self) -> String {
        "groth-witness-ntt".into()
    }
    fn threads(&self) -> u32 {
        self.threads
    }
    fn process(&self, task: &mut GrothTask) -> StageWork {
        let c = &self.circuit;
        let n = c.size();
        assert_eq!(task.witness.len(), n, "witness length must match circuit");
        let a_evals = task.witness.clone();
        // Right inputs: the witness rotated left by one (cyclic gates).
        let mut b_evals = task.witness.clone();
        b_evals.rotate_left(1);
        let c_evals: Vec<Fr> = a_evals.iter().zip(&b_evals).map(|(x, y)| *x * *y).collect();
        let mut coeffs = [a_evals, b_evals, c_evals];
        for v in coeffs.iter_mut() {
            c.domain.inverse(v);
        }
        let mut ext = [coeffs[0].clone(), coeffs[1].clone()];
        for v in ext.iter_mut() {
            v.resize(2 * n, Fr::ZERO);
            c.ext_domain.forward(v);
        }
        task.coeffs = Some(coeffs);
        task.ext_evals = Some(ext);
        StageWork {
            work: Work::Uniform {
                units: c.stage1_butterflies().max(1),
                cycles_per_unit: self.butterfly_cost,
            },
            // Dynamic loading: this proof's witness arrives now.
            h2d_bytes: (n * 32) as u64,
            d2h_bytes: 0,
            mem_after: (9 * n * 32) as u64,
        }
    }
    fn naive_phases(&self, _task: &GrothTask) -> Option<Vec<Work>> {
        // One kernel step per NTT level: three size-n inverse transforms
        // then two size-2n forward transforms. Late levels at small n
        // leave most of a kernel-per-task thread slice idle.
        let c = &self.circuit;
        let n = c.size() as u64;
        let log_n = c.log_size();
        let mut phases = Vec::new();
        for _ in 0..3 {
            for _ in 0..log_n {
                phases.push(Work::Uniform {
                    units: (n / 2).max(1),
                    cycles_per_unit: self.butterfly_cost,
                });
            }
        }
        for _ in 0..2 {
            for _ in 0..=log_n {
                phases.push(Work::Uniform {
                    units: n.max(1),
                    cycles_per_unit: self.butterfly_cost,
                });
            }
        }
        Some(phases)
    }
}

/// Stage 2: pointwise product on the double domain, inverse NTT, and the
/// exact fold-division by `x^n − 1`.
struct QuotientStage {
    circuit: Arc<GrothCircuit>,
    threads: u32,
    butterfly_cost: u64,
    mul_cost: u64,
    units: u64,
}

impl PipeStage<GrothTask> for QuotientStage {
    fn name(&self) -> String {
        "groth-quotient".into()
    }
    fn threads(&self) -> u32 {
        self.threads
    }
    fn process(&self, task: &mut GrothTask) -> StageWork {
        let c = &self.circuit;
        let n = c.size();
        let [a_ext, b_ext] = task.ext_evals.take().expect("witness-ntt stage ran");
        let mut p: Vec<Fr> = a_ext.iter().zip(&b_ext).map(|(x, y)| *x * *y).collect();
        c.ext_domain.inverse(&mut p);
        let coeffs = task.coeffs.as_ref().expect("witness-ntt stage ran");
        for (pi, ci) in p.iter_mut().zip(&coeffs[2]) {
            *pi -= *ci;
        }
        // Divide by x^n − 1: x^i = x^(i−n)·(x^n − 1) + x^(i−n) for i ≥ n.
        let mut h = vec![Fr::ZERO; n];
        for i in (n..2 * n).rev() {
            h[i - n] = p[i];
            let carry = p[i];
            p[i - n] += carry;
        }
        assert!(
            p[..n].iter().all(|r| *r == Fr::ZERO),
            "witness does not satisfy the gate relation"
        );
        task.h = Some(h);
        StageWork {
            work: Work::Uniform {
                units: self.units.max(1),
                cycles_per_unit: self.butterfly_cost,
            },
            h2d_bytes: 0,
            d2h_bytes: 0,
            mem_after: (5 * n * 32) as u64,
        }
    }
    fn naive_phases(&self, _task: &GrothTask) -> Option<Vec<Work>> {
        // Pointwise products, then the remaining transform budget walked
        // level by level (size-2n levels).
        let c = &self.circuit;
        let n = c.size() as u64;
        let mut phases = vec![Work::Uniform {
            units: 2 * n,
            cycles_per_unit: self.mul_cost,
        }];
        let rest = c.ntt_budget().saturating_sub(c.stage1_butterflies());
        for _ in 0..rest.div_ceil(n.max(1)) {
            phases.push(Work::Uniform {
                units: n.max(1),
                cycles_per_unit: self.butterfly_cost,
            });
        }
        Some(phases)
    }
}

/// Stage 3: Pippenger bucket accumulation — the four real commitment MSMs.
struct MsmBucketStage {
    circuit: Arc<GrothCircuit>,
    threads: u32,
    group_cost: u64,
}

impl PipeStage<GrothTask> for MsmBucketStage {
    fn name(&self) -> String {
        "groth-msm-bucket".into()
    }
    fn threads(&self) -> u32 {
        self.threads
    }
    fn process(&self, task: &mut GrothTask) -> StageWork {
        let c = &self.circuit;
        let n = c.size();
        let coeffs = task.coeffs.as_ref().expect("witness-ntt stage ran");
        let h = task.h.as_ref().expect("quotient stage ran");
        let vectors: [&[Fr]; 4] = [&coeffs[0], &coeffs[1], &coeffs[2], h];
        let mut commitments = [G1Projective::identity(); 4];
        for (com, v) in commitments.iter_mut().zip(vectors) {
            *com = msm(&c.bases, v);
        }
        task.commitments = Some(commitments);
        StageWork {
            work: Work::Uniform {
                units: msm_group_op_count(n) * MSM_COUNT,
                cycles_per_unit: self.group_cost,
            },
            h2d_bytes: 0,
            d2h_bytes: 0,
            // Bases + buckets + FFT buffers resident — the peak.
            mem_after: n as u64 * BYTES_PER_CONSTRAINT,
        }
    }
    fn naive_phases(&self, _task: &GrothTask) -> Option<Vec<Work>> {
        // Pre-cuZK GPU MSMs walk Pippenger's windows serially (the
        // MSB-down accumulation is a dependency chain between windows):
        // one kernel step per window per MSM, plus the 254 inter-window
        // doublings.
        let n = self.circuit.size();
        let c = window_size(n);
        let windows = 254_usize.div_ceil(c);
        let mut phases = vec![
            Work::Uniform {
                units: n as u64 + (1u64 << (c + 1)),
                cycles_per_unit: self.group_cost,
            };
            windows * MSM_COUNT as usize
        ];
        phases.push(Work::Uniform {
            units: 254,
            cycles_per_unit: self.group_cost,
        });
        Some(phases)
    }
}

/// Stage 4: per-window running-sum reduction and Fiat–Shamir assembly.
/// The pipelined backend charges the modern *parallelized* running-sum
/// (the cuZK/GZKP-generation reduction the paper's contemporaries use);
/// [`PipeStage::naive_phases`] carries the classic serial chains the
/// Bellperson-generation baseline executes one thread per window.
struct MsmReduceStage {
    threads: u32,
    group_cost: u64,
    /// Parallel-reduction units for the pipelined charge.
    reduce_units: u64,
    /// Serial running-sum chain length in cycles (naive model).
    chain_cycles: u64,
    /// Number of serial chains (windows × MSMs, naive model).
    chains: usize,
    eval_cycles: u64,
}

impl PipeStage<GrothTask> for MsmReduceStage {
    fn name(&self) -> String {
        "groth-msm-reduce".into()
    }
    fn threads(&self) -> u32 {
        self.threads
    }
    fn process(&self, task: &mut GrothTask) -> StageWork {
        let commitments = task.commitments.take().expect("msm-bucket stage ran");
        let affine = G1Projective::batch_to_affine(&commitments);
        let r = challenge_point(
            &task.statement,
            [&affine[0], &affine[1], &affine[2], &affine[3]],
        );
        let coeffs = task.coeffs.take().expect("witness-ntt stage ran");
        let h = task.h.take().expect("quotient stage ran");
        let eval_a = horner(&coeffs[0], r);
        let eval_b = horner(&coeffs[1], r);
        let eval_c = horner(&coeffs[2], r);
        let eval_h = horner(&h, r);
        let proof = GrothProof {
            com_a: affine[0],
            com_b: affine[1],
            com_c: affine[2],
            com_h: affine[3],
            eval_a,
            eval_b,
            eval_c,
            eval_h,
        };
        let proof_bytes = proof.size_bytes() as u64;
        task.proof = Some(proof);
        StageWork {
            work: Work::Uniform {
                units: self.reduce_units.max(1),
                cycles_per_unit: self.group_cost,
            },
            h2d_bytes: 0,
            // The finished proof leaves the device.
            d2h_bytes: proof_bytes,
            mem_after: 0,
        }
    }
    fn naive_phases(&self, _task: &GrothTask) -> Option<Vec<Work>> {
        // Serial running-sum chains, one thread per window, then the
        // four Horner evaluations.
        let mut items = vec![self.chain_cycles; self.chains];
        items.push(self.eval_cycles);
        Some(vec![Work::Items(items)])
    }
}

/// Computes the four module work weights (witness-ntt, quotient,
/// msm-bucket, msm-reduce) in cycles under `gpu`'s cost model, for the
/// measured-ratio thread allocation.
pub fn module_weights(gpu: &Gpu, circuit: &GrothCircuit) -> [u64; 4] {
    let cost = gpu.cost();
    let n = circuit.size();
    let butterfly = cost.ntt_butterfly();
    let w1 = circuit.stage1_butterflies() * butterfly;
    let w2 = quotient_units(gpu, circuit) * butterfly;
    let w3 = msm_group_op_count(n) * MSM_COUNT * cost.group_add;
    let c = window_size(n);
    let windows = 254_usize.div_ceil(c) as u64;
    let w4 = windows * MSM_COUNT * (2u64 << c) * cost.group_add + 4 * n as u64 * cost.field_mul;
    [w1.max(1), w2.max(1), w3.max(1), w4.max(1)]
}

/// Stage-2 work in butterfly-equivalent units: the remainder of the
/// baseline's [`NTT_COUNT`]-transform budget after stage 1's real
/// butterflies, plus the `2n` pointwise products.
fn quotient_units(gpu: &Gpu, circuit: &GrothCircuit) -> u64 {
    let cost = gpu.cost();
    let n = circuit.size() as u64;
    let ntt_rest = circuit
        .ntt_budget()
        .saturating_sub(circuit.stage1_butterflies());
    let mul_equiv = (2 * n * cost.field_mul).div_ceil(cost.ntt_butterfly().max(1));
    ntt_rest + mul_equiv
}

/// Builds the four Groth16-style stages for one device: thread allocation
/// follows the measured-ratio rule under that device's cost model.
pub fn build_stages(
    gpu: &Gpu,
    circuit: &Arc<GrothCircuit>,
    total_threads: u32,
) -> Vec<BoxedStage<GrothTask>> {
    let weights = module_weights(gpu, circuit);
    let threads = allocate_threads(total_threads, &weights);
    let cost = *gpu.cost();
    let n = circuit.size();
    let c = window_size(n);
    let windows = 254_usize.div_ceil(c);
    vec![
        Box::new(WitnessNttStage {
            circuit: Arc::clone(circuit),
            threads: threads[0],
            butterfly_cost: cost.ntt_butterfly(),
        }),
        Box::new(QuotientStage {
            circuit: Arc::clone(circuit),
            threads: threads[1],
            butterfly_cost: cost.ntt_butterfly(),
            mul_cost: cost.field_mul,
            units: quotient_units(gpu, circuit),
        }),
        Box::new(MsmBucketStage {
            circuit: Arc::clone(circuit),
            threads: threads[2],
            group_cost: cost.group_add,
        }),
        Box::new(MsmReduceStage {
            threads: threads[3],
            group_cost: cost.group_add,
            reduce_units: (windows * MSM_COUNT as usize) as u64 * (2u64 << c)
                + (4 * n as u64 * cost.field_mul).div_ceil(cost.group_add),
            chain_cycles: (2u64 << c) * cost.group_add,
            chains: windows * MSM_COUNT as usize,
            eval_cycles: 4 * n as u64 * cost.field_mul,
        }),
    ]
}

/// Analytic per-task peak device-memory footprint in bytes — the maximum
/// of the per-stage `mem_after` values, which the MSM residency dominates.
pub fn task_footprint_bytes(circuit: &GrothCircuit) -> u64 {
    circuit.size() as u64 * BYTES_PER_CONSTRAINT
}

/// Verifies a Groth16-style proof against its statement: commitments on
/// curve, challenge recomputed from the transcript, and the divisibility
/// identity `A(r)·B(r) − C(r) = h(r)·(r^n − 1)` checked at `r`. As noted
/// in the module docs this is a structural (pairing-free) check.
pub fn verify(circuit: &GrothCircuit, statement: &[Fr], proof: &GrothProof) -> bool {
    let points = [&proof.com_a, &proof.com_b, &proof.com_c, &proof.com_h];
    if points.iter().any(|p| !p.is_on_curve()) {
        return false;
    }
    let r = challenge_point(statement, points);
    let z_r = r.pow(&[circuit.size() as u64]) - Fr::ONE;
    proof.eval_a * proof.eval_b - proof.eval_c == proof.eval_h * z_r
}

/// Proves a batch through the kernel-per-task naive baseline: the same
/// four stages (same math, byte-identical proofs) but walked serially per
/// group of `concurrent` tasks with the thread budget split evenly — no
/// cross-stage pipelining, no transfer overlap.
///
/// # Panics
///
/// Panics if `witnesses` is empty, a witness length mismatches the
/// circuit, or the pre-loaded working set does not fit in device memory.
pub fn prove_naive(
    gpu: &mut Gpu,
    circuit: &Arc<GrothCircuit>,
    witnesses: Vec<Vec<Fr>>,
    total_threads: u32,
    concurrent: usize,
) -> NaiveRun<GrothTask> {
    let stages = build_stages(gpu, circuit, total_threads);
    let tasks: Vec<GrothTask> = witnesses.into_iter().map(GrothTask::new).collect();
    let preload = task_footprint_bytes(circuit) * tasks.len() as u64;
    run_stages_naive(
        gpu,
        stages,
        tasks,
        "groth",
        preload,
        total_threads,
        concurrent,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Pipeline;
    use batchzk_gpu_sim::DeviceProfile;

    fn prove_pipelined(
        gpu: &mut Gpu,
        circuit: &Arc<GrothCircuit>,
        witnesses: Vec<Vec<Fr>>,
        threads: u32,
    ) -> Vec<GrothTask> {
        let stages = build_stages(gpu, circuit, threads);
        let tasks: Vec<GrothTask> = witnesses.into_iter().map(GrothTask::new).collect();
        Pipeline::new(gpu, stages, true)
            .run(tasks)
            .expect("fits")
            .outputs
    }

    #[test]
    fn pipelined_proofs_verify() {
        let circuit = Arc::new(GrothCircuit::new(6));
        let witnesses: Vec<Vec<Fr>> = (0..4).map(|s| circuit.witness(s)).collect();
        let mut gpu = Gpu::new(DeviceProfile::a100());
        let done = prove_pipelined(&mut gpu, &circuit, witnesses, 2048);
        assert_eq!(done.len(), 4);
        for task in done {
            let statement = task.statement().to_vec();
            let proof = task.into_proof();
            assert!(verify(&circuit, &statement, &proof));
            assert_eq!(proof.size_bytes(), 384);
        }
        assert_eq!(gpu.memory_ref().in_use(), 0);
    }

    #[test]
    fn tampered_proof_rejected() {
        let circuit = Arc::new(GrothCircuit::new(5));
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let done = prove_pipelined(&mut gpu, &circuit, vec![circuit.witness(9)], 1024);
        let statement = done[0].statement().to_vec();
        let mut proof = done.into_iter().next().unwrap().into_proof();
        assert!(verify(&circuit, &statement, &proof));
        proof.eval_c += Fr::ONE;
        assert!(!verify(&circuit, &statement, &proof));
        // And a statement swap changes the challenge.
        let proof = {
            let mut p = proof;
            p.eval_c -= Fr::ONE;
            p
        };
        let mut other = statement.clone();
        other[0] += Fr::ONE;
        assert!(!verify(&circuit, &other, &proof));
    }

    #[test]
    fn naive_proofs_byte_identical_to_pipelined() {
        let circuit = Arc::new(GrothCircuit::new(5));
        let witnesses: Vec<Vec<Fr>> = (0..6).map(|s| circuit.witness(100 + s)).collect();
        let mut gpu = Gpu::new(DeviceProfile::a100());
        let piped = prove_pipelined(&mut gpu, &circuit, witnesses.clone(), 2048);
        let mut gpu = Gpu::new(DeviceProfile::a100());
        let naive = prove_naive(&mut gpu, &circuit, witnesses, 2048, 2);
        assert_eq!(naive.outputs.len(), piped.len());
        for (n, p) in naive.outputs.into_iter().zip(piped) {
            assert_eq!(n.into_proof(), p.into_proof());
        }
        assert_eq!(gpu.memory_ref().in_use(), 0);
    }

    #[test]
    fn pipelined_beats_naive_throughput() {
        let circuit = Arc::new(GrothCircuit::new(6));
        let witnesses: Vec<Vec<Fr>> = (0..12).map(|s| circuit.witness(s)).collect();
        let mut gpu = Gpu::new(DeviceProfile::a100());
        let stages = build_stages(&gpu, &circuit, 4096);
        let tasks: Vec<GrothTask> = witnesses.iter().cloned().map(GrothTask::new).collect();
        let piped = Pipeline::new(&mut gpu, stages, true)
            .run(tasks)
            .expect("fits")
            .stats;
        let mut gpu = Gpu::new(DeviceProfile::a100());
        let naive = prove_naive(&mut gpu, &circuit, witnesses, 4096, 4).stats;
        assert!(
            piped.throughput_per_ms > naive.throughput_per_ms,
            "pipelined {} <= naive {}",
            piped.throughput_per_ms,
            naive.throughput_per_ms
        );
    }

    #[test]
    fn module_weights_positive_and_msm_heavy() {
        // The paper's Table 7: MSM dominates Groth16-style provers.
        let circuit = GrothCircuit::new(10);
        let gpu = Gpu::new(DeviceProfile::v100());
        let w = module_weights(&gpu, &circuit);
        assert!(w.iter().all(|&x| x > 0));
        assert!(w[2] > w[0] && w[2] > w[1]);
    }

    #[test]
    fn footprint_matches_baseline_model() {
        let circuit = GrothCircuit::new(8);
        assert_eq!(task_footprint_bytes(&circuit), 256 * BYTES_PER_CONSTRAINT);
    }
}
