//! # batchzk-pipeline
//!
//! The paper's core contribution: fully pipelined GPU modules — Merkle
//! trees, the sum-check protocol and the linear-time encoder (§3), and
//! since the `ProverBackend` split also the Groth16-style NTT+MSM stack
//! ([`groth`]) — plus the non-pipelined "intuitive" baselines they are
//! compared against (Figure 4a), all driven by the cycle-level simulator
//! in `batchzk-gpu-sim` while performing the *real* module computation.
//! The pipeline engine is protocol-agnostic: any stage set implementing
//! [`PipeStage`] runs under the same executor, scheduler, and service.
//!
//! Modules:
//!
//! * [`engine`] — the generic systolic pipeline executor and the
//!   proportional thread allocator (§4's resource-allocation rule);
//! * [`merkle`] — one kernel per tree layer, dynamic load/store, ~2N-block
//!   device footprint (§3.1);
//! * [`sumcheck`] — one kernel per round, two recyclable double buffers with
//!   odd/even alternation (§3.2, Figure 5b);
//! * [`encoder`] — two interconnected pipelines (forward `A`-phase, backward
//!   `B`-phase) with bucket-sorted warp scheduling (§3.3, Figure 6);
//! * [`groth`] — the pipelined Groth16-style backend: witness NTTs,
//!   exact quotient, and real Pippenger MSM commitments, charged with the
//!   baseline per-proof operation counts;
//! * [`naive`] — the kernel-per-task baselines standing in for Simon,
//!   Icicle, and "Ours-np", plus a generic stage-set runner;
//! * [`sched`] — shard policies (round-robin, least-outstanding-work,
//!   memory-aware admission) that spread one task stream over a
//!   multi-device pool, one persistent executor per device, with
//!   survivor resharding when a device carries a scripted fault;
//! * [`service`] — the online proving front: open-loop arrival replay in
//!   virtual time, priority classes with per-class latency SLOs, and
//!   admission control that sheds load with a reject reason when the
//!   pool saturates;
//! * [`observe`] — folds finished runs (and OOM/fault failures) into a
//!   `batchzk-metrics` registry under a stable metric schema.

#![deny(missing_docs)]

pub mod encoder;
pub mod engine;
pub mod groth;
pub mod merkle;
pub mod naive;
pub mod observe;
pub mod sched;
pub mod service;
pub mod sumcheck;

pub use engine::{
    allocate_threads, BoxedStage, PipeStage, Pipeline, PipelineError, PipelineExecutor,
    PipelineRun, RunStats, StageStats, StageWork,
};
pub use observe::{
    default_service_rules, record_error, record_pool_health, record_pool_run, record_recovery,
    record_run, record_run_with_backend, record_service, record_service_backends,
    stage_observations, timeline_counter_tracks, timeline_counter_tracks_labeled,
};
pub use sched::{
    device_weight, plan_shards, run_sharded, RecoveryReport, ShardPlan, ShardPolicy, ShardedRun,
};
pub use service::{
    run_service, ClassPolicy, ClassReport, PriorityClass, RejectReason, RejectedRequest,
    ServiceCompletion, ServiceConfig, ServiceError, ServiceOutcome, ServiceRequest,
};

#[cfg(test)]
mod randomized_tests {
    use crate::{merkle as pmerkle, sumcheck as psum};
    use batchzk_field::{Field, Fr, RngCore, SplitMix64};
    use batchzk_gpu_sim::{DeviceProfile, Gpu};
    use batchzk_merkle::MerkleTree;
    use batchzk_sumcheck::algorithm1;

    #[test]
    fn pipelined_merkle_matches_reference() {
        let mut rng = SplitMix64::seed_from_u64(0x11);
        for _ in 0..8 {
            let log_n = rng.gen_range(1..7);
            let batch = rng.gen_range(1..12);
            let threads = rng.gen_range(1..2000) as u32;
            let seed = rng.next_u64();
            let trees: Vec<Vec<[u8; 64]>> = (0..batch)
                .map(|t| {
                    (0..1usize << log_n)
                        .map(|i| {
                            let mut b = [0u8; 64];
                            b[..8].copy_from_slice(&(seed ^ ((t << 32 | i) as u64)).to_le_bytes());
                            b
                        })
                        .collect()
                })
                .collect();
            let mut gpu = Gpu::new(DeviceProfile::v100());
            let run = pmerkle::run_pipelined(&mut gpu, trees.clone(), threads, true)
                .expect("fits in device memory");
            for (task, blocks) in run.outputs.iter().zip(&trees) {
                assert_eq!(task.root(), MerkleTree::from_blocks(blocks).root());
            }
            assert_eq!(gpu.memory_ref().in_use(), 0);
        }
    }

    #[test]
    fn pipelined_sumcheck_matches_reference() {
        let mut rng = SplitMix64::seed_from_u64(0x12);
        for _ in 0..8 {
            let n = rng.gen_range(1..8);
            let batch = rng.gen_range(1..10);
            let threads = rng.gen_range(1..512) as u32;
            let tasks: Vec<psum::SumcheckTask<Fr>> = (0..batch)
                .map(|_| {
                    let table: Vec<Fr> = (0..1usize << n).map(|_| Fr::random(&mut rng)).collect();
                    let rs: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
                    psum::SumcheckTask::new(table, rs)
                })
                .collect();
            let reference: Vec<_> = tasks
                .iter()
                .map(|t| algorithm1::prove(&mut t.table_snapshot(), t.randomness()))
                .collect();
            let mut gpu = Gpu::new(DeviceProfile::v100());
            let run =
                psum::run_pipelined(&mut gpu, tasks, threads, true).expect("fits in device memory");
            for (task, expect) in run.outputs.iter().zip(&reference) {
                assert_eq!(task.proof(), &expect[..]);
            }
        }
    }
}
