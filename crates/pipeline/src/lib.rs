//! # batchzk-pipeline
//!
//! The paper's core contribution: fully pipelined GPU modules for Merkle
//! trees, the sum-check protocol and the linear-time encoder (§3), plus the
//! non-pipelined "intuitive" baselines they are compared against
//! (Figure 4a) — all driven by the cycle-level simulator in
//! `batchzk-gpu-sim` while performing the *real* module computation.
//!
//! Modules:
//!
//! * [`engine`] — the generic systolic pipeline executor and the
//!   proportional thread allocator (§4's resource-allocation rule);
//! * [`merkle`] — one kernel per tree layer, dynamic load/store, ~2N-block
//!   device footprint (§3.1);
//! * [`sumcheck`] — one kernel per round, two recyclable double buffers with
//!   odd/even alternation (§3.2, Figure 5b);
//! * [`encoder`] — two interconnected pipelines (forward `A`-phase, backward
//!   `B`-phase) with bucket-sorted warp scheduling (§3.3, Figure 6);
//! * [`naive`] — the kernel-per-task baselines standing in for Simon,
//!   Icicle, and "Ours-np".

pub mod encoder;
pub mod engine;
pub mod merkle;
pub mod naive;
pub mod sumcheck;

pub use engine::{PipeStage, Pipeline, PipelineRun, RunStats, StageWork, allocate_threads};

#[cfg(test)]
mod proptests {
    use crate::{merkle as pmerkle, sumcheck as psum};
    use batchzk_field::{Field, Fr};
    use batchzk_gpu_sim::{DeviceProfile, Gpu};
    use batchzk_merkle::MerkleTree;
    use batchzk_sumcheck::algorithm1;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn pipelined_merkle_matches_reference(
            log_n in 1u32..7,
            batch in 1usize..12,
            threads in 1u32..2000,
            seed in any::<u64>(),
        ) {
            let trees: Vec<Vec<[u8; 64]>> = (0..batch)
                .map(|t| {
                    (0..1usize << log_n)
                        .map(|i| {
                            let mut b = [0u8; 64];
                            b[..8].copy_from_slice(
                                &(seed ^ ((t << 32 | i) as u64)).to_le_bytes(),
                            );
                            b
                        })
                        .collect()
                })
                .collect();
            let mut gpu = Gpu::new(DeviceProfile::v100());
            let run = pmerkle::run_pipelined(&mut gpu, trees.clone(), threads, true);
            for (task, blocks) in run.outputs.iter().zip(&trees) {
                prop_assert_eq!(task.root(), MerkleTree::from_blocks(blocks).root());
            }
            prop_assert_eq!(gpu.memory_ref().in_use(), 0);
        }

        #[test]
        fn pipelined_sumcheck_matches_reference(
            n in 1usize..8,
            batch in 1usize..10,
            threads in 1u32..512,
            seed in any::<u64>(),
        ) {
            use rand::{SeedableRng, rngs::StdRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let tasks: Vec<psum::SumcheckTask<Fr>> = (0..batch)
                .map(|_| {
                    let table: Vec<Fr> =
                        (0..1usize << n).map(|_| Fr::random(&mut rng)).collect();
                    let rs: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
                    psum::SumcheckTask::new(table, rs)
                })
                .collect();
            let reference: Vec<_> = tasks
                .iter()
                .map(|t| algorithm1::prove(t.table_snapshot(), t.randomness()))
                .collect();
            let mut gpu = Gpu::new(DeviceProfile::v100());
            let run = psum::run_pipelined(&mut gpu, tasks, threads, true);
            for (task, expect) in run.outputs.iter().zip(&reference) {
                prop_assert_eq!(task.proof(), &expect[..]);
            }
        }
    }
}
