//! The online proving service front: continuous ingestion with priority
//! classes, per-class latency SLOs, and admission control (DESIGN.md §13).
//!
//! Every earlier entry point is batch-at-a-time: tasks are all submitted,
//! then the pipeline drains. [`run_service`] instead replays an *open-loop
//! arrival trace* (expanded from a [`batchzk_gpu_sim::ArrivalPlan`]) in
//! virtual device time: requests arrive at scripted cycles, pass admission
//! control into bounded per-class queues, and are dispatched to per-device
//! [`PipelineExecutor`]s whose `submit` is interleaved with `step` — the
//! pipeline keeps running while new work lands behind it.
//!
//! The whole loop is a serial discrete-event simulation ordered by integer
//! device clocks (earliest event first, device index breaking ties), so a
//! service run is bit-deterministic at any host thread count; host threads
//! only parallelize the per-slot fan-out *inside* each step, which is
//! already byte-stable.
//!
//! The loop also feeds the **flight recorder**: every admission decision,
//! queue-depth/in-flight sample, device busy interval, and completion is
//! recorded into a windowed [`batchzk_metrics::Timeline`] carried on
//! [`ServiceOutcome::timeline`], giving operators the time-resolved view
//! (and the [`batchzk_metrics::alerts`] input) the end-of-run
//! [`ClassReport`]s cannot.
//!
//! ```text
//!  arrivals ──▶ admission ──▶ class queues ──▶ dispatch ──▶ executors
//!  (virtual      (reject:      (bounded,        (strict      (submit ∥ step)
//!   cycles)       QueueFull/    per class)       priority,        │
//!                 Saturated)                     least-           ▼
//!                                                outstanding)  harvest
//! ```

use std::collections::VecDeque;
use std::fmt;

use batchzk_gpu_sim::{DevicePool, Gpu};
use batchzk_metrics::{Timeline, TimelineConfig};

use crate::engine::{BoxedStage, PipelineError, PipelineExecutor, RunStats};

/// Retention bound of the service flight recorder: when a replay needs
/// more windows than this, the [`Timeline`] downsamples 2:1 (window width
/// doubles). 64 windows keep the BENCH.json `timeline` section readable
/// while covering the committed reference replay without a merge pass.
pub const TIMELINE_MAX_WINDOWS: usize = 64;

/// Priority class of a service request. Classes are a strict dispatch
/// order: every queued `Interactive` request is dispatched before any
/// `Standard` one, and `Standard` before `Bulk`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PriorityClass {
    /// Latency-sensitive requests (tight SLO, small queue).
    Interactive,
    /// The default class.
    Standard,
    /// Throughput traffic that tolerates queueing (loose SLO, deep queue).
    Bulk,
}

impl PriorityClass {
    /// Every class, in dispatch-priority order.
    pub const ALL: [PriorityClass; 3] = [
        PriorityClass::Interactive,
        PriorityClass::Standard,
        PriorityClass::Bulk,
    ];

    /// Kebab-case name, stable for CLI flags, trace specs, and metric
    /// labels.
    pub fn name(&self) -> &'static str {
        match self {
            PriorityClass::Interactive => "interactive",
            PriorityClass::Standard => "standard",
            PriorityClass::Bulk => "bulk",
        }
    }

    /// Dense index (`0..3`), the position in [`Self::ALL`].
    pub fn index(&self) -> usize {
        *self as usize
    }

    /// Parses a [`name`](Self::name) back to the class.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names.
    pub fn parse(s: &str) -> Result<PriorityClass, String> {
        Self::ALL
            .into_iter()
            .find(|c| c.name() == s)
            .ok_or_else(|| {
                format!("unknown priority class `{s}` (expected interactive, standard, or bulk)")
            })
    }
}

impl fmt::Display for PriorityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-class admission policy and latency objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassPolicy {
    /// Bound on the class's service-side queue (requests admitted but not
    /// yet handed to an executor). Must be ≥ 1.
    pub queue_cap: usize,
    /// Latency SLO in device cycles, measured arrival → proof emitted.
    /// Must be ≥ 1.
    pub slo_cycles: u64,
}

/// Admission, queueing, and SLO configuration for one service run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Per-class policies, indexed by [`PriorityClass::index`].
    pub classes: [ClassPolicy; 3],
    /// Global bound on outstanding work (class queues plus every
    /// executor's pending and in-flight tasks). Admission rejects with
    /// [`RejectReason::Saturated`] at this bound. Must be ≥ 1.
    pub max_outstanding: usize,
    /// Bound of each per-device executor submit queue. Must be ≥ 1.
    pub device_queue_cap: usize,
    /// Per-device in-flight cap (the memory-aware admission lever);
    /// `0` means the full pipeline depth.
    pub max_in_flight: usize,
    /// Width of one flight-recorder window in device cycles; `0` derives
    /// a quarter of the tightest class SLO, so the recorder resolves an
    /// SLO burn into at least four windows.
    pub timeline_window_cycles: u64,
}

impl ServiceConfig {
    /// The flight-recorder window width this config resolves to:
    /// [`Self::timeline_window_cycles`] when set, else a quarter of the
    /// tightest class SLO (at least 1 cycle).
    pub fn resolved_timeline_window(&self) -> u64 {
        if self.timeline_window_cycles > 0 {
            self.timeline_window_cycles
        } else {
            let min_slo = self.classes.iter().map(|c| c.slo_cycles).min().unwrap_or(1);
            (min_slo / 4).max(1)
        }
    }

    /// Checks every capacity and SLO is non-zero.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the zero field — callers
    /// surface this instead of panicking on zero-capacity inputs.
    pub fn validate(&self) -> Result<(), String> {
        for (class, policy) in PriorityClass::ALL.iter().zip(&self.classes) {
            if policy.queue_cap == 0 {
                return Err(format!("class `{class}` has zero queue capacity"));
            }
            if policy.slo_cycles == 0 {
                return Err(format!("class `{class}` has a zero-cycle SLO"));
            }
        }
        if self.max_outstanding == 0 {
            return Err("max_outstanding must be ≥ 1".into());
        }
        if self.device_queue_cap == 0 {
            return Err("device_queue_cap must be ≥ 1".into());
        }
        Ok(())
    }
}

/// Why admission control turned a request away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The request's class queue is at its [`ClassPolicy::queue_cap`].
    QueueFull,
    /// The service-wide outstanding bound
    /// ([`ServiceConfig::max_outstanding`]) is hit — the device pool is
    /// saturated.
    Saturated,
}

impl RejectReason {
    /// Kebab-case name, stable for metric labels.
    pub fn name(&self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue-full",
            RejectReason::Saturated => "saturated",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A service run failure.
#[derive(Debug)]
pub enum ServiceError {
    /// The configuration or request stream is invalid (zero capacity,
    /// empty pool, heterogeneous clocks, unknown class label, ...).
    InvalidInput(String),
    /// A device-side failure propagated from an executor step.
    Pipeline(PipelineError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::InvalidInput(msg) => write!(f, "invalid service input: {msg}"),
            ServiceError::Pipeline(e) => write!(f, "service pipeline failure: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<PipelineError> for ServiceError {
    fn from(e: PipelineError) -> Self {
        ServiceError::Pipeline(e)
    }
}

/// One request entering the service front.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceRequest<T> {
    /// Priority class.
    pub class: PriorityClass,
    /// Virtual device-clock cycle the request arrives at.
    pub arrival_cycle: u64,
    /// The proving task.
    pub task: T,
}

/// A request admission control turned away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RejectedRequest {
    /// Index of the request in the submitted stream (arrival order).
    pub request: usize,
    /// Priority class.
    pub class: PriorityClass,
    /// Arrival cycle.
    pub arrival_cycle: u64,
    /// Why it was rejected.
    pub reason: RejectReason,
}

/// A request that completed the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceCompletion<T> {
    /// Index of the request in the submitted stream (arrival order).
    pub request: usize,
    /// Priority class.
    pub class: PriorityClass,
    /// Arrival cycle.
    pub arrival_cycle: u64,
    /// Device that proved the request.
    pub device: usize,
    /// Cycle the finished proof was emitted.
    pub completed_cycle: u64,
    /// The finished task.
    pub task: T,
}

impl<T> ServiceCompletion<T> {
    /// End-to-end latency in cycles: arrival → proof emitted, including
    /// queueing delay ahead of admission into the pipeline.
    pub fn latency_cycles(&self) -> u64 {
        self.completed_cycle.saturating_sub(self.arrival_cycle)
    }
}

/// Per-class accounting for one service run. Conservation law:
/// `submitted == accepted + rejected_queue_full + rejected_saturated`,
/// and (absent faults) `completed == accepted`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassReport {
    /// The class.
    pub class: PriorityClass,
    /// The SLO the latency quantiles are judged against, in cycles.
    pub slo_cycles: u64,
    /// Requests that arrived.
    pub submitted: u64,
    /// Requests admitted past admission control.
    pub accepted: u64,
    /// Rejections because the class queue was full.
    pub rejected_queue_full: u64,
    /// Rejections because the service hit its outstanding bound.
    pub rejected_saturated: u64,
    /// Requests whose proof was emitted.
    pub completed: u64,
    /// Completions with latency ≤ SLO.
    pub within_slo: u64,
    /// Nearest-rank p50 of arrival→completion latency, cycles (0 if none).
    pub latency_p50_cycles: u64,
    /// Nearest-rank p95.
    pub latency_p95_cycles: u64,
    /// Nearest-rank p99.
    pub latency_p99_cycles: u64,
    /// Maximum latency.
    pub latency_max_cycles: u64,
}

impl ClassReport {
    /// Rejected requests (both reasons) over submitted; 0 when idle.
    pub fn rejection_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            (self.rejected_queue_full + self.rejected_saturated) as f64 / self.submitted as f64
        }
    }

    /// Completions within SLO over completions; 1 when nothing completed.
    pub fn slo_attainment(&self) -> f64 {
        if self.completed == 0 {
            1.0
        } else {
            self.within_slo as f64 / self.completed as f64
        }
    }
}

/// Result of one [`run_service`] replay.
#[derive(Debug)]
pub struct ServiceOutcome<T> {
    /// Completed requests, sorted by (completion cycle, request index).
    pub completions: Vec<ServiceCompletion<T>>,
    /// Rejected requests, in arrival order.
    pub rejected: Vec<RejectedRequest>,
    /// Per-class accounting, indexed like [`PriorityClass::ALL`].
    pub reports: [ClassReport; 3],
    /// Per-device pipeline statistics, one per pool device.
    pub device_stats: Vec<RunStats>,
    /// Cycle of the first arrival (0 when the trace is empty).
    pub first_arrival_cycle: u64,
    /// Cycle of the last completion (0 when nothing completed).
    pub last_completion_cycle: u64,
    /// The flight recorder: windowed per-class admission/completion
    /// counters, queue-depth peaks, per-device busy cycles and in-flight
    /// peaks, and per-window p99 lifecycle latency, sampled from inside
    /// the event loop (window width from
    /// [`ServiceConfig::resolved_timeline_window`], retention bound
    /// [`TIMELINE_MAX_WINDOWS`]). Feed it to [`batchzk_metrics::evaluate`]
    /// for the alerting pass.
    pub timeline: Timeline,
}

impl<T> ServiceOutcome<T> {
    /// The served interval in cycles: first arrival → last completion.
    pub fn span_cycles(&self) -> u64 {
        self.last_completion_cycle
            .saturating_sub(self.first_arrival_cycle)
    }

    /// Completions within their class SLO over the served interval, per
    /// million cycles — the cycle-domain goodput the bench layer converts
    /// to proofs/s with the device profile.
    pub fn goodput_per_mcycle(&self) -> f64 {
        let within: u64 = self.reports.iter().map(|r| r.within_slo).sum();
        let span = self.span_cycles();
        if span == 0 {
            0.0
        } else {
            within as f64 * 1.0e6 / span as f64
        }
    }
}

/// Strict-priority dispatch at event time `now`: drains the class queues
/// (interactive first) into the least-outstanding executor with submit
/// room, lowest device index breaking ties. Idle executors fast-forward
/// to the dispatch cycle so admission happens in coherent virtual time.
fn dispatch<T: Send>(
    execs: &mut [PipelineExecutor<'_, T>],
    queues: &mut [VecDeque<(usize, u64, T)>; 3],
    meta: &mut [Vec<(usize, PriorityClass, u64)>],
    now: u64,
) {
    for class in PriorityClass::ALL {
        let queue = &mut queues[class.index()];
        while !queue.is_empty() {
            let target = execs
                .iter()
                .enumerate()
                .filter(|(_, e)| e.pending_len() < e.queue_capacity())
                .min_by_key(|&(d, e)| (e.outstanding(), d))
                .map(|(d, _)| d);
            let Some(d) = target else { return };
            let (req, arrival, task) = queue.pop_front().expect("checked non-empty");
            execs[d].idle_until(now.max(arrival));
            match execs[d].submit(task) {
                Ok(()) => meta[d].push((req, class, arrival)),
                Err(task) => {
                    // Room was checked above; keep the request rather than
                    // panic if an executor disagrees.
                    queue.push_front((req, arrival, task));
                    return;
                }
            }
        }
    }
}

/// Samples the instantaneous class-queue depths and per-device in-flight
/// counts into the flight recorder at event time `now`.
fn sample_timeline<T: Send>(
    timeline: &mut Timeline,
    now: u64,
    queues: &[VecDeque<(usize, u64, T)>; 3],
    execs: &[PipelineExecutor<'_, T>],
) {
    for (ci, queue) in queues.iter().enumerate() {
        timeline.sample_queue_depth(now, ci, queue.len() as u64);
    }
    for (d, exec) in execs.iter().enumerate() {
        timeline.sample_in_flight(now, d, exec.in_flight() as u64);
    }
}

/// Nearest-rank quantile of an ascending-sorted slice (0 when empty).
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Replays an open-loop request stream against a pool of per-device
/// pipeline executors, interleaving `submit` with `step` under admission
/// control, and reports per-class SLO accounting.
///
/// `requests` is the arrival stream; it is stably sorted by arrival cycle
/// internally, and each request's index in the *submitted order* (after
/// the sort) is its identity in the outcome. `stages` builds one stage set
/// per device, exactly as in [`crate::sched::run_sharded`].
///
/// Dispatch is strict priority (interactive, standard, bulk) to the
/// executor with the least outstanding work that has queue room, lowest
/// device index breaking ties. The virtual clock of each device is the
/// event order; idle devices fast-forward to the dispatch cycle so
/// latencies are measured in one coherent time base.
///
/// # Errors
///
/// [`ServiceError::InvalidInput`] when the config fails
/// [`ServiceConfig::validate`], the pool is empty, or the pool mixes
/// device clock rates (the virtual time base would be incoherent).
/// [`ServiceError::Pipeline`] propagates the first device-side failure;
/// scripted fault plans are not absorbed here (see OPERATIONS.md — run
/// degraded experiments through `run_sharded` instead).
pub fn run_service<T: Send>(
    pool: &mut DevicePool,
    config: &ServiceConfig,
    requests: Vec<ServiceRequest<T>>,
    stages: impl Fn(&Gpu) -> Vec<BoxedStage<T>>,
    multi_stream: bool,
) -> Result<ServiceOutcome<T>, ServiceError> {
    config.validate().map_err(ServiceError::InvalidInput)?;
    if pool.is_empty() {
        return Err(ServiceError::InvalidInput("empty device pool".into()));
    }
    let clock0 = pool.device(0).profile().clock_ghz;
    if pool
        .devices()
        .iter()
        .any(|g| g.profile().clock_ghz.to_bits() != clock0.to_bits())
    {
        return Err(ServiceError::InvalidInput(
            "service time base requires a homogeneous pool (mixed clock rates)".into(),
        ));
    }

    // Stable sort: ties keep submission order, which defines request ids.
    let mut requests = requests;
    requests.sort_by_key(|r| r.arrival_cycle);
    let first_arrival_cycle = requests.first().map_or(0, |r| r.arrival_cycle);
    let total_requests = requests.len();

    // The serial event loop leaves the whole host-thread budget to the
    // per-slot fan-out inside each step.
    let host_threads = batchzk_par::current_threads();
    let mut execs: Vec<PipelineExecutor<'_, T>> = pool
        .devices_mut()
        .iter_mut()
        .map(|gpu| {
            let device_stages = stages(&*gpu);
            let mut exec = PipelineExecutor::new(gpu, device_stages, multi_stream);
            exec.set_host_threads(host_threads);
            exec.set_queue_capacity(config.device_queue_cap);
            if config.max_in_flight > 0 {
                exec.set_max_in_flight(config.max_in_flight);
            }
            exec
        })
        .collect();

    let mut queues: [VecDeque<(usize, u64, T)>; 3] = Default::default();
    let mut meta: Vec<Vec<(usize, PriorityClass, u64)>> = vec![Vec::new(); execs.len()];
    // The flight recorder rides the serial event loop: admission decisions
    // and queue/in-flight samples land in virtual-cycle windows as they
    // happen, so the recording is as deterministic as the loop itself.
    let mut timeline = Timeline::new(TimelineConfig {
        window_cycles: config.resolved_timeline_window(),
        max_windows: TIMELINE_MAX_WINDOWS,
        class_names: PriorityClass::ALL
            .iter()
            .map(|c| c.name().to_string())
            .collect(),
        devices: execs.len(),
    });
    let mut submitted = [0u64; 3];
    let mut accepted = [0u64; 3];
    let mut rejected_qf = [0u64; 3];
    let mut rejected_sat = [0u64; 3];
    let mut rejected = Vec::new();

    let mut stream = requests.into_iter().enumerate().peekable();
    loop {
        let busy = execs
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.is_idle())
            .map(|(d, e)| (e.clock_cycles(), d))
            .min();
        let next_arrival = stream.peek().map(|(_, r)| r.arrival_cycle);
        let arrival_due = match (next_arrival, busy) {
            (Some(t), Some((busy_cycle, _))) => t <= busy_cycle,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if arrival_due {
            let now = next_arrival.expect("arrival_due implies a next arrival");
            // Deliver every arrival stamped with this cycle, then dispatch.
            while stream.peek().is_some_and(|(_, r)| r.arrival_cycle == now) {
                let (idx, r) = stream.next().expect("peeked");
                let ci = r.class.index();
                submitted[ci] += 1;
                let outstanding: usize = queues.iter().map(VecDeque::len).sum::<usize>()
                    + execs.iter().map(|e| e.outstanding()).sum::<usize>();
                if queues[ci].len() >= config.classes[ci].queue_cap {
                    rejected_qf[ci] += 1;
                    timeline.record_reject_queue_full(now, ci);
                    rejected.push(RejectedRequest {
                        request: idx,
                        class: r.class,
                        arrival_cycle: r.arrival_cycle,
                        reason: RejectReason::QueueFull,
                    });
                } else if outstanding >= config.max_outstanding {
                    rejected_sat[ci] += 1;
                    timeline.record_reject_saturated(now, ci);
                    rejected.push(RejectedRequest {
                        request: idx,
                        class: r.class,
                        arrival_cycle: r.arrival_cycle,
                        reason: RejectReason::Saturated,
                    });
                } else {
                    accepted[ci] += 1;
                    timeline.record_accept(now, ci);
                    queues[ci].push_back((idx, r.arrival_cycle, r.task));
                }
            }
            // Sample backlog before dispatch drains it (the peak the
            // queue-growth alert watches), then again after, together with
            // per-device in-flight.
            sample_timeline(&mut timeline, now, &queues, &execs);
            dispatch(&mut execs[..], &mut queues, &mut meta, now);
            sample_timeline(&mut timeline, now, &queues, &execs);
        } else if let Some((busy_cycle, d)) = busy {
            // Step the earliest busy device; its post-step clock is the
            // event time capacity freed at.
            execs[d].step()?;
            let now = execs[d].clock_cycles();
            timeline.record_busy(d, busy_cycle, now);
            dispatch(&mut execs[..], &mut queues, &mut meta, now);
            sample_timeline(&mut timeline, now, &queues, &execs);
        } else {
            break;
        }
    }
    debug_assert!(queues.iter().all(VecDeque::is_empty));

    // Harvest every executor and map outputs back to their requests via
    // the per-epoch span index (== per-device admission order).
    let mut completions: Vec<ServiceCompletion<T>> = Vec::new();
    let mut device_stats = Vec::with_capacity(execs.len());
    for (d, mut exec) in execs.into_iter().enumerate() {
        let run = exec.harvest();
        for (output, span) in run.outputs.into_iter().zip(&run.stats.lifecycles) {
            let (req, class, arrival_cycle) = meta[d][span.index];
            completions.push(ServiceCompletion {
                request: req,
                class,
                arrival_cycle,
                device: d,
                completed_cycle: span.completed_cycle.unwrap_or(span.submitted_cycle),
                task: output,
            });
        }
        device_stats.push(run.stats);
    }
    completions.sort_by_key(|c| (c.completed_cycle, c.request));
    let last_completion_cycle = completions
        .iter()
        .map(|c| c.completed_cycle)
        .max()
        .unwrap_or(0);
    // Completion events land in the recorder by completed cycle. Recording
    // here (after the sort) rather than inside the loop changes nothing:
    // windowed counters are order-independent and the per-window latency
    // sets are sorted by `finalize`.
    for c in &completions {
        let ci = c.class.index();
        timeline.record_completion(
            c.completed_cycle,
            ci,
            c.latency_cycles(),
            c.latency_cycles() <= config.classes[ci].slo_cycles,
        );
    }
    timeline.finalize(last_completion_cycle);

    let mut reports: [ClassReport; 3] = PriorityClass::ALL.map(|class| ClassReport {
        class,
        slo_cycles: config.classes[class.index()].slo_cycles,
        submitted: submitted[class.index()],
        accepted: accepted[class.index()],
        rejected_queue_full: rejected_qf[class.index()],
        rejected_saturated: rejected_sat[class.index()],
        completed: 0,
        within_slo: 0,
        latency_p50_cycles: 0,
        latency_p95_cycles: 0,
        latency_p99_cycles: 0,
        latency_max_cycles: 0,
    });
    for class in PriorityClass::ALL {
        let ci = class.index();
        let mut latencies: Vec<u64> = completions
            .iter()
            .filter(|c| c.class == class)
            .map(ServiceCompletion::latency_cycles)
            .collect();
        latencies.sort_unstable();
        let report = &mut reports[ci];
        report.completed = latencies.len() as u64;
        report.within_slo = latencies
            .iter()
            .filter(|&&l| l <= report.slo_cycles)
            .count() as u64;
        report.latency_p50_cycles = quantile(&latencies, 0.50);
        report.latency_p95_cycles = quantile(&latencies, 0.95);
        report.latency_p99_cycles = quantile(&latencies, 0.99);
        report.latency_max_cycles = latencies.last().copied().unwrap_or(0);
    }
    debug_assert_eq!(
        completions.len() + rejected.len(),
        total_requests,
        "every request completes or is rejected"
    );

    Ok(ServiceOutcome {
        completions,
        rejected,
        reports,
        device_stats,
        first_arrival_cycle,
        last_completion_cycle,
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{PipeStage, StageWork};
    use batchzk_gpu_sim::{DeviceProfile, Work};

    struct WorkStage {
        name: &'static str,
        cycles: u64,
    }

    impl PipeStage<u64> for WorkStage {
        fn name(&self) -> String {
            self.name.into()
        }
        fn threads(&self) -> u32 {
            64
        }
        fn process(&self, task: &mut u64) -> StageWork {
            *task += 1;
            StageWork {
                work: Work::Uniform {
                    units: 64,
                    cycles_per_unit: self.cycles,
                },
                h2d_bytes: 256,
                d2h_bytes: 256,
                mem_after: 1 << 10,
            }
        }
    }

    fn stages(_gpu: &Gpu) -> Vec<BoxedStage<u64>> {
        vec![
            Box::new(WorkStage {
                name: "s0",
                cycles: 40,
            }),
            Box::new(WorkStage {
                name: "s1",
                cycles: 60,
            }),
            Box::new(WorkStage {
                name: "s2",
                cycles: 40,
            }),
        ]
    }

    fn config() -> ServiceConfig {
        ServiceConfig {
            classes: [
                ClassPolicy {
                    queue_cap: 2,
                    slo_cycles: 40_000,
                },
                ClassPolicy {
                    queue_cap: 4,
                    slo_cycles: 120_000,
                },
                ClassPolicy {
                    queue_cap: 8,
                    slo_cycles: 400_000,
                },
            ],
            max_outstanding: 12,
            device_queue_cap: 2,
            max_in_flight: 0,
            timeline_window_cycles: 0,
        }
    }

    /// A bursty overload stream: everything lands on one cycle so queue
    /// caps and the outstanding bound both trip.
    fn burst_requests(n: usize) -> Vec<ServiceRequest<u64>> {
        (0..n)
            .map(|i| ServiceRequest {
                class: PriorityClass::ALL[i % 3],
                arrival_cycle: 1_000,
                task: i as u64,
            })
            .collect()
    }

    fn paced_requests(n: usize, gap: u64) -> Vec<ServiceRequest<u64>> {
        (0..n)
            .map(|i| ServiceRequest {
                class: PriorityClass::ALL[i % 3],
                arrival_cycle: 1_000 + gap * i as u64,
                task: i as u64,
            })
            .collect()
    }

    #[test]
    fn conservation_per_class_under_overload() {
        let mut pool = DevicePool::homogeneous(DeviceProfile::v100(), 2);
        let outcome = run_service(&mut pool, &config(), burst_requests(60), stages, true).unwrap();
        let mut total = 0;
        for report in &outcome.reports {
            assert_eq!(
                report.submitted,
                report.accepted + report.rejected_queue_full + report.rejected_saturated,
                "class {} conservation",
                report.class
            );
            assert_eq!(report.completed, report.accepted, "accepted work completes");
            assert!(report.within_slo <= report.completed);
            total += report.submitted;
        }
        assert_eq!(total, 60);
        assert_eq!(outcome.completions.len() + outcome.rejected.len(), 60);
        assert!(!outcome.rejected.is_empty(), "overload must shed load");
    }

    #[test]
    fn deterministic_across_host_threads_and_repeat_runs() {
        for devices in [1usize, 4] {
            let reference = batchzk_par::with_threads(1, || {
                let mut pool = DevicePool::homogeneous(DeviceProfile::v100(), devices);
                run_service(&mut pool, &config(), paced_requests(36, 900), stages, true).unwrap()
            });
            for threads in [1usize, 2, 4] {
                let outcome = batchzk_par::with_threads(threads, || {
                    let mut pool = DevicePool::homogeneous(DeviceProfile::v100(), devices);
                    run_service(&mut pool, &config(), paced_requests(36, 900), stages, true)
                        .unwrap()
                });
                assert_eq!(
                    outcome.reports, reference.reports,
                    "devices={devices} threads={threads}"
                );
                assert_eq!(outcome.rejected, reference.rejected);
                let key = |o: &ServiceOutcome<u64>| {
                    o.completions
                        .iter()
                        .map(|c| (c.request, c.device, c.completed_cycle))
                        .collect::<Vec<_>>()
                };
                assert_eq!(key(&outcome), key(&reference));
            }
        }
    }

    #[test]
    fn interactive_dispatches_before_bulk() {
        // One device, one-task-at-a-time: a same-cycle burst must drain in
        // strict class priority even though bulk was submitted first.
        let mut pool = DevicePool::homogeneous(DeviceProfile::v100(), 1);
        let requests = vec![
            ServiceRequest {
                class: PriorityClass::Bulk,
                arrival_cycle: 0,
                task: 0,
            },
            ServiceRequest {
                class: PriorityClass::Bulk,
                arrival_cycle: 0,
                task: 1,
            },
            ServiceRequest {
                class: PriorityClass::Interactive,
                arrival_cycle: 0,
                task: 2,
            },
        ];
        let mut cfg = config();
        cfg.device_queue_cap = 1;
        let outcome = run_service(&mut pool, &cfg, requests, stages, true).unwrap();
        assert_eq!(outcome.completions.len(), 3);
        let first = &outcome.completions[0];
        assert_eq!(first.class, PriorityClass::Interactive);
        assert!(
            outcome.reports[PriorityClass::Interactive.index()].latency_max_cycles
                < outcome.reports[PriorityClass::Bulk.index()].latency_max_cycles
        );
    }

    #[test]
    fn idle_devices_fast_forward_to_late_arrivals() {
        let mut pool = DevicePool::homogeneous(DeviceProfile::v100(), 2);
        let late = 5_000_000u64;
        let requests = vec![ServiceRequest {
            class: PriorityClass::Standard,
            arrival_cycle: late,
            task: 7,
        }];
        let outcome = run_service(&mut pool, &config(), requests, stages, true).unwrap();
        let c = &outcome.completions[0];
        assert!(c.completed_cycle >= late);
        assert!(
            c.latency_cycles() < 100_000,
            "latency {} should not include the idle gap",
            c.latency_cycles()
        );
        assert_eq!(outcome.first_arrival_cycle, late);
    }

    #[test]
    fn empty_request_stream_is_a_quiet_no_op() {
        let mut pool = DevicePool::homogeneous(DeviceProfile::v100(), 2);
        let outcome = run_service(
            &mut pool,
            &config(),
            Vec::<ServiceRequest<u64>>::new(),
            stages,
            true,
        )
        .unwrap();
        assert!(outcome.completions.is_empty());
        assert!(outcome.rejected.is_empty());
        assert_eq!(outcome.span_cycles(), 0);
        for report in &outcome.reports {
            assert_eq!(report.submitted, 0);
            assert_eq!(report.slo_attainment(), 1.0);
            assert_eq!(report.rejection_rate(), 0.0);
        }
    }

    #[test]
    fn invalid_inputs_error_instead_of_panicking() {
        let mut cfg = config();
        cfg.classes[0].queue_cap = 0;
        assert!(cfg.validate().unwrap_err().contains("interactive"));
        let mut pool = DevicePool::homogeneous(DeviceProfile::v100(), 1);
        let err = run_service(&mut pool, &cfg, burst_requests(3), stages, true).unwrap_err();
        assert!(matches!(err, ServiceError::InvalidInput(_)), "{err}");

        let mut cfg = config();
        cfg.max_outstanding = 0;
        assert!(cfg.validate().is_err());
        cfg = config();
        cfg.device_queue_cap = 0;
        assert!(cfg.validate().is_err());
        cfg = config();
        cfg.classes[2].slo_cycles = 0;
        assert!(cfg.validate().is_err());

        let mut hetero =
            DevicePool::from_profiles(vec![DeviceProfile::v100(), DeviceProfile::gh200()]);
        let err = run_service(&mut hetero, &config(), burst_requests(3), stages, true).unwrap_err();
        assert!(err.to_string().contains("homogeneous"), "{err}");
    }

    #[test]
    fn class_names_round_trip_and_order() {
        for class in PriorityClass::ALL {
            assert_eq!(PriorityClass::parse(class.name()).unwrap(), class);
        }
        assert!(PriorityClass::parse("premium").is_err());
        assert_eq!(PriorityClass::Interactive.index(), 0);
        assert_eq!(PriorityClass::Bulk.index(), 2);
    }

    #[test]
    fn timeline_windows_conserve_class_totals_at_every_thread_count() {
        // Satellite conservation law: summing any per-window counter over
        // the whole timeline must reproduce the end-of-run ClassReport
        // exactly — at host threads 1, 2, and 4 — and the recording itself
        // must be bit-identical across thread counts.
        let run = || {
            let mut pool = DevicePool::homogeneous(DeviceProfile::v100(), 2);
            // Burst + paced tail: trips both reject reasons and then
            // drains, so every counter class is exercised.
            let mut requests = burst_requests(40);
            requests.extend(paced_requests(20, 2_500));
            run_service(&mut pool, &config(), requests, stages, true).unwrap()
        };
        let reference = batchzk_par::with_threads(1, run);
        for threads in [1usize, 2, 4] {
            let outcome = batchzk_par::with_threads(threads, run);
            let t = &outcome.timeline;
            assert_eq!(
                t.class_names(),
                &["interactive", "standard", "bulk"],
                "threads={threads}"
            );
            for report in &outcome.reports {
                let ci = report.class.index();
                let sum = |f: &dyn Fn(&batchzk_metrics::ClassWindow) -> u64| -> u64 {
                    t.windows().iter().map(|w| f(&w.classes[ci])).sum()
                };
                assert_eq!(sum(&|c| c.accepted), report.accepted, "threads={threads}");
                assert_eq!(
                    sum(&|c| c.rejected_queue_full),
                    report.rejected_queue_full,
                    "threads={threads}"
                );
                assert_eq!(
                    sum(&|c| c.rejected_saturated),
                    report.rejected_saturated,
                    "threads={threads}"
                );
                assert_eq!(sum(&|c| c.completed), report.completed, "threads={threads}");
                assert_eq!(
                    sum(&|c| c.slo_miss),
                    report.completed - report.within_slo,
                    "threads={threads}"
                );
            }
            assert_eq!(outcome.timeline, reference.timeline, "threads={threads}");
            assert_eq!(
                outcome.timeline.to_json(),
                reference.timeline.to_json(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn timeline_samples_depth_busy_and_latency() {
        let mut pool = DevicePool::homogeneous(DeviceProfile::v100(), 1);
        let outcome = run_service(&mut pool, &config(), burst_requests(12), stages, true).unwrap();
        let t = &outcome.timeline;
        assert!(!t.is_empty());
        assert_eq!(t.devices(), 1);
        assert_eq!(t.window_cycles(), config().resolved_timeline_window());
        assert_eq!(t.origin_cycle(), outcome.first_arrival_cycle);
        // A same-cycle burst of 12 against queue caps 2/4/8 pins at least
        // one class queue at its cap before dispatch drains it.
        let peak: u64 = t
            .windows()
            .iter()
            .map(|w| w.queue_depth_peak())
            .max()
            .unwrap_or(0);
        assert!(peak >= 2, "burst backlog must be visible, saw {peak}");
        // The single device does all the work: busy cycles appear, and the
        // recorded total busy time is within the covered span.
        let busy: u64 = t.windows().iter().map(|w| w.devices[0].busy_cycles).sum();
        assert!(busy > 0);
        assert!(busy <= t.windows().len() as u64 * t.window_cycles());
        // Windowed completions carry latencies: some window has a p99.
        assert!(t.p99_series().iter().any(|&p| p > 0));
        // The last completion falls inside the covered window range.
        let covered_end = t.origin_cycle() + t.windows().len() as u64 * t.window_cycles();
        assert!(outcome.last_completion_cycle <= covered_end);
    }

    #[test]
    fn empty_stream_yields_an_empty_timeline() {
        let mut pool = DevicePool::homogeneous(DeviceProfile::v100(), 2);
        let outcome = run_service(
            &mut pool,
            &config(),
            Vec::<ServiceRequest<u64>>::new(),
            stages,
            true,
        )
        .unwrap();
        assert!(outcome.timeline.is_empty());
        assert!(outcome.timeline.to_json().contains("\"windows\":[]"));
    }

    #[test]
    fn slo_accounting_counts_misses() {
        let mut pool = DevicePool::homogeneous(DeviceProfile::v100(), 1);
        let mut cfg = config();
        // An SLO of 1 cycle is unmeetable: every completion is a miss.
        cfg.classes[PriorityClass::Standard.index()].slo_cycles = 1;
        let requests = vec![
            ServiceRequest {
                class: PriorityClass::Standard,
                arrival_cycle: 0,
                task: 0,
            },
            ServiceRequest {
                class: PriorityClass::Standard,
                arrival_cycle: 10,
                task: 1,
            },
        ];
        let outcome = run_service(&mut pool, &cfg, requests, stages, true).unwrap();
        let report = &outcome.reports[PriorityClass::Standard.index()];
        assert_eq!(report.completed, 2);
        assert_eq!(report.within_slo, 0);
        assert_eq!(report.slo_attainment(), 0.0);
        assert!(report.latency_p50_cycles <= report.latency_p95_cycles);
        assert!(report.latency_p95_cycles <= report.latency_p99_cycles);
        assert!(report.latency_p99_cycles <= report.latency_max_cycles);
    }
}
