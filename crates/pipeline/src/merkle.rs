//! The pipelined Merkle-tree module (§3.1, Figure 4b).
//!
//! A tree over `N` 512-bit blocks needs `log N + 1` serial layers; instead
//! of one kernel per tree, each *layer* gets a dedicated kernel and trees
//! stream through them. Thread allocation follows the paper's geometric
//! split (half the module's threads to the leaf layer, a quarter to the
//! next, ...), data for each tree is loaded one tree per cycle, and each
//! completed layer is stored back to host memory and released — the dynamic
//! load/store scheme that caps device memory at ~2N blocks regardless of
//! batch size.

use batchzk_gpu_sim::{Gpu, Work};
use batchzk_hash::{hash_block, hash_pair, Digest};

use crate::engine::{
    allocate_threads, BoxedStage, PipeStage, Pipeline, PipelineError, PipelineRun, StageWork,
};

/// A Merkle generation task flowing through the pipeline.
#[derive(Debug)]
pub struct MerkleTask {
    /// Input blocks (consumed by the leaf stage).
    blocks: Vec<[u8; 64]>,
    /// Current layer of digests.
    layer: Vec<Digest>,
    /// Set once the root layer is reached.
    root: Option<Digest>,
}

impl MerkleTask {
    /// Creates a task for one tree.
    pub fn new(blocks: Vec<[u8; 64]>) -> Self {
        Self {
            blocks,
            layer: Vec::new(),
            root: None,
        }
    }

    /// The computed root.
    ///
    /// # Panics
    ///
    /// Panics if the task has not finished the pipeline.
    pub fn root(&self) -> Digest {
        self.root.expect("task has not completed the pipeline")
    }
}

/// Leaf stage: hashes the `N` input blocks into `N` leaf digests.
struct LeafStage {
    threads: u32,
    n: usize,
    node_cost: u64,
}

impl PipeStage<MerkleTask> for LeafStage {
    fn name(&self) -> String {
        "merkle-leaf".into()
    }
    fn threads(&self) -> u32 {
        self.threads
    }
    fn process(&self, task: &mut MerkleTask) -> StageWork {
        task.layer = task.blocks.iter().map(hash_block).collect();
        let blocks = std::mem::take(&mut task.blocks);
        StageWork {
            work: Work::Uniform {
                units: self.n as u64,
                cycles_per_unit: self.node_cost,
            },
            // Dynamic loading: this tree's blocks arrive this cycle...
            h2d_bytes: (blocks.len() * 64) as u64,
            // ...and the computed leaf digests stream back.
            d2h_bytes: (self.n * 32) as u64,
            // Resident: the leaf digests feeding the next stage.
            mem_after: (self.n * 32) as u64,
        }
    }
}

/// Inner stage for layer `level` (`1..=log N`): pair-hashes the previous
/// layer into half as many digests.
struct LayerStage {
    threads: u32,
    level: u32,
    node_cost: u64,
}

impl PipeStage<MerkleTask> for LayerStage {
    fn name(&self) -> String {
        format!("merkle-layer-{}", self.level)
    }
    fn threads(&self) -> u32 {
        self.threads
    }
    fn process(&self, task: &mut MerkleTask) -> StageWork {
        let next: Vec<Digest> = task
            .layer
            .chunks(2)
            .map(|pair| hash_pair(&pair[0], &pair[1]))
            .collect();
        let units = next.len() as u64;
        task.layer = next;
        if task.layer.len() == 1 {
            task.root = Some(task.layer[0]);
        }
        StageWork {
            work: Work::Uniform {
                units,
                cycles_per_unit: self.node_cost,
            },
            h2d_bytes: 0,
            // Dynamic storing: this layer's digests go back to host; the
            // consumed layer is released from device memory.
            d2h_bytes: units * 32,
            mem_after: units * 32,
        }
    }
}

/// Result of a pipelined Merkle batch run.
pub type MerkleRun = PipelineRun<MerkleTask>;

/// Runs the pipelined module over a batch of equally-sized trees.
///
/// `module_threads` is the total thread budget for the module (the paper's
/// `M`); stages receive `M/2, M/4, ...` matching their layer sizes.
///
/// # Errors
///
/// Returns [`PipelineError::OutOfDeviceMemory`] if the working set does not
/// fit in simulated device memory.
///
/// # Panics
///
/// Panics if `trees` is empty, sizes differ, or the size is not a power of
/// two.
pub fn run_pipelined(
    gpu: &mut Gpu,
    trees: Vec<Vec<[u8; 64]>>,
    module_threads: u32,
    multi_stream: bool,
) -> Result<MerkleRun, PipelineError> {
    assert!(!trees.is_empty(), "need at least one tree");
    let n = trees[0].len();
    assert!(
        n.is_power_of_two() && n >= 2,
        "tree size must be a power of two >= 2"
    );
    assert!(
        trees.iter().all(|t| t.len() == n),
        "all trees in a batch must have equal size"
    );
    let levels = n.trailing_zeros(); // pair-hash layers
                                     // Work weights: leaf stage does N hashes, layer l does N/2^l.
    let mut weights: Vec<u64> = vec![n as u64];
    for l in 1..=levels {
        weights.push((n >> l) as u64);
    }
    let threads = allocate_threads(module_threads, &weights);
    let node_cost = gpu.cost().merkle_node();

    let mut stages: Vec<BoxedStage<MerkleTask>> = vec![Box::new(LeafStage {
        threads: threads[0],
        n,
        node_cost,
    })];
    for l in 1..=levels {
        stages.push(Box::new(LayerStage {
            threads: threads[l as usize],
            level: l,
            node_cost,
        }));
    }

    let tasks: Vec<MerkleTask> = trees.into_iter().map(MerkleTask::new).collect();
    Pipeline::new(gpu, stages, multi_stream).run(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchzk_gpu_sim::DeviceProfile;
    use batchzk_merkle::MerkleTree;

    fn trees(count: usize, n: usize) -> Vec<Vec<[u8; 64]>> {
        (0..count)
            .map(|t| {
                (0..n)
                    .map(|i| {
                        let mut b = [0u8; 64];
                        b[..8].copy_from_slice(&((t * n + i) as u64).to_le_bytes());
                        b
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn roots_match_cpu_reference() {
        let batch = trees(5, 16);
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let run = run_pipelined(&mut gpu, batch.clone(), 768, true).expect("fits");
        assert_eq!(run.outputs.len(), 5);
        for (task, blocks) in run.outputs.iter().zip(&batch) {
            assert_eq!(task.root(), MerkleTree::from_blocks(blocks).root());
        }
    }

    #[test]
    fn memory_stays_near_2n_regardless_of_batch() {
        // §3.1: pipelined memory ~ 2N blocks; the naive approach needs mN.
        // n = 64 gives 7 stages; both batches exceed the pipeline depth so
        // the peak is taken in the fully-occupied steady state.
        let n = 64usize;
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let small = run_pipelined(&mut gpu, trees(16, n), 256, true)
            .expect("fits")
            .stats
            .peak_mem_bytes;
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let large = run_pipelined(&mut gpu, trees(48, n), 256, true)
            .expect("fits")
            .stats
            .peak_mem_bytes;
        // Peak must not grow with batch size (steady state reached by 4).
        assert_eq!(small, large, "peak memory must be batch-size independent");
        // And stays within a small multiple of the input size (2N blocks
        // of digests = N*64 bytes resident + transient copies).
        assert!(large <= (4 * n * 64) as u64, "peak {large}");
    }

    #[test]
    fn steady_state_utilization_beats_short_batch() {
        let n = 64usize;
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let short = run_pipelined(&mut gpu, trees(2, n), 512, true)
            .expect("fits")
            .stats
            .mean_utilization;
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let long = run_pipelined(&mut gpu, trees(64, n), 512, true)
            .expect("fits")
            .stats
            .mean_utilization;
        assert!(
            long > short,
            "steady state should raise utilization: {short} -> {long}"
        );
    }

    #[test]
    fn throughput_improves_with_batch_size() {
        let n = 32usize;
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let one = run_pipelined(&mut gpu, trees(1, n), 512, true)
            .expect("fits")
            .stats;
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let many = run_pipelined(&mut gpu, trees(40, n), 512, true)
            .expect("fits")
            .stats;
        assert!(many.throughput_per_ms > 2.0 * one.throughput_per_ms);
    }

    #[test]
    fn lifecycle_spans_conserve_stage_accounting() {
        // Per-proof lifecycle spans and the per-stage aggregate accounting
        // are two views of the same cycles: summing a stage's span cycles
        // across all proofs must reproduce that stage's `occupied_cycles`
        // exactly — which in turn decomposes into busy + stall cycles by the
        // engine's own conservation law.
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let run = run_pipelined(&mut gpu, trees(12, 64), 1024, true).expect("fits");
        assert_eq!(run.stats.lifecycles.len(), 12);
        for s in &run.stats.stage_stats {
            let from_spans: u64 = run
                .stats
                .lifecycles
                .iter()
                .map(|span| span.stage_cycles(&s.name))
                .sum();
            assert_eq!(from_spans, s.occupied_cycles, "stage {}", s.name);
            assert_eq!(
                s.busy_cycles + s.imbalance_stall_cycles + s.memory_stall_cycles,
                s.occupied_cycles,
                "stage {}",
                s.name
            );
        }
        // Every proof visits every stage exactly once, in order, and its
        // stage intervals tile the admission→emission window.
        for span in &run.stats.lifecycles {
            assert_eq!(span.stages.len(), run.stats.stage_stats.len());
            for (ss, stat) in span.stages.iter().zip(&run.stats.stage_stats) {
                assert_eq!(ss.stage, stat.name);
            }
            let tiled: u64 = span.stages.iter().map(|s| s.cycles()).sum();
            assert_eq!(tiled, span.total_cycles());
        }
        // Transfer bytes are conserved between the two views as well.
        let span_h2d: u64 = run.stats.lifecycles.iter().map(|s| s.h2d_bytes()).sum();
        assert_eq!(span_h2d, run.stats.h2d_bytes);
        let span_d2h: u64 = run.stats.lifecycles.iter().map(|s| s.d2h_bytes()).sum();
        assert_eq!(span_d2h, run.stats.d2h_bytes);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let _ = run_pipelined(&mut gpu, trees(1, 12), 64, true);
    }

    #[test]
    #[should_panic(expected = "equal size")]
    fn ragged_batch_rejected() {
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let mut batch = trees(2, 16);
        batch[1].truncate(8);
        let _ = run_pipelined(&mut gpu, batch, 64, true);
    }
}
