//! The pipelined linear-time-encoder module (§3.3, Figure 6).
//!
//! The recursive Spielman code is flattened into two interconnected
//! pipelines: the first performs the forward chain of `A`-multiplications
//! (sizes shrink by α per stage); the second performs the backward chain of
//! `B`-multiplications and codeword assembly in reverse order, preventing
//! the deep recursion that would overflow GPU stacks. Sparse-matrix rows are
//! executed with warp SIMD semantics; the bucket-sorted row schedule groups
//! rows of similar degree into the same warp to minimize divergence.

use std::sync::Arc;

use batchzk_encoder::{Encoder, SparseMatrix};
use batchzk_field::Field;
use batchzk_gpu_sim::{CostModel, Gpu, Work};

use crate::engine::{
    allocate_threads, BoxedStage, PipeStage, Pipeline, PipelineError, PipelineRun, StageWork,
};

/// An encoding task flowing through both pipelines.
#[derive(Debug)]
pub struct EncodeTask<F> {
    message: Vec<F>,
    /// Intermediate vectors from the forward phase (retained for assembly).
    ys: Vec<Vec<F>>,
    /// Current (partial) codeword during the backward phase.
    code: Vec<F>,
    /// Resident element count on the simulated device.
    resident_elems: u64,
}

impl<F: Field> EncodeTask<F> {
    /// Creates a task for one message.
    pub fn new(message: Vec<F>) -> Self {
        let resident = message.len() as u64;
        Self {
            message,
            ys: Vec::new(),
            code: Vec::new(),
            resident_elems: resident,
        }
    }

    /// The finished codeword.
    ///
    /// # Panics
    ///
    /// Panics if the task has not completed both pipelines.
    pub fn codeword(&self) -> &[F] {
        assert!(!self.code.is_empty(), "task has not completed the pipeline");
        &self.code
    }
}

/// Builds the per-row cycle costs for a sparse mat-vec kernel, in either
/// natural or bucket-sorted (warp-scheduled) order.
fn row_items<F: Field>(matrix: &SparseMatrix<F>, cost: &CostModel, sorted: bool) -> Vec<u64> {
    let order: Vec<usize> = if sorted {
        matrix.warp_schedule().into_iter().flatten().collect()
    } else {
        (0..matrix.rows()).collect()
    };
    order
        .into_iter()
        .map(|i| matrix.row_degree(i) as u64 * cost.spmv_term())
        .collect()
}

/// Forward stage `level`: `y_{level+1} = A_level · y_level`.
struct ForwardStage<F> {
    encoder: Arc<Encoder<F>>,
    level: usize,
    threads: u32,
    items: Vec<u64>,
}

impl<F: Field> PipeStage<EncodeTask<F>> for ForwardStage<F> {
    fn name(&self) -> String {
        format!("encode-fwd-{}", self.level)
    }
    fn threads(&self) -> u32 {
        self.threads
    }
    fn process(&self, task: &mut EncodeTask<F>) -> StageWork {
        let level = &self.encoder.levels()[self.level];
        let input: &[F] = if self.level == 0 {
            &task.message
        } else {
            &task.ys[self.level - 1]
        };
        let next = level.a.mul_vec(input);
        task.resident_elems += next.len() as u64;
        task.ys.push(next);
        StageWork {
            work: Work::Items(self.items.clone()),
            // Dynamic loading: the message arrives as the task enters.
            h2d_bytes: if self.level == 0 {
                (task.message.len() * 32) as u64
            } else {
                0
            },
            d2h_bytes: 0,
            mem_after: task.resident_elems * 32,
        }
    }
}

/// Backward stage for `level` (run from the innermost level outward):
/// `v = B_level · z`, then assemble `(input, z, v)`.
struct BackwardStage<F> {
    encoder: Arc<Encoder<F>>,
    level: usize,
    threads: u32,
    items: Vec<u64>,
    is_last: bool,
}

impl<F: Field> PipeStage<EncodeTask<F>> for BackwardStage<F> {
    fn name(&self) -> String {
        format!("encode-bwd-{}", self.level)
    }
    fn threads(&self) -> u32 {
        self.threads
    }
    fn process(&self, task: &mut EncodeTask<F>) -> StageWork {
        let level = &self.encoder.levels()[self.level];
        // First backward stage starts from the identity-coded core.
        if task.code.is_empty() {
            task.code = task.ys.last().expect("forward phase ran").clone();
        }
        let z = std::mem::take(&mut task.code);
        debug_assert_eq!(z.len(), level.z_len);
        let v = level.b.mul_vec(&z);
        let input: &[F] = if self.level == 0 {
            &task.message
        } else {
            &task.ys[self.level - 1]
        };
        let mut code = Vec::with_capacity(level.out_len());
        code.extend_from_slice(input);
        code.extend_from_slice(&z);
        code.extend_from_slice(&v);
        // The consumed intermediate vector is no longer needed on device.
        task.resident_elems += v.len() as u64;
        task.code = code;
        let out_bytes = (task.code.len() * 32) as u64;
        StageWork {
            work: Work::Items(self.items.clone()),
            h2d_bytes: 0,
            // Dynamic storing: the finished codeword streams back to host.
            d2h_bytes: if self.is_last { out_bytes } else { 0 },
            mem_after: if self.is_last {
                0
            } else {
                task.resident_elems * 32
            },
        }
    }
}

/// Result of a pipelined encoding batch run.
pub type EncodeRun<F> = PipelineRun<EncodeTask<F>>;

/// Runs the two interconnected encoding pipelines over a batch of messages.
///
/// `warp_sorted` selects the bucket-sorted row schedule (§3.3); disabling it
/// is the ablation baseline that pays warp divergence.
///
/// # Errors
///
/// Returns [`PipelineError::OutOfDeviceMemory`] if the working set does not
/// fit in simulated device memory.
///
/// # Panics
///
/// Panics if `messages` is empty or lengths differ from the encoder's.
pub fn run_pipelined<F: Field>(
    gpu: &mut Gpu,
    encoder: Arc<Encoder<F>>,
    messages: Vec<Vec<F>>,
    module_threads: u32,
    multi_stream: bool,
    warp_sorted: bool,
) -> Result<EncodeRun<F>, PipelineError> {
    assert!(!messages.is_empty(), "need at least one message");
    assert!(
        messages.iter().all(|m| m.len() == encoder.message_len()),
        "message length must match the encoder"
    );
    let cost = *gpu.cost();
    let levels = encoder.levels().len();

    // Degenerate (identity-code) inputs: single pass-through stage.
    if levels == 0 {
        struct Identity;
        impl<F: Field> PipeStage<EncodeTask<F>> for Identity {
            fn name(&self) -> String {
                "encode-identity".into()
            }
            fn threads(&self) -> u32 {
                1
            }
            fn process(&self, task: &mut EncodeTask<F>) -> StageWork {
                task.code = task.message.clone();
                StageWork {
                    work: Work::Uniform {
                        units: task.code.len() as u64,
                        cycles_per_unit: 1,
                    },
                    h2d_bytes: (task.message.len() * 32) as u64,
                    d2h_bytes: (task.code.len() * 32) as u64,
                    mem_after: 0,
                }
            }
        }
        let tasks = messages.into_iter().map(EncodeTask::new).collect();
        return Pipeline::new(gpu, vec![Box::new(Identity)], multi_stream).run(tasks);
    }

    // Stage weights proportional to each kernel's SIMD cost.
    let mut weights = Vec::with_capacity(2 * levels);
    for level in encoder.levels() {
        weights.push(level.a.warp_cost(warp_sorted).max(1));
    }
    for level in encoder.levels().iter().rev() {
        weights.push(level.b.warp_cost(warp_sorted).max(1));
    }
    let threads = allocate_threads(module_threads, &weights);

    let mut stages: Vec<BoxedStage<EncodeTask<F>>> = Vec::with_capacity(2 * levels);
    for (i, level) in encoder.levels().iter().enumerate() {
        stages.push(Box::new(ForwardStage {
            encoder: Arc::clone(&encoder),
            level: i,
            threads: threads[i],
            items: row_items(&level.a, &cost, warp_sorted),
        }));
    }
    for (j, i) in (0..levels).rev().enumerate() {
        let level = &encoder.levels()[i];
        stages.push(Box::new(BackwardStage {
            encoder: Arc::clone(&encoder),
            level: i,
            threads: threads[levels + j],
            items: row_items(&level.b, &cost, warp_sorted),
            is_last: i == 0,
        }));
    }

    let tasks: Vec<EncodeTask<F>> = messages.into_iter().map(EncodeTask::new).collect();
    Pipeline::new(gpu, stages, multi_stream).run(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchzk_encoder::EncoderParams;
    use batchzk_field::Fr;
    use batchzk_gpu_sim::DeviceProfile;
    use batchzk_hash::Prg;

    fn messages(count: usize, n: usize, seed: u64) -> Vec<Vec<Fr>> {
        let mut rng = Prg::seed_from_u64(seed);
        (0..count)
            .map(|_| (0..n).map(|_| Fr::random(&mut rng)).collect())
            .collect()
    }

    #[test]
    fn codewords_match_reference_encoder() {
        let enc = Arc::new(Encoder::<Fr>::new(200, EncoderParams::default(), 5));
        let msgs = messages(4, 200, 1);
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let run =
            run_pipelined(&mut gpu, Arc::clone(&enc), msgs.clone(), 512, true, true).expect("fits");
        for (task, msg) in run.outputs.iter().zip(&msgs) {
            assert_eq!(task.codeword(), &enc.encode(msg)[..]);
        }
    }

    #[test]
    fn warp_sorting_is_never_slower() {
        let enc = Arc::new(Encoder::<Fr>::new(400, EncoderParams::default(), 6));
        let msgs = messages(8, 400, 2);
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let sorted = run_pipelined(&mut gpu, Arc::clone(&enc), msgs.clone(), 512, true, true)
            .expect("fits")
            .stats
            .total_cycles;
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let unsorted = run_pipelined(&mut gpu, enc, msgs, 512, true, false)
            .expect("fits")
            .stats
            .total_cycles;
        assert!(sorted <= unsorted, "sorted {sorted} vs unsorted {unsorted}");
    }

    #[test]
    fn identity_code_passthrough() {
        let enc = Arc::new(Encoder::<Fr>::new(16, EncoderParams::default(), 7));
        let msgs = messages(3, 16, 3);
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let run = run_pipelined(&mut gpu, enc, msgs.clone(), 64, true, true).expect("fits");
        for (task, msg) in run.outputs.iter().zip(&msgs) {
            assert_eq!(task.codeword(), &msg[..]);
        }
    }

    #[test]
    fn device_memory_released_after_run() {
        let enc = Arc::new(Encoder::<Fr>::new(128, EncoderParams::default(), 8));
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let _ = run_pipelined(&mut gpu, enc, messages(5, 128, 4), 256, true, true);
        assert_eq!(gpu.memory_ref().in_use(), 0);
    }

    #[test]
    fn throughput_grows_with_batch() {
        let enc = Arc::new(Encoder::<Fr>::new(128, EncoderParams::default(), 9));
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let one = run_pipelined(
            &mut gpu,
            Arc::clone(&enc),
            messages(1, 128, 5),
            512,
            true,
            true,
        )
        .expect("fits")
        .stats;
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let many = run_pipelined(&mut gpu, enc, messages(24, 128, 6), 512, true, true)
            .expect("fits")
            .stats;
        assert!(many.throughput_per_ms > 1.5 * one.throughput_per_ms);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn wrong_message_length_rejected() {
        let enc = Arc::new(Encoder::<Fr>::new(100, EncoderParams::default(), 10));
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let _ = run_pipelined(&mut gpu, enc, messages(1, 99, 7), 64, true, true);
    }
}
