//! The service flight recorder: windowed time-series over virtual cycles.
//!
//! Every other surface in this crate is an end-of-run aggregate — a
//! [`crate::Registry`] exposition or a `ClassReport`-style summary. A
//! queue-depth spike that drains before harvest, a mid-run SLO burn that
//! recovers, or one device going quiet for a stretch are all invisible in
//! aggregates. [`Timeline`] records the run as **fixed-width windows of
//! virtual device cycles**: per-window, per-class admission counters
//! (accepts and rejects by reason), completions and SLO misses, peak queue
//! depth, per-device busy cycles and peak in-flight, and the exact
//! nearest-rank p99 of the lifecycle latencies that completed inside the
//! window.
//!
//! Retention is bounded: when the run outgrows
//! [`TimelineConfig::max_windows`], adjacent window pairs merge 2:1 and the
//! window width doubles ([`Timeline::downsamples`] counts the halvings).
//! The merge is pure integer bookkeeping — counters add, peaks take the
//! max, latency sets concatenate — so a downsampled timeline is exactly the
//! timeline that would have been recorded at the wider width.
//!
//! Determinism: every cell derives from integer cycles and integer counts,
//! and recording is order-independent *within* a window (adds, maxes, and
//! a sort at [`Timeline::finalize`]). Two replays of the same virtual-time
//! event sequence — at any host thread count — render byte-identical
//! [`Timeline::to_json`] output. That is what lets the BENCH.json
//! `timeline` section act as a regression artifact and lets
//! [`crate::alerts`] promise reproducible fire/resolve window indexes.

use crate::registry::escape_json;
use std::fmt::Write as _;

/// Shape of one [`Timeline`]: window width, retention bound, and the class
/// and device lanes it tracks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineConfig {
    /// Width of one window in virtual device cycles. Must be ≥ 1.
    pub window_cycles: u64,
    /// Retention bound: when the run needs more windows than this, the
    /// timeline downsamples 2:1 (window width doubles). Must be ≥ 2.
    pub max_windows: usize,
    /// Names of the class lanes (e.g. `interactive`, `standard`, `bulk`),
    /// in index order. Must be non-empty.
    pub class_names: Vec<String>,
    /// Number of device lanes. Must be ≥ 1.
    pub devices: usize,
}

/// Per-class cell of one [`Window`]: admission and completion counters
/// plus the peak queue depth observed inside the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassWindow {
    /// Requests admitted past admission control in this window.
    pub accepted: u64,
    /// Rejections because the class queue was at capacity.
    pub rejected_queue_full: u64,
    /// Rejections because the service-wide outstanding bound was hit.
    pub rejected_saturated: u64,
    /// Requests whose proof was emitted in this window.
    pub completed: u64,
    /// Completions in this window whose latency exceeded the class SLO.
    pub slo_miss: u64,
    /// Peak class-queue depth sampled inside this window.
    pub queue_depth_peak: u64,
}

impl ClassWindow {
    /// Arrivals in this window: accepted plus both reject reasons.
    pub fn submitted(&self) -> u64 {
        self.accepted + self.rejected()
    }

    /// Rejections in this window, both reasons.
    pub fn rejected(&self) -> u64 {
        self.rejected_queue_full + self.rejected_saturated
    }
}

/// Per-device cell of one [`Window`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceWindow {
    /// Cycles of this window the device spent advancing work (its clock
    /// moving under `step`, as opposed to sitting idle).
    pub busy_cycles: u64,
    /// Peak in-flight tasks sampled inside this window.
    pub in_flight_peak: u64,
}

impl DeviceWindow {
    /// Busy fraction of the window in parts-per-million (integer, so it is
    /// byte-stable in expositions). Saturates at 1 000 000.
    pub fn utilization_ppm(&self, window_cycles: u64) -> u64 {
        if window_cycles == 0 {
            0
        } else {
            ((self.busy_cycles.min(window_cycles) as u128 * 1_000_000) / window_cycles as u128)
                as u64
        }
    }
}

/// One fixed-width window of the recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Window {
    /// First cycle the window covers.
    pub start_cycle: u64,
    /// Per-class cells, indexed like [`TimelineConfig::class_names`].
    pub classes: Vec<ClassWindow>,
    /// Per-device cells.
    pub devices: Vec<DeviceWindow>,
    /// Lifecycle latencies (cycles) of completions inside this window.
    /// Ascending after [`Timeline::finalize`].
    latencies: Vec<u64>,
}

impl Window {
    fn empty(start_cycle: u64, classes: usize, devices: usize) -> Self {
        Window {
            start_cycle,
            classes: vec![ClassWindow::default(); classes],
            devices: vec![DeviceWindow::default(); devices],
            latencies: Vec::new(),
        }
    }

    /// Completions across every class in this window.
    pub fn completed(&self) -> u64 {
        self.classes.iter().map(|c| c.completed).sum()
    }

    /// Arrivals across every class in this window.
    pub fn submitted(&self) -> u64 {
        self.classes.iter().map(ClassWindow::submitted).sum()
    }

    /// Rejections across every class in this window.
    pub fn rejected(&self) -> u64 {
        self.classes.iter().map(ClassWindow::rejected).sum()
    }

    /// Peak queue depth summed over the classes (backlog signal).
    pub fn queue_depth_peak(&self) -> u64 {
        self.classes.iter().map(|c| c.queue_depth_peak).sum()
    }

    /// Exact nearest-rank p99 of the latencies that completed in this
    /// window (0 when nothing completed). Valid after
    /// [`Timeline::finalize`].
    pub fn latency_p99_cycles(&self) -> u64 {
        nearest_rank(&self.latencies, 0.99)
    }

    /// Latencies recorded in this window (ascending after finalize).
    pub fn latencies(&self) -> &[u64] {
        &self.latencies
    }
}

/// Nearest-rank quantile of an ascending-sorted slice (0 when empty).
fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The flight recorder: a bounded ring of fixed-width cycle windows.
///
/// See the [module docs](self) for the recording model. Constructed from a
/// [`TimelineConfig`], fed by the event loop of the run it observes, and
/// sealed with [`finalize`](Timeline::finalize) before reading quantiles
/// or exporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    window_cycles: u64,
    max_windows: usize,
    class_names: Vec<String>,
    device_lanes: usize,
    /// Cycle of the first recorded event; window 0 starts here.
    origin_cycle: Option<u64>,
    windows: Vec<Window>,
    downsamples: u32,
    finalized: bool,
}

impl Timeline {
    /// Creates an empty timeline.
    ///
    /// # Panics
    ///
    /// Panics if `window_cycles` is 0, `max_windows` < 2, `class_names` is
    /// empty, or `devices` is 0 — a recorder with no lanes or no width is
    /// a programming error, not a runtime condition.
    pub fn new(config: TimelineConfig) -> Self {
        assert!(config.window_cycles >= 1, "window_cycles must be >= 1");
        assert!(config.max_windows >= 2, "max_windows must be >= 2");
        assert!(!config.class_names.is_empty(), "need at least one class");
        assert!(config.devices >= 1, "need at least one device lane");
        Timeline {
            window_cycles: config.window_cycles,
            max_windows: config.max_windows,
            class_names: config.class_names,
            device_lanes: config.devices,
            origin_cycle: None,
            windows: Vec::new(),
            downsamples: 0,
            finalized: false,
        }
    }

    /// Current window width in cycles (doubles on each downsample).
    pub fn window_cycles(&self) -> u64 {
        self.window_cycles
    }

    /// Cycle window 0 starts at (0 before any event is recorded).
    pub fn origin_cycle(&self) -> u64 {
        self.origin_cycle.unwrap_or(0)
    }

    /// Number of 2:1 downsampling passes applied so far.
    pub fn downsamples(&self) -> u32 {
        self.downsamples
    }

    /// Class lane names, in index order.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Number of device lanes.
    pub fn devices(&self) -> usize {
        self.device_lanes
    }

    /// The recorded windows, in time order.
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Maps a cycle to its window index, fixing the origin on first use.
    /// Cycles before the origin (possible only through misuse) clamp into
    /// window 0 rather than panicking.
    fn index_of(&mut self, cycle: u64) -> usize {
        let origin = *self.origin_cycle.get_or_insert(cycle);
        (cycle.saturating_sub(origin) / self.window_cycles) as usize
    }

    /// Grows the ring to cover window `idx`, downsampling 2:1 whenever the
    /// retention bound would be exceeded, and returns the (possibly
    /// remapped) index of `cycle`'s window.
    fn window_mut(&mut self, cycle: u64) -> &mut Window {
        let mut idx = self.index_of(cycle);
        while idx >= self.max_windows {
            self.downsample();
            idx = self.index_of(cycle);
        }
        let origin = self.origin_cycle();
        while self.windows.len() <= idx {
            let start = origin + self.windows.len() as u64 * self.window_cycles;
            self.windows.push(Window::empty(
                start,
                self.class_names.len(),
                self.device_lanes,
            ));
        }
        &mut self.windows[idx]
    }

    /// Merges adjacent window pairs and doubles the width. Alignment is
    /// preserved (the origin does not move), so cycle→index mapping stays
    /// consistent for events recorded after the merge.
    fn downsample(&mut self) {
        let old = std::mem::take(&mut self.windows);
        self.window_cycles *= 2;
        self.downsamples += 1;
        let mut merged: Vec<Window> = Vec::with_capacity(old.len().div_ceil(2));
        for (i, w) in old.into_iter().enumerate() {
            if i % 2 == 0 {
                let mut kept = w;
                kept.start_cycle = self.origin_cycle() + merged.len() as u64 * self.window_cycles;
                merged.push(kept);
            } else {
                let dst = merged.last_mut().expect("odd index follows an even one");
                for (a, b) in dst.classes.iter_mut().zip(&w.classes) {
                    a.accepted += b.accepted;
                    a.rejected_queue_full += b.rejected_queue_full;
                    a.rejected_saturated += b.rejected_saturated;
                    a.completed += b.completed;
                    a.slo_miss += b.slo_miss;
                    a.queue_depth_peak = a.queue_depth_peak.max(b.queue_depth_peak);
                }
                for (a, b) in dst.devices.iter_mut().zip(&w.devices) {
                    a.busy_cycles += b.busy_cycles;
                    a.in_flight_peak = a.in_flight_peak.max(b.in_flight_peak);
                }
                dst.latencies.extend(&w.latencies);
            }
        }
        self.windows = merged;
    }

    /// Records one admission into class `class` at `cycle`.
    pub fn record_accept(&mut self, cycle: u64, class: usize) {
        self.window_mut(cycle).classes[class].accepted += 1;
    }

    /// Records one queue-full rejection of class `class` at `cycle`.
    pub fn record_reject_queue_full(&mut self, cycle: u64, class: usize) {
        self.window_mut(cycle).classes[class].rejected_queue_full += 1;
    }

    /// Records one saturation rejection of class `class` at `cycle`.
    pub fn record_reject_saturated(&mut self, cycle: u64, class: usize) {
        self.window_mut(cycle).classes[class].rejected_saturated += 1;
    }

    /// Records one completion of class `class` at `cycle` with the given
    /// lifecycle latency; `within_slo` is judged by the caller (the
    /// timeline does not know the SLOs).
    pub fn record_completion(
        &mut self,
        cycle: u64,
        class: usize,
        latency_cycles: u64,
        within_slo: bool,
    ) {
        let w = self.window_mut(cycle);
        w.classes[class].completed += 1;
        if !within_slo {
            w.classes[class].slo_miss += 1;
        }
        w.latencies.push(latency_cycles);
    }

    /// Samples the instantaneous depth of class `class`'s queue at
    /// `cycle`; the window keeps the peak.
    pub fn sample_queue_depth(&mut self, cycle: u64, class: usize, depth: u64) {
        let cell = &mut self.window_mut(cycle).classes[class];
        cell.queue_depth_peak = cell.queue_depth_peak.max(depth);
    }

    /// Samples the instantaneous in-flight count of device `device` at
    /// `cycle`; the window keeps the peak.
    pub fn sample_in_flight(&mut self, cycle: u64, device: usize, in_flight: u64) {
        let cell = &mut self.window_mut(cycle).devices[device];
        cell.in_flight_peak = cell.in_flight_peak.max(in_flight);
    }

    /// Attributes the half-open busy interval `[from, to)` of device
    /// `device` across the windows it overlaps.
    pub fn record_busy(&mut self, device: usize, from: u64, to: u64) {
        if to <= from {
            return;
        }
        let mut cursor = from;
        while cursor < to {
            // Touch the window first: it may downsample and change widths.
            self.window_mut(cursor);
            let origin = self.origin_cycle();
            let idx = (cursor.saturating_sub(origin) / self.window_cycles) as usize;
            let window_end = origin + (idx as u64 + 1) * self.window_cycles;
            let slice_end = to.min(window_end);
            self.windows[idx].devices[device].busy_cycles += slice_end - cursor;
            cursor = slice_end;
        }
    }

    /// Seals the recording: extends the ring so the last window covers
    /// `end_cycle` and sorts every window's latency set so nearest-rank
    /// quantiles are exact. Idempotent.
    pub fn finalize(&mut self, end_cycle: u64) {
        if self.origin_cycle.is_some() && end_cycle > self.origin_cycle() {
            self.window_mut(end_cycle.saturating_sub(1));
        }
        for w in &mut self.windows {
            w.latencies.sort_unstable();
        }
        self.finalized = true;
    }

    /// One value per window for a named series — the shape sparkline
    /// renderers and Chrome-trace counter tracks consume. Series:
    /// queue-depth and rejections per class (by index), utilization (ppm)
    /// and in-flight per device, p99 latency overall.
    pub fn queue_depth_series(&self, class: usize) -> Vec<u64> {
        self.windows
            .iter()
            .map(|w| w.classes[class].queue_depth_peak)
            .collect()
    }

    /// Per-window rejections (both reasons) of one class.
    pub fn rejected_series(&self, class: usize) -> Vec<u64> {
        self.windows
            .iter()
            .map(|w| w.classes[class].rejected())
            .collect()
    }

    /// Per-window busy fraction of one device, in parts-per-million.
    pub fn utilization_ppm_series(&self, device: usize) -> Vec<u64> {
        self.windows
            .iter()
            .map(|w| w.devices[device].utilization_ppm(self.window_cycles))
            .collect()
    }

    /// Per-window peak in-flight of one device.
    pub fn in_flight_series(&self, device: usize) -> Vec<u64> {
        self.windows
            .iter()
            .map(|w| w.devices[device].in_flight_peak)
            .collect()
    }

    /// Per-window exact nearest-rank p99 lifecycle latency in cycles.
    pub fn p99_series(&self) -> Vec<u64> {
        self.windows
            .iter()
            .map(Window::latency_p99_cycles)
            .collect()
    }

    /// Canonical JSON exposition: integers only, fields in a fixed order,
    /// byte-deterministic for identical recordings.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"window_cycles\":{},\"origin_cycle\":{},\"downsamples\":{},\"classes\":[",
            self.window_cycles,
            self.origin_cycle(),
            self.downsamples,
        );
        for (i, name) in self.class_names.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", escape_json(name));
        }
        let _ = write!(out, "],\"devices\":{},\"windows\":[", self.device_lanes);
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"start_cycle\":{},\"classes\":[", w.start_cycle);
            for (j, c) in w.classes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"accepted\":{},\"rejected_queue_full\":{},\"rejected_saturated\":{},\
                     \"completed\":{},\"slo_miss\":{},\"queue_depth_peak\":{}}}",
                    c.accepted,
                    c.rejected_queue_full,
                    c.rejected_saturated,
                    c.completed,
                    c.slo_miss,
                    c.queue_depth_peak,
                );
            }
            out.push_str("],\"devices\":[");
            for (j, d) in w.devices.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"busy_cycles\":{},\"utilization_ppm\":{},\"in_flight_peak\":{}}}",
                    d.busy_cycles,
                    d.utilization_ppm(self.window_cycles),
                    d.in_flight_peak,
                );
            }
            let _ = write!(out, "],\"latency_p99_cycles\":{}}}", w.latency_p99_cycles());
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(window: u64, max_windows: usize) -> TimelineConfig {
        TimelineConfig {
            window_cycles: window,
            max_windows,
            class_names: vec!["interactive".into(), "bulk".into()],
            devices: 2,
        }
    }

    #[test]
    fn counters_land_in_their_windows() {
        let mut t = Timeline::new(config(100, 16));
        t.record_accept(1_000, 0);
        t.record_accept(1_050, 1);
        t.record_reject_queue_full(1_120, 0);
        t.record_reject_saturated(1_130, 1);
        t.record_completion(1_250, 0, 250, false);
        t.record_completion(1_260, 1, 210, true);
        t.finalize(1_300);
        assert_eq!(t.origin_cycle(), 1_000);
        assert_eq!(t.windows().len(), 3);
        let w0 = &t.windows()[0];
        assert_eq!(w0.start_cycle, 1_000);
        assert_eq!(w0.classes[0].accepted, 1);
        assert_eq!(w0.classes[1].accepted, 1);
        assert_eq!(w0.submitted(), 2);
        let w1 = &t.windows()[1];
        assert_eq!(w1.classes[0].rejected_queue_full, 1);
        assert_eq!(w1.classes[1].rejected_saturated, 1);
        assert_eq!(w1.rejected(), 2);
        let w2 = &t.windows()[2];
        assert_eq!(w2.completed(), 2);
        assert_eq!(w2.classes[0].slo_miss, 1);
        assert_eq!(w2.classes[1].slo_miss, 0);
        assert_eq!(w2.latency_p99_cycles(), 250);
    }

    #[test]
    fn busy_intervals_split_across_window_boundaries() {
        let mut t = Timeline::new(config(100, 16));
        t.record_accept(0, 0); // pin the origin at 0
        t.record_busy(0, 50, 250); // 50 in w0, 100 in w1, 50 in w2
        t.record_busy(1, 0, 100); // exactly w0
        t.finalize(300);
        let busy: Vec<u64> = t
            .windows()
            .iter()
            .map(|w| w.devices[0].busy_cycles)
            .collect();
        assert_eq!(busy, vec![50, 100, 50]);
        assert_eq!(t.windows()[0].devices[1].busy_cycles, 100);
        assert_eq!(t.windows()[0].devices[1].utilization_ppm(100), 1_000_000);
        assert_eq!(
            t.utilization_ppm_series(0),
            vec![500_000, 1_000_000, 500_000]
        );
    }

    #[test]
    fn downsampling_merges_pairs_and_preserves_totals() {
        let mut t = Timeline::new(config(10, 4));
        for i in 0..12u64 {
            t.record_accept(i * 10, (i % 2) as usize);
            t.sample_queue_depth(i * 10, 0, i);
            t.record_completion(i * 10, 0, i * 7, i % 3 == 0);
        }
        t.finalize(120);
        // 12 base windows under a bound of 4 forces two 2:1 passes.
        assert_eq!(t.downsamples(), 2);
        assert_eq!(t.window_cycles(), 40);
        assert!(t.windows().len() <= 4);
        let accepted: u64 = t
            .windows()
            .iter()
            .map(|w| w.classes[0].accepted + w.classes[1].accepted)
            .sum();
        assert_eq!(accepted, 12, "downsampling must conserve counters");
        let completed: u64 = t.windows().iter().map(Window::completed).sum();
        assert_eq!(completed, 12);
        // Peaks take the max of merged pairs: the last window saw depth 11.
        assert_eq!(t.windows().last().unwrap().classes[0].queue_depth_peak, 11);
        // Window starts stay aligned to the (doubled) width.
        for (i, w) in t.windows().iter().enumerate() {
            assert_eq!(w.start_cycle, i as u64 * 40);
        }
    }

    #[test]
    fn recording_order_does_not_change_the_timeline() {
        let events: Vec<(u64, usize)> = vec![(5, 0), (25, 1), (15, 0), (35, 1), (45, 0)];
        let mut forward = Timeline::new(config(10, 8));
        // Pin the origin first: order-independence holds for events after
        // the first (the origin anchors window alignment).
        forward.record_accept(0, 0);
        for &(c, class) in &events {
            forward.record_completion(c, class, c, true);
        }
        forward.finalize(50);
        let mut reverse = Timeline::new(config(10, 8));
        reverse.record_accept(0, 0);
        for &(c, class) in events.iter().rev() {
            reverse.record_completion(c, class, c, true);
        }
        reverse.finalize(50);
        assert_eq!(forward, reverse);
        assert_eq!(forward.to_json(), reverse.to_json());
    }

    #[test]
    fn empty_timeline_exports_cleanly() {
        let mut t = Timeline::new(config(100, 4));
        t.finalize(0);
        assert!(t.is_empty());
        let json = t.to_json();
        assert!(json.contains("\"windows\":[]"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn json_is_deterministic_and_integer_only() {
        let mut t = Timeline::new(config(50, 8));
        t.record_accept(10, 0);
        t.record_busy(0, 10, 90);
        t.record_completion(80, 0, 70, true);
        t.sample_in_flight(60, 1, 3);
        t.finalize(100);
        let json = t.to_json();
        assert_eq!(json, t.clone().to_json());
        assert!(!json.contains('.'), "integers only: {json}");
        assert!(json.contains("\"utilization_ppm\""));
        assert!(json.contains("\"in_flight_peak\":3"));
    }
}
