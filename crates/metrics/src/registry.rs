//! The metrics registry: counters, gauges, and log₂-bucketed histograms
//! with two deterministic exposition formats.
//!
//! Everything in this module is plain single-threaded state: values are
//! integers (counters, histogram buckets) or `f64` (gauges), keys are
//! `(name, sorted label pairs)`, and both exposition formats iterate
//! `BTreeMap`s — so a given sequence of recordings always renders to
//! byte-identical output, the property the cross-PR `BENCH.json`
//! trajectory and the determinism tests rely on.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A metric identity: a name plus a sorted list of label pairs.
///
/// Ordering (derived) sorts first by name, then by labels, which fixes the
/// exposition order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    /// Metric name, e.g. `batchzk_tasks_total`.
    pub name: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    /// Builds an id from a name and unsorted label pairs.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }

    /// Renders the `{k="v",...}` label suffix (empty string if unlabeled).
    pub fn label_suffix(&self) -> String {
        if self.labels.is_empty() {
            return String::new();
        }
        let inner: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_json(v)))
            .collect();
        format!("{{{}}}", inner.join(","))
    }

    /// The full `name{k="v"}` form used as a JSON key.
    pub fn render(&self) -> String {
        format!("{}{}", self.name, self.label_suffix())
    }
}

/// Number of log₂ buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`, so bucket 64 holds `[2^63, 2^64)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log₂-bucketed histogram over `u64` samples.
///
/// Quantiles are estimated as the upper bound of the bucket containing the
/// nearest-rank sample, clamped to the observed `[min, max]` — monotone in
/// the quantile by construction, and exact whenever a bucket holds a single
/// distinct value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Index of the bucket holding `value`.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated quantile `q ∈ [0, 1]`. See the type docs for the
    /// estimation rule. Edge cases are defined, not incidental:
    ///
    /// * an **empty** histogram returns 0 for every `q`;
    /// * `q = 1.0` (or anything that resolves to the top rank, including
    ///   `q > 1`) returns the **recorded maximum exactly** — never the
    ///   enclosing log₂ bucket's upper bound, which could overshoot the
    ///   true max by up to 2×;
    /// * `q ≤ 0` and non-finite `q` clamp to the lowest rank (a value in
    ///   the first non-empty bucket, at least [`Self::min`]).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            // The nearest-rank sample at the top rank is the recorded
            // maximum itself — return it exactly rather than the enclosing
            // bucket's upper bound (which can overshoot by up to 2x).
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs in
    /// ascending bound order.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect()
    }
}

/// Escapes a string for inclusion in a JSON (or Prometheus label) string
/// literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` for deterministic JSON output: finite values use Rust's
/// shortest round-trip representation (always containing a `.` or exponent),
/// non-finite values render as `0.0`.
pub fn format_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0.0".to_string()
    }
}

/// A deterministic, dependency-free metrics registry.
///
/// Counters are monotone `u64`s, gauges are last-write-wins `f64`s, and
/// histograms are [`Histogram`]s. All three families are keyed by
/// [`MetricId`]; exposition iterates in id order.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<MetricId, u64>,
    gauges: BTreeMap<MetricId, f64>,
    histograms: BTreeMap<MetricId, Histogram>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name{labels}`.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        *self
            .counters
            .entry(MetricId::new(name, labels))
            .or_insert(0) += delta;
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(&MetricId::new(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Sets the gauge `name{labels}`.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.gauges.insert(MetricId::new(name, labels), value);
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&MetricId::new(name, labels)).copied()
    }

    /// Records a sample into the histogram `name{labels}`.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.histograms
            .entry(MetricId::new(name, labels))
            .or_default()
            .observe(value);
    }

    /// The histogram `name{labels}`, if any samples were recorded.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        self.histograms.get(&MetricId::new(name, labels))
    }

    /// True if no metric of any family has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the registry in the Prometheus text exposition format.
    ///
    /// Counters and gauges render one `name{labels} value` line each (with a
    /// `# TYPE` header per metric name); histograms render cumulative
    /// `_bucket{le="..."}` lines over their non-empty log₂ buckets plus
    /// `_sum` and `_count`. Deterministic: same recordings → same bytes.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type_line = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let line = format!("# TYPE {name} {kind}\n");
            if line != last_type_line {
                out.push_str(&line);
                last_type_line = line;
            }
        };
        for (id, v) in &self.counters {
            type_line(&mut out, &id.name, "counter");
            let _ = writeln!(out, "{} {v}", id.render());
        }
        for (id, v) in &self.gauges {
            type_line(&mut out, &id.name, "gauge");
            let _ = writeln!(out, "{} {}", id.render(), format_f64(*v));
        }
        for (id, h) in &self.histograms {
            type_line(&mut out, &id.name, "histogram");
            let mut cumulative = 0u64;
            for (upper, count) in h.buckets() {
                cumulative += count;
                let mut labels = id.labels.clone();
                labels.push(("le".to_string(), upper.to_string()));
                let rendered: Vec<String> = labels
                    .iter()
                    .map(|(k, v)| format!("{k}=\"{}\"", escape_json(v)))
                    .collect();
                let _ = writeln!(
                    out,
                    "{}_bucket{{{}}} {cumulative}",
                    id.name,
                    rendered.join(",")
                );
            }
            let suffix = id.label_suffix();
            let _ = writeln!(out, "{}_sum{suffix} {}", id.name, h.sum());
            let _ = writeln!(out, "{}_count{suffix} {}", id.name, h.count());
        }
        out
    }

    /// Renders the registry as canonical JSON: three objects (`counters`,
    /// `gauges`, `histograms`) keyed by the rendered metric id in id order,
    /// no insignificant whitespace. Deterministic: same recordings → same
    /// bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (id, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{v}", escape_json(&id.render()));
        }
        out.push_str("},\"gauges\":{");
        let mut first = true;
        for (id, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{}", escape_json(&id.render()), format_f64(*v));
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (id, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                 \"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":{{",
                escape_json(&id.render()),
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
            );
            let mut bfirst = true;
            for (upper, count) in h.buckets() {
                if !bfirst {
                    out.push(',');
                }
                bfirst = false;
                let _ = write!(out, "\"{upper}\":{count}");
            }
            out.push_str("}}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64; duplicated privately because this crate has no deps.
    struct TestRng(u64);

    impl TestRng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn range(&mut self, lo: u64, hi: u64) -> u64 {
            lo + ((self.next() as u128 * (hi - lo) as u128) >> 64) as u64
        }
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Every value lands in a bucket whose bound brackets it.
        let mut rng = TestRng(1);
        for _ in 0..256 {
            let v = rng.next();
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i));
            if i > 0 {
                assert!(v > bucket_upper(i - 1));
            }
        }
    }

    #[test]
    fn histogram_counts_are_exact() {
        // Property: count/sum/min/max are exact regardless of bucketing.
        let mut rng = TestRng(2);
        for _ in 0..16 {
            let n = rng.range(1, 400) as usize;
            let samples: Vec<u64> = (0..n).map(|_| rng.range(0, 1 << 40)).collect();
            let mut h = Histogram::default();
            for &s in &samples {
                h.observe(s);
            }
            assert_eq!(h.count(), n as u64);
            assert_eq!(h.sum(), samples.iter().map(|&s| s as u128).sum::<u128>());
            assert_eq!(h.min(), *samples.iter().min().unwrap());
            assert_eq!(h.max(), *samples.iter().max().unwrap());
            let bucket_total: u64 = h.buckets().iter().map(|&(_, c)| c).sum();
            assert_eq!(bucket_total, n as u64, "buckets partition the samples");
        }
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bounded() {
        let mut rng = TestRng(3);
        for _ in 0..16 {
            let n = rng.range(1, 300) as usize;
            let mut h = Histogram::default();
            for _ in 0..n {
                h.observe(rng.range(0, 1 << 30));
            }
            let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
            let values: Vec<u64> = qs.iter().map(|&q| h.quantile(q)).collect();
            for w in values.windows(2) {
                assert!(w[0] <= w[1], "quantiles must be monotone: {values:?}");
            }
            assert!(values[0] >= h.min());
            assert_eq!(*values.last().unwrap(), h.max());
        }
    }

    #[test]
    fn histogram_quantile_brackets_nearest_rank() {
        // The estimate never falls below the true nearest-rank sample's
        // bucket lower bound and never exceeds its bucket upper bound.
        let mut rng = TestRng(4);
        for _ in 0..16 {
            let n = rng.range(1, 200) as usize;
            let mut samples: Vec<u64> = (0..n).map(|_| rng.range(0, 1 << 20)).collect();
            let mut h = Histogram::default();
            for &s in &samples {
                h.observe(s);
            }
            samples.sort_unstable();
            for q in [0.5, 0.95, 0.99] {
                let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
                let exact = samples[rank - 1];
                let est = h.quantile(q);
                assert!(
                    est >= exact && est <= bucket_upper(bucket_index(exact)),
                    "q={q}: exact {exact}, estimate {est}"
                );
            }
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.buckets().is_empty());
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn identical_recordings_render_identical_json() {
        // The determinism guarantee: two registries fed the same samples in
        // the same order expose byte-identical JSON and Prometheus text.
        let record = |seed: u64| {
            let mut rng = TestRng(seed);
            let mut reg = Registry::new();
            for i in 0..200 {
                reg.counter_add("batchzk_tasks_total", &[("module", "merkle")], 1);
                reg.observe(
                    "batchzk_lifecycle_cycles",
                    &[("module", "merkle")],
                    rng.range(1, 1 << 34),
                );
                if i % 3 == 0 {
                    reg.gauge_set("batchzk_occupancy", &[("stage", "leaf")], i as f64 / 200.0);
                }
            }
            reg
        };
        let (a, b) = (record(7), record(7));
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_prometheus(), b.to_prometheus());
        // A different sample stream renders differently.
        assert_ne!(a.to_json(), record(8).to_json());
    }

    #[test]
    fn exposition_formats_render_expected_shapes() {
        let mut reg = Registry::new();
        reg.counter_add("requests_total", &[("module", "svc")], 3);
        reg.gauge_set("occupancy", &[], 0.5);
        reg.observe("latency_cycles", &[], 3);
        reg.observe("latency_cycles", &[], 900);
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total{module=\"svc\"} 3"));
        assert!(text.contains("# TYPE occupancy gauge"));
        assert!(text.contains("occupancy 0.5"));
        assert!(text.contains("latency_cycles_bucket{le=\"3\"} 1"));
        assert!(text.contains("latency_cycles_bucket{le=\"1023\"} 2"));
        assert!(text.contains("latency_cycles_sum 903"));
        assert!(text.contains("latency_cycles_count 2"));
        let json = reg.to_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"requests_total{module=\\\"svc\\\"}\":3"));
        assert!(json.contains("\"count\":2"));
        // Balanced braces as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn counter_and_gauge_accessors() {
        let mut reg = Registry::new();
        assert_eq!(reg.counter("x", &[]), 0);
        reg.counter_add("x", &[], 2);
        reg.counter_add("x", &[], 5);
        assert_eq!(reg.counter("x", &[]), 7);
        assert!(reg.gauge("g", &[]).is_none());
        reg.gauge_set("g", &[], 1.25);
        assert_eq!(reg.gauge("g", &[]), Some(1.25));
        // Label order does not matter for identity.
        reg.counter_add("y", &[("a", "1"), ("b", "2")], 1);
        assert_eq!(reg.counter("y", &[("b", "2"), ("a", "1")]), 1);
    }

    #[test]
    fn format_f64_is_parseable_json() {
        assert_eq!(format_f64(0.5), "0.5");
        assert_eq!(format_f64(2.0), "2.0");
        assert_eq!(format_f64(f64::NAN), "0.0");
        assert_eq!(format_f64(f64::INFINITY), "0.0");
    }

    #[test]
    fn quantile_edge_cases_are_pinned() {
        // Empty histogram: 0 for every q, including the extremes.
        let empty = Histogram::default();
        for q in [0.0, 0.5, 0.99, 1.0, 2.0, -1.0, f64::NAN] {
            assert_eq!(empty.quantile(q), 0, "empty histogram at q={q}");
        }

        // q = 1.0 returns the recorded max exactly, not the bucket bound.
        // 1_000_000 lives in the [524288, 1048575] bucket: a bucket-bound
        // answer would overshoot by ~4.8%.
        let mut h = Histogram::default();
        for v in [3u64, 700_000, 1_000_000] {
            h.observe(v);
        }
        assert_eq!(h.quantile(1.0), 1_000_000);
        assert_ne!(bucket_upper(bucket_index(1_000_000)), 1_000_000);
        // q beyond 1 clamps to the same top rank.
        assert_eq!(h.quantile(1.5), 1_000_000);
        // The top rank is exact even when several samples share the top
        // bucket (the overshoot case the bound-walk alone would hit).
        let mut crowded = Histogram::default();
        crowded.observe(600_000);
        crowded.observe(1_000_000);
        assert_eq!(crowded.quantile(1.0), 1_000_000);

        // q <= 0 and non-finite q clamp to the lowest rank and stay within
        // the recorded range.
        for q in [0.0, -3.0, f64::NAN] {
            let v = h.quantile(q);
            assert!(v >= h.min() && v <= h.max(), "q={q} gave {v}");
        }

        // A single-sample histogram answers that sample for every q.
        let mut one = Histogram::default();
        one.observe(37);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(one.quantile(q), 37);
        }
    }

    #[test]
    fn non_finite_values_render_stably_in_both_expositions() {
        // format_f64 itself: every non-finite input collapses to the same
        // stable token — no `inf` / `-inf` / `NaN` / `Infinity` drift.
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -f64::NAN] {
            assert_eq!(format_f64(v), "0.0", "non-finite {v} must render as 0.0");
        }

        // Through the registry: a gauge poisoned with each non-finite value
        // renders identically (and parseably) in Prometheus and JSON.
        let expose = |v: f64| {
            let mut reg = Registry::new();
            reg.gauge_set("poisoned", &[("kind", "gauge")], v);
            (reg.to_prometheus(), reg.to_json())
        };
        let (prom_ref, json_ref) = expose(f64::NAN);
        for v in [f64::INFINITY, f64::NEG_INFINITY] {
            let (prom, json) = expose(v);
            assert_eq!(prom, prom_ref, "Prometheus text drifts for {v}");
            assert_eq!(json, json_ref, "JSON drifts for {v}");
        }
        assert!(prom_ref.contains("poisoned{kind=\"gauge\"} 0.0"));
        assert!(json_ref.contains(":0.0"));
        for banned in ["inf", "Inf", "NaN", "nan"] {
            assert!(
                !prom_ref.contains(banned) && !json_ref.contains(banned),
                "exposition leaked `{banned}`"
            );
        }
    }
}
