//! # batchzk-metrics
//!
//! Service-level observability for the BatchZK reproduction: a
//! deterministic, dependency-free metrics [`Registry`] (counters, gauges,
//! log₂-bucketed histograms with p50/p95/p99), per-proof lifecycle
//! [`Span`]s in simulated device cycles, a trace-driven bottleneck
//! [`analysis`] that names the throughput-limiting stage of a pipelined
//! run and suggests a work-proportional thread reallocation, a windowed
//! flight-recorder [`timeline`] (fixed-width cycle windows with bounded
//! 2:1 downsampling), and a deterministic [`alerts`] engine that
//! evaluates declarative SLO rules window-by-window into an ordered
//! fire/resolve log.
//!
//! The PR 1 trace layer (`batchzk-gpu-sim`'s `TraceLevel` recorder)
//! answers *where cycles go inside one run*; this crate answers what the
//! proving **service** is doing — proofs/second, per-proof latency
//! quantiles, OOM pressure — and why a device profile tops out. Everything
//! is deterministic: both exposition formats ([`Registry::to_prometheus`],
//! [`Registry::to_json`]) render byte-identical output for identical
//! recordings, which is what lets `BENCH.json` act as a cross-PR
//! regression artifact.
//!
//! # Examples
//!
//! ```
//! use batchzk_metrics::{Registry, Span};
//!
//! let mut reg = Registry::new();
//! let mut span = Span::new(0, 0);
//! span.enter_stage("merkle-leaf", 0);
//! span.exit_stage(120);
//! span.complete(120);
//! reg.counter_add("batchzk_tasks_total", &[("module", "merkle")], 1);
//! reg.observe(
//!     "batchzk_lifecycle_cycles",
//!     &[("module", "merkle")],
//!     span.total_cycles(),
//! );
//! assert!(reg.to_prometheus().contains("batchzk_tasks_total"));
//! ```

#![deny(missing_docs)]

pub mod alerts;
pub mod analysis;
pub mod registry;
pub mod span;
pub mod timeline;

pub use alerts::{evaluate, AlertEvent, AlertKind, AlertLog, AlertRule};
pub use analysis::{
    analyze, analyze_pool, analyze_recovery, analyze_service, BoundShare, DeviceObservation,
    DeviceVerdict, PoolAnalysis, RecoveryAnalysis, RunAnalysis, ServiceAnalysis,
    ServiceClassObservation, ServiceClassVerdict, StageAdvice, StageObservation,
};
pub use registry::{Histogram, MetricId, Registry, HISTOGRAM_BUCKETS};
pub use span::{Span, StageSpan};
pub use timeline::{ClassWindow, DeviceWindow, Timeline, TimelineConfig, Window};
