//! Deterministic SLO alerting over a [`Timeline`].
//!
//! Production alerting evaluates rules against windowed time-series and
//! pages with a runbook link. This module reproduces that loop inside the
//! simulator's virtual time base: declarative [`AlertRule`]s — SLO
//! burn-rate per class, rejection rate, queue growth, device health — are
//! evaluated **window by window** with for-duration semantics (a rule must
//! breach for [`AlertRule::for_windows`] consecutive windows before it
//! fires, and resolves at the first clean window after firing). The output
//! is an ordered [`AlertLog`] of fire/resolve transitions, each naming the
//! OPERATIONS.md runbook section the on-call should open.
//!
//! Everything is integer arithmetic over the timeline's integer cells —
//! thresholds and observed values are in parts-per-million — so the same
//! replay produces byte-identical alert logs at any host thread count, and
//! the fire/resolve *window indexes* are regression-testable facts.

use crate::registry::escape_json;
use crate::timeline::{Timeline, Window};
use std::fmt::Write as _;

/// What a rule measures, per window. Values are parts-per-million except
/// [`QueueGrowth`](AlertKind::QueueGrowth), which scales a request count
/// by 1 000 000 so the shared ppm threshold field applies uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// SLO burn of one class: `slo_miss / completed` in the window, ppm.
    /// Windows with no completions of the class do not breach (and so
    /// resolve an active alert — the burn has drained).
    BurnRate {
        /// Class lane index.
        class: usize,
    },
    /// Rejection rate: `rejected / submitted` in the window, ppm. `None`
    /// aggregates every class. Windows with no arrivals do not breach.
    RejectionRate {
        /// Class lane index, or `None` for all classes combined.
        class: Option<usize>,
    },
    /// Sustained backlog of one class: the window's peak queue depth,
    /// scaled ×1 000 000 (a threshold of `3_000_000` means depth ≥ 3).
    QueueGrowth {
        /// Class lane index.
        class: usize,
    },
    /// Device health: the device's *idle* fraction of the window in ppm,
    /// evaluated only while the service has queued backlog — an idle
    /// device under backlog is stalled or dead. Idle windows with no
    /// backlog do not breach.
    DeviceStall {
        /// Device lane index.
        device: usize,
    },
}

/// One declarative alerting rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertRule {
    /// Stable rule name (used in the log, docs, and regression tests).
    pub name: String,
    /// What the rule measures.
    pub kind: AlertKind,
    /// Breach threshold in parts-per-million (see [`AlertKind`] for each
    /// kind's value semantics). A window breaches when `value >=
    /// threshold_ppm`.
    pub threshold_ppm: u64,
    /// For-duration: consecutive breaching windows required to fire.
    /// Must be ≥ 1.
    pub for_windows: usize,
    /// The OPERATIONS.md runbook section to open when this fires, e.g.
    /// `OPERATIONS.md#when-the-rejection-rate-spikes`.
    pub runbook: String,
}

/// One fire or resolve transition in the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertEvent {
    /// Name of the rule that transitioned.
    pub rule: String,
    /// `true` = fired, `false` = resolved.
    pub fired: bool,
    /// Index of the window the transition happened at.
    pub window: usize,
    /// Start cycle of that window.
    pub cycle: u64,
    /// The observed value (ppm semantics of the rule's kind) at the
    /// transition window; for a resolve, the first non-breaching value
    /// (0 when the window had no signal).
    pub value_ppm: u64,
    /// Runbook reference copied from the rule.
    pub runbook: String,
}

/// The ordered fire/resolve log of one evaluation, plus the rules that
/// were still firing when the timeline ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertLog {
    /// Transitions in (window, rule) order.
    pub events: Vec<AlertEvent>,
    /// Names of rules still active after the last window.
    pub still_firing: Vec<String>,
}

impl AlertLog {
    /// Number of fire transitions.
    pub fn fired(&self) -> usize {
        self.events.iter().filter(|e| e.fired).count()
    }

    /// Number of resolve transitions.
    pub fn resolved(&self) -> usize {
        self.events.iter().filter(|e| !e.fired).count()
    }

    /// Fire/resolve events of one rule, in order.
    pub fn events_for(&self, rule: &str) -> Vec<&AlertEvent> {
        self.events.iter().filter(|e| e.rule == rule).collect()
    }

    /// Canonical JSON exposition (integers and strings only, fixed field
    /// order — byte-deterministic).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":\"{}\",\"state\":\"{}\",\"window\":{},\"cycle\":{},\
                 \"value_ppm\":{},\"runbook\":\"{}\"}}",
                escape_json(&e.rule),
                if e.fired { "fire" } else { "resolve" },
                e.window,
                e.cycle,
                e.value_ppm,
                escape_json(&e.runbook),
            );
        }
        out.push_str("],\"still_firing\":[");
        for (i, name) in self.still_firing.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", escape_json(name));
        }
        out.push_str("]}");
        out
    }

    /// Human-readable log, one line per transition.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let _ = writeln!(
                out,
                "[window {:>3} @ cycle {:>12}] {:<7} {:<24} value {:>7} ppm  -> {}",
                e.window,
                e.cycle,
                if e.fired { "FIRE" } else { "resolve" },
                e.rule,
                e.value_ppm,
                e.runbook,
            );
        }
        for name in &self.still_firing {
            let _ = writeln!(out, "[end of timeline] still firing: {name}");
        }
        if out.is_empty() {
            out.push_str("(no alerts)\n");
        }
        out
    }
}

/// The per-window observed value of one rule, or `None` when the window
/// carries no signal for it (no completions, no arrivals, no backlog).
/// `None` never breaches, so it resolves an active alert.
fn observe(kind: &AlertKind, w: &Window, window_cycles: u64) -> Option<u64> {
    match kind {
        AlertKind::BurnRate { class } => {
            let c = w.classes.get(*class)?;
            if c.completed == 0 {
                None
            } else {
                Some(((c.slo_miss as u128 * 1_000_000) / c.completed as u128) as u64)
            }
        }
        AlertKind::RejectionRate { class } => {
            let (rejected, submitted) = match class {
                Some(ci) => {
                    let c = w.classes.get(*ci)?;
                    (c.rejected(), c.submitted())
                }
                None => (w.rejected(), w.submitted()),
            };
            if submitted == 0 {
                None
            } else {
                Some(((rejected as u128 * 1_000_000) / submitted as u128) as u64)
            }
        }
        AlertKind::QueueGrowth { class } => Some(
            w.classes
                .get(*class)?
                .queue_depth_peak
                .saturating_mul(1_000_000),
        ),
        AlertKind::DeviceStall { device } => {
            let d = w.devices.get(*device)?;
            if w.queue_depth_peak() == 0 {
                None
            } else {
                Some(1_000_000 - d.utilization_ppm(window_cycles))
            }
        }
    }
}

/// Evaluates `rules` against `timeline`, window by window, and returns the
/// ordered fire/resolve log.
///
/// Semantics per rule: a window *breaches* when its observed value
/// ([`AlertKind`]) is `Some(v)` with `v >= threshold_ppm`. The rule fires
/// at the window where its breach streak reaches `for_windows`, and
/// resolves at the first subsequent non-breaching window. Rules with
/// `for_windows == 0` are treated as 1. Rules indexing class or device
/// lanes the timeline does not have simply never fire.
pub fn evaluate(timeline: &Timeline, rules: &[AlertRule]) -> AlertLog {
    let mut events = Vec::new();
    let mut streak = vec![0usize; rules.len()];
    let mut active = vec![false; rules.len()];
    for (wi, w) in timeline.windows().iter().enumerate() {
        for (ri, rule) in rules.iter().enumerate() {
            let value = observe(&rule.kind, w, timeline.window_cycles());
            let breach = value.is_some_and(|v| v >= rule.threshold_ppm);
            if breach {
                streak[ri] += 1;
                if !active[ri] && streak[ri] >= rule.for_windows.max(1) {
                    active[ri] = true;
                    events.push(AlertEvent {
                        rule: rule.name.clone(),
                        fired: true,
                        window: wi,
                        cycle: w.start_cycle,
                        value_ppm: value.unwrap_or(0),
                        runbook: rule.runbook.clone(),
                    });
                }
            } else {
                streak[ri] = 0;
                if active[ri] {
                    active[ri] = false;
                    events.push(AlertEvent {
                        rule: rule.name.clone(),
                        fired: false,
                        window: wi,
                        cycle: w.start_cycle,
                        value_ppm: value.unwrap_or(0),
                        runbook: rule.runbook.clone(),
                    });
                }
            }
        }
    }
    let still_firing = rules
        .iter()
        .zip(&active)
        .filter(|(_, &a)| a)
        .map(|(r, _)| r.name.clone())
        .collect();
    AlertLog {
        events,
        still_firing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::TimelineConfig;

    fn timeline() -> Timeline {
        Timeline::new(TimelineConfig {
            window_cycles: 100,
            max_windows: 32,
            class_names: vec!["interactive".into()],
            devices: 1,
        })
    }

    fn rule(name: &str, kind: AlertKind, threshold_ppm: u64, for_windows: usize) -> AlertRule {
        AlertRule {
            name: name.into(),
            kind,
            threshold_ppm,
            for_windows,
            runbook: format!("OPERATIONS.md#{name}"),
        }
    }

    #[test]
    fn for_duration_delays_firing_and_resolves_on_first_clean_window() {
        let mut t = timeline();
        // Windows 0..3 reject half the traffic; window 4 is clean traffic;
        // window 5 has no arrivals at all.
        for w in 0..4u64 {
            t.record_accept(w * 100, 0);
            t.record_reject_queue_full(w * 100 + 1, 0);
        }
        t.record_accept(400, 0);
        t.record_accept(550, 0); // a window-5 arrival, accepted
        t.finalize(600);
        let r = rule(
            "rejection-rate",
            AlertKind::RejectionRate { class: None },
            300_000,
            2,
        );
        let log = evaluate(&t, &[r]);
        assert_eq!(log.fired(), 1);
        assert_eq!(log.resolved(), 1);
        let fire = &log.events[0];
        assert!(fire.fired);
        assert_eq!(
            fire.window, 1,
            "2-window for-duration fires at the 2nd breach"
        );
        assert_eq!(fire.value_ppm, 500_000);
        let resolve = &log.events[1];
        assert!(!resolve.fired);
        assert_eq!(resolve.window, 4);
        assert_eq!(resolve.value_ppm, 0);
        assert!(log.still_firing.is_empty());
    }

    #[test]
    fn no_signal_windows_do_not_breach_but_do_resolve() {
        let mut t = timeline();
        // Window 0: all completions miss SLO. Window 1: nothing completes.
        t.record_completion(0, 0, 500, false);
        t.record_completion(10, 0, 500, false);
        t.record_accept(150, 0);
        t.finalize(200);
        let r = rule("slo-burn", AlertKind::BurnRate { class: 0 }, 500_000, 1);
        let log = evaluate(&t, &[r]);
        assert_eq!(log.fired(), 1);
        assert_eq!(log.events[0].window, 0);
        assert_eq!(log.events[0].value_ppm, 1_000_000);
        assert_eq!(
            log.resolved(),
            1,
            "a completion-free window drains the burn"
        );
        assert_eq!(log.events[1].window, 1);
    }

    #[test]
    fn queue_growth_and_device_stall_semantics() {
        let mut t = timeline();
        t.sample_queue_depth(0, 0, 3);
        t.record_busy(0, 0, 100); // device fully busy in window 0
        t.sample_queue_depth(150, 0, 4);
        // Window 1: backlog present, device idle -> stall breach.
        t.finalize(200);
        let growth = rule(
            "queue-growth",
            AlertKind::QueueGrowth { class: 0 },
            3_000_000,
            1,
        );
        let stall = rule(
            "device-stall",
            AlertKind::DeviceStall { device: 0 },
            900_000,
            1,
        );
        let log = evaluate(&t, &[growth.clone(), stall.clone()]);
        let growth_events = log.events_for("queue-growth");
        assert_eq!(
            growth_events.len(),
            1,
            "fires in window 0 and never resolves"
        );
        assert!(log.still_firing.contains(&"queue-growth".into()));
        let stall_events = log.events_for("device-stall");
        assert_eq!(stall_events.len(), 1);
        assert!(stall_events[0].fired);
        assert_eq!(stall_events[0].window, 1, "busy window 0 does not breach");
        assert_eq!(stall_events[0].value_ppm, 1_000_000);
    }

    #[test]
    fn out_of_range_lanes_never_fire() {
        let mut t = timeline();
        t.record_reject_saturated(0, 0);
        t.finalize(100);
        let log = evaluate(
            &t,
            &[
                rule("ghost-class", AlertKind::BurnRate { class: 9 }, 0, 1),
                rule("ghost-device", AlertKind::DeviceStall { device: 9 }, 0, 1),
            ],
        );
        assert!(log.events.is_empty());
        assert!(log.still_firing.is_empty());
    }

    #[test]
    fn log_json_and_text_are_deterministic() {
        let mut t = timeline();
        for w in 0..3u64 {
            t.record_accept(w * 100, 0);
            t.record_reject_saturated(w * 100 + 1, 0);
        }
        t.record_accept(320, 0);
        t.finalize(400);
        let rules = [rule(
            "rejection-rate",
            AlertKind::RejectionRate { class: Some(0) },
            400_000,
            1,
        )];
        let log = evaluate(&t, &rules);
        assert_eq!(log.to_json(), evaluate(&t, &rules).to_json());
        assert!(log.to_json().contains("\"state\":\"fire\""));
        assert!(log.to_json().contains("\"state\":\"resolve\""));
        assert!(log.render_text().contains("FIRE"));
        assert!(log.render_text().contains("OPERATIONS.md#rejection-rate"));
        // An empty evaluation renders a placeholder, not an empty string.
        let empty = evaluate(&t, &[]);
        assert_eq!(empty.render_text(), "(no alerts)\n");
        assert_eq!(empty.to_json(), "{\"events\":[],\"still_firing\":[]}");
    }
}
