//! Per-proof lifecycle spans.
//!
//! A [`Span`] records one task's journey through a pipelined run in
//! simulated device cycles: when it was submitted, which stage held it over
//! which cycle interval (with the H2D/D2H bytes moved on its behalf while
//! resident there), and when its proof was emitted. The pipeline engine
//! opens a span at admission, closes/opens a [`StageSpan`] each time the
//! task shifts down the systolic array, and completes the span when the
//! task leaves the last stage — so the per-stage intervals tile the task's
//! residency exactly, which the conservation tests exploit.

/// One task's residency in one pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSpan {
    /// Stage (kernel) name the task was resident in.
    pub stage: String,
    /// Clock value when the task entered the stage.
    pub start_cycle: u64,
    /// Clock value when the task left the stage (`== start_cycle` while
    /// still resident).
    pub end_cycle: u64,
    /// Host→device bytes moved for this task while in this stage.
    pub h2d_bytes: u64,
    /// Device→host bytes moved for this task while in this stage.
    pub d2h_bytes: u64,
}

impl StageSpan {
    /// Cycles the task spent resident in this stage.
    pub fn cycles(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }
}

/// The full lifecycle of one task/proof through a pipelined run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Submission order of the task within its run (0-based).
    pub index: usize,
    /// Clock value when the task was admitted into the pipeline.
    pub submitted_cycle: u64,
    /// Clock value when the proof was emitted; `None` while in flight.
    pub completed_cycle: Option<u64>,
    /// Per-stage residency intervals, in traversal order.
    pub stages: Vec<StageSpan>,
}

impl Span {
    /// Opens a span for task `index` admitted at `submitted_cycle`.
    pub fn new(index: usize, submitted_cycle: u64) -> Self {
        Self {
            index,
            submitted_cycle,
            completed_cycle: None,
            stages: Vec::new(),
        }
    }

    /// Records entry into `stage` at clock `cycle`, opening a new
    /// [`StageSpan`].
    pub fn enter_stage(&mut self, stage: &str, cycle: u64) {
        self.stages.push(StageSpan {
            stage: stage.to_string(),
            start_cycle: cycle,
            end_cycle: cycle,
            h2d_bytes: 0,
            d2h_bytes: 0,
        });
    }

    /// Records exit from the current stage at clock `cycle`. No-op if no
    /// stage is open.
    pub fn exit_stage(&mut self, cycle: u64) {
        if let Some(s) = self.stages.last_mut() {
            s.end_cycle = cycle;
        }
    }

    /// Adds transfer bytes moved for the task in its current stage. No-op
    /// if no stage is open.
    pub fn add_bytes(&mut self, h2d: u64, d2h: u64) {
        if let Some(s) = self.stages.last_mut() {
            s.h2d_bytes += h2d;
            s.d2h_bytes += d2h;
        }
    }

    /// Marks the proof emitted at clock `cycle`.
    pub fn complete(&mut self, cycle: u64) {
        self.completed_cycle = Some(cycle);
    }

    /// True once the proof has been emitted.
    pub fn is_complete(&self) -> bool {
        self.completed_cycle.is_some()
    }

    /// End-to-end latency in cycles (admission → emission); 0 while in
    /// flight.
    pub fn total_cycles(&self) -> u64 {
        self.completed_cycle
            .map(|c| c - self.submitted_cycle)
            .unwrap_or(0)
    }

    /// Cycles spent resident in stages named `stage` (summed, in case a
    /// pipeline revisits a stage name).
    pub fn stage_cycles(&self, stage: &str) -> u64 {
        self.stages
            .iter()
            .filter(|s| s.stage == stage)
            .map(StageSpan::cycles)
            .sum()
    }

    /// Total H2D bytes moved for this task across all stages.
    pub fn h2d_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.h2d_bytes).sum()
    }

    /// Total D2H bytes moved for this task across all stages.
    pub fn d2h_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.d2h_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_tiles_residency() {
        let mut span = Span::new(3, 100);
        span.enter_stage("leaf", 100);
        span.add_bytes(4096, 0);
        span.exit_stage(150);
        span.enter_stage("layer", 150);
        span.add_bytes(0, 64);
        span.exit_stage(210);
        span.complete(210);

        assert!(span.is_complete());
        assert_eq!(span.total_cycles(), 110);
        assert_eq!(span.stage_cycles("leaf"), 50);
        assert_eq!(span.stage_cycles("layer"), 60);
        assert_eq!(span.stage_cycles("missing"), 0);
        // Stage intervals tile [submitted, completed] with no gap/overlap.
        let tiled: u64 = span.stages.iter().map(StageSpan::cycles).sum();
        assert_eq!(tiled, span.total_cycles());
        assert_eq!(span.h2d_bytes(), 4096);
        assert_eq!(span.d2h_bytes(), 64);
    }

    #[test]
    fn incomplete_span_reports_zero_latency() {
        let mut span = Span::new(0, 5);
        span.enter_stage("a", 5);
        assert!(!span.is_complete());
        assert_eq!(span.total_cycles(), 0);
        // Open stage has zero width until exited.
        assert_eq!(span.stage_cycles("a"), 0);
    }

    #[test]
    fn bytes_and_exit_without_stage_are_noops() {
        let mut span = Span::new(0, 0);
        span.add_bytes(1, 1);
        span.exit_stage(10);
        assert!(span.stages.is_empty());
    }

    #[test]
    fn repeated_stage_names_accumulate() {
        let mut span = Span::new(1, 0);
        span.enter_stage("fold", 0);
        span.exit_stage(10);
        span.enter_stage("fold", 10);
        span.exit_stage(25);
        assert_eq!(span.stage_cycles("fold"), 25);
    }
}
