//! Trace-driven bottleneck analysis.
//!
//! [`analyze`] consumes the per-step events recorded by the simulator at
//! `TraceLevel::Full` plus per-stage aggregates from a pipelined run, and
//! answers the question the paper's thread-allocation tuning answers by
//! hand: *which resource bounds throughput, and how should threads be
//! reallocated?*
//!
//! The algorithm works step by step over the run's critical path. Every
//! wall cycle of a step belongs to exactly one binding resource: if the
//! step's wall span exceeds its compute span, the step was bound by a copy
//! engine (whichever of H2D/D2H occupied more cycles); otherwise it was
//! bound by the longest-running kernel of that step. Summing attributed
//! cycles per resource yields each resource's share of the critical path;
//! the resource with the largest share is the limiting stage. When no
//! `Full` events are available the analyzer falls back to naming the stage
//! with the most busy cycles — correct for a balanced systolic pipeline,
//! where the busiest stage is the one that sets the step pace.
//!
//! Thread advice: a stage's useful work is estimated as
//! `busy_cycles × threads` (thread-cycles of useful execution under its
//! current allocation). The work-proportional ideal gives each stage
//! `total_threads × work_i / Σ work`, the allocation under which — in the
//! uniform-kernel cost model — all stages would finish a step
//! simultaneously and no stage would stall the systolic advance.

use crate::registry::{escape_json, format_f64};
use batchzk_gpu_sim::{KernelEvent, StepEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-stage aggregate observations from a pipelined run, decoupled from
/// any particular pipeline implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct StageObservation {
    /// Stage (kernel) name.
    pub name: String,
    /// Threads currently allocated to the stage.
    pub threads: u32,
    /// Tasks the stage processed.
    pub tasks: u64,
    /// Cycles of useful kernel work summed over the stage's threads.
    pub busy_cycles: u64,
    /// Wall cycles the stage held a task.
    pub occupied_cycles: u64,
}

/// One resource's share of the run's critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundShare {
    /// Resource name: a stage/kernel name, `copy-h2d`, or `copy-d2h`.
    pub resource: String,
    /// Wall cycles attributed to the resource as the binding one.
    pub cycles: u64,
    /// Steps on which this resource was binding.
    pub steps: u64,
}

/// Per-stage verdict: current allocation vs the work-proportional ideal.
#[derive(Debug, Clone, PartialEq)]
pub struct StageAdvice {
    /// Stage name.
    pub name: String,
    /// Current thread allocation.
    pub threads: u32,
    /// Suggested allocation under the work-proportional ideal (≥ 1).
    pub suggested_threads: u32,
    /// This stage's fraction of total useful thread-cycles, 0..=1.
    pub work_share: f64,
    /// `threads / suggested_threads` — above 1 means over-provisioned,
    /// below 1 under-provisioned, 1 means at the ideal.
    pub allocation_ratio: f64,
}

/// The analyzer's verdict for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunAnalysis {
    /// Wall cycles of the analyzed run (sum over steps, or the max stage
    /// occupancy in the fallback path).
    pub total_cycles: u64,
    /// The throughput-limiting resource: the one binding the most wall
    /// cycles.
    pub limiting_stage: String,
    /// Fraction of the critical path bound by `limiting_stage`, 0..=1.
    pub limiting_share: f64,
    /// All resources' critical-path shares, descending by cycles (ties
    /// broken by name, ascending).
    pub bound: Vec<BoundShare>,
    /// Per-stage thread-allocation advice, in observation order.
    pub advice: Vec<StageAdvice>,
}

impl RunAnalysis {
    /// Renders a compact human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "limiting stage: {} ({:.1}% of {} critical-path cycles)",
            self.limiting_stage,
            self.limiting_share * 100.0,
            self.total_cycles
        );
        for b in &self.bound {
            let _ = writeln!(
                out,
                "  bound by {:<20} {:>12} cycles over {} steps",
                b.resource, b.cycles, b.steps
            );
        }
        if !self.advice.is_empty() {
            let _ = writeln!(
                out,
                "thread allocation vs work-proportional ideal \
                 (ratio > 1 over-provisioned):"
            );
            for a in &self.advice {
                let _ = writeln!(
                    out,
                    "  {:<20} threads {:>6} -> suggest {:>6}  \
                     work share {:>5.1}%  ratio {:.2}",
                    a.name,
                    a.threads,
                    a.suggested_threads,
                    a.work_share * 100.0,
                    a.allocation_ratio
                );
            }
        }
        out
    }

    /// Renders the analysis as canonical JSON (sorted, deterministic).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"limiting_stage\":\"{}\",\"limiting_share\":{},\"total_cycles\":{},\"bound\":[",
            escape_json(&self.limiting_stage),
            format_f64(self.limiting_share),
            self.total_cycles
        );
        for (i, b) in self.bound.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"resource\":\"{}\",\"cycles\":{},\"steps\":{}}}",
                escape_json(&b.resource),
                b.cycles,
                b.steps
            );
        }
        out.push_str("],\"advice\":[");
        for (i, a) in self.advice.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":\"{}\",\"threads\":{},\"suggested_threads\":{},\
                 \"work_share\":{},\"allocation_ratio\":{}}}",
                escape_json(&a.name),
                a.threads,
                a.suggested_threads,
                format_f64(a.work_share),
                format_f64(a.allocation_ratio)
            );
        }
        out.push_str("]}");
        out
    }
}

/// Per-device aggregate observations from a multi-device (pool) run,
/// decoupled from any particular pool implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceObservation {
    /// Device name, e.g. `"A100 #0"`.
    pub name: String,
    /// Tasks the device completed.
    pub tasks: u64,
    /// Wall milliseconds the device spent on this run.
    pub elapsed_ms: f64,
    /// Time-weighted mean core utilization, 0..=1.
    pub mean_utilization: f64,
}

/// One device's verdict inside a [`PoolAnalysis`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceVerdict {
    /// Device name.
    pub name: String,
    /// Tasks the device completed.
    pub tasks: u64,
    /// Wall milliseconds the device spent.
    pub elapsed_ms: f64,
    /// Time-weighted mean core utilization, 0..=1.
    pub mean_utilization: f64,
    /// `elapsed_ms / makespan_ms` — 1.0 for the straggler that sets the
    /// makespan, lower for devices that idled at the barrier.
    pub time_share: f64,
}

/// The analyzer's verdict for a multi-device run: who straggled, how
/// balanced the shard was, and how well the pool scaled against a
/// single-device baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolAnalysis {
    /// Per-device verdicts, in pool order.
    pub devices: Vec<DeviceVerdict>,
    /// The pool's makespan in milliseconds (max per-device elapsed).
    pub makespan_ms: f64,
    /// Max-over-mean of elapsed time across devices that ran work
    /// (1.0 = perfectly balanced; 0 when nothing ran).
    pub imbalance: f64,
    /// `single_device_ms / makespan_ms`, 0 when no baseline was given.
    pub speedup: f64,
    /// `speedup / devices` — the fraction of perfect linear scaling
    /// achieved (1.0 = ideal), 0 when no baseline was given.
    pub scaling_efficiency: f64,
}

impl PoolAnalysis {
    /// Renders a compact human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "pool: {} devices, makespan {:.3} ms, imbalance {:.3}",
            self.devices.len(),
            self.makespan_ms,
            self.imbalance
        );
        if self.speedup > 0.0 {
            let _ = writeln!(
                out,
                "  speedup {:.2}x vs single device, scaling efficiency {:.1}%",
                self.speedup,
                self.scaling_efficiency * 100.0
            );
        }
        for d in &self.devices {
            let _ = writeln!(
                out,
                "  {:<12} tasks {:>6}  elapsed {:>10.3} ms  \
                 util {:>5.1}%  time share {:>5.1}%",
                d.name,
                d.tasks,
                d.elapsed_ms,
                d.mean_utilization * 100.0,
                d.time_share * 100.0
            );
        }
        out
    }

    /// Renders the analysis as canonical JSON (sorted, deterministic).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"makespan_ms\":{},\"imbalance\":{},\"speedup\":{},\
             \"scaling_efficiency\":{},\"devices\":[",
            format_f64(self.makespan_ms),
            format_f64(self.imbalance),
            format_f64(self.speedup),
            format_f64(self.scaling_efficiency)
        );
        for (i, d) in self.devices.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"tasks\":{},\"elapsed_ms\":{},\
                 \"mean_utilization\":{},\"time_share\":{}}}",
                escape_json(&d.name),
                d.tasks,
                format_f64(d.elapsed_ms),
                format_f64(d.mean_utilization),
                format_f64(d.time_share)
            );
        }
        out.push_str("]}");
        out
    }
}

/// Analyzes a multi-device run: per-device imbalance and, when a
/// single-device baseline is supplied, speedup and scaling efficiency.
///
/// `single_device_ms` is the wall time the same workload took on one
/// device of the same profile (pass `None` when no baseline exists — the
/// scaling fields then report 0).
pub fn analyze_pool(devices: &[DeviceObservation], single_device_ms: Option<f64>) -> PoolAnalysis {
    let makespan_ms = devices.iter().map(|d| d.elapsed_ms).fold(0.0, f64::max);
    let verdicts: Vec<DeviceVerdict> = devices
        .iter()
        .map(|d| DeviceVerdict {
            name: d.name.clone(),
            tasks: d.tasks,
            elapsed_ms: d.elapsed_ms,
            mean_utilization: d.mean_utilization,
            time_share: if makespan_ms > 0.0 {
                d.elapsed_ms / makespan_ms
            } else {
                0.0
            },
        })
        .collect();
    let active: Vec<f64> = devices
        .iter()
        .filter(|d| d.elapsed_ms > 0.0)
        .map(|d| d.elapsed_ms)
        .collect();
    let imbalance = if active.is_empty() {
        0.0
    } else {
        makespan_ms / (active.iter().sum::<f64>() / active.len() as f64)
    };
    let speedup = match single_device_ms {
        Some(base) if makespan_ms > 0.0 => base / makespan_ms,
        _ => 0.0,
    };
    let scaling_efficiency = if devices.is_empty() {
        0.0
    } else {
        speedup / devices.len() as f64
    };
    PoolAnalysis {
        devices: verdicts,
        makespan_ms,
        imbalance,
        speedup,
        scaling_efficiency,
    }
}

/// The analyzer's verdict on fault-recovery overhead: how much slower a
/// run that lost devices mid-batch finished compared to its fault-free
/// twin, and how much work the recovery replayed.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryAnalysis {
    /// Makespan of the fault-free baseline run, in milliseconds.
    pub fault_free_ms: f64,
    /// Makespan of the faulty (recovered) run, in milliseconds.
    pub faulty_ms: f64,
    /// `faulty_ms / fault_free_ms` — 1.0 means recovery was free, 2.0
    /// means the faults doubled the makespan (0 when no baseline).
    pub overhead_ratio: f64,
    /// Devices that fail-stopped during the faulty run.
    pub failed_devices: usize,
    /// Tasks salvaged and replayed during recovery.
    pub replayed_tasks: usize,
    /// Resharding rounds the recovery needed beyond the initial one.
    pub replay_rounds: usize,
}

impl RecoveryAnalysis {
    /// Renders a compact human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "recovery: {} failed device(s), {} task(s) replayed over {} round(s)",
            self.failed_devices, self.replayed_tasks, self.replay_rounds
        );
        let _ = writeln!(
            out,
            "  makespan {:.3} ms vs fault-free {:.3} ms — {:.2}x overhead",
            self.faulty_ms, self.fault_free_ms, self.overhead_ratio
        );
        out
    }

    /// Renders the analysis as canonical JSON (sorted, deterministic).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"fault_free_ms\":{},\"faulty_ms\":{},\"overhead_ratio\":{},\
             \"failed_devices\":{},\"replayed_tasks\":{},\"replay_rounds\":{}}}",
            format_f64(self.fault_free_ms),
            format_f64(self.faulty_ms),
            format_f64(self.overhead_ratio),
            self.failed_devices,
            self.replayed_tasks,
            self.replay_rounds
        )
    }
}

/// Quantifies fault-recovery overhead against a fault-free baseline of
/// the same workload on the same pool profile.
///
/// `fault_free_ms` / `faulty_ms` are the two runs' makespans;
/// `failed_devices`, `replayed_tasks` and `replay_rounds` come from the
/// scheduler's recovery report. A `fault_free_ms` of 0 zeroes the ratio
/// rather than dividing by it.
pub fn analyze_recovery(
    fault_free_ms: f64,
    faulty_ms: f64,
    failed_devices: usize,
    replayed_tasks: usize,
    replay_rounds: usize,
) -> RecoveryAnalysis {
    RecoveryAnalysis {
        fault_free_ms,
        faulty_ms,
        overhead_ratio: if fault_free_ms > 0.0 {
            faulty_ms / fault_free_ms
        } else {
            0.0
        },
        failed_devices,
        replayed_tasks,
        replay_rounds,
    }
}

/// Per-class input to [`analyze_service`]: the accounting one service
/// run produced for one priority class, in the cycle domain.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceClassObservation {
    /// Class name (`"interactive"`, `"standard"`, `"bulk"`).
    pub class: String,
    /// Latency SLO in cycles.
    pub slo_cycles: u64,
    /// Requests that arrived.
    pub submitted: u64,
    /// Requests admitted past admission control.
    pub accepted: u64,
    /// Requests rejected (all reasons).
    pub rejected: u64,
    /// Requests whose proof was emitted.
    pub completed: u64,
    /// Completions with latency ≤ SLO.
    pub within_slo: u64,
    /// Nearest-rank p99 latency in cycles.
    pub latency_p99_cycles: u64,
}

/// The analyzer's verdict on one class's SLO health.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceClassVerdict {
    /// Class name.
    pub class: String,
    /// Completions within SLO over completions (1 when idle).
    pub slo_attainment: f64,
    /// Rejections over submissions (0 when idle).
    pub rejection_rate: f64,
    /// `latency_p99 / slo` — the SLO burn multiple; > 1 means the tail
    /// misses the objective (0 when nothing completed).
    pub p99_burn: f64,
    /// One-line advice: healthy, shed load, or raise capacity.
    pub advice: String,
}

/// SLO analysis of one online service run across its priority classes.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceAnalysis {
    /// Per-class verdicts, in the input order.
    pub classes: Vec<ServiceClassVerdict>,
    /// Overall rejection rate across classes.
    pub rejection_rate: f64,
}

impl ServiceAnalysis {
    /// Renders a compact human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "service: {:.1}% of requests rejected overall",
            self.rejection_rate * 100.0
        );
        for v in &self.classes {
            let _ = writeln!(
                out,
                "  {}: {:.1}% within SLO, p99 at {:.2}x of SLO, {:.1}% rejected — {}",
                v.class,
                v.slo_attainment * 100.0,
                v.p99_burn,
                v.rejection_rate * 100.0,
                v.advice
            );
        }
        out
    }

    /// Renders the analysis as canonical JSON (sorted, deterministic).
    pub fn to_json(&self) -> String {
        let classes = self
            .classes
            .iter()
            .map(|v| {
                format!(
                    "{{\"class\":\"{}\",\"slo_attainment\":{},\"rejection_rate\":{},\
                     \"p99_burn\":{},\"advice\":\"{}\"}}",
                    escape_json(&v.class),
                    format_f64(v.slo_attainment),
                    format_f64(v.rejection_rate),
                    format_f64(v.p99_burn),
                    escape_json(&v.advice)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"classes\":[{classes}],\"rejection_rate\":{}}}",
            format_f64(self.rejection_rate)
        )
    }
}

/// Judges each class's SLO health from one service run's accounting.
///
/// The verdict logic mirrors the `OPERATIONS.md` runbook: a class that
/// meets ≥ 99% of completions within SLO and sheds < 1% of traffic is
/// healthy; a class whose p99 burns past its SLO needs a tighter
/// admission cap (queueing is eating the budget) or more devices; a
/// class shedding load while within SLO has its queue cap set below
/// what the pool could absorb.
pub fn analyze_service(classes: &[ServiceClassObservation]) -> ServiceAnalysis {
    let submitted: u64 = classes.iter().map(|c| c.submitted).sum();
    let rejected: u64 = classes.iter().map(|c| c.rejected).sum();
    let verdicts = classes
        .iter()
        .map(|c| {
            let slo_attainment = if c.completed == 0 {
                1.0
            } else {
                c.within_slo as f64 / c.completed as f64
            };
            let rejection_rate = if c.submitted == 0 {
                0.0
            } else {
                c.rejected as f64 / c.submitted as f64
            };
            let p99_burn = if c.completed == 0 {
                0.0
            } else {
                c.latency_p99_cycles as f64 / c.slo_cycles as f64
            };
            let advice = if c.submitted == 0 {
                "no traffic".to_string()
            } else if p99_burn > 1.0 {
                "p99 over SLO: lower this class's queue cap or add devices".to_string()
            } else if rejection_rate > 0.01 {
                "within SLO but shedding load: raise the queue cap or max_outstanding".to_string()
            } else {
                "healthy".to_string()
            };
            ServiceClassVerdict {
                class: c.class.clone(),
                slo_attainment,
                rejection_rate,
                p99_burn,
                advice,
            }
        })
        .collect();
    ServiceAnalysis {
        classes: verdicts,
        rejection_rate: if submitted == 0 {
            0.0
        } else {
            rejected as f64 / submitted as f64
        },
    }
}

/// Computes per-stage thread advice from aggregate observations.
fn thread_advice(stages: &[StageObservation], total_threads: u32) -> Vec<StageAdvice> {
    let works: Vec<u128> = stages
        .iter()
        .map(|s| s.busy_cycles as u128 * s.threads as u128)
        .collect();
    let total_work: u128 = works.iter().sum();
    stages
        .iter()
        .zip(&works)
        .map(|(s, &work)| {
            let work_share = if total_work == 0 {
                0.0
            } else {
                work as f64 / total_work as f64
            };
            let suggested =
                match (total_threads as u128 * work + total_work / 2).checked_div(total_work) {
                    Some(t) => (t as u32).max(1),
                    None => s.threads.max(1),
                };
            StageAdvice {
                name: s.name.clone(),
                threads: s.threads,
                suggested_threads: suggested,
                work_share,
                allocation_ratio: s.threads as f64 / suggested as f64,
            }
        })
        .collect()
}

/// Analyzes one run's critical path (see module docs for the algorithm).
///
/// `step_events`/`kernel_events` come from the device after a
/// `TraceLevel::Full` run and may be empty (e.g. the run was traced at
/// `Stats`) — the analyzer then falls back to busy-cycle attribution over
/// `stages`. `total_threads` is the budget the thread advice distributes.
pub fn analyze(
    step_events: &[StepEvent],
    kernel_events: &[KernelEvent],
    stages: &[StageObservation],
    total_threads: u32,
) -> RunAnalysis {
    let mut attributed: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let mut total_cycles = 0u64;

    if step_events.is_empty() {
        // Fallback: the busiest stage paces a balanced systolic pipeline.
        for s in stages {
            attributed.insert(s.name.clone(), (s.busy_cycles, s.tasks));
        }
        total_cycles = stages.iter().map(|s| s.occupied_cycles).max().unwrap_or(0);
    } else {
        // Kernel events grouped by step, in recording order.
        let mut kernels_by_step: BTreeMap<u64, Vec<&KernelEvent>> = BTreeMap::new();
        for e in kernel_events {
            kernels_by_step.entry(e.step).or_default().push(e);
        }
        for se in step_events {
            total_cycles += se.step_cycles;
            let binding: String = if se.step_cycles > se.compute_cycles {
                if se.h2d_cycles >= se.d2h_cycles {
                    "copy-h2d".to_string()
                } else {
                    "copy-d2h".to_string()
                }
            } else {
                kernels_by_step
                    .get(&se.step)
                    .and_then(|ks| {
                        // Longest kernel binds; first wins ties
                        // (recording order is deterministic).
                        ks.iter()
                            .max_by(|a, b| a.duration_cycles.cmp(&b.duration_cycles))
                            .map(|k| k.name.clone())
                    })
                    .unwrap_or_else(|| "idle".to_string())
            };
            let entry = attributed.entry(binding).or_insert((0, 0));
            entry.0 += se.step_cycles;
            entry.1 += 1;
        }
    }

    let mut bound: Vec<BoundShare> = attributed
        .into_iter()
        .map(|(resource, (cycles, steps))| BoundShare {
            resource,
            cycles,
            steps,
        })
        .collect();
    // Descending by cycles; the BTreeMap source already ordered names
    // ascending, and the sort is stable, so ties break by name.
    bound.sort_by_key(|b| std::cmp::Reverse(b.cycles));

    let (limiting_stage, limiting_cycles) = bound
        .first()
        .map(|b| (b.resource.clone(), b.cycles))
        .unwrap_or_else(|| ("idle".to_string(), 0));
    let limiting_share = if total_cycles == 0 {
        0.0
    } else {
        limiting_cycles as f64 / total_cycles as f64
    };

    RunAnalysis {
        total_cycles,
        limiting_stage,
        limiting_share,
        bound,
        advice: thread_advice(stages, total_threads),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(step: u64, name: &str, duration: u64) -> KernelEvent {
        KernelEvent {
            step,
            start_cycle: 0,
            duration_cycles: duration,
            name: name.to_string(),
            threads: 32,
            busy_cycles: duration * 32,
            warp_occupancy: 1.0,
        }
    }

    fn step(step: u64, wall: u64, compute: u64, h2d: u64, d2h: u64) -> StepEvent {
        StepEvent {
            step,
            start_cycle: 0,
            step_cycles: wall,
            compute_cycles: compute,
            h2d_cycles: h2d,
            d2h_cycles: d2h,
        }
    }

    #[test]
    fn compute_bound_step_blames_longest_kernel() {
        let steps = vec![step(0, 100, 100, 10, 0), step(1, 100, 100, 0, 0)];
        let kernels = vec![
            kernel(0, "fast", 40),
            kernel(0, "slow", 100),
            kernel(1, "fast", 30),
            kernel(1, "slow", 100),
        ];
        let a = analyze(&steps, &kernels, &[], 1024);
        assert_eq!(a.limiting_stage, "slow");
        assert_eq!(a.total_cycles, 200);
        assert_eq!(a.limiting_share, 1.0);
        assert_eq!(a.bound[0].steps, 2);
    }

    #[test]
    fn transfer_bound_step_blames_copy_engine() {
        // Wall span exceeds compute: the copy engine paced the step.
        let steps = vec![step(0, 200, 120, 200, 30), step(1, 150, 150, 10, 0)];
        let kernels = vec![kernel(0, "k", 120), kernel(1, "k", 150)];
        let a = analyze(&steps, &kernels, &[], 1024);
        assert_eq!(a.limiting_stage, "copy-h2d");
        assert_eq!(a.total_cycles, 350);
        let by_name: Vec<(&str, u64)> = a
            .bound
            .iter()
            .map(|b| (b.resource.as_str(), b.cycles))
            .collect();
        assert_eq!(by_name, vec![("copy-h2d", 200), ("k", 150)]);
    }

    #[test]
    fn fallback_uses_busiest_stage() {
        let stages = vec![
            StageObservation {
                name: "a".into(),
                threads: 100,
                tasks: 10,
                busy_cycles: 500,
                occupied_cycles: 1000,
            },
            StageObservation {
                name: "b".into(),
                threads: 100,
                tasks: 10,
                busy_cycles: 900,
                occupied_cycles: 1000,
            },
        ];
        let a = analyze(&[], &[], &stages, 200);
        assert_eq!(a.limiting_stage, "b");
        assert_eq!(a.total_cycles, 1000);
    }

    #[test]
    fn advice_is_work_proportional_and_conserves_threads_roughly() {
        let stages = vec![
            StageObservation {
                name: "light".into(),
                threads: 512,
                tasks: 8,
                busy_cycles: 100,
                occupied_cycles: 800,
            },
            StageObservation {
                name: "heavy".into(),
                threads: 512,
                tasks: 8,
                busy_cycles: 300,
                occupied_cycles: 800,
            },
        ];
        let a = analyze(&[], &[], &stages, 1024);
        assert_eq!(a.advice.len(), 2);
        let light = &a.advice[0];
        let heavy = &a.advice[1];
        // Equal threads, 3x the busy cycles → 3x the suggested threads.
        assert_eq!(light.suggested_threads, 256);
        assert_eq!(heavy.suggested_threads, 768);
        assert!(light.allocation_ratio > 1.0, "light is over-provisioned");
        assert!(heavy.allocation_ratio < 1.0, "heavy is under-provisioned");
        assert!((light.work_share + heavy.work_share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_work_advice_keeps_current_threads() {
        let stages = vec![StageObservation {
            name: "idle".into(),
            threads: 64,
            tasks: 0,
            busy_cycles: 0,
            occupied_cycles: 0,
        }];
        let a = analyze(&[], &[], &stages, 128);
        assert_eq!(a.advice[0].suggested_threads, 64);
        assert_eq!(a.advice[0].work_share, 0.0);
    }

    #[test]
    fn renderings_are_deterministic() {
        let steps = vec![step(0, 100, 100, 0, 0)];
        let kernels = vec![kernel(0, "k", 100)];
        let stages = vec![StageObservation {
            name: "k".into(),
            threads: 32,
            tasks: 1,
            busy_cycles: 100,
            occupied_cycles: 100,
        }];
        let a = analyze(&steps, &kernels, &stages, 32);
        let b = analyze(&steps, &kernels, &stages, 32);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.render_text(), b.render_text());
        assert!(a.to_json().contains("\"limiting_stage\":\"k\""));
        assert!(a.render_text().contains("limiting stage: k"));
        // Cheap well-formedness check.
        let json = a.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    fn device(name: &str, tasks: u64, ms: f64, util: f64) -> DeviceObservation {
        DeviceObservation {
            name: name.into(),
            tasks,
            elapsed_ms: ms,
            mean_utilization: util,
        }
    }

    #[test]
    fn pool_analysis_reports_imbalance_and_scaling() {
        let devices = vec![
            device("A100 #0", 6, 10.0, 0.9),
            device("A100 #1", 6, 8.0, 0.85),
        ];
        let a = analyze_pool(&devices, Some(18.0));
        assert_eq!(a.makespan_ms, 10.0);
        assert!((a.imbalance - 10.0 / 9.0).abs() < 1e-12);
        assert!((a.speedup - 1.8).abs() < 1e-12);
        assert!((a.scaling_efficiency - 0.9).abs() < 1e-12);
        assert_eq!(a.devices[0].time_share, 1.0, "straggler sets the makespan");
        assert!((a.devices[1].time_share - 0.8).abs() < 1e-12);
    }

    #[test]
    fn pool_analysis_without_baseline_zeroes_scaling() {
        let a = analyze_pool(&[device("V100 #0", 3, 5.0, 0.7)], None);
        assert_eq!(a.speedup, 0.0);
        assert_eq!(a.scaling_efficiency, 0.0);
        assert_eq!(a.imbalance, 1.0, "one active device is balanced");
    }

    #[test]
    fn pool_analysis_renderings_are_deterministic() {
        let devices = vec![
            device("A100 #0", 4, 7.5, 0.8),
            device("A100 #1", 0, 0.0, 0.0),
        ];
        let a = analyze_pool(&devices, Some(14.0));
        let b = analyze_pool(&devices, Some(14.0));
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.render_text(), b.render_text());
        assert!(a.to_json().contains("\"scaling_efficiency\":"));
        assert!(a.render_text().contains("scaling efficiency"));
        // Idle device excluded from imbalance, included in the listing.
        assert_eq!(a.imbalance, 1.0);
        assert_eq!(a.devices.len(), 2);
        let json = a.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn recovery_analysis_reports_overhead() {
        let a = analyze_recovery(10.0, 15.0, 1, 7, 1);
        assert!((a.overhead_ratio - 1.5).abs() < 1e-12);
        assert_eq!(a.failed_devices, 1);
        assert_eq!(a.replayed_tasks, 7);
        assert_eq!(a.replay_rounds, 1);
        assert!(a.render_text().contains("1.50x overhead"));
        assert!(a.to_json().contains("\"overhead_ratio\":1.5"));
        assert_eq!(a.to_json(), analyze_recovery(10.0, 15.0, 1, 7, 1).to_json());
        // No baseline: ratio zeroed, not a division by zero.
        assert_eq!(analyze_recovery(0.0, 5.0, 0, 0, 0).overhead_ratio, 0.0);
        let json = a.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn empty_pool_analysis_is_zeroed() {
        let a = analyze_pool(&[], None);
        assert_eq!(a.makespan_ms, 0.0);
        assert_eq!(a.imbalance, 0.0);
        assert_eq!(a.scaling_efficiency, 0.0);
        assert!(a.devices.is_empty());
    }

    #[test]
    fn empty_inputs_yield_idle_verdict() {
        let a = analyze(&[], &[], &[], 0);
        assert_eq!(a.limiting_stage, "idle");
        assert_eq!(a.total_cycles, 0);
        assert_eq!(a.limiting_share, 0.0);
        assert!(a.advice.is_empty());
    }

    #[test]
    fn service_analysis_judges_slo_health() {
        let obs = |class: &str, slo, completed, within, rejected, p99| ServiceClassObservation {
            class: class.into(),
            slo_cycles: slo,
            submitted: completed + rejected,
            accepted: completed,
            rejected,
            completed,
            within_slo: within,
            latency_p99_cycles: p99,
        };
        let a = analyze_service(&[
            // Healthy: everything lands within SLO, nothing shed.
            obs("interactive", 10_000, 100, 100, 0, 8_000),
            // Burning: tail blows through the SLO.
            obs("standard", 10_000, 100, 60, 0, 25_000),
            // Shedding while within SLO: cap set too low.
            obs("bulk", 100_000, 50, 50, 50, 40_000),
        ]);
        assert_eq!(a.classes.len(), 3);
        assert_eq!(a.classes[0].advice, "healthy");
        assert!(
            a.classes[1].advice.contains("p99 over SLO"),
            "{}",
            a.classes[1].advice
        );
        assert!(a.classes[2].advice.contains("raise the queue cap"));
        assert!((a.classes[1].p99_burn - 2.5).abs() < 1e-12);
        assert!((a.rejection_rate - 50.0 / 300.0).abs() < 1e-12);
        let text = a.render_text();
        assert!(text.contains("interactive") && text.contains("bulk"));
        let json = a.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"class\":\"standard\""));
        // Deterministic rendering.
        assert_eq!(
            json,
            analyze_service(&[
                obs("interactive", 10_000, 100, 100, 0, 8_000),
                obs("standard", 10_000, 100, 60, 0, 25_000),
                obs("bulk", 100_000, 50, 50, 50, 40_000),
            ])
            .to_json()
        );
        // Idle input: no divisions by zero.
        let idle = analyze_service(&[obs("interactive", 10_000, 0, 0, 0, 0)]);
        assert_eq!(idle.classes[0].slo_attainment, 1.0);
        assert_eq!(idle.classes[0].advice, "no traffic");
        assert_eq!(idle.rejection_rate, 0.0);
    }
}
