//! Deterministic host-side parallelism for the BatchZK reproduction.
//!
//! The simulator's own thesis — throughput comes from keeping every
//! execution unit busy — applies to the host too: Montgomery muls, SHA-256
//! compressions and the N independent devices of a `DevicePool` are
//! embarrassingly parallel streams, yet a naive `thread::spawn` free-for-all
//! would destroy the byte-determinism the bench trajectory is built on.
//!
//! This crate is the middle path: a dependency-free *scoped work-stealing*
//! pool (hermetic, std-only, matching the repo's no-external-deps rule) with
//! **deterministic result ordering**. Workers race over a shared index
//! space — each worker owns a contiguous range and steals from the back of
//! other workers' ranges when its own runs dry — but every result is
//! written back into its input's slot, so the output `Vec` is byte-identical
//! to the `threads = 1` run no matter how the race unfolds. Parallelism may
//! only change wall-clock time, never bytes.
//!
//! Thread count resolution (first match wins):
//! 1. an explicit count passed by the caller (`*_with` variants),
//! 2. a process-wide override set via [`set_threads`] (the `--threads` CLI
//!    flag),
//! 3. the `BATCHZK_THREADS` environment variable,
//! 4. [`std::thread::available_parallelism`].
//!
//! # Examples
//!
//! ```
//! // Results land in input order regardless of which worker ran what,
//! // so the bytes match the serial run at any thread count.
//! let squares = batchzk_par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! let mut cells = vec![0u64; 8];
//! batchzk_par::with_threads(4, || {
//!     batchzk_par::par_map_mut(&mut cells, |i, c| *c += i as u64);
//! });
//! assert_eq!(cells, vec![0, 1, 2, 3, 4, 5, 6, 7]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::thread;

/// Process-wide thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets a process-wide thread-count override (the `--threads` flag).
/// A count of 0 clears the override, falling back to `BATCHZK_THREADS`
/// and then [`std::thread::available_parallelism`].
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Resolves the effective thread count: the [`set_threads`] override if
/// set, else `BATCHZK_THREADS` (ignored when unparsable or 0), else the
/// machine's available parallelism, else 1. Always at least 1.
pub fn current_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("BATCHZK_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Physical parallelism of the host as reported by
/// [`std::thread::available_parallelism`] (1 when the query fails).
/// Unlike [`current_threads`] this ignores every override: it is the
/// quantity wall-clock measurements record so readers can tell a
/// saturated host from a scaling failure.
pub fn host_cores() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f` with the thread count forced to `n`, restoring the previous
/// override afterwards. Intended for single-threaded drivers (the bench
/// binary's wall-clock sweep and determinism tests); the override is
/// process-wide, so concurrent callers will observe it — harmless for
/// correctness (any thread count produces identical bytes) but it can
/// perturb concurrent wall-clock measurements.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = THREAD_OVERRIDE.swap(n, Ordering::Relaxed);
    let out = f();
    THREAD_OVERRIDE.store(prev, Ordering::Relaxed);
    out
}

/// One worker's deque of still-unclaimed indices, packed `(start << 32) |
/// end` so an owner claim (front) and a steal (back) are single CAS
/// operations on one word.
struct Range(AtomicU64);

impl Range {
    fn new(start: usize, end: usize) -> Self {
        Self(AtomicU64::new(pack(start as u64, end as u64)))
    }

    /// Owner path: claim the next index from the front.
    fn claim_front(&self) -> Option<usize> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (s, e) = unpack(cur);
            if s >= e {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                pack(s + 1, e),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(s as usize),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Thief path: steal one index from the back.
    fn steal_back(&self) -> Option<usize> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (s, e) = unpack(cur);
            if s >= e {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                pack(s, e - 1),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((e - 1) as usize),
                Err(seen) => cur = seen,
            }
        }
    }
}

fn pack(start: u64, end: u64) -> u64 {
    (start << 32) | end
}

fn unpack(v: u64) -> (u64, u64) {
    (v >> 32, v & 0xffff_ffff)
}

/// Splits `0..n` into `workers` contiguous ranges (the static seed of the
/// work-stealing race; remainders go to the leading workers).
fn seed_ranges(n: usize, workers: usize) -> Vec<Range> {
    let base = n / workers;
    let extra = n % workers;
    let mut start = 0usize;
    (0..workers)
        .map(|w| {
            let len = base + usize::from(w < extra);
            let r = Range::new(start, start + len);
            start += len;
            r
        })
        .collect()
}

/// Applies `f` to every index in `0..n` on up to `threads` workers and
/// returns the results **in index order** — byte-identical to
/// `(0..n).map(f).collect()` regardless of thread count or interleaving.
///
/// `threads <= 1` (and `n <= 1`) short-circuits to a fully inline serial
/// loop: no threads are spawned, no atomics touched.
pub fn par_map_indexed_with<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    assert!(n < u32::MAX as usize, "index space exceeds packed range");
    let workers = threads.min(n);
    let ranges = seed_ranges(n, workers);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let ranges = &ranges;
                let f = &f;
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        // Drain the worker's own range from the front...
                        if let Some(i) = ranges[w].claim_front() {
                            local.push((i, f(i)));
                            continue;
                        }
                        // ...then steal from the back of the others.
                        let victim = (0..workers)
                            .map(|k| (w + 1 + k) % workers)
                            .find_map(|v| ranges[v].steal_back());
                        match victim {
                            Some(i) => local.push((i, f(i))),
                            None => break,
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("batchzk-par worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

/// [`par_map_indexed_with`] at the [`current_threads`] count.
pub fn par_map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_indexed_with(current_threads(), n, f)
}

/// Maps `f` over a slice on up to `threads` workers, results in input
/// order.
pub fn par_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed_with(threads, items.len(), |i| f(&items[i]))
}

/// [`par_map_with`] at the [`current_threads`] count.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(current_threads(), items, f)
}

/// Applies `f` to every element of `items` by `&mut`, returning the
/// per-element results in input order. Elements are dealt to workers in
/// contiguous chunks (exclusive `&mut` access rules out back-stealing);
/// with independent per-element work the static split balances well.
pub fn par_map_mut_with<T, R, F>(threads: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(n);
    let base = n / workers;
    let extra = n % workers;
    let mut out: Vec<Vec<R>> = Vec::with_capacity(workers);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        let mut rest = items;
        let mut start = 0usize;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            let (chunk, tail) = rest.split_at_mut(len);
            rest = tail;
            let f = &f;
            let first = start;
            handles.push(scope.spawn(move || {
                chunk
                    .iter_mut()
                    .enumerate()
                    .map(|(k, t)| f(first + k, t))
                    .collect::<Vec<R>>()
            }));
            start += len;
        }
        for h in handles {
            out.push(h.join().expect("batchzk-par worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// [`par_map_mut_with`] at the [`current_threads`] count.
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    par_map_mut_with(current_threads(), items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_at_every_thread_count() {
        let n = 1000usize;
        let serial: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(0x9e37)).collect();
        for threads in [1, 2, 3, 4, 8, 17] {
            let par = par_map_indexed_with(threads, n, |i| (i as u64).wrapping_mul(0x9e37));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn skewed_work_is_stolen_and_stays_ordered() {
        // One pathologically slow item at the front of worker 0's range:
        // the other workers drain the rest by stealing, and the output is
        // still index-ordered.
        let n = 64usize;
        let out = par_map_indexed_with(4, n, |i| {
            if i == 0 {
                // Busy-work instead of sleeping: keep the test fast but the
                // skew real.
                let mut acc = 1u64;
                for k in 1..200_000u64 {
                    acc = acc.wrapping_mul(k) ^ k;
                }
                (i as u64) ^ (acc & 1)
            } else {
                i as u64
            }
        });
        for (i, v) in out.iter().enumerate().skip(1) {
            assert_eq!(*v, i as u64);
        }
        assert_eq!(out.len(), n);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = par_map_indexed_with(4, 0, |i| i as u32);
        assert!(empty.is_empty());
        let one = par_map_indexed_with(4, 1, |i| i as u32 + 7);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn par_map_borrows_items() {
        let items: Vec<String> = (0..50).map(|i| format!("item-{i}")).collect();
        let lens = par_map_with(4, &items, |s| s.len());
        let serial: Vec<usize> = items.iter().map(|s| s.len()).collect();
        assert_eq!(lens, serial);
    }

    #[test]
    fn par_map_mut_mutates_every_element_in_place() {
        for threads in [1, 2, 4, 7] {
            let mut items: Vec<u64> = (0..100).collect();
            let returns = par_map_mut_with(threads, &mut items, |i, v| {
                *v += 1;
                *v * i as u64
            });
            let expect_items: Vec<u64> = (1..=100).collect();
            let expect_ret: Vec<u64> = (0..100u64).map(|i| (i + 1) * i).collect();
            assert_eq!(items, expect_items, "threads={threads}");
            assert_eq!(returns, expect_ret, "threads={threads}");
        }
    }

    #[test]
    fn seed_ranges_cover_index_space_exactly() {
        for n in [1usize, 5, 16, 17, 1000] {
            for workers in [1usize, 2, 3, 7, 16] {
                let ranges = seed_ranges(n, workers);
                let mut total = 0usize;
                let mut next = 0u64;
                for r in &ranges {
                    let (s, e) = unpack(r.0.load(Ordering::Relaxed));
                    assert_eq!(s, next, "ranges are contiguous");
                    total += (e - s) as usize;
                    next = e;
                }
                assert_eq!(total, n, "n={n} workers={workers}");
            }
        }
    }

    #[test]
    fn thread_count_override_wins_over_env() {
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(5, || assert_eq!(current_threads(), 5));
            assert_eq!(current_threads(), 3);
        });
        assert!(current_threads() >= 1);
    }
}
