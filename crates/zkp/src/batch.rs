//! The fully pipelined batch proof-generation system (§4, Figure 7).
//!
//! Proof tasks stream through four module stages, each a dedicated kernel
//! group on the simulated GPU:
//!
//! 1. **encoder** — assemble `z`, arrange the witness matrix, encode every
//!    row with the linear-time encoder (dynamic loading: the prover's input
//!    for one proof arrives per cycle);
//! 2. **merkle** — hash codeword columns into leaves and build the
//!    commitment tree, yielding the final root;
//! 3. **sum-check** — derive randomness from the root (Fiat–Shamir / PRG),
//!    run both sum-checks over the intermediate tables loaded from host
//!    memory each cycle;
//! 4. **assemble** — compute the PCS opening and emit the finished proof
//!    (pushed out of the pipeline, freeing its slot).
//!
//! Thread allocation across modules follows the paper's measured-ratio rule
//! (§4): weights are the per-module work in cycles under the device cost
//! model, normalized over the configured thread budget.

use std::sync::Arc;

use batchzk_field::Field;
use batchzk_gpu_sim::{DevicePool, Gpu, Work};
use batchzk_hash::Transcript;
use batchzk_metrics::Registry;
use batchzk_pipeline::{
    allocate_threads, observe, run_service, run_sharded, BoxedStage, PipeStage, Pipeline,
    PipelineError, PriorityClass, RecoveryReport, RunStats, ServiceConfig, ServiceError,
    ServiceOutcome, ServiceRequest, ShardPolicy, StageWork,
};

use crate::backend::{ProverBackend, SpartanBackend};
use crate::pcs::{self, EncodedRows, PcsCommitment, PcsParams, PcsProverData};
use crate::r1cs::R1cs;
use crate::spartan::{self, Proof, SumcheckPart};

/// A proof-generation task moving through the Figure 7 pipeline.
pub struct BatchTask<F: Field> {
    inputs: Vec<F>,
    witness: Vec<F>,
    z: Vec<F>,
    encoded: Option<EncodedRows<F>>,
    pcs_data: Option<PcsProverData<F>>,
    commitment: Option<PcsCommitment>,
    transcript: Option<Transcript>,
    sumcheck_part: Option<SumcheckPart<F>>,
    proof: Option<Proof<F>>,
}

impl<F: Field> BatchTask<F> {
    pub(crate) fn new(inputs: Vec<F>, witness: Vec<F>) -> Self {
        Self {
            inputs,
            witness,
            z: Vec::new(),
            encoded: None,
            pcs_data: None,
            commitment: None,
            transcript: None,
            sumcheck_part: None,
            proof: None,
        }
    }

    /// The finished proof.
    ///
    /// # Panics
    ///
    /// Panics if the task has not completed the pipeline.
    pub fn into_proof(self) -> Proof<F> {
        self.proof.expect("task has not completed the pipeline")
    }

    /// The public inputs this task proves against.
    pub fn inputs(&self) -> &[F] {
        &self.inputs
    }
}

struct EncodeStage<F: Field> {
    r1cs: Arc<R1cs<F>>,
    params: PcsParams,
    threads: u32,
    spmv_cost: u64,
}

impl<F: Field> PipeStage<BatchTask<F>> for EncodeStage<F> {
    fn name(&self) -> String {
        "system-encoder".into()
    }
    fn threads(&self) -> u32 {
        self.threads
    }
    fn process(&self, task: &mut BatchTask<F>) -> StageWork {
        task.z = self.r1cs.assemble_z(&task.inputs, &task.witness);
        let w_half = &task.z[self.r1cs.half_len()..];
        let encoded = pcs::commit_encode(&self.params, w_half);
        let nnz = encoded.encode_nnz() as u64;
        let encoded_bytes = (encoded.n_rows() * encoded.codeword_len() * 32) as u64;
        task.encoded = Some(encoded);
        StageWork {
            work: Work::Uniform {
                units: nnz.max(1),
                cycles_per_unit: self.spmv_cost,
            },
            // Dynamic loading: this proof's prover input arrives now.
            h2d_bytes: (task.witness.len() * 32) as u64,
            d2h_bytes: 0,
            mem_after: encoded_bytes,
        }
    }
}

struct MerkleStage {
    threads: u32,
    column_cost: u64,
}

impl<F: Field> PipeStage<BatchTask<F>> for MerkleStage {
    fn name(&self) -> String {
        "system-merkle".into()
    }
    fn threads(&self) -> u32 {
        self.threads
    }
    fn process(&self, task: &mut BatchTask<F>) -> StageWork {
        let encoded = task.encoded.take().expect("encoder stage ran");
        let columns = encoded.codeword_len() as u64;
        let encoded_bytes = (encoded.n_rows() * encoded.codeword_len() * 32) as u64;
        let (commitment, data) = pcs::commit_merkle(encoded);
        task.commitment = Some(commitment);
        task.pcs_data = Some(data);
        StageWork {
            work: Work::Uniform {
                units: columns.max(1),
                cycles_per_unit: self.column_cost,
            },
            h2d_bytes: 0,
            // Intermediate tree layers stream back to host (§3.1); the
            // encoded matrix stays resident for the opening stage.
            d2h_bytes: columns * 32,
            mem_after: encoded_bytes + columns * 64,
        }
    }
    fn naive_phases(&self, task: &BatchTask<F>) -> Option<Vec<Work>> {
        // Kernel-per-layer: the non-pipelined baseline launches one kernel
        // per tree layer, and the upper layers have too few nodes to fill
        // its thread slice (Figure 4a's utilization collapse).
        let data = task.pcs_data.as_ref().expect("merkle stage ran");
        let mut nodes = (data.codeword_len() as u64 / 2).max(1);
        let mut phases = Vec::new();
        loop {
            phases.push(Work::Uniform {
                units: nodes,
                cycles_per_unit: self.column_cost,
            });
            if nodes == 1 {
                break;
            }
            nodes /= 2;
        }
        Some(phases)
    }
}

struct SumcheckStage<F: Field> {
    r1cs: Arc<R1cs<F>>,
    threads: u32,
    pair_cost: u64,
}

impl<F: Field> PipeStage<BatchTask<F>> for SumcheckStage<F> {
    fn name(&self) -> String {
        "system-sumcheck".into()
    }
    fn threads(&self) -> u32 {
        self.threads
    }
    fn process(&self, task: &mut BatchTask<F>) -> StageWork {
        // Randomness seeded by the final Merkle root via the transcript.
        let mut transcript = Transcript::new(spartan::DOMAIN);
        spartan::absorb_statement(&mut transcript, &self.r1cs, &task.inputs);
        let commitment = task.commitment.as_ref().expect("merkle stage ran");
        transcript.absorb_digest(b"w-commitment", &commitment.root);
        let part = spartan::run_sumchecks(&self.r1cs, &task.z, &mut transcript);
        task.sumcheck_part = Some(part);
        task.transcript = Some(transcript);

        let m = self.r1cs.padded_constraints() as u64;
        let n = self.r1cs.z_len() as u64;
        // Sum-check #1 folds four tables of 2m pairs total; #2 two tables
        // of 2n pairs.
        let units = 4 * 2 * m + 2 * 2 * n;
        let table_bytes = (3 * m + n) * 32;
        let encoded = task.pcs_data.as_ref().expect("merkle stage ran");
        let resident = (encoded.n_rows() * encoded.codeword_len() * 32) as u64;
        StageWork {
            work: Work::Uniform {
                units,
                cycles_per_unit: self.pair_cost,
            },
            // "The sum-check modules are required to load data from host
            // memory in each cycle" — the Az/Bz/Cz and z tables.
            h2d_bytes: table_bytes,
            d2h_bytes: 0,
            mem_after: resident + 2 * (3 * m + n) * 32 / 3,
        }
    }
    fn naive_phases(&self, _task: &BatchTask<F>) -> Option<Vec<Work>> {
        // Kernel-per-round: each sum-check round halves the tables, so the
        // later rounds leave most of the baseline's thread slice idle.
        let m = self.r1cs.padded_constraints() as u64;
        let n = self.r1cs.z_len() as u64;
        let mut phases = Vec::new();
        let mut pairs = m;
        while pairs >= 1 {
            // Sum-check #1: four tables folded together per round.
            phases.push(Work::Uniform {
                units: 4 * pairs,
                cycles_per_unit: self.pair_cost,
            });
            if pairs == 1 {
                break;
            }
            pairs /= 2;
        }
        let mut pairs = n;
        while pairs >= 1 {
            // Sum-check #2: two tables folded together per round.
            phases.push(Work::Uniform {
                units: 2 * pairs,
                cycles_per_unit: self.pair_cost,
            });
            if pairs == 1 {
                break;
            }
            pairs /= 2;
        }
        Some(phases)
    }
}

struct OpenStage {
    params: PcsParams,
    threads: u32,
    term_cost: u64,
}

impl<F: Field> PipeStage<BatchTask<F>> for OpenStage {
    fn name(&self) -> String {
        "system-assemble".into()
    }
    fn threads(&self) -> u32 {
        self.threads
    }
    fn process(&self, task: &mut BatchTask<F>) -> StageWork {
        let data = task.pcs_data.take().expect("merkle stage ran");
        let mut transcript = task.transcript.take().expect("sum-check stage ran");
        let part = task.sumcheck_part.take().expect("sum-check stage ran");
        let y_prime = &part.point_y[..part.point_y.len() - 1];
        let (w_eval, opening) = pcs::open(&self.params, &data, y_prime, &mut transcript);
        let commitment = task.commitment.take().expect("merkle stage ran");
        let proof = Proof {
            commitment,
            sc1: part.sc1,
            va: part.va,
            vb: part.vb,
            vc: part.vc,
            sc2: part.sc2,
            w_eval,
            opening,
        };
        let proof_bytes = proof.size_bytes() as u64;
        let units = (2 * data.n_rows() as u64) * (proof.opening.combined_row.len() as u64);
        task.proof = Some(proof);
        StageWork {
            work: Work::Uniform {
                units: units.max(1),
                cycles_per_unit: self.term_cost,
            },
            h2d_bytes: 0,
            // The finished proof leaves the device.
            d2h_bytes: proof_bytes,
            mem_after: 0,
        }
    }
}

/// Finished proofs, each paired with the public inputs it attests to.
pub type ProvedInstances<F> = Vec<(Vec<F>, Proof<F>)>;

/// Result of a batch proving run.
pub struct BatchRun<F: Field> {
    /// Finished proofs paired with their public inputs, in input order.
    pub proofs: ProvedInstances<F>,
    /// Timing statistics.
    pub stats: RunStats,
}

/// Finished backend proofs, each paired with the statement it attests to.
pub type BackendProofs<B> = Vec<(<B as ProverBackend>::Statement, <B as ProverBackend>::Proof)>;

/// Result of a backend-generic batch proving run: finished
/// `(statement, proof)` pairs in input order plus the run statistics.
pub struct BackendBatchRun<B: ProverBackend> {
    /// Finished proofs paired with their statements, in input order.
    pub proofs: BackendProofs<B>,
    /// Timing statistics.
    pub stats: RunStats,
}

/// Proves a batch of backend instances through the fully pipelined system
/// on one device — the backend-generic engine behind [`prove_batch`].
///
/// # Errors
///
/// Returns [`PipelineError::OutOfDeviceMemory`] if the per-proof working
/// set does not fit in simulated device memory.
///
/// # Panics
///
/// Panics if a backend stage panics (e.g. an unsatisfying assignment).
pub fn prove_batch_with<B: ProverBackend>(
    gpu: &mut Gpu,
    backend: &B,
    instances: Vec<B::Instance>,
    total_threads: u32,
    multi_stream: bool,
) -> Result<BackendBatchRun<B>, PipelineError> {
    let stages = backend.stages(gpu, total_threads);
    let tasks: Vec<B::Task> = instances.into_iter().map(|i| backend.begin(i)).collect();
    let run = Pipeline::new(gpu, stages, multi_stream).run(tasks)?;
    let proofs = run.outputs.into_iter().map(|t| backend.finish(t)).collect();
    Ok(BackendBatchRun {
        proofs,
        stats: run.stats,
    })
}

/// Proves a batch of backend instances through the kernel-per-task naive
/// baseline (Figure 4a's "intuitive" schedule): the same backend stages —
/// so proofs are byte-identical to the pipelined path — but executed in
/// groups of `concurrent` tasks with the thread budget split evenly and
/// no cross-stage pipelining. The whole batch's working set is pre-loaded.
///
/// # Panics
///
/// Panics if `instances` is empty, a backend stage panics, or the
/// pre-loaded working set does not fit in device memory.
pub fn prove_batch_naive_with<B: ProverBackend>(
    gpu: &mut Gpu,
    backend: &B,
    instances: Vec<B::Instance>,
    total_threads: u32,
    concurrent: usize,
) -> BackendBatchRun<B> {
    let stages = backend.stages(gpu, total_threads);
    let tasks: Vec<B::Task> = instances.into_iter().map(|i| backend.begin(i)).collect();
    let preload = backend.task_footprint_bytes() * tasks.len() as u64;
    let run = batchzk_pipeline::naive::run_stages_naive(
        gpu,
        stages,
        tasks,
        backend.name(),
        preload,
        total_threads,
        concurrent,
    );
    let proofs = run.outputs.into_iter().map(|t| backend.finish(t)).collect();
    BackendBatchRun {
        proofs,
        stats: run.stats,
    }
}

/// Result of a backend-generic pool proving run — the generic engine's
/// counterpart of [`PoolBatchRun`].
pub struct BackendPoolRun<B: ProverBackend> {
    /// Finished proofs paired with their statements, in *input order*.
    pub proofs: BackendProofs<B>,
    /// Per-device run statistics, in pool order.
    pub device_stats: Vec<RunStats>,
    /// Per device, the original instance indices it proved.
    pub assignments: Vec<Vec<usize>>,
    /// The shard policy that routed the batch.
    pub policy: ShardPolicy,
    /// Wall time of the batch: the slowest device's elapsed ms.
    pub makespan_ms: f64,
    /// Per-device elapsed milliseconds for this batch.
    pub device_ms: Vec<f64>,
    /// Fault-recovery account (`None` for a fault-free run).
    pub recovery: Option<RecoveryReport>,
}

/// Proves a batch of backend instances across a [`DevicePool`] sharded
/// under `policy` — the backend-generic engine behind
/// [`prove_batch_pool`]. The memory-aware policy sizes per-device
/// admission from [`ProverBackend::task_footprint_bytes`].
///
/// # Errors
///
/// As [`prove_batch_pool`]: [`PipelineError::OutOfDeviceMemory`] when a
/// shard cannot fit its device even under the admission cap, and
/// [`PipelineError::DeviceFailed`] when every pool device fail-stops.
///
/// # Panics
///
/// Panics if a backend stage panics (e.g. an unsatisfying assignment).
pub fn prove_batch_pool_with<B: ProverBackend>(
    pool: &mut DevicePool,
    backend: &B,
    instances: Vec<B::Instance>,
    total_threads: u32,
    multi_stream: bool,
    policy: ShardPolicy,
) -> Result<BackendPoolRun<B>, PipelineError> {
    let footprint = backend.task_footprint_bytes();
    let tasks: Vec<B::Task> = instances.into_iter().map(|i| backend.begin(i)).collect();
    let stage_backend = backend.clone();
    let run = run_sharded(
        pool,
        policy,
        tasks,
        |_| footprint,
        move |gpu| stage_backend.stages(gpu, total_threads),
        multi_stream,
    )?;
    let proofs = run.outputs.into_iter().map(|t| backend.finish(t)).collect();
    Ok(BackendPoolRun {
        proofs,
        device_stats: run.device_stats,
        assignments: run.plan.assignments,
        policy,
        makespan_ms: run.makespan_ms,
        device_ms: run.device_ms,
        recovery: run.recovery,
    })
}

/// One request entering the backend-generic online service: a priority
/// class, an arrival cycle in virtual device time, and the backend
/// instance to prove.
pub type BackendProofRequest<B> = (PriorityClass, u64, <B as ProverBackend>::Instance);

/// Serves an open-loop stream of backend requests through the online
/// service front — the backend-generic engine behind [`prove_service`].
/// With a [`MixedBackend`](crate::backend::MixedBackend) the one service
/// instance interleaves both protocols' tasks through the same pipelines
/// under the existing SLO classes.
///
/// # Errors
///
/// As [`prove_service`]: [`ServiceError::InvalidInput`] for zero-capacity
/// configs, empty pools, or mixed-clock pools, and
/// [`ServiceError::Pipeline`] for device-side failures.
///
/// # Panics
///
/// Panics if a backend stage panics (e.g. an unsatisfying assignment).
pub fn prove_service_with<B: ProverBackend>(
    pool: &mut DevicePool,
    backend: &B,
    config: &ServiceConfig,
    requests: Vec<BackendProofRequest<B>>,
    total_threads: u32,
    multi_stream: bool,
) -> Result<ServiceOutcome<B::Task>, ServiceError> {
    let service_requests: Vec<ServiceRequest<B::Task>> = requests
        .into_iter()
        .map(|(class, arrival_cycle, instance)| ServiceRequest {
            class,
            arrival_cycle,
            task: backend.begin(instance),
        })
        .collect();
    let stage_backend = backend.clone();
    run_service(
        pool,
        config,
        service_requests,
        move |gpu| stage_backend.stages(gpu, total_threads),
        multi_stream,
    )
}

/// Computes the module work weights for thread allocation — the analogue of
/// the paper's measured 35 : 12 : 113 amortized-time ratio, derived here
/// from the cost model so the allocation tracks the simulated device.
pub fn module_weights<F: Field>(gpu: &Gpu, r1cs: &R1cs<F>, params: &PcsParams) -> [u64; 4] {
    let cost = gpu.cost();
    let half = r1cs.half_len();
    let k = half.trailing_zeros() as usize;
    let (n_rows, n_cols) = pcs::matrix_shape(k);
    let encoder = batchzk_encoder::Encoder::<F>::new(n_cols, params.encoder, params.seed);
    let codeword_len = encoder.codeword_len() as u64;
    let w_encode = (encoder.total_nnz() as u64 * n_rows as u64) * cost.spmv_term();
    let w_merkle =
        codeword_len * ((n_rows as u64).div_ceil(2) * cost.sha256_compress + cost.merkle_node());
    let m = r1cs.padded_constraints() as u64;
    let n = r1cs.z_len() as u64;
    let w_sumcheck = (8 * m + 4 * n) * (cost.sumcheck_pair() + cost.shared_access);
    let w_open = 2 * n_rows as u64 * n_cols as u64 * (cost.field_mul + cost.global_access);
    [
        w_encode.max(1),
        w_merkle.max(1),
        w_sumcheck.max(1),
        w_open.max(1),
    ]
}

/// Builds the four Figure-7 stages for one device: thread allocation
/// follows the measured-ratio rule under that device's cost model, so
/// heterogeneous pool members each get their own stage set.
pub(crate) fn build_stages<F: Field>(
    gpu: &Gpu,
    r1cs: &Arc<R1cs<F>>,
    params: PcsParams,
    total_threads: u32,
) -> Vec<BoxedStage<BatchTask<F>>> {
    let weights = module_weights(gpu, r1cs, &params);
    let threads = allocate_threads(total_threads, &weights);
    let cost = *gpu.cost();
    let half = r1cs.half_len();
    let (n_rows, _) = pcs::matrix_shape(half.trailing_zeros() as usize);
    vec![
        Box::new(EncodeStage {
            r1cs: Arc::clone(r1cs),
            params,
            threads: threads[0],
            spmv_cost: cost.spmv_term(),
        }),
        Box::new(MerkleStage {
            threads: threads[1],
            column_cost: (n_rows as u64).div_ceil(2) * cost.sha256_compress + cost.merkle_node(),
        }),
        Box::new(SumcheckStage {
            r1cs: Arc::clone(r1cs),
            threads: threads[2],
            pair_cost: cost.sumcheck_pair() + cost.shared_access,
        }),
        Box::new(OpenStage {
            params,
            threads: threads[3],
            term_cost: cost.field_mul + cost.global_access,
        }),
    ]
}

/// Analytic estimate of one proof task's peak device-memory footprint in
/// bytes — the maximum of the per-stage `mem_after` values the pipeline
/// stages will report. The memory-aware shard policy sizes per-device
/// admission from this, so a batch that would OOM at full pipeline
/// residency is split in time instead of erroring.
pub fn task_footprint_bytes<F: Field>(r1cs: &R1cs<F>, params: &PcsParams) -> u64 {
    let half = r1cs.half_len();
    let k = half.trailing_zeros() as usize;
    let (n_rows, n_cols) = pcs::matrix_shape(k);
    let encoder = batchzk_encoder::Encoder::<F>::new(n_cols, params.encoder, params.seed);
    let codeword_len = encoder.codeword_len() as u64;
    let encoded_bytes = n_rows as u64 * codeword_len * 32;
    let m = r1cs.padded_constraints() as u64;
    let n = r1cs.z_len() as u64;
    // Stage footprints: encoder holds the codeword matrix; merkle adds the
    // tree layers; sum-check swaps the tree for its folding tables.
    let merkle = encoded_bytes + codeword_len * 64;
    let sumcheck = encoded_bytes + 2 * (3 * m + n) * 32 / 3;
    encoded_bytes.max(merkle).max(sumcheck)
}

/// Proves a batch of `(inputs, witness)` instances of one circuit through
/// the fully pipelined system. An empty batch is a no-op returning an
/// empty [`BatchRun`] with zeroed statistics.
///
/// # Errors
///
/// Returns [`PipelineError::OutOfDeviceMemory`] if the per-proof working
/// set does not fit in simulated device memory.
///
/// # Panics
///
/// Panics if any assignment is unsatisfying.
pub fn prove_batch<F: Field>(
    gpu: &mut Gpu,
    r1cs: Arc<R1cs<F>>,
    params: PcsParams,
    instances: Vec<(Vec<F>, Vec<F>)>,
    total_threads: u32,
    multi_stream: bool,
) -> Result<BatchRun<F>, PipelineError> {
    let backend = SpartanBackend::new(r1cs, params);
    let run = prove_batch_with(gpu, &backend, instances, total_threads, multi_stream)?;
    Ok(BatchRun {
        proofs: run.proofs,
        stats: run.stats,
    })
}

/// Result of proving one batch across a device pool.
#[derive(Debug)]
pub struct PoolBatchRun<F: Field> {
    /// Finished proofs paired with their public inputs, in *input order* —
    /// sharding is invisible, and the proof bytes are identical to a
    /// single-device [`prove_batch`] of the same instances.
    pub proofs: ProvedInstances<F>,
    /// Per-device run statistics, in pool order.
    pub device_stats: Vec<RunStats>,
    /// Per device, the original instance indices it proved.
    pub assignments: Vec<Vec<usize>>,
    /// The shard policy that routed the batch.
    pub policy: ShardPolicy,
    /// Wall time of the batch: the slowest device's elapsed ms.
    pub makespan_ms: f64,
    /// Per-device elapsed milliseconds for this batch.
    pub device_ms: Vec<f64>,
    /// Fault-recovery account when a device fail-stopped or dropped a
    /// kernel mid-batch (`None` for a fault-free run). Even under
    /// recovery the proofs above are byte-identical to a fault-free run.
    pub recovery: Option<RecoveryReport>,
}

impl<F: Field> PoolBatchRun<F> {
    /// Batch throughput against the makespan, in proofs per millisecond.
    pub fn throughput_per_ms(&self) -> f64 {
        if self.makespan_ms > 0.0 {
            self.proofs.len() as f64 / self.makespan_ms
        } else {
            0.0
        }
    }

    /// Max-over-mean of elapsed time across devices that proved work
    /// (1.0 = perfectly balanced; 0 when nothing ran).
    pub fn imbalance(&self) -> f64 {
        let active: Vec<f64> = self
            .device_ms
            .iter()
            .copied()
            .filter(|&ms| ms > 0.0)
            .collect();
        if active.is_empty() {
            return 0.0;
        }
        self.makespan_ms / (active.iter().sum::<f64>() / active.len() as f64)
    }
}

/// Proves a batch of instances across a [`DevicePool`], sharded under
/// `policy`. Each device runs its own four-stage pipeline with
/// `total_threads` allocated by its cost model; proofs come back in input
/// order and are byte-identical to a single-device [`prove_batch`].
///
/// Devices carrying scripted faults (a
/// [`FaultPlan`](batchzk_gpu_sim::FaultPlan) applied to the pool) are
/// tolerated: a fail-stop or dropped kernel salvages the affected tasks
/// and reshards them over the surviving devices, and the stage design is
/// replay-safe (every stage overwrites its task fields), so recovered
/// proofs are still byte-identical to a fault-free run. The cost appears
/// in [`PoolBatchRun::recovery`].
///
/// # Errors
///
/// Returns [`PipelineError::OutOfDeviceMemory`] if a shard does not fit
/// its device even under the memory-aware admission cap (only a single
/// task larger than every device's memory is unrecoverable), and
/// [`PipelineError::DeviceFailed`] when *every* pool device fail-stops.
///
/// # Panics
///
/// Panics if any assignment is unsatisfying.
pub fn prove_batch_pool<F: Field>(
    pool: &mut DevicePool,
    r1cs: Arc<R1cs<F>>,
    params: PcsParams,
    instances: Vec<(Vec<F>, Vec<F>)>,
    total_threads: u32,
    multi_stream: bool,
    policy: ShardPolicy,
) -> Result<PoolBatchRun<F>, PipelineError> {
    let backend = SpartanBackend::new(r1cs, params);
    let run = prove_batch_pool_with(
        pool,
        &backend,
        instances,
        total_threads,
        multi_stream,
        policy,
    )?;
    Ok(PoolBatchRun {
        proofs: run.proofs,
        device_stats: run.device_stats,
        assignments: run.assignments,
        policy: run.policy,
        makespan_ms: run.makespan_ms,
        device_ms: run.device_ms,
        recovery: run.recovery,
    })
}

/// One request entering the online proving service: a priority class, an
/// arrival cycle in virtual device time, and the instance to prove.
pub type ProofRequest<F> = (PriorityClass, u64, (Vec<F>, Vec<F>));

/// Result of one online service replay: completions carry finished
/// [`BatchTask`]s (extract proofs with [`BatchTask::into_proof`]).
pub type ServiceProofRun<F> = ServiceOutcome<BatchTask<F>>;

/// Serves an open-loop stream of proof requests through the online
/// service front ([`batchzk_pipeline::service`]): per-device Figure-7
/// pipelines fed continuously under admission control, with per-class
/// latency SLOs judged in virtual device cycles.
///
/// Requests are `(class, arrival_cycle, (inputs, witness))`; arrival
/// cycles come from a deterministic
/// [`ArrivalPlan`](batchzk_gpu_sim::ArrivalPlan) expansion or any other
/// virtual-time source. Unlike [`prove_batch_pool`], requests the
/// admission controller rejects are *not* proved — the outcome reports
/// them per class with a reject reason.
///
/// # Errors
///
/// Propagates [`ServiceError::InvalidInput`] for zero-capacity configs,
/// empty pools, or mixed-clock pools, and [`ServiceError::Pipeline`] for
/// device-side failures.
///
/// # Panics
///
/// Panics if any admitted assignment is unsatisfying (proof construction
/// asserts like the batch paths).
pub fn prove_service<F: Field>(
    pool: &mut DevicePool,
    r1cs: Arc<R1cs<F>>,
    params: PcsParams,
    config: &ServiceConfig,
    requests: Vec<ProofRequest<F>>,
    total_threads: u32,
    multi_stream: bool,
) -> Result<ServiceProofRun<F>, ServiceError> {
    let backend = SpartanBackend::new(r1cs, params);
    prove_service_with(
        pool,
        &backend,
        config,
        requests,
        total_threads,
        multi_stream,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::r1cs::synthetic_r1cs;
    use crate::spartan::verify;
    use batchzk_field::Fr;
    use batchzk_gpu_sim::DeviceProfile;

    fn test_params() -> PcsParams {
        PcsParams {
            num_col_tests: 12,
            ..PcsParams::default()
        }
    }

    /// Builds `count` satisfying instances of one synthetic circuit.
    #[allow(clippy::type_complexity)]
    fn instances(s: usize, count: usize) -> (Arc<R1cs<Fr>>, Vec<(Vec<Fr>, Vec<Fr>)>) {
        // Re-deriving witnesses for a shared circuit: rerun the generator
        // with the same seed (same topology) and vary only the initial
        // witness value by scaling — multiplication chains stay valid under
        // scaling only for specific structures, so instead we reuse the same
        // witness for each slot; the system's per-task work is identical.
        let (r1cs, inputs, witness) = synthetic_r1cs::<Fr>(s, 42);
        let batch = (0..count)
            .map(|_| (inputs.clone(), witness.clone()))
            .collect();
        (Arc::new(r1cs), batch)
    }

    #[test]
    fn batch_proofs_all_verify() {
        let (r1cs, batch) = instances(24, 6);
        let params = test_params();
        let mut gpu = Gpu::new(DeviceProfile::gh200());
        let run =
            prove_batch(&mut gpu, Arc::clone(&r1cs), params, batch, 4096, true).expect("fits");
        assert_eq!(run.proofs.len(), 6);
        for (inputs, proof) in &run.proofs {
            assert!(verify(&params, &r1cs, inputs, proof));
        }
    }

    #[test]
    fn batch_proof_equals_single_shot_proof() {
        // The pipeline must produce byte-identical proofs to the plain
        // prover (same transcript, same randomness).
        let (r1cs, batch) = instances(16, 2);
        let params = test_params();
        let reference = spartan::prove(&params, &r1cs, &batch[0].0, &batch[0].1);
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let run =
            prove_batch(&mut gpu, Arc::clone(&r1cs), params, batch, 2048, true).expect("fits");
        assert_eq!(run.proofs[0].1, reference);
        assert_eq!(run.proofs[1].1, reference);
    }

    #[test]
    fn throughput_improves_with_batch_size() {
        let params = test_params();
        let (r1cs, one) = instances(16, 1);
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let single = prove_batch(&mut gpu, Arc::clone(&r1cs), params, one, 2048, true)
            .expect("fits")
            .stats;
        let (_, many) = instances(16, 12);
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let batched = prove_batch(&mut gpu, r1cs, params, many, 2048, true)
            .expect("fits")
            .stats;
        assert!(batched.throughput_per_ms > 1.5 * single.throughput_per_ms);
    }

    #[test]
    fn multi_stream_overlap_helps() {
        let params = test_params();
        let (r1cs, batch) = instances(24, 8);
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let overlapped = prove_batch(
            &mut gpu,
            Arc::clone(&r1cs),
            params,
            batch.clone(),
            2048,
            true,
        )
        .expect("fits")
        .stats;
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let serial = prove_batch(&mut gpu, r1cs, params, batch, 2048, false)
            .expect("fits")
            .stats;
        assert!(overlapped.total_cycles <= serial.total_cycles);
    }

    #[test]
    fn device_memory_released() {
        let params = test_params();
        let (r1cs, batch) = instances(16, 4);
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let _ = prove_batch(&mut gpu, r1cs, params, batch, 1024, true).expect("fits");
        assert_eq!(gpu.memory_ref().in_use(), 0);
    }

    #[test]
    fn module_weights_are_positive_and_sumcheck_heavy() {
        let (r1cs, _) = instances(64, 1);
        let gpu = Gpu::new(DeviceProfile::v100());
        let w = module_weights(&gpu, &r1cs, &test_params());
        assert!(w.iter().all(|&x| x > 0));
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let (r1cs, _) = instances(16, 1);
        let params = test_params();
        let mut gpu = Gpu::new(DeviceProfile::v100());
        let run = prove_batch(&mut gpu, Arc::clone(&r1cs), params, vec![], 2048, true)
            .expect("nothing to prove");
        assert!(run.proofs.is_empty());
        assert_eq!(run.stats.tasks, 0);
        assert_eq!(run.stats.total_cycles, 0, "no device time charged");
        assert_eq!(gpu.memory_ref().in_use(), 0);
        let mut pool = DevicePool::homogeneous(DeviceProfile::v100(), 2);
        let run = prove_batch_pool(
            &mut pool,
            r1cs,
            params,
            vec![],
            2048,
            true,
            ShardPolicy::MemoryAware,
        )
        .expect("nothing to prove");
        assert!(run.proofs.is_empty());
        assert_eq!(run.makespan_ms, 0.0);
    }

    #[test]
    fn proofs_identical_across_host_thread_counts() {
        // Host parallelism may only change wall-clock: proofs, inputs, and
        // every simulated statistic must be byte-for-byte the threads=1
        // result at any thread count, single-device and pooled alike.
        let (r1cs, batch) = instances(16, 6);
        let params = test_params();
        let runs: Vec<_> = [1usize, 2, 4]
            .iter()
            .map(|&t| {
                batchzk_par::with_threads(t, || {
                    let mut gpu = Gpu::new(DeviceProfile::a100());
                    let single = prove_batch(
                        &mut gpu,
                        Arc::clone(&r1cs),
                        params,
                        batch.clone(),
                        4096,
                        true,
                    )
                    .expect("fits");
                    let mut pool = DevicePool::homogeneous(DeviceProfile::a100(), 3);
                    let pooled = prove_batch_pool(
                        &mut pool,
                        Arc::clone(&r1cs),
                        params,
                        batch.clone(),
                        4096,
                        true,
                        ShardPolicy::LeastOutstanding,
                    )
                    .expect("fits");
                    (single, pooled)
                })
            })
            .collect();
        let (base_single, base_pooled) = &runs[0];
        for (i, (single, pooled)) in runs.iter().enumerate().skip(1) {
            let t = [1, 2, 4][i];
            assert_eq!(single.proofs, base_single.proofs, "threads={t}: proofs");
            assert_eq!(single.stats, base_single.stats, "threads={t}: stats");
            assert_eq!(pooled.proofs, base_pooled.proofs, "threads={t}: pooled");
            assert_eq!(
                pooled.assignments, base_pooled.assignments,
                "threads={t}: shard plan"
            );
            assert_eq!(
                pooled.device_stats, base_pooled.device_stats,
                "threads={t}: device stats"
            );
            assert_eq!(
                pooled.makespan_ms, base_pooled.makespan_ms,
                "threads={t}: makespan"
            );
        }
    }

    #[test]
    fn sharded_proofs_byte_identical_to_single_device() {
        // Satellite determinism pin: a 4-device pool under *every* shard
        // policy emits exactly the proofs a single device emits, in input
        // order — scheduling is invisible in the output bytes.
        let (r1cs, batch) = instances(16, 10);
        let params = test_params();
        let mut gpu = Gpu::new(DeviceProfile::a100());
        let single = prove_batch(
            &mut gpu,
            Arc::clone(&r1cs),
            params,
            batch.clone(),
            4096,
            true,
        )
        .expect("fits");
        for policy in ShardPolicy::ALL {
            let mut pool = DevicePool::homogeneous(DeviceProfile::a100(), 4);
            let pooled = prove_batch_pool(
                &mut pool,
                Arc::clone(&r1cs),
                params,
                batch.clone(),
                4096,
                true,
                policy,
            )
            .expect("fits");
            assert_eq!(pooled.proofs.len(), single.proofs.len(), "{policy}");
            for (i, ((pi, pp), (si, sp))) in pooled.proofs.iter().zip(&single.proofs).enumerate() {
                assert_eq!(pi, si, "{policy}: input order preserved at {i}");
                assert_eq!(pp, sp, "{policy}: proof {i} differs");
            }
            let assigned: usize = pooled.assignments.iter().map(Vec::len).sum();
            assert_eq!(assigned, batch.len(), "{policy}: every instance placed");
            assert!(pooled.makespan_ms > 0.0);
            assert!(pooled.imbalance() >= 1.0);
        }
    }

    #[test]
    fn memory_aware_pool_survives_oom() {
        // Capacity of 1.5 task footprints: full four-stage residency
        // (~1.6 footprints at this size) OOMs, but one resident task —
        // even mid-realloc — fits. The memory-aware policy must complete
        // by capping in-flight admission; round-robin must fail.
        let (r1cs, batch) = instances(16, 6);
        let params = test_params();
        let cap = task_footprint_bytes(&r1cs, &params) * 3 / 2;
        let small = DeviceProfile {
            device_mem_bytes: cap,
            ..DeviceProfile::a100()
        };
        let mut pool = DevicePool::homogeneous(small.clone(), 2);
        let err = prove_batch_pool(
            &mut pool,
            Arc::clone(&r1cs),
            params,
            batch.clone(),
            4096,
            true,
            ShardPolicy::RoundRobin,
        )
        .expect_err("full pipeline residency must exceed capacity");
        assert!(matches!(err, PipelineError::OutOfDeviceMemory { .. }));
        let mut pool = DevicePool::homogeneous(small, 2);
        let run = prove_batch_pool(
            &mut pool,
            Arc::clone(&r1cs),
            params,
            batch.clone(),
            4096,
            true,
            ShardPolicy::MemoryAware,
        )
        .expect("admission cap splits the batch in time");
        assert_eq!(run.proofs.len(), batch.len());
        for (inputs, proof) in &run.proofs {
            assert!(verify(&params, &r1cs, inputs, proof));
        }
        for d in 0..pool.len() {
            assert_eq!(pool.device(d).memory_ref().in_use(), 0);
        }
    }

    #[test]
    fn heterogeneous_pool_leans_on_the_stronger_device() {
        let (r1cs, batch) = instances(16, 12);
        let params = test_params();
        let mut pool =
            DevicePool::from_profiles(vec![DeviceProfile::v100(), DeviceProfile::h100()]);
        let run = prove_batch_pool(
            &mut pool,
            Arc::clone(&r1cs),
            params,
            batch,
            4096,
            true,
            ShardPolicy::LeastOutstanding,
        )
        .expect("fits");
        assert!(
            run.assignments[1].len() > run.assignments[0].len(),
            "h100 {} vs v100 {}",
            run.assignments[1].len(),
            run.assignments[0].len()
        );
        for (inputs, proof) in &run.proofs {
            assert!(verify(&params, &r1cs, inputs, proof));
        }
    }

    /// The end-to-end tentpole invariant: a device that fail-stops halfway
    /// through its shard loses no proofs — the survivor replays the
    /// salvaged tasks and the recovered proofs are byte-identical to a
    /// fault-free run (and still verify). The same fault plan is also
    /// byte-deterministic across host thread counts.
    #[test]
    fn pool_recovers_from_mid_batch_fail_stop_with_identical_proofs() {
        use batchzk_gpu_sim::FaultPlan;
        let (r1cs, batch) = instances(16, 8);
        let params = test_params();
        let mut clean_pool = DevicePool::homogeneous(DeviceProfile::a100(), 2);
        let clean = prove_batch_pool(
            &mut clean_pool,
            Arc::clone(&r1cs),
            params,
            batch.clone(),
            4096,
            true,
            ShardPolicy::LeastOutstanding,
        )
        .expect("fault-free baseline");
        assert!(clean.recovery.is_none());

        // Fail device 1 halfway through its fault-free elapsed cycles —
        // squarely mid-shard, with proofs completed and proofs in flight.
        let mid = clean.device_stats[1].total_cycles / 2;
        assert!(mid > 0);
        let faulty = |threads: usize| {
            batchzk_par::with_threads(threads, || {
                let mut pool = DevicePool::homogeneous(DeviceProfile::a100(), 2);
                pool.apply_fault_plan(&FaultPlan::new().fail_stop(1, mid));
                prove_batch_pool(
                    &mut pool,
                    Arc::clone(&r1cs),
                    params,
                    batch.clone(),
                    4096,
                    true,
                    ShardPolicy::LeastOutstanding,
                )
                .expect("survivor completes the batch")
            })
        };
        let run = faulty(1);
        assert_eq!(run.proofs, clean.proofs, "recovery must be invisible");
        for (io, proof) in &run.proofs {
            assert!(verify(&params, &r1cs, io, proof));
        }
        let rec = run.recovery.as_ref().expect("the fail-stop fired");
        assert_eq!(rec.failed_devices, vec![1]);
        assert!(rec.replayed_tasks > 0);
        assert!(
            run.makespan_ms > clean.makespan_ms,
            "recovery costs wall time"
        );
        // Same fault plan, more host threads: byte-identical everything.
        let run2 = faulty(2);
        assert_eq!(run2.proofs, run.proofs);
        assert_eq!(run2.recovery, run.recovery);
        assert_eq!(run2.device_ms, run.device_ms);
    }

    #[test]
    fn faster_gpu_higher_throughput() {
        let params = test_params();
        let (r1cs, batch) = instances(16, 6);
        let mut v100 = Gpu::new(DeviceProfile::v100());
        let slow = prove_batch(
            &mut v100,
            Arc::clone(&r1cs),
            params,
            batch.clone(),
            4096,
            true,
        )
        .expect("fits")
        .stats;
        let mut h100 = Gpu::new(DeviceProfile::h100());
        let fast = prove_batch(&mut h100, r1cs, params, batch, 4096, true)
            .expect("fits")
            .stats;
        assert!(fast.throughput_per_ms > slow.throughput_per_ms);
    }
}

/// Continuous batch proving (§4, "the execution of our system at full
/// workload"): proof tasks flow in as they arrive, one pipeline stays
/// resident per pool device, and the simulation clocks accumulate across
/// chunks — the MLaaS/zkBridge deployment shape where "customer inputs come
/// in like a flowing stream".
pub struct StreamingProver<B: ProverBackend> {
    pool: DevicePool,
    policy: ShardPolicy,
    backend: B,
    total_threads: u32,
    proofs_emitted: usize,
    metrics: Registry,
    module: &'static str,
}

/// Module label the sumcheck-backend streaming prover records its metrics
/// under (backend-generic provers label with the backend name instead).
const SYSTEM_MODULE: &str = "system";

impl<F: Field> StreamingProver<SpartanBackend<F>> {
    /// Creates a resident sumcheck prover on one device — a single-member
    /// pool under the round-robin policy (which degenerates to
    /// "everything on device 0").
    pub fn new(gpu: Gpu, r1cs: Arc<R1cs<F>>, params: PcsParams, total_threads: u32) -> Self {
        Self::over_pool(
            DevicePool::new(vec![gpu]),
            ShardPolicy::RoundRobin,
            r1cs,
            params,
            total_threads,
        )
    }

    /// Creates a resident sumcheck prover over a multi-device pool; each
    /// chunk is sharded across the pool under `policy` and
    /// `total_threads` is the per-device thread budget.
    pub fn over_pool(
        pool: DevicePool,
        policy: ShardPolicy,
        r1cs: Arc<R1cs<F>>,
        params: PcsParams,
        total_threads: u32,
    ) -> Self {
        Self {
            pool,
            policy,
            backend: SpartanBackend::new(r1cs, params),
            total_threads,
            proofs_emitted: 0,
            metrics: Registry::new(),
            module: SYSTEM_MODULE,
        }
    }
}

impl<B: ProverBackend> StreamingProver<B> {
    /// Creates a resident prover for any backend on one device; metrics
    /// are labelled with the backend's name.
    pub fn with_backend(gpu: Gpu, backend: B, total_threads: u32) -> Self {
        Self::over_pool_with_backend(
            DevicePool::new(vec![gpu]),
            ShardPolicy::RoundRobin,
            backend,
            total_threads,
        )
    }

    /// Creates a resident prover for any backend over a multi-device
    /// pool; metrics are labelled with the backend's name.
    pub fn over_pool_with_backend(
        pool: DevicePool,
        policy: ShardPolicy,
        backend: B,
        total_threads: u32,
    ) -> Self {
        let module = backend.name();
        Self {
            pool,
            policy,
            backend,
            total_threads,
            proofs_emitted: 0,
            metrics: Registry::new(),
            module,
        }
    }

    /// Proves one arriving chunk of instances, returning the finished
    /// proofs in input order. Device time accumulates across calls; an
    /// empty chunk is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::OutOfDeviceMemory`] if the chunk's working
    /// set does not fit in device memory; the devices are left clean, so
    /// the caller may retry with a smaller chunk (or the memory-aware
    /// policy).
    ///
    /// # Panics
    ///
    /// Panics if any assignment is unsatisfying.
    pub fn prove_chunk(
        &mut self,
        instances: Vec<B::Instance>,
    ) -> Result<BackendProofs<B>, PipelineError> {
        let run = prove_batch_pool_with(
            &mut self.pool,
            &self.backend,
            instances,
            self.total_threads,
            true,
            self.policy,
        )
        .inspect_err(|e| observe::record_error(&mut self.metrics, self.module, e))?;
        observe::record_pool_run(
            &mut self.metrics,
            self.module,
            &run.device_stats,
            &run.device_ms,
        );
        if let Some(recovery) = &run.recovery {
            observe::record_recovery(&mut self.metrics, self.module, recovery);
        }
        observe::record_pool_health(&mut self.metrics, self.module, &self.pool);
        self.proofs_emitted += run.proofs.len();
        Ok(run.proofs)
    }

    /// Service metrics accumulated across all chunks (runs, proof counts,
    /// lifecycle latency histograms, OOM pressure, per-device series)
    /// under the module label `system`.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Total proofs emitted since construction.
    pub fn proofs_emitted(&self) -> usize {
        self.proofs_emitted
    }

    /// Lifetime throughput in proofs per second of simulated wall time
    /// (the pool's virtual now — the farthest device clock).
    pub fn lifetime_throughput_per_sec(&self) -> f64 {
        let secs = self.pool.virtual_now_seconds();
        if secs == 0.0 {
            0.0
        } else {
            self.proofs_emitted as f64 / secs
        }
    }

    /// Borrow of the first device (stats, traces, memory accounting) —
    /// the whole story for a single-device prover.
    pub fn gpu(&self) -> &Gpu {
        self.pool.device(0)
    }

    /// Borrow of the device pool.
    pub fn pool(&self) -> &DevicePool {
        &self.pool
    }

    /// Shuts the prover down, returning the first device (drops the rest —
    /// use [`into_pool`](Self::into_pool) for multi-device provers).
    pub fn into_gpu(self) -> Gpu {
        self.pool
            .into_devices()
            .into_iter()
            .next()
            .expect("pool is never empty")
    }

    /// Shuts the prover down, returning the pool.
    pub fn into_pool(self) -> DevicePool {
        self.pool
    }
}

#[cfg(test)]
mod streaming_tests {
    use super::*;
    use crate::r1cs::synthetic_r1cs;
    use crate::spartan::verify;
    use batchzk_field::Fr;
    use batchzk_gpu_sim::DeviceProfile;

    #[test]
    fn stream_of_chunks_accumulates() {
        let (r1cs, inputs, witness) = synthetic_r1cs::<Fr>(16, 42);
        let r1cs = Arc::new(r1cs);
        let params = PcsParams {
            num_col_tests: 8,
            ..PcsParams::default()
        };
        let mut prover = StreamingProver::new(
            Gpu::new(DeviceProfile::gh200()),
            Arc::clone(&r1cs),
            params,
            2048,
        );
        for chunk in 0..3 {
            let proofs = prover
                .prove_chunk(vec![(inputs.clone(), witness.clone()); 2 + chunk])
                .expect("fits");
            for (io, proof) in &proofs {
                assert!(verify(&params, &r1cs, io, proof));
            }
        }
        assert_eq!(prover.proofs_emitted(), 2 + 3 + 4);
        assert!(prover.lifetime_throughput_per_sec() > 0.0);
        // Service metrics accumulated across the three chunks.
        let m = [("module", "system")];
        assert_eq!(prover.metrics().counter("batchzk_runs_total", &m), 3);
        assert_eq!(prover.metrics().counter("batchzk_tasks_total", &m), 9);
        let h = prover
            .metrics()
            .histogram("batchzk_lifecycle_cycles", &m)
            .expect("lifecycle histogram recorded");
        assert_eq!(h.count(), 9, "one lifecycle sample per proof");
        assert!(h.quantile(0.99) >= h.quantile(0.5));
        for stage in ["system-encoder", "system-merkle", "system-sumcheck"] {
            assert!(
                prover
                    .metrics()
                    .gauge(
                        "batchzk_stage_occupancy",
                        &[("module", "system"), ("stage", stage)]
                    )
                    .is_some(),
                "occupancy gauge for {stage}"
            );
        }
        // Device memory fully released between chunks.
        assert_eq!(prover.gpu().memory_ref().in_use(), 0);
        let gpu = prover.into_gpu();
        assert!(gpu.elapsed_cycles() > 0);
    }

    /// A fail-stop during a streamed chunk surfaces in the service
    /// metrics: failure counters, replay counters, and the pool-health
    /// gauges a dashboard would alert on.
    #[test]
    fn streaming_prover_records_fault_metrics() {
        use batchzk_gpu_sim::FaultPlan;
        let (r1cs, inputs, witness) = synthetic_r1cs::<Fr>(16, 42);
        let r1cs = Arc::new(r1cs);
        let params = PcsParams {
            num_col_tests: 8,
            ..PcsParams::default()
        };
        let mut pool = DevicePool::homogeneous(DeviceProfile::a100(), 2);
        pool.apply_fault_plan(&FaultPlan::new().fail_stop(1, 0));
        let mut prover = StreamingProver::over_pool(
            pool,
            ShardPolicy::LeastOutstanding,
            Arc::clone(&r1cs),
            params,
            2048,
        );
        let proofs = prover
            .prove_chunk(vec![(inputs.clone(), witness.clone()); 4])
            .expect("survivor proves the chunk");
        assert_eq!(proofs.len(), 4);
        for (io, proof) in &proofs {
            assert!(verify(&params, &r1cs, io, proof));
        }
        let m = [("module", "system")];
        assert_eq!(
            prover
                .metrics()
                .counter("batchzk_device_failures_total", &m),
            1
        );
        assert!(prover.metrics().counter("batchzk_tasks_replayed_total", &m) > 0);
        assert_eq!(
            prover.metrics().gauge("batchzk_pool_failed_devices", &m),
            Some(1.0)
        );
        assert_eq!(
            prover.metrics().gauge("batchzk_pool_degraded_devices", &m),
            Some(0.0)
        );
        // The healthy device carried every proof.
        assert_eq!(
            prover.metrics().counter(
                "batchzk_tasks_total",
                &[("module", "system"), ("device", "0")]
            ),
            4
        );
    }

    #[test]
    fn pooled_streaming_prover_shards_and_labels_devices() {
        let (r1cs, inputs, witness) = synthetic_r1cs::<Fr>(16, 42);
        let r1cs = Arc::new(r1cs);
        let params = PcsParams {
            num_col_tests: 8,
            ..PcsParams::default()
        };
        let mut prover = StreamingProver::over_pool(
            DevicePool::homogeneous(DeviceProfile::a100(), 2),
            ShardPolicy::LeastOutstanding,
            Arc::clone(&r1cs),
            params,
            2048,
        );
        let proofs = prover
            .prove_chunk(vec![(inputs.clone(), witness.clone()); 6])
            .expect("fits");
        assert_eq!(proofs.len(), 6);
        for (io, proof) in &proofs {
            assert!(verify(&params, &r1cs, io, proof));
        }
        // Aggregate series unchanged, per-device dimension added.
        let m = [("module", "system")];
        assert_eq!(prover.metrics().counter("batchzk_tasks_total", &m), 6);
        let d0 = prover.metrics().counter(
            "batchzk_tasks_total",
            &[("module", "system"), ("device", "0")],
        );
        let d1 = prover.metrics().counter(
            "batchzk_tasks_total",
            &[("module", "system"), ("device", "1")],
        );
        assert_eq!(d0 + d1, 6, "device shards cover the chunk");
        assert!(d0 > 0 && d1 > 0, "both devices proved work");
        assert_eq!(
            prover.metrics().gauge("batchzk_pool_devices", &m),
            Some(2.0)
        );
        assert!(prover.lifetime_throughput_per_sec() > 0.0);
        let pool = prover.into_pool();
        assert_eq!(pool.len(), 2);
        for d in 0..2 {
            assert!(pool.device(d).elapsed_cycles() > 0);
            assert_eq!(pool.device(d).memory_ref().in_use(), 0);
        }
    }

    #[test]
    fn service_proofs_verify_and_match_single_shot() {
        use batchzk_pipeline::ClassPolicy;
        let (r1cs, inputs, witness) = synthetic_r1cs::<Fr>(16, 42);
        let r1cs = Arc::new(r1cs);
        let params = PcsParams {
            num_col_tests: 8,
            ..PcsParams::default()
        };
        let instance = (inputs, witness);
        let reference = spartan::prove(&params, &r1cs, &instance.0, &instance.1);
        let config = ServiceConfig {
            classes: [ClassPolicy {
                queue_cap: 4,
                slo_cycles: 100_000_000,
            }; 3],
            max_outstanding: 16,
            device_queue_cap: 4,
            max_in_flight: 0,
            timeline_window_cycles: 0,
        };
        let requests: Vec<ProofRequest<Fr>> = (0..6)
            .map(|i| {
                (
                    PriorityClass::ALL[i % 3],
                    10_000 * i as u64,
                    instance.clone(),
                )
            })
            .collect();
        let mut pool = DevicePool::homogeneous(DeviceProfile::a100(), 2);
        let outcome = prove_service(
            &mut pool,
            Arc::clone(&r1cs),
            params,
            &config,
            requests,
            2048,
            true,
        )
        .expect("service run");
        assert_eq!(outcome.completions.len(), 6, "no load shed at this pace");
        for completion in outcome.completions {
            assert!(completion.completed_cycle >= completion.arrival_cycle);
            let proof = completion.task.into_proof();
            // Online serving must not change the proof system's output.
            assert_eq!(proof, reference);
            assert!(verify(&params, &r1cs, &instance.0, &proof));
        }
        for report in &outcome.reports {
            assert_eq!(report.submitted, 2);
            assert_eq!(report.completed, 2);
        }
        // The flight recorder rides the outcome: its per-window counters
        // conserve the end-of-run totals.
        assert!(!outcome.timeline.is_empty());
        let accepted: u64 = outcome
            .timeline
            .windows()
            .iter()
            .flat_map(|w| w.classes.iter())
            .map(|c| c.accepted)
            .sum();
        assert_eq!(accepted, 6);
        let completed: u64 = outcome
            .timeline
            .windows()
            .iter()
            .map(|w| w.completed())
            .sum();
        assert_eq!(completed, 6);
    }
}
