//! The Spartan/Brakedown-style SNARK for R1CS — a complete member of the
//! paper's "second category" of ZKP protocols (Figure 1): commit the witness
//! with the linear-code PCS (encoder + Merkle tree), then prove constraint
//! satisfaction with two sum-checks.
//!
//! * **Sum-check #1** (degree 3): `Σ_x eq(τ,x)·(Ãz(x)·B̃z(x) − C̃z(x)) = 0`
//!   for a transcript-random `τ`, reducing satisfaction to evaluation claims
//!   `va = Ãz(rx)`, `vb`, `vc`.
//! * **Sum-check #2** (degree 2): a γ-batched claim
//!   `Σ_y (γ_a Ã(rx,y) + γ_b B̃(rx,y) + γ_c C̃(rx,y)) · z̃(y)`,
//!   reducing to one evaluation of `z̃`.
//! * **PCS opening**: `z̃` splits on its top variable into the public `ĩo`
//!   and the committed `w̃`; the PCS opens `w̃` at the bound point.
//!
//! The verifier evaluates the sparse-matrix MLEs directly in `O(nnz)`
//! (Spartan's SPARK preprocessing is out of scope — documented in
//! `DESIGN.md`; prover cost, the paper's measured quantity, is unaffected).

use crate::pcs::{self, PcsCommitment, PcsOpening, PcsParams, PcsProverData};
use crate::r1cs::R1cs;
use batchzk_field::Field;
use batchzk_hash::Transcript;
use batchzk_sumcheck::{
    eq_eval, eq_table, prove_cubic_eq, prove_quadratic, verify_rounds, MultilinearPoly,
    SumcheckProof,
};

/// Domain label binding every proof to this protocol version.
pub(crate) const DOMAIN: &[u8] = b"batchzk-snark-v1";

/// A complete proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Proof<F> {
    /// Commitment to the witness polynomial `w̃`.
    pub commitment: PcsCommitment,
    /// Round polynomials of sum-check #1 (degree 3).
    pub sc1: SumcheckProof<F>,
    /// Claimed `Ãz(rx)`.
    pub va: F,
    /// Claimed `B̃z(rx)`.
    pub vb: F,
    /// Claimed `C̃z(rx)`.
    pub vc: F,
    /// Round polynomials of sum-check #2 (degree 2).
    pub sc2: SumcheckProof<F>,
    /// Claimed `w̃(ry')`.
    pub w_eval: F,
    /// PCS opening of `w̃` at `ry'`.
    pub opening: PcsOpening<F>,
}

impl<F: Field> Proof<F> {
    /// Approximate proof size in bytes (the "several MB" figure of §2.1
    /// scales with circuit size through the PCS opening).
    pub fn size_bytes(&self) -> usize {
        let rounds = self.sc1.rounds.iter().chain(self.sc2.rounds.iter());
        let sc_elems: usize = rounds.map(|r| r.len()).sum();
        (sc_elems + 4) * 32 + self.opening.size_bytes() + 48
    }
}

/// Intermediate per-instance artifacts, exposed so the batch pipeline can
/// charge each module's work to the right kernel (Figure 7).
pub struct ProverArtifacts<F> {
    /// PCS data for the committed witness.
    pub pcs_data: PcsProverData<F>,
    /// The full assignment.
    pub z: Vec<F>,
}

/// Proves that `(inputs, witness)` satisfies `r1cs`.
///
/// # Panics
///
/// Panics if the assignment does not satisfy the instance (an honest-prover
/// API; producing proofs of false statements is not something we make
/// convenient).
pub fn prove<F: Field>(
    params: &PcsParams,
    r1cs: &R1cs<F>,
    inputs: &[F],
    witness: &[F],
) -> Proof<F> {
    prove_with_artifacts(params, r1cs, inputs, witness).0
}

/// [`prove`], additionally returning intermediate artifacts.
///
/// # Panics
///
/// Panics if the assignment does not satisfy the instance.
pub fn prove_with_artifacts<F: Field>(
    params: &PcsParams,
    r1cs: &R1cs<F>,
    inputs: &[F],
    witness: &[F],
) -> (Proof<F>, ProverArtifacts<F>) {
    let z = r1cs.assemble_z(inputs, witness);
    assert!(
        r1cs.is_satisfied(&z),
        "assignment does not satisfy the R1CS"
    );

    let mut transcript = Transcript::new(DOMAIN);
    absorb_statement(&mut transcript, r1cs, inputs);

    // Module 1+2 (encoder + Merkle): commit the witness half of z.
    let w_half = &z[r1cs.half_len()..];
    let (commitment, pcs_data) = pcs::commit(params, w_half);
    transcript.absorb_digest(b"w-commitment", &commitment.root);

    // Module 3 (sum-check).
    let part = run_sumchecks(r1cs, &z, &mut transcript);

    // Open w̃ at the bound point (all but the top variable of ry).
    let y_prime = &part.point_y[..part.point_y.len() - 1];
    let (w_eval, opening) = pcs::open(params, &pcs_data, y_prime, &mut transcript);

    (
        Proof {
            commitment,
            sc1: part.sc1,
            va: part.va,
            vb: part.vb,
            vc: part.vc,
            sc2: part.sc2,
            w_eval,
            opening,
        },
        ProverArtifacts { pcs_data, z },
    )
}

/// Builds the prover/verifier transcript with the statement absorbed —
/// exposed so external harnesses (the benchmark crate) can time the
/// prover's phases individually.
pub fn statement_transcript<F: Field>(r1cs: &R1cs<F>, inputs: &[F]) -> Transcript {
    let mut transcript = Transcript::new(DOMAIN);
    absorb_statement(&mut transcript, r1cs, inputs);
    transcript
}

/// Output of the prover's sum-check phase, consumed by the PCS opening
/// phase (the hand-off between the sum-check module and proof assembly in
/// the Figure 7 pipeline).
#[derive(Debug, Clone)]
pub struct SumcheckPart<F> {
    /// Sum-check #1 rounds.
    pub sc1: SumcheckProof<F>,
    /// Claimed `Ãz(rx)`.
    pub va: F,
    /// Claimed `B̃z(rx)`.
    pub vb: F,
    /// Claimed `C̃z(rx)`.
    pub vc: F,
    /// Sum-check #2 rounds.
    pub sc2: SumcheckProof<F>,
    /// The bound point `ry` of sum-check #2 (in `(y_1, ..)` order).
    pub point_y: Vec<F>,
}

/// Runs both prover sum-checks over an assembled assignment. The transcript
/// must already hold the statement and witness commitment.
///
/// # Panics
///
/// Panics if `z.len() != r1cs.z_len()`.
pub fn run_sumchecks<F: Field>(
    r1cs: &R1cs<F>,
    z: &[F],
    transcript: &mut Transcript,
) -> SumcheckPart<F> {
    assert_eq!(z.len(), r1cs.z_len(), "assignment length mismatch");
    // The outer constraint sum-check.
    let log_m = r1cs.padded_constraints().trailing_zeros() as usize;
    let tau: Vec<F> = transcript.challenge_fields(b"tau", log_m);
    let eq_tau = MultilinearPoly::new(eq_table(&tau));
    let pad = |mut v: Vec<F>| {
        v.resize(r1cs.padded_constraints(), F::ZERO);
        MultilinearPoly::new(v)
    };
    let az = pad(r1cs.a.mul_vec(z));
    let bz = pad(r1cs.b.mul_vec(z));
    let cz = pad(r1cs.c.mul_vec(z));
    let sc1 = prove_cubic_eq(&eq_tau, &az, &bz, &cz, transcript);
    let (va, vb, vc) = (sc1.final_evals[1], sc1.final_evals[2], sc1.final_evals[3]);
    transcript.absorb_fields(b"sc1-claims", &[va, vb, vc]);

    // Batched matrix-opening sum-check.
    let gamma: Vec<F> = transcript.challenge_fields(b"gamma", 3);
    let eq_rx = eq_table(&sc1.point());
    let mut m_combo = vec![F::ZERO; r1cs.z_len()];
    for (g, m) in gamma.iter().zip([&r1cs.a, &r1cs.b, &r1cs.c]) {
        for (slot, v) in m_combo.iter_mut().zip(m.bind_rows(&eq_rx)) {
            *slot += *g * v;
        }
    }
    let m_poly = MultilinearPoly::new(m_combo);
    let z_poly = MultilinearPoly::new(z.to_vec());
    let sc2 = prove_quadratic(&m_poly, &z_poly, transcript);
    let point_y = sc2.point();

    SumcheckPart {
        sc1: sc1.proof,
        va,
        vb,
        vc,
        sc2: sc2.proof,
        point_y,
    }
}

/// Verifies a proof against the instance and public inputs.
pub fn verify<F: Field>(
    params: &PcsParams,
    r1cs: &R1cs<F>,
    inputs: &[F],
    proof: &Proof<F>,
) -> bool {
    if inputs.len() != r1cs.num_inputs() {
        return false;
    }
    let mut transcript = Transcript::new(DOMAIN);
    absorb_statement(&mut transcript, r1cs, inputs);
    transcript.absorb_digest(b"w-commitment", &proof.commitment.root);

    // Sum-check #1: claim is zero.
    let log_m = r1cs.padded_constraints().trailing_zeros() as usize;
    let tau: Vec<F> = transcript.challenge_fields(b"tau", log_m);
    if proof.sc1.num_rounds() != log_m {
        return false;
    }
    let Some((final1, rx_rs)) = verify_rounds(F::ZERO, &proof.sc1, 3, &mut transcript) else {
        return false;
    };
    let point_x: Vec<F> = rx_rs.iter().rev().copied().collect();
    let eq_v = eq_eval(&tau, &point_x);
    if final1 != eq_v * (proof.va * proof.vb - proof.vc) {
        return false;
    }
    transcript.absorb_fields(b"sc1-claims", &[proof.va, proof.vb, proof.vc]);

    // Sum-check #2: γ-batched matrix openings.
    let gamma: Vec<F> = transcript.challenge_fields(b"gamma", 3);
    let claim2 = gamma[0] * proof.va + gamma[1] * proof.vb + gamma[2] * proof.vc;
    let log_n = r1cs.z_len().trailing_zeros() as usize;
    if proof.sc2.num_rounds() != log_n {
        return false;
    }
    let Some((final2, ry_rs)) = verify_rounds(claim2, &proof.sc2, 2, &mut transcript) else {
        return false;
    };
    let point_y: Vec<F> = ry_rs.iter().rev().copied().collect();

    // Direct O(nnz) matrix-MLE evaluation (documented simplification).
    let eq_rx = eq_table(&point_x);
    let eq_ry = eq_table(&point_y);
    let m_eval: F = gamma
        .iter()
        .zip([&r1cs.a, &r1cs.b, &r1cs.c])
        .map(|(g, m)| *g * m.mle_eval(&eq_rx, &eq_ry))
        .sum();

    // z̃(ry) from the public io half and the committed w half.
    let y_top = point_y[point_y.len() - 1];
    let y_prime = &point_y[..point_y.len() - 1];
    let io_eval = r1cs.io_poly(inputs).evaluate(y_prime);
    let z_eval = (F::ONE - y_top) * io_eval + y_top * proof.w_eval;
    if final2 != m_eval * z_eval {
        return false;
    }

    // PCS opening of w̃.
    pcs::verify(
        params,
        &proof.commitment,
        y_prime,
        proof.w_eval,
        &proof.opening,
        &mut transcript,
    )
}

pub(crate) fn absorb_statement<F: Field>(
    transcript: &mut Transcript,
    r1cs: &R1cs<F>,
    inputs: &[F],
) {
    transcript.absorb_bytes(
        b"r1cs-shape",
        &[
            (r1cs.num_constraints() as u64).to_le_bytes(),
            (r1cs.num_inputs() as u64).to_le_bytes(),
            (r1cs.num_witness() as u64).to_le_bytes(),
            (r1cs.half_len() as u64).to_le_bytes(),
        ]
        .concat(),
    );
    transcript.absorb_fields(b"public-inputs", inputs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::r1cs::{synthetic_r1cs, R1csBuilder, Var};
    use batchzk_field::Fr;

    fn test_params() -> PcsParams {
        PcsParams {
            num_col_tests: 16,
            ..PcsParams::default()
        }
    }

    #[test]
    fn prove_verify_roundtrip_synthetic() {
        for s in [4usize, 17, 64, 200] {
            let (r1cs, inputs, witness) = synthetic_r1cs::<Fr>(s, s as u64);
            let params = test_params();
            let proof = prove(&params, &r1cs, &inputs, &witness);
            assert!(verify(&params, &r1cs, &inputs, &proof), "s={s}");
        }
    }

    #[test]
    fn square_circuit_roundtrip() {
        let mut b = R1csBuilder::<Fr>::new();
        let x = b.new_input();
        let w = b.new_witness();
        b.enforce(
            vec![(Var::Witness(w), Fr::ONE)],
            vec![(Var::Witness(w), Fr::ONE)],
            vec![(Var::Input(x), Fr::ONE)],
        );
        let r1cs = b.build();
        let params = test_params();
        let proof = prove(&params, &r1cs, &[Fr::from(25u64)], &[Fr::from(5u64)]);
        assert!(verify(&params, &r1cs, &[Fr::from(25u64)], &proof));
        // Verifying against different public inputs must fail.
        assert!(!verify(&params, &r1cs, &[Fr::from(26u64)], &proof));
    }

    #[test]
    #[should_panic(expected = "does not satisfy")]
    fn proving_false_statement_panics() {
        let (r1cs, inputs, mut witness) = synthetic_r1cs::<Fr>(10, 1);
        witness[3] += Fr::ONE;
        let _ = prove(&test_params(), &r1cs, &inputs, &witness);
    }

    #[test]
    fn tampered_proofs_rejected() {
        let (r1cs, inputs, witness) = synthetic_r1cs::<Fr>(32, 7);
        let params = test_params();
        let proof = prove(&params, &r1cs, &inputs, &witness);
        assert!(verify(&params, &r1cs, &inputs, &proof));

        // Each field tampered independently must be caught.
        let mut p = proof.clone();
        p.va += Fr::ONE;
        assert!(!verify(&params, &r1cs, &inputs, &p), "va tamper");

        let mut p = proof.clone();
        p.vc -= Fr::ONE;
        assert!(!verify(&params, &r1cs, &inputs, &p), "vc tamper");

        let mut p = proof.clone();
        p.sc1.rounds[0][1] += Fr::ONE;
        assert!(!verify(&params, &r1cs, &inputs, &p), "sc1 tamper");

        let mut p = proof.clone();
        let last = p.sc2.rounds.len() - 1;
        p.sc2.rounds[last][2] += Fr::ONE;
        assert!(!verify(&params, &r1cs, &inputs, &p), "sc2 tamper");

        let mut p = proof.clone();
        p.w_eval += Fr::ONE;
        assert!(!verify(&params, &r1cs, &inputs, &p), "w_eval tamper");

        let mut p = proof.clone();
        p.commitment.root[0] ^= 1;
        assert!(!verify(&params, &r1cs, &inputs, &p), "root tamper");

        let mut p = proof.clone();
        p.opening.combined_row[0] += Fr::ONE;
        assert!(!verify(&params, &r1cs, &inputs, &p), "opening tamper");

        let mut p = proof.clone();
        p.sc1.rounds.pop();
        assert!(!verify(&params, &r1cs, &inputs, &p), "truncated sc1");
    }

    #[test]
    fn proof_is_not_transferable_across_instances() {
        let (r1cs_a, inputs_a, witness_a) = synthetic_r1cs::<Fr>(16, 1);
        let (r1cs_b, inputs_b, _) = synthetic_r1cs::<Fr>(16, 2);
        let params = test_params();
        let proof = prove(&params, &r1cs_a, &inputs_a, &witness_a);
        assert!(!verify(&params, &r1cs_b, &inputs_b, &proof));
    }

    #[test]
    fn proof_clone_roundtrip() {
        let (r1cs, inputs, witness) = synthetic_r1cs::<Fr>(16, 3);
        let params = test_params();
        let proof = prove(&params, &r1cs, &inputs, &witness);
        // No external serializer in the hermetic build: check size_bytes
        // sanity and structural clone-equality instead.
        assert!(proof.size_bytes() > 1000);
        let copy = proof.clone();
        assert_eq!(copy, proof);
        assert!(verify(&params, &r1cs, &inputs, &copy));
    }

    #[test]
    fn wrong_input_arity_rejected() {
        let (r1cs, inputs, witness) = synthetic_r1cs::<Fr>(8, 4);
        let params = test_params();
        let proof = prove(&params, &r1cs, &inputs, &witness);
        assert!(!verify(&params, &r1cs, &[], &proof));
    }
}
