//! The [`ProverBackend`] trait: one pipelined proving protocol behind a
//! common seam.
//!
//! The batch layer (`prove_batch`, `prove_batch_pool`, `prove_service`,
//! [`StreamingProver`](crate::StreamingProver)) was originally welded to the
//! Spartan/sumcheck protocol. This module splits it along a trait so the
//! same pipeline engine, shard policies, admission control, and metrics
//! serve *any* protocol that can express its prover as a fixed sequence of
//! [`PipeStage`]s:
//!
//! * [`SpartanBackend`] — the paper's sumcheck system (encoder → Merkle →
//!   sum-check → assemble), byte-identical to the pre-trait code path;
//! * [`GrothBackend`] — the Groth16-style NTT+MSM stack built from the real
//!   [`batchzk_field::NttDomain`] and `batchzk_curve::msm` kernels (see
//!   [`batchzk_pipeline::groth`]);
//! * [`OrionBackend`] — the standalone Orion-style PCS-opening pipeline
//!   (encode → merkle → combine → open, see [`crate::orion`]);
//! * [`MixedBackend`] — a task-level union of the three, so one
//!   [`run_service`](batchzk_pipeline::run_service) instance serves a mixed
//!   trace under the existing SLO classes.
//!
//! A further protocol plugs in by implementing the trait: define a task type
//! carrying the proof state, stages that advance it while reporting
//! simulated [`StageWork`], an analytic
//! footprint for the memory-aware scheduler, and a verification hook.
//! Every layer above — sharding, fault recovery, the online service,
//! BENCH.json — comes for free (DESIGN.md §15).

use std::sync::Arc;

use batchzk_field::{Field, Fr};
use batchzk_gpu_sim::Gpu;
use batchzk_pipeline::groth::{self, GrothCircuit, GrothProof, GrothTask};
use batchzk_pipeline::{BoxedStage, PipeStage, StageWork};

use crate::batch::{build_stages, module_weights, task_footprint_bytes, BatchTask};
use crate::orion::{OrionBackend, OrionProof, OrionTask};
use crate::pcs::PcsParams;
use crate::r1cs::R1cs;
use crate::spartan::{self, Proof};

/// Stable names of every built-in backend, in CLI/report order. The
/// `tables` harness validates `--backend` flags and mixed-trace specs
/// against this list.
pub const BACKEND_NAMES: [&str; 3] = ["sumcheck", "groth16", "orion"];

/// One pipelined proving protocol: how to turn submitted instances into
/// in-pipeline tasks, which stages advance them, what they cost, and how
/// the finished proof is extracted and verified.
///
/// Implementations are cheap handles (`Arc`-backed) cloned into per-device
/// stage factories, so the trait requires `Clone + Send + Sync`.
pub trait ProverBackend: Clone + Send + Sync + 'static {
    /// What callers submit: the per-proof input (e.g. `(inputs, witness)`).
    type Instance: Send;
    /// The task state a proof-in-progress carries through the pipeline.
    type Task: Send;
    /// The public statement paired with each finished proof.
    type Statement: Send;
    /// The finished proof.
    type Proof: Send;

    /// Stable kebab-case protocol name (CLI flag value, metric label).
    fn name(&self) -> &'static str;

    /// Wraps one submitted instance into a fresh pipeline task.
    fn begin(&self, instance: Self::Instance) -> Self::Task;

    /// Per-module work weights in cycles under `gpu`'s cost model — the
    /// measured-ratio rule input that sizes per-stage thread allocation.
    fn module_weights(&self, gpu: &Gpu) -> Vec<u64>;

    /// Builds the protocol's stage set for one device, allocating
    /// `total_threads` across modules by [`module_weights`].
    ///
    /// [`module_weights`]: ProverBackend::module_weights
    fn stages(&self, gpu: &Gpu, total_threads: u32) -> Vec<BoxedStage<Self::Task>>;

    /// Analytic per-task peak device-memory footprint in bytes. The
    /// memory-aware shard policy sizes per-device admission caps from this.
    fn task_footprint_bytes(&self) -> u64;

    /// Splits a completed task into its statement and proof.
    ///
    /// # Panics
    ///
    /// Panics if the task has not completed the pipeline.
    fn finish(&self, task: Self::Task) -> (Self::Statement, Self::Proof);

    /// Verifies a finished proof against its statement.
    fn verify(&self, statement: &Self::Statement, proof: &Self::Proof) -> bool;
}

/// The paper's sumcheck system as a [`ProverBackend`]: encoder → Merkle →
/// sum-check → assemble over one shared R1CS. This is the pre-trait code
/// path verbatim — proofs, statistics, and metrics are byte-identical to
/// the monolithic implementation it replaced.
pub struct SpartanBackend<F: Field> {
    r1cs: Arc<R1cs<F>>,
    params: PcsParams,
}

impl<F: Field> Clone for SpartanBackend<F> {
    fn clone(&self) -> Self {
        Self {
            r1cs: Arc::clone(&self.r1cs),
            params: self.params,
        }
    }
}

impl<F: Field> SpartanBackend<F> {
    /// Creates the backend over one shared circuit and PCS parameter set.
    pub fn new(r1cs: Arc<R1cs<F>>, params: PcsParams) -> Self {
        Self { r1cs, params }
    }

    /// The shared circuit.
    pub fn r1cs(&self) -> &Arc<R1cs<F>> {
        &self.r1cs
    }

    /// The PCS parameters.
    pub fn params(&self) -> &PcsParams {
        &self.params
    }
}

impl<F: Field> ProverBackend for SpartanBackend<F> {
    type Instance = (Vec<F>, Vec<F>);
    type Task = BatchTask<F>;
    type Statement = Vec<F>;
    type Proof = Proof<F>;

    fn name(&self) -> &'static str {
        "sumcheck"
    }

    fn begin(&self, (inputs, witness): Self::Instance) -> Self::Task {
        BatchTask::new(inputs, witness)
    }

    fn module_weights(&self, gpu: &Gpu) -> Vec<u64> {
        module_weights(gpu, &self.r1cs, &self.params).to_vec()
    }

    fn stages(&self, gpu: &Gpu, total_threads: u32) -> Vec<BoxedStage<Self::Task>> {
        build_stages(gpu, &self.r1cs, self.params, total_threads)
    }

    fn task_footprint_bytes(&self) -> u64 {
        task_footprint_bytes(&self.r1cs, &self.params)
    }

    fn finish(&self, task: Self::Task) -> (Self::Statement, Self::Proof) {
        let statement = task.inputs().to_vec();
        (statement, task.into_proof())
    }

    fn verify(&self, statement: &Self::Statement, proof: &Self::Proof) -> bool {
        spartan::verify(&self.params, &self.r1cs, statement, proof)
    }
}

/// The Groth16-style NTT+MSM stack as a [`ProverBackend`], wrapping the
/// pipelined implementation in [`batchzk_pipeline::groth`]: witness NTTs →
/// quotient → MSM buckets → MSM reduce/assemble, running the real
/// [`batchzk_field::NttDomain`] and `batchzk_curve::msm` kernels under
/// the gpu-sim cost model.
#[derive(Clone)]
pub struct GrothBackend {
    circuit: Arc<GrothCircuit>,
}

impl GrothBackend {
    /// Creates the backend over one shared circuit of `2^log_size` gates.
    ///
    /// # Panics
    ///
    /// Panics if `log_size` exceeds what the field's two-adicity admits
    /// (the quotient works on a domain of size `2^(log_size + 1)`).
    pub fn new(log_size: u32) -> Self {
        Self {
            circuit: Arc::new(GrothCircuit::new(log_size)),
        }
    }

    /// The shared circuit.
    pub fn circuit(&self) -> &Arc<GrothCircuit> {
        &self.circuit
    }
}

impl ProverBackend for GrothBackend {
    type Instance = Vec<Fr>;
    type Task = GrothTask;
    type Statement = Vec<Fr>;
    type Proof = GrothProof;

    fn name(&self) -> &'static str {
        "groth16"
    }

    fn begin(&self, witness: Self::Instance) -> Self::Task {
        GrothTask::new(witness)
    }

    fn module_weights(&self, gpu: &Gpu) -> Vec<u64> {
        groth::module_weights(gpu, &self.circuit).to_vec()
    }

    fn stages(&self, gpu: &Gpu, total_threads: u32) -> Vec<BoxedStage<Self::Task>> {
        groth::build_stages(gpu, &self.circuit, total_threads)
    }

    fn task_footprint_bytes(&self) -> u64 {
        groth::task_footprint_bytes(&self.circuit)
    }

    fn finish(&self, task: Self::Task) -> (Self::Statement, Self::Proof) {
        let statement = task.statement().to_vec();
        (statement, task.into_proof())
    }

    fn verify(&self, statement: &Self::Statement, proof: &Self::Proof) -> bool {
        groth::verify(&self.circuit, statement, proof)
    }
}

/// An instance entering the mixed service: one variant per backend.
#[derive(Debug, Clone)]
pub enum MixedInstance {
    /// A sumcheck-system instance: `(public inputs, witness)`.
    Sumcheck((Vec<Fr>, Vec<Fr>)),
    /// A Groth16-style instance: the gate witness vector.
    Groth(Vec<Fr>),
    /// An Orion PCS-opening instance: `(evaluations, point)`.
    Orion((Vec<Fr>, Vec<Fr>)),
}

/// A proof-in-progress in the mixed pipeline.
pub enum MixedTask {
    /// A sumcheck-system task.
    Sumcheck(BatchTask<Fr>),
    /// A Groth16-style task.
    Groth(GrothTask),
    /// An Orion PCS-opening task.
    Orion(OrionTask<Fr>),
}

impl MixedTask {
    /// The backend name this task belongs to.
    pub fn backend_name(&self) -> &'static str {
        match self {
            MixedTask::Sumcheck(_) => BACKEND_NAMES[0],
            MixedTask::Groth(_) => BACKEND_NAMES[1],
            MixedTask::Orion(_) => BACKEND_NAMES[2],
        }
    }
}

/// A statement attested by a mixed-service proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixedStatement {
    /// Sumcheck-system public inputs.
    Sumcheck(Vec<Fr>),
    /// Groth16-style public inputs.
    Groth(Vec<Fr>),
    /// An Orion evaluation point.
    Orion(Vec<Fr>),
}

/// A finished mixed-service proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixedProof {
    /// A sumcheck-system proof.
    Sumcheck(Proof<Fr>),
    /// A Groth16-style proof.
    Groth(GrothProof),
    /// An Orion PCS-opening proof.
    Orion(OrionProof<Fr>),
}

/// Serves all three protocols from one pipeline: every stage is a
/// dispatching triple of the backends' stages at the same depth, so
/// sumcheck, Groth16-style, and Orion tasks interleave freely through one
/// [`run_service`](batchzk_pipeline::run_service) (or batch) instance.
///
/// Each stage set is sized from its own module weights against the same
/// thread budget — the device multiplexes whichever protocol occupies a
/// slot, exactly as a shared production pool would.
#[derive(Clone)]
pub struct MixedBackend {
    sumcheck: SpartanBackend<Fr>,
    groth: GrothBackend,
    orion: OrionBackend<Fr>,
}

impl MixedBackend {
    /// Creates the mixed backend from one backend of each protocol.
    pub fn new(sumcheck: SpartanBackend<Fr>, groth: GrothBackend, orion: OrionBackend<Fr>) -> Self {
        Self {
            sumcheck,
            groth,
            orion,
        }
    }

    /// The sumcheck third.
    pub fn sumcheck(&self) -> &SpartanBackend<Fr> {
        &self.sumcheck
    }

    /// The Groth16-style third.
    pub fn groth(&self) -> &GrothBackend {
        &self.groth
    }

    /// The Orion PCS-opening third.
    pub fn orion(&self) -> &OrionBackend<Fr> {
        &self.orion
    }
}

/// One pipeline slot serving all protocols: dispatches on the task
/// variant and forwards to the matching backend's stage at this depth.
struct MixedStage {
    sumcheck: BoxedStage<BatchTask<Fr>>,
    groth: BoxedStage<GrothTask>,
    orion: BoxedStage<OrionTask<Fr>>,
}

impl PipeStage<MixedTask> for MixedStage {
    fn name(&self) -> String {
        format!(
            "{}+{}+{}",
            self.sumcheck.name(),
            self.groth.name(),
            self.orion.name()
        )
    }

    fn threads(&self) -> u32 {
        self.sumcheck
            .threads()
            .max(self.groth.threads())
            .max(self.orion.threads())
    }

    fn process(&self, task: &mut MixedTask) -> StageWork {
        match task {
            MixedTask::Sumcheck(t) => self.sumcheck.process(t),
            MixedTask::Groth(t) => self.groth.process(t),
            MixedTask::Orion(t) => self.orion.process(t),
        }
    }
}

impl ProverBackend for MixedBackend {
    type Instance = MixedInstance;
    type Task = MixedTask;
    type Statement = MixedStatement;
    type Proof = MixedProof;

    fn name(&self) -> &'static str {
        "mixed"
    }

    fn begin(&self, instance: Self::Instance) -> Self::Task {
        match instance {
            MixedInstance::Sumcheck(i) => MixedTask::Sumcheck(self.sumcheck.begin(i)),
            MixedInstance::Groth(i) => MixedTask::Groth(self.groth.begin(i)),
            MixedInstance::Orion(i) => MixedTask::Orion(self.orion.begin(i)),
        }
    }

    fn module_weights(&self, gpu: &Gpu) -> Vec<u64> {
        // Per slot, the heaviest of the protocols' module weights: the
        // slot must keep up with whichever task variant occupies it.
        self.sumcheck
            .module_weights(gpu)
            .into_iter()
            .zip(self.groth.module_weights(gpu))
            .zip(self.orion.module_weights(gpu))
            .map(|((a, b), c)| a.max(b).max(c))
            .collect()
    }

    fn stages(&self, gpu: &Gpu, total_threads: u32) -> Vec<BoxedStage<Self::Task>> {
        let sumcheck = self.sumcheck.stages(gpu, total_threads);
        let groth = self.groth.stages(gpu, total_threads);
        let orion = self.orion.stages(gpu, total_threads);
        assert_eq!(
            sumcheck.len(),
            groth.len(),
            "mixed service requires equal pipeline depths"
        );
        assert_eq!(
            sumcheck.len(),
            orion.len(),
            "mixed service requires equal pipeline depths"
        );
        sumcheck
            .into_iter()
            .zip(groth)
            .zip(orion)
            .map(|((s, g), o)| {
                Box::new(MixedStage {
                    sumcheck: s,
                    groth: g,
                    orion: o,
                }) as BoxedStage<MixedTask>
            })
            .collect()
    }

    fn task_footprint_bytes(&self) -> u64 {
        self.sumcheck
            .task_footprint_bytes()
            .max(self.groth.task_footprint_bytes())
            .max(self.orion.task_footprint_bytes())
    }

    fn finish(&self, task: Self::Task) -> (Self::Statement, Self::Proof) {
        match task {
            MixedTask::Sumcheck(t) => {
                let (s, p) = self.sumcheck.finish(t);
                (MixedStatement::Sumcheck(s), MixedProof::Sumcheck(p))
            }
            MixedTask::Groth(t) => {
                let (s, p) = self.groth.finish(t);
                (MixedStatement::Groth(s), MixedProof::Groth(p))
            }
            MixedTask::Orion(t) => {
                let (s, p) = self.orion.finish(t);
                (MixedStatement::Orion(s), MixedProof::Orion(p))
            }
        }
    }

    fn verify(&self, statement: &Self::Statement, proof: &Self::Proof) -> bool {
        match (statement, proof) {
            (MixedStatement::Sumcheck(s), MixedProof::Sumcheck(p)) => self.sumcheck.verify(s, p),
            (MixedStatement::Groth(s), MixedProof::Groth(p)) => self.groth.verify(s, p),
            (MixedStatement::Orion(s), MixedProof::Orion(p)) => self.orion.verify(s, p),
            _ => false,
        }
    }
}
