//! # batchzk-zkp
//!
//! The complete zero-knowledge-proof system of the BatchZK reproduction:
//! R1CS circuits, the Brakedown/Orion linear-code polynomial commitment
//! (encoder + Merkle tree), the Spartan-style two-sum-check SNARK, and the
//! fully pipelined batch prover of the paper's Figure 7.
//!
//! # Examples
//!
//! ```
//! use batchzk_zkp::{PcsParams, prove, verify};
//! use batchzk_zkp::r1cs::synthetic_r1cs;
//! use batchzk_field::Fr;
//!
//! let (r1cs, inputs, witness) = synthetic_r1cs::<Fr>(16, 7);
//! let params = PcsParams { num_col_tests: 16, ..PcsParams::default() };
//! let proof = prove(&params, &r1cs, &inputs, &witness);
//! assert!(verify(&params, &r1cs, &inputs, &proof));
//! ```

pub mod batch;
pub mod pcs;
pub mod r1cs;
pub mod spartan;

pub use batch::{BatchRun, StreamingProver, prove_batch};
pub use pcs::{PcsCommitment, PcsOpening, PcsParams};
pub use r1cs::{R1cs, R1csBuilder, Var};
pub use spartan::{Proof, prove, prove_with_artifacts, verify};

#[cfg(test)]
mod proptests {
    use super::*;
    use batchzk_field::{Field, Fr};
    use proptest::prelude::*;
    use r1cs::{R1csBuilder, Var};

    fn params() -> PcsParams {
        PcsParams {
            num_col_tests: 8,
            ..PcsParams::default()
        }
    }

    /// Random multiplication-chain circuits with random witnesses.
    fn arb_instance() -> impl Strategy<Value = (R1cs<Fr>, Vec<Fr>, Vec<Fr>)> {
        (2usize..24, any::<u64>()).prop_map(|(s, seed)| r1cs::synthetic_r1cs(s, seed))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn prove_verify_roundtrip((r1cs, inputs, witness) in arb_instance()) {
            let proof = prove(&params(), &r1cs, &inputs, &witness);
            prop_assert!(verify(&params(), &r1cs, &inputs, &proof));
        }

        #[test]
        fn wrong_public_input_rejected(
            (r1cs, inputs, witness) in arb_instance(),
            delta in 1u64..1000,
        ) {
            let proof = prove(&params(), &r1cs, &inputs, &witness);
            let mut bad = inputs.clone();
            bad[0] += Fr::from(delta);
            prop_assert!(!verify(&params(), &r1cs, &bad, &proof));
        }

        #[test]
        fn square_circuit_family(w in 2u64..100_000) {
            // w^2 = x for arbitrary w.
            let mut b = R1csBuilder::<Fr>::new();
            let x = b.new_input();
            let wit = b.new_witness();
            b.enforce(
                vec![(Var::Witness(wit), Fr::ONE)],
                vec![(Var::Witness(wit), Fr::ONE)],
                vec![(Var::Input(x), Fr::ONE)],
            );
            let r1cs = b.build();
            let input = Fr::from(w) * Fr::from(w);
            let proof = prove(&params(), &r1cs, &[input], &[Fr::from(w)]);
            prop_assert!(verify(&params(), &r1cs, &[input], &proof));
            // And -w is the other valid witness; w+1 is not.
            prop_assert!(r1cs.is_satisfied(&r1cs.assemble_z(&[input], &[-Fr::from(w)])));
            prop_assert!(!r1cs.is_satisfied(&r1cs.assemble_z(&[input], &[Fr::from(w + 1)])));
        }
    }
}
