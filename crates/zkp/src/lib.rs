//! # batchzk-zkp
//!
//! The complete zero-knowledge-proof system of the BatchZK reproduction:
//! R1CS circuits, the Brakedown/Orion linear-code polynomial commitment
//! (encoder + Merkle tree, in [`batchzk_pcs`] and re-exported as [`pcs`]),
//! the Spartan-style two-sum-check SNARK, the fully pipelined batch prover
//! of the paper's Figure 7, and the pipelined standalone PCS-opening
//! prover ([`orion`]).
//!
//! # Examples
//!
//! ```
//! use batchzk_zkp::{PcsParams, prove, verify};
//! use batchzk_zkp::r1cs::synthetic_r1cs;
//! use batchzk_field::Fr;
//!
//! let (r1cs, inputs, witness) = synthetic_r1cs::<Fr>(16, 7);
//! let params = PcsParams { num_col_tests: 16, ..PcsParams::default() };
//! let proof = prove(&params, &r1cs, &inputs, &witness);
//! assert!(verify(&params, &r1cs, &inputs, &proof));
//! ```

pub mod backend;
pub mod batch;
pub mod orion;
pub mod r1cs;
pub mod spartan;

/// The Brakedown/Orion linear-code polynomial commitment, re-exported from
/// its own crate ([`batchzk_pcs`]) so `batchzk_zkp::pcs` paths keep
/// working.
pub use batchzk_pcs as pcs;

pub use backend::{
    GrothBackend, MixedBackend, MixedInstance, MixedProof, MixedStatement, MixedTask,
    ProverBackend, SpartanBackend, BACKEND_NAMES,
};
pub use batch::{
    prove_batch, prove_batch_naive_with, prove_batch_pool, prove_batch_pool_with, prove_batch_with,
    prove_service, prove_service_with, task_footprint_bytes, BackendBatchRun, BackendPoolRun,
    BackendProofRequest, BatchRun, PoolBatchRun, ProofRequest, ServiceProofRun, StreamingProver,
};
pub use orion::{OrionBackend, OrionProof, OrionTask};
pub use pcs::{PcsCommitment, PcsOpening, PcsParams};
pub use r1cs::{R1cs, R1csBuilder, Var};
pub use spartan::{prove, prove_with_artifacts, verify, Proof};

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use batchzk_field::{Field, Fr, RngCore, SplitMix64};
    use r1cs::{R1csBuilder, Var};

    fn params() -> PcsParams {
        PcsParams {
            num_col_tests: 8,
            ..PcsParams::default()
        }
    }

    /// A random multiplication-chain circuit with a random witness.
    fn instance(rng: &mut SplitMix64) -> (R1cs<Fr>, Vec<Fr>, Vec<Fr>) {
        let s = rng.gen_range(2..24);
        let seed = rng.next_u64();
        r1cs::synthetic_r1cs(s, seed)
    }

    #[test]
    fn prove_verify_roundtrip() {
        let mut rng = SplitMix64::seed_from_u64(0x21);
        for _ in 0..6 {
            let (r1cs, inputs, witness) = instance(&mut rng);
            let proof = prove(&params(), &r1cs, &inputs, &witness);
            assert!(verify(&params(), &r1cs, &inputs, &proof));
        }
    }

    #[test]
    fn wrong_public_input_rejected() {
        let mut rng = SplitMix64::seed_from_u64(0x22);
        for _ in 0..4 {
            let (r1cs, inputs, witness) = instance(&mut rng);
            let delta = rng.gen_range(1..1000) as u64;
            let proof = prove(&params(), &r1cs, &inputs, &witness);
            let mut bad = inputs.clone();
            bad[0] += Fr::from(delta);
            assert!(!verify(&params(), &r1cs, &bad, &proof));
        }
    }

    #[test]
    fn square_circuit_family() {
        let mut rng = SplitMix64::seed_from_u64(0x23);
        for _ in 0..4 {
            // w^2 = x for arbitrary w.
            let w = rng.gen_range(2..100_000) as u64;
            let mut b = R1csBuilder::<Fr>::new();
            let x = b.new_input();
            let wit = b.new_witness();
            b.enforce(
                vec![(Var::Witness(wit), Fr::ONE)],
                vec![(Var::Witness(wit), Fr::ONE)],
                vec![(Var::Input(x), Fr::ONE)],
            );
            let r1cs = b.build();
            let input = Fr::from(w) * Fr::from(w);
            let proof = prove(&params(), &r1cs, &[input], &[Fr::from(w)]);
            assert!(verify(&params(), &r1cs, &[input], &proof));
            // And -w is the other valid witness; w+1 is not.
            assert!(r1cs.is_satisfied(&r1cs.assemble_z(&[input], &[-Fr::from(w)])));
            assert!(!r1cs.is_satisfied(&r1cs.assemble_z(&[input], &[Fr::from(w + 1)])));
        }
    }
}
